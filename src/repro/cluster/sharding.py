"""Sharding plans: tensor- and pipeline-parallel decoder placement.

A :class:`ShardPlan` says how one model replica's forward pass is split
across ``tp * pp`` processing units — ``tp``-way tensor parallelism
inside each of ``pp`` pipeline stages.  The serving dispatcher keeps
scheduling whole batches onto *lanes*; a lane is now a shard group of
``tp * pp`` units instead of a single unit, and the lane-occupancy cycles
of a batch come from :class:`ShardedCostModel`:

* **compute** shrinks by the shard degree (the same Eqn-9 stream schedule,
  divided across units, with a ceil per stage chunk);
* **tensor-parallel comm** adds two ring all-reduces per transformer
  layer over the batch activations (attention output + MLP output — the
  Megatron cut points);
* **pipeline comm** adds the classic fill/drain term: per extra stage,
  one microbatch chunk of compute plus one boundary activation transfer,
  and each of the ``m + pp - 1`` pipeline slots pays the boundary
  transfer once.

Interconnect terms price through
:class:`~repro.cluster.interconnect.InterconnectModel`, with the tier
(intra- vs inter-board) chosen by where the plan's cut points land in the
:class:`~repro.cluster.topology.ClusterSpec` placement.  The model
accumulates its compute/interconnect split so cluster reports can state
the interconnect-cycle share of every replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.cluster.interconnect import DEFAULT_INTERCONNECT, InterconnectModel
from repro.errors import ConfigurationError
from repro.serve.batcher import Batch
from repro.serve.dispatcher import CostModel, ServeConfig

__all__ = ["ShardPlan", "ShardedCostModel"]


@dataclass(frozen=True)
class ShardPlan:
    """How one replica splits the model: ``tp``-way tensor parallel inside
    each of ``pp`` pipeline stages (``degree = tp * pp`` units per lane)."""

    tp: int = 1
    pp: int = 1

    def __post_init__(self) -> None:
        if self.tp <= 0 or self.pp <= 0:
            raise ConfigurationError("shard degrees must be positive")

    @property
    def degree(self) -> int:
        return self.tp * self.pp

    def describe(self) -> str:
        return f"tp{self.tp}xpp{self.pp}"


class ShardedCostModel(CostModel):
    """Per-batch lane-occupancy under a shard plan, interconnect included.

    Wraps the single-unit :class:`~repro.serve.dispatcher.CostModel`
    (whose base cycles stay memoized in ``perf.latency``) and applies the
    plan split.  ``tp_cross_board`` / ``pp_cross_boundaries`` come from
    the topology placement: whether tensor-parallel rings span boards,
    and how many of the ``pp - 1`` stage boundaries do.

    Instances are per-replica and accumulate
    ``compute_cycles_total`` / ``interconnect_cycles_total`` over the
    replica's lifetime — the interconnect-cycle share reported per
    replica is exactly their ratio.
    """

    def __init__(
        self,
        cfg: ServeConfig,
        plan: ShardPlan = ShardPlan(),
        *,
        interconnect: InterconnectModel = DEFAULT_INTERCONNECT,
        tp_cross_board: bool = False,
        pp_cross_boundaries: int = 0,
    ) -> None:
        super().__init__(cfg)
        if pp_cross_boundaries > max(plan.pp - 1, 0):
            raise ConfigurationError(
                "more cross-board stage boundaries than stage boundaries"
            )
        self.plan = plan
        self.interconnect = interconnect
        self.tp_cross_board = tp_cross_board
        self.pp_cross_boundaries = pp_cross_boundaries
        self.compute_cycles_total = 0
        self.interconnect_cycles_total = 0

    # -- workload shape ------------------------------------------------------
    def _tokens(self, batch: Batch) -> int:
        """Activation tokens per item crossing a layer boundary."""
        if batch.phase == "vit":
            return self.cfg.profile.vit.n_tokens
        if batch.phase == "prefill":
            return max(batch.context, 1)
        return 1  # decode: one token per step

    def _layers(self, batch: Batch) -> int:
        if batch.phase == "vit":
            return self.cfg.profile.vit.depth
        return self.cfg.profile.depth

    # -- split ---------------------------------------------------------------
    def _split3(self, batch: Batch) -> tuple[int, int, int]:
        """``(compute, allreduce, pp_transfer)`` cycles of one batch.

        The named split feeds request-path tracing (the ``shard_compute``
        / ``allreduce`` / ``pp_transfer`` stages); the parts sum exactly
        to the lane-occupancy :meth:`batch_cycles` charges.
        """
        base = super().batch_cycles(batch)
        plan = self.plan
        if plan.degree == 1:
            return base, 0, 0
        act_bytes = batch.size * self._tokens(batch) * self.cfg.profile.dim * 4
        # Compute: the whole pass divided across the shard group, with the
        # pipeline's fill overhead ((pp-1) microbatch chunks of the first
        # stage run before the pipe is full).
        per_unit = ceil(base / plan.degree)
        micro = max(batch.size, 1)
        compute = per_unit
        allreduce = 0
        pp_transfer = 0
        if plan.pp > 1:
            compute += (plan.pp - 1) * ceil(per_unit / micro)
            # Stage-boundary activation hand-offs: every pipeline slot
            # crosses each boundary once; cross-board boundaries pay the
            # serial-link tier, the rest the on-board tier.
            slot_bytes = ceil(act_bytes / micro)
            slots = micro + plan.pp - 1
            cross = self.pp_cross_boundaries
            intra = (plan.pp - 1) - cross
            pp_transfer = slots * (
                cross * self.interconnect.transfer_cycles(
                    slot_bytes, cross_board=True)
                + intra * self.interconnect.transfer_cycles(
                    slot_bytes, cross_board=False)
            )
        if plan.tp > 1:
            # Two ring all-reduces per layer (attention out + MLP out)
            # over the batch activations each stage holds.
            stage_bytes = ceil(act_bytes / plan.pp)
            allreduce = 2 * self._layers(batch) * self.interconnect.allreduce_cycles(
                stage_bytes, plan.tp, cross_board=self.tp_cross_board
            )
        return compute, allreduce, pp_transfer

    def split_cycles(self, batch: Batch) -> tuple[int, int]:
        """``(compute, interconnect)`` lane-occupancy cycles of one batch."""
        compute, allreduce, pp_transfer = self._split3(batch)
        return compute, allreduce + pp_transfer

    def batch_cycles(self, batch: Batch) -> int:
        compute, comm = self.split_cycles(batch)
        self.compute_cycles_total += compute
        self.interconnect_cycles_total += comm
        return compute + comm

    def batch_breakdown(self, batch: Batch) -> dict[str, int]:
        """Named stage split of one batch (pure — no accumulation)."""
        compute, allreduce, pp_transfer = self._split3(batch)
        out = {"shard_compute": compute}
        if allreduce:
            out["allreduce"] = allreduce
        if pp_transfer:
            out["pp_transfer"] = pp_transfer
        return out

    @property
    def interconnect_share(self) -> float:
        """Fraction of accumulated lane-occupancy spent on interconnect."""
        total = self.compute_cycles_total + self.interconnect_cycles_total
        return self.interconnect_cycles_total / total if total else 0.0
