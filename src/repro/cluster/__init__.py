"""Multi-board cluster serving: sharded replicas, routing, autoscaling.

Layers over :mod:`repro.serve`: a fleet of boards hosts replicas (whole
model instances, possibly tensor-/pipeline-sharded across units and
boards), a router steers requests with session affinity, and an optional
load-driven autoscaler grows and drains the fleet mid-trace.  See
DESIGN.md §13.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from repro.cluster.interconnect import DEFAULT_INTERCONNECT, InterconnectModel
from repro.cluster.router import Router
from repro.cluster.sharding import ShardedCostModel, ShardPlan
from repro.cluster.simulate import ClusterConfig, ClusterReport, simulate_cluster
from repro.cluster.topology import Board, ClusterSpec, Replica

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ScaleEvent",
    "InterconnectModel",
    "DEFAULT_INTERCONNECT",
    "Router",
    "ShardPlan",
    "ShardedCostModel",
    "ClusterConfig",
    "ClusterReport",
    "simulate_cluster",
    "ClusterSpec",
    "Board",
    "Replica",
]
