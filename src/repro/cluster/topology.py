"""Cluster topology: boards, replicas, and shard-group placement.

A **board** is one U280 — ``units_per_board`` independent processing
units (the paper deploys 15).  A **replica** is one servable model
instance: it owns ``boards_per_replica`` whole boards and organizes their
units into *lanes* of ``tp * pp`` units each (see
:class:`~repro.cluster.sharding.ShardPlan`).  The serving dispatcher
schedules batches onto lanes exactly as the single-board dispatcher
schedules onto units — request-level parallelism across lanes, shard-level
parallelism inside one.

Placement determines which interconnect tier the shard plan's cut points
pay:

* pipeline stages are laid out across the replica's boards round-robin,
  so with ``boards_per_replica > 1`` the outermost
  ``min(pp, boards_per_replica) - 1`` stage boundaries cross a board edge;
* tensor-parallel rings stay inside one stage; they only cross boards
  when a single stage's ``tp`` units cannot fit on one board
  (``tp > units_per_board``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.interconnect import DEFAULT_INTERCONNECT, InterconnectModel
from repro.cluster.sharding import ShardPlan
from repro.errors import ConfigurationError

__all__ = ["ClusterSpec", "Board", "Replica"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static shape of the fleet: boards, replica footprint, shard plan."""

    boards: int = 4
    units_per_board: int = 15
    boards_per_replica: int = 1
    plan: ShardPlan = ShardPlan()
    interconnect: InterconnectModel = DEFAULT_INTERCONNECT

    def __post_init__(self) -> None:
        if self.boards <= 0 or self.units_per_board <= 0:
            raise ConfigurationError("cluster needs boards with units")
        if self.boards_per_replica <= 0:
            raise ConfigurationError("a replica needs at least one board")
        if self.boards_per_replica > self.boards:
            raise ConfigurationError(
                f"replica footprint ({self.boards_per_replica} boards) "
                f"exceeds the fleet ({self.boards})"
            )
        if self.plan.degree > self.units_per_replica:
            raise ConfigurationError(
                f"shard degree {self.plan.degree} exceeds the "
                f"{self.units_per_replica} units of one replica"
            )

    # -- derived footprint ---------------------------------------------------
    @property
    def units_per_replica(self) -> int:
        return self.boards_per_replica * self.units_per_board

    @property
    def lanes_per_replica(self) -> int:
        """Parallel shard groups one replica schedules batches onto."""
        return self.units_per_replica // self.plan.degree

    @property
    def max_replicas(self) -> int:
        """Fleet capacity: how many replicas the boards can host at once."""
        return self.boards // self.boards_per_replica

    # -- placement -> interconnect tiers --------------------------------------
    @property
    def tp_cross_board(self) -> bool:
        """Tensor rings span boards only when a stage overflows one board."""
        return self.plan.tp > self.units_per_board

    @property
    def pp_cross_boundaries(self) -> int:
        """Stage boundaries that land on a board edge (round-robin stages)."""
        if self.plan.pp <= 1 or self.boards_per_replica <= 1:
            return 0
        return min(self.plan.pp, self.boards_per_replica) - 1


@dataclass
class Board:
    """One physical board and its current owner (a replica id or None)."""

    bid: int
    owner: int | None = None

    @property
    def free(self) -> bool:
        return self.owner is None


@dataclass
class Replica:
    """One servable model instance: boards, lanes, dispatcher, lifecycle.

    ``state`` walks ``active`` (routable) -> ``draining`` (finishes its
    queued/resident work, accepts nothing new) -> ``retired`` (boards
    freed).  ``dispatcher`` and ``cost`` are attached by the cluster
    simulator when the replica spawns.
    """

    rid: int
    boards: tuple[int, ...]
    spawned_at: int
    dispatcher: object = field(default=None, repr=False)
    cost: object = field(default=None, repr=False)
    state: str = "active"
    retired_at: int | None = None

    @property
    def active(self) -> bool:
        return self.state == "active"

    def active_span(self, horizon: int) -> int:
        """Cycles this replica existed (spawn to retirement or horizon)."""
        end = self.retired_at if self.retired_at is not None else horizon
        return max(end - self.spawned_at, 0)

    def drained(self) -> bool:
        """True when no queued items, no resident sessions, all lanes idle."""
        d = self.dispatcher
        return (
            d.depth() == 0
            and d.active_sessions() == 0
            and len(d.idle) == d.pool.n_units
        )
