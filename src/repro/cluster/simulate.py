"""Cluster serving simulation: a fleet of replicas behind one router.

This is the multi-board driver over the per-replica engine the serving
refactor exposed (:class:`repro.serve.dispatcher.Dispatcher`).  One event
heap carries the whole fleet — arrivals hit the cluster edge, get routed
(:class:`~repro.cluster.router.Router`: session affinity, then
join-the-shortest-queue with seeded ties), and land in one replica's
batcher; each replica dispatches onto its own *lanes* (shard groups of
``tp * pp`` units, :class:`~repro.cluster.sharding.ShardedCostModel`
pricing compute + interconnect per batch).

When an :class:`~repro.cluster.autoscaler.AutoscalerConfig` is given, a
periodic autoscale event samples fleet pressure and spawns or drains
replicas mid-trace: new replicas become routable after a provisioning
delay; draining replicas finish their queued and resident work before
their boards return to the free pool (live KV is never evicted).  Every
decision lands in the report as a
:class:`~repro.cluster.autoscaler.ScaleEvent`.

Determinism carries over from the single-pool simulator: integer cycle
time, ``(cycle, sequence)`` event order, a seeded trace and a seeded
router — one ``(trace seed, router seed)`` pair replays byte-identically.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.router import Router
from repro.cluster.sharding import ShardedCostModel
from repro.cluster.topology import Board, ClusterSpec, Replica
from repro.errors import ConfigurationError
from repro.hw.system import UnitPool
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.obs.slo import NULL_SLO, SLOTracker
from repro.obs.tracer import NULL_TRACER, RequestPathConfig, Tracer
from repro.serve.dispatcher import Dispatcher, ServeConfig
from repro.serve.metrics import MetricsCollector, percentiles
from repro.serve.request import Request

__all__ = ["ClusterConfig", "ClusterReport", "simulate_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster run: serving config, fleet shape, scaling policy.

    ``spike`` (a :class:`~repro.obs.incident_cli.SpikeInjection`, or
    ``None``) injects a deterministic latency spike into every replica's
    cost model — the cluster counterpart of the single-pool
    ``--inject-spike-*`` flags, composed over the sharded models through
    :class:`~repro.obs.incident_cli.SpikedCostModel`.
    """

    serve: ServeConfig = ServeConfig()
    spec: ClusterSpec = ClusterSpec()
    autoscaler: AutoscalerConfig | None = None
    initial_replicas: int = 1
    max_cluster_queue: int = 4096
    router_seed: int = 0
    spike: object | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.initial_replicas <= self.spec.max_replicas:
            raise ConfigurationError(
                f"initial_replicas must be in [1, {self.spec.max_replicas}]"
            )
        if self.max_cluster_queue <= 0:
            raise ConfigurationError("cluster admission bound must be positive")
        a = self.autoscaler
        if a is not None:
            if a.max_replicas > self.spec.max_replicas:
                raise ConfigurationError(
                    f"autoscaler max_replicas ({a.max_replicas}) exceeds "
                    f"fleet capacity ({self.spec.max_replicas})"
                )
            if not a.min_replicas <= self.initial_replicas <= a.max_replicas:
                raise ConfigurationError(
                    "initial_replicas outside the autoscaler's "
                    f"[{a.min_replicas}, {a.max_replicas}] band"
                )


@dataclass
class ClusterReport:
    """Outcome of one cluster run: fleet summary, per-replica rows, events."""

    summary: dict
    per_replica: list[dict]
    scale_events: list[dict]
    config: ClusterConfig
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER, repr=False)

    def to_json(self) -> str:
        return json.dumps(
            {
                "summary": self.summary,
                "per_replica": self.per_replica,
                "scale_events": self.scale_events,
            },
            indent=2,
            sort_keys=True,
        )

    def render(self, title: str = "cluster-sim") -> str:
        from repro.eval.reporting import render_metrics

        lines = [render_metrics(title, self.summary)]
        lines.append("")
        lines.append(
            f"{'replica':>8} {'state':>9} {'boards':>8} {'completed':>9} "
            f"{'util':>6} {'p95 ms':>8} {'p99 ms':>8} {'ic %':>6}"
        )
        for row in self.per_replica:
            lines.append(
                f"{row['rid']:>8} {row['state']:>9} "
                f"{','.join(str(b) for b in row['boards']):>8} "
                f"{row['completed']:>9} {row['utilization']:>6.2f} "
                f"{row['latency_p95_ms']:>8.3f} {row['latency_p99_ms']:>8.3f} "
                f"{100 * row['interconnect_share']:>6.2f}"
            )
        if self.scale_events:
            lines.append("")
            for ev in self.scale_events:
                lines.append(
                    f"  cycle {ev['cycle']:>12}  {ev['action']:<10} "
                    f"r{ev['rid']}  active={ev['n_active']}  "
                    f"({ev['reason']})"
                )
        return "\n".join(lines)


def simulate_cluster(
    requests: list[Request],
    config: ClusterConfig = ClusterConfig(),
    *,
    tracer: Tracer = NULL_TRACER,
    registry: MetricsRegistry | None = None,
    slo: SLOTracker = NULL_SLO,
    path: RequestPathConfig | None = None,
    recorder: FlightRecorder = NULL_RECORDER,
) -> ClusterReport:
    """Run the cluster serving simulation over a request trace.

    Event tags on the shared heap: ``arrive`` (a request at the cluster
    edge), ``finish``/``wake`` (a replica's dispatcher events, tagged with
    the replica id by its push wrapper), ``spawn`` (a provisioning replica
    becoming routable) and ``autoscale`` (a periodic policy sample).

    ``slo`` (default: disabled) is the fleet-wide SLO tracker — every
    replica reports completions/rejections into it, the router uses its
    burn rates for affinity bypass, the autoscaler for burn-triggered
    scale-ups, and the summary gains an ``"slo"`` section.  ``path``
    turns on request-path stage decomposition in the trace: boards
    become trace processes, units threads, and sampled requests carry
    named stage children across the edge -> router -> replica -> shard
    path (one :class:`~repro.obs.tracer.SpanContext` per request).

    ``recorder`` (default: disabled) is shared across the fleet: every
    replica's dispatcher feeds it, edge rejections and scale decisions
    land in its decision ring, and scale events are annotated with the
    incident open at decision time.  Cluster bundles are capture-only
    (``replay.supported = false``): the router's RNG and the
    autoscaler's window state span capture epochs, so the single-pool
    epoch-replay argument does not hold here.
    """
    spec = config.spec
    clock = config.serve.clock
    reg = get_registry() if registry is None else registry
    router = Router(config.router_seed, slo=slo)
    scaler = (
        Autoscaler(config.autoscaler, clock)
        if config.autoscaler is not None
        else None
    )

    boards = [Board(b) for b in range(spec.boards)]
    replicas: list[Replica] = []

    events: list[tuple[int, int, str, object]] = []
    seq = 0

    def push(t: int, tag: str, payload: object = None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, tag, payload))
        seq += 1

    def replica_push(rid: int):
        """Event sink handed to one replica's dispatcher: tags events
        with the replica id so the loop can route them back."""

        def _push(t: int, tag: str, payload: object = None) -> None:
            push(t, tag, (rid, payload))

        return _push

    def allocate_boards(rid: int) -> tuple[int, ...] | None:
        free = [b for b in boards if b.free][: spec.boards_per_replica]
        if len(free) < spec.boards_per_replica:
            return None
        for b in free:
            b.owner = rid
        return tuple(b.bid for b in free)

    def spawn_replica(now: int, active_at: int) -> Replica | None:
        rid = len(replicas)
        owned = allocate_boards(rid)
        if owned is None:
            return None
        r = Replica(rid, owned, spawned_at=active_at,
                    state="active" if active_at <= now else "provisioning")
        r.cost = ShardedCostModel(
            config.serve, spec.plan,
            interconnect=spec.interconnect,
            tp_cross_board=spec.tp_cross_board,
            pp_cross_boundaries=spec.pp_cross_boundaries,
        )
        # The dispatcher prices batches through the (optionally spiked)
        # wrapper; ``r.cost`` stays the sharded model so the summary's
        # compute/interconnect accumulators read the same object the
        # wrapper delegates to.
        dispatch_cost = r.cost
        if config.spike is not None:
            from repro.obs.incident_cli import SpikedCostModel

            dispatch_cost = SpikedCostModel(r.cost, config.spike)
        # Lane -> board process for the trace: a lane's units live on the
        # board holding its first shard unit (boards as processes,
        # replica lanes as threads under them).
        lane_procs = tuple(
            f"board{owned[(lane * spec.plan.degree) // spec.units_per_board]}"
            for lane in range(spec.lanes_per_replica)
        )
        r.dispatcher = Dispatcher(
            config.serve,
            UnitPool(spec.lanes_per_replica),
            replica_push(rid),
            cost=dispatch_cost,
            tracer=tracer,
            registry=reg,
            track_prefix=f"r{rid}.",
            slo=slo,
            path=path,
            processes=lane_procs,
            metric_prefix=f"cluster.r{rid}.",
            recorder=recorder,
        )
        replicas.append(r)
        if active_at > now:
            push(active_at, "spawn", rid)
        return r

    def retire_if_drained(r: Replica, now: int) -> None:
        if r.state == "draining" and r.drained():
            r.state = "retired"
            r.retired_at = now
            for b in boards:
                if b.owner == r.rid:
                    b.owner = None
            note_active(now)

    _last_active = -1

    def note_active(now: int) -> None:
        nonlocal _last_active
        n = sum(1 for r in replicas if r.active)
        if tracer.enabled and n != _last_active:
            tracer.counter("cluster.active_replicas", cycle=now, value=n)
            _last_active = n

    for _ in range(config.initial_replicas):
        spawn_replica(0, 0)
    note_active(0)

    arrivals_remaining = len(requests)
    edge_rejected = 0
    cluster_queue_samples: list[tuple[int, int]] = []

    def fleet_depth() -> int:
        return sum(r.dispatcher.depth() for r in replicas if r.active)

    def work_pending() -> bool:
        if arrivals_remaining:
            return True
        for r in replicas:
            if r.state == "retired":
                continue
            if r.state == "provisioning":
                return True
            d = r.dispatcher
            if d.depth() or len(d.idle) < d.pool.n_units:
                return True
        return False

    def run_autoscale(now: int) -> None:
        pending_up = sum(1 for r in replicas if r.state == "provisioning")
        free_capacity = (
            sum(1 for b in boards if b.free) // spec.boards_per_replica
        )
        burn = slo.fleet_burn(now) if slo.enabled else 0.0
        action = scaler.decide(
            now, replicas, pending_up=pending_up,
            free_capacity=free_capacity, burn_rate=burn,
        )
        if action is None:
            return
        depth, util = scaler._last_signals
        n_active = sum(1 for r in replicas if r.active)
        if action == "up":
            r = spawn_replica(now, now + scaler.provision)
            if r is None:  # pragma: no cover - guarded by free_capacity
                return
            if depth > scaler.cfg.scale_up_queue:
                reason = f"queue {depth:.1f} > {scaler.cfg.scale_up_queue:g}"
            elif util > scaler.cfg.scale_up_utilization:
                reason = f"util {util:.2f} > {scaler.cfg.scale_up_utilization:g}"
            else:
                reason = (f"burn {burn:.2f} > "
                          f"{scaler.cfg.scale_up_burn_rate:g}")
            ev = scaler.record(
                now, "scale_up", r.rid, n_active + pending_up + 1,
                depth, util, reason, burn,
                incident=recorder.active_incident_id(),
            )
        else:
            # Drain the shallowest-queue active replica; ties go to the
            # youngest (highest rid) so long-lived replicas keep their
            # warm sessions.
            active = [r for r in replicas if r.active]
            victim = min(
                active, key=lambda r: (r.dispatcher.depth(), -r.rid)
            )
            victim.state = "draining"
            router.forget(victim.rid)
            ev = scaler.record(
                now, "scale_down", victim.rid, n_active - 1, depth, util,
                f"queue {depth:.1f} < {scaler.cfg.scale_down_queue:g} and "
                f"util {util:.2f} < {scaler.cfg.scale_down_utilization:g}",
                burn,
                incident=recorder.active_incident_id(),
            )
            retire_if_drained(victim, now)
        note_active(now)
        if recorder.enabled:
            recorder.record_scale(now, ev.as_dict())
        if reg.enabled:
            reg.counter(f"cluster.{ev.action}").inc()
        if tracer.enabled:
            tracer.span(
                f"{ev.action} r{ev.rid}",
                track="cluster",
                start=now,
                end=now,
                cat="autoscale",
                args=ev.as_dict(),
            )

    for r in sorted(requests, key=lambda r: (r.arrival, r.rid)):
        push(r.arrival, "arrive", r)
    if scaler is not None:
        push(scaler.interval, "autoscale", None)

    while events:
        now, _, tag, payload = heapq.heappop(events)
        touched: list[Replica] = []
        if tag == "arrive":
            arrivals_remaining -= 1
            req: Request = payload
            if fleet_depth() >= config.max_cluster_queue:
                edge_rejected += 1
                if slo.enabled:
                    slo.record_rejection(req, now)
                if recorder.enabled:
                    recorder.record_rejection(req, now)
                    if slo.enabled:
                        recorder.observe_burn(now, slo.fleet_burn(now))
                if reg.enabled:
                    reg.counter("cluster.edge_rejections").inc()
            else:
                target = router.route(req, replicas, now)
                if target is None:  # pragma: no cover - min_replicas >= 1
                    edge_rejected += 1
                    if slo.enabled:
                        slo.record_rejection(req, now)
                else:
                    if target.dispatcher.admit(req, now):
                        ctx = target.dispatcher.trace_ctx(req)
                        if ctx is not None:
                            ctx.child(
                                "route", start=req.arrival, end=now,
                                args={"replica": target.rid,
                                      "queue_depth": target.dispatcher.depth()},
                            )
                    touched.append(target)
        elif tag == "finish":
            rid, (unit, batch) = payload
            r = replicas[rid]
            r.dispatcher.on_finish(unit, batch, now)
            touched.append(r)
        elif tag == "wake":
            rid, _ = payload
            r = replicas[rid]
            r.dispatcher.on_wake(now)
            touched.append(r)
        elif tag == "spawn":
            r = replicas[payload]
            if r.state == "provisioning":
                r.state = "active"
                note_active(now)
                touched.append(r)
        elif tag == "autoscale":
            run_autoscale(now)
            touched.extend(r for r in replicas if r.state != "retired")
            if work_pending():
                push(now + scaler.interval, "autoscale", None)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown event tag {tag!r}")
        for r in touched:
            r.dispatcher.try_dispatch(now)
            r.dispatcher.observe_queue(now)
            retire_if_drained(r, now)
        cluster_queue_samples.append((now, fleet_depth()))
        if recorder.enabled and not any(
            len(r.dispatcher.idle) < r.dispatcher.pool.n_units
            or not r.dispatcher.batcher.empty()
            for r in replicas if r.state != "retired"
        ):
            # Fleet-wide idle point (cheap unit check first, queue scan
            # only when every unit is free); cluster bundles are
            # capture-only, but epochs still bound the arrival capture.
            recorder.end_event(now, True)

    # -- merge ----------------------------------------------------------------
    merged = MetricsCollector()
    total_busy = 0
    for r in replicas:
        m = r.dispatcher.metrics
        merged.arrivals += m.arrivals
        merged.rejections += m.rejections
        merged.completed += m.completed
        merged.tokens_out += m.tokens_out
        merged.deadline_misses += m.deadline_misses
        merged.latencies.extend(m.latencies)
        merged.ttft.extend(m.ttft)
        merged.last_completion = max(merged.last_completion, m.last_completion)
        for phase, sizes in m.batch_sizes.items():
            merged.batch_sizes.setdefault(phase, []).extend(sizes)
        total_busy += r.dispatcher.busy_cycles
    merged.queue_samples = cluster_queue_samples
    horizon = merged.last_completion

    summary = merged.summary(clock=clock, busy_cycles=total_busy)
    capacity = sum(
        r.active_span(horizon) * r.dispatcher.pool.n_units for r in replicas
    )
    summary["utilization"] = total_busy / capacity if capacity else 0.0
    summary["arrivals"] = merged.arrivals + edge_rejected
    summary["rejected"] = merged.rejections + edge_rejected
    summary["rejection_rate"] = (
        summary["rejected"] / summary["arrivals"] if summary["arrivals"] else 0.0
    )
    compute_total = sum(r.cost.compute_cycles_total for r in replicas)
    inter_total = sum(r.cost.interconnect_cycles_total for r in replicas)
    lane_total = compute_total + inter_total
    summary.update(
        {
            "edge_rejected": edge_rejected,
            "replicas_spawned": len(replicas),
            "replicas_final": sum(1 for r in replicas if r.active),
            "scale_ups": sum(
                1 for e in (scaler.events if scaler else [])
                if e.action == "scale_up"
            ),
            "scale_downs": sum(
                1 for e in (scaler.events if scaler else [])
                if e.action == "scale_down"
            ),
            "interconnect_share": inter_total / lane_total if lane_total else 0.0,
            "interconnect_cycles": inter_total,
            "affinity_hit_rate": (
                router.affinity_hits
                / (router.affinity_hits + router.affinity_misses)
                if (router.affinity_hits + router.affinity_misses)
                else 0.0
            ),
            "shard_plan": spec.plan.describe(),
            "lanes_per_replica": spec.lanes_per_replica,
            "active_sessions_peak_kv_mib": sum(
                r.dispatcher.sessions.peak_kv_bytes for r in replicas
            ) / 2**20,
        }
    )
    if slo.enabled:
        summary["slo"] = slo.snapshot(horizon)
        summary["slo_router_bypasses"] = router.slo_bypasses
    if recorder.enabled:
        summary["recorder"] = recorder.finalize(horizon)

    per_replica: list[dict] = []
    f = clock.freq_hz
    for r in replicas:
        m = r.dispatcher.metrics
        span = r.active_span(horizon)
        lanes = r.dispatcher.pool.n_units
        _, p95, p99 = percentiles(m.latencies)
        mean_q, _, _, _ = m._queue_stats()
        per_replica.append(
            {
                "rid": r.rid,
                "state": r.state,
                "boards": list(r.boards),
                "spawned_at": r.spawned_at,
                "retired_at": r.retired_at,
                "lanes": lanes,
                "plan": spec.plan.describe(),
                "arrivals": m.arrivals,
                "completed": m.completed,
                "rejected": m.rejections,
                "tokens_out": m.tokens_out,
                "dispatches": sum(len(v) for v in m.batch_sizes.values()),
                "busy_cycles": r.dispatcher.busy_cycles,
                "utilization": (
                    r.dispatcher.busy_cycles / (span * lanes)
                    if span and lanes else 0.0
                ),
                "latency_p95_ms": p95 / f * 1e3,
                "latency_p99_ms": p99 / f * 1e3,
                "mean_queue_depth": mean_q,
                "interconnect_share": r.cost.interconnect_share,
            }
        )

    if reg.enabled:
        reg.counter("cluster.arrivals").inc(summary["arrivals"])
        reg.counter("cluster.tokens_out").inc(merged.tokens_out)
        reg.gauge("cluster.replicas_spawned").set(len(replicas))
        reg.gauge("cluster.horizon_cycles").set(horizon)
        # Per-replica/board-labeled fleet metrics: the dispatcher already
        # namespaces its live counters under ``cluster.r<rid>.``; these
        # summary gauges make per-replica utilization (and which boards
        # backed it) verifiable straight from a --metrics-out dump.
        for r, row in zip(replicas, per_replica):
            base = f"cluster.r{r.rid}"
            reg.gauge(f"{base}.utilization").set(row["utilization"])
            reg.gauge(f"{base}.busy_cycles").set(row["busy_cycles"])
            reg.counter(f"{base}.completed").inc(row["completed"])
            reg.counter(f"{base}.tokens_out").inc(row["tokens_out"])
            reg.gauge(f"{base}.interconnect_share").set(
                row["interconnect_share"]
            )
            for bid in r.boards:
                reg.gauge(f"cluster.board{bid}.replica").set(r.rid)

    return ClusterReport(
        summary,
        per_replica,
        [e.as_dict() for e in (scaler.events if scaler else [])],
        config,
        tracer,
    )
