"""Cluster-edge routing: replica selection with session affinity.

The router is the cluster's front door.  Per arriving request it picks an
``active`` replica:

1. **Session affinity** — a request carrying a ``user`` id goes back to
   the replica that served that user last, provided it is still active
   and its queue has room.  Decoder KV caches, prepared-weight residency
   and any per-user prefix state live on the replica that built them
   (:mod:`repro.serve.sessions` pins sessions *within* a replica the same
   way), so keeping a user's traffic sticky avoids re-warming.
2. **Least-loaded** — otherwise the replica with the shallowest batcher
   queue wins (join-the-shortest-queue over the fleet).

**Deterministic tie-breaking (reproducibility contract).**  When several
replicas tie on queue depth, the winner is drawn from the tied set by a
``numpy`` generator seeded at construction — *not* by replica id, which
would pile every cold-start burst onto replica 0, and *not* by wall-clock
or dict order, which would make runs irreproducible.  The generator is
consumed only on ties, in event order, so a given ``(trace seed, router
seed)`` pair replays byte-identically; changing the router seed is the
supported way to resample placement.

**SLO-aware affinity bypass.**  With an :class:`~repro.obs.slo.SLOTracker`
wired in, a sticky hit is skipped when the request's class is actively
burning its error budget (sustained burn > 1) *and* the sticky replica's
queue is deeper than the shallowest queue by more than
``burn_bypass_margin`` items: warmth is worth a short detour through a
deeper queue, but not a deadline miss while an idle replica sits next
door.  With the default :data:`~repro.obs.slo.NULL_SLO` the bypass never
fires and routing (and rng consumption) is exactly the historical one.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Replica
from repro.obs.slo import NULL_SLO, SLOTracker
from repro.serve.request import Request

__all__ = ["Router"]


class Router:
    """Affinity-then-least-loaded replica selection with seeded ties."""

    def __init__(self, seed: int = 0, *, slo: SLOTracker = NULL_SLO,
                 burn_bypass_margin: float = 16.0) -> None:
        self._rng = np.random.default_rng(seed)
        self._affinity: dict[int, int] = {}  # user -> replica id
        self.slo = slo
        self.burn_bypass_margin = burn_bypass_margin
        self.affinity_hits = 0
        self.affinity_misses = 0
        self.slo_bypasses = 0

    def forget(self, rid: int) -> None:
        """Drop all stickiness to a replica (called when it drains)."""
        self._affinity = {u: r for u, r in self._affinity.items() if r != rid}

    def _burn_bypass(self, req: Request, sticky: Replica,
                     candidates: list[Replica], now: int) -> bool:
        """Skip a sticky hit when the class burns and a shallower queue
        exists (see module docstring)."""
        if not self.slo.enabled:
            return False
        if self.slo.class_burn(req.kind, now) <= 1.0:
            return False
        shallowest = min(r.dispatcher.depth() for r in candidates)
        return sticky.dispatcher.depth() > shallowest + self.burn_bypass_margin

    def route(self, req: Request, replicas: list[Replica],
              now: int = 0) -> Replica | None:
        """Pick the replica ``req`` should run on, or ``None`` (no capacity).

        Only ``active`` replicas are candidates; a sticky replica whose
        queue is already at its admission bound falls through to
        least-loaded (the request is not worth a 503 just to stay warm).
        ``now`` feeds the SLO burn-rate lookup; it is unused without an
        SLO tracker.
        """
        candidates = [r for r in replicas if r.active]
        if not candidates:
            return None
        if req.user is not None:
            sticky_rid = self._affinity.get(req.user)
            if sticky_rid is not None:
                sticky = next(
                    (r for r in candidates if r.rid == sticky_rid), None
                )
                if sticky is not None and (
                    sticky.dispatcher.depth()
                    < sticky.dispatcher.config.max_queue
                ):
                    if self._burn_bypass(req, sticky, candidates, now):
                        self.slo_bypasses += 1
                    else:
                        self.affinity_hits += 1
                        return sticky
            self.affinity_misses += 1
        depths = [r.dispatcher.depth() for r in candidates]
        best = min(depths)
        tied = [r for r, d in zip(candidates, depths) if d == best]
        if len(tied) == 1:
            chosen = tied[0]
        else:
            chosen = tied[int(self._rng.integers(0, len(tied)))]
        if req.user is not None:
            self._affinity[req.user] = chosen.rid
        return chosen
