"""Cluster-edge routing: replica selection with session affinity.

The router is the cluster's front door.  Per arriving request it picks an
``active`` replica:

1. **Session affinity** — a request carrying a ``user`` id goes back to
   the replica that served that user last, provided it is still active
   and its queue has room.  Decoder KV caches, prepared-weight residency
   and any per-user prefix state live on the replica that built them
   (:mod:`repro.serve.sessions` pins sessions *within* a replica the same
   way), so keeping a user's traffic sticky avoids re-warming.
2. **Least-loaded** — otherwise the replica with the shallowest batcher
   queue wins (join-the-shortest-queue over the fleet).

**Deterministic tie-breaking (reproducibility contract).**  When several
replicas tie on queue depth, the winner is drawn from the tied set by a
``numpy`` generator seeded at construction — *not* by replica id, which
would pile every cold-start burst onto replica 0, and *not* by wall-clock
or dict order, which would make runs irreproducible.  The generator is
consumed only on ties, in event order, so a given ``(trace seed, router
seed)`` pair replays byte-identically; changing the router seed is the
supported way to resample placement.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.topology import Replica
from repro.serve.request import Request

__all__ = ["Router"]


class Router:
    """Affinity-then-least-loaded replica selection with seeded ties."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._affinity: dict[int, int] = {}  # user -> replica id
        self.affinity_hits = 0
        self.affinity_misses = 0

    def forget(self, rid: int) -> None:
        """Drop all stickiness to a replica (called when it drains)."""
        self._affinity = {u: r for u, r in self._affinity.items() if r != rid}

    def route(self, req: Request, replicas: list[Replica]) -> Replica | None:
        """Pick the replica ``req`` should run on, or ``None`` (no capacity).

        Only ``active`` replicas are candidates; a sticky replica whose
        queue is already at its admission bound falls through to
        least-loaded (the request is not worth a 503 just to stay warm).
        """
        candidates = [r for r in replicas if r.active]
        if not candidates:
            return None
        if req.user is not None:
            sticky_rid = self._affinity.get(req.user)
            if sticky_rid is not None:
                sticky = next(
                    (r for r in candidates if r.rid == sticky_rid), None
                )
                if sticky is not None and (
                    sticky.dispatcher.depth()
                    < sticky.dispatcher.config.max_queue
                ):
                    self.affinity_hits += 1
                    return sticky
            self.affinity_misses += 1
        depths = [r.dispatcher.depth() for r in candidates]
        best = min(depths)
        tied = [r for r, d in zip(candidates, depths) if d == best]
        if len(tied) == 1:
            chosen = tied[0]
        else:
            chosen = tied[int(self._rng.integers(0, len(tied)))]
        if req.user is not None:
            self._affinity[req.user] = chosen.rid
        return chosen
