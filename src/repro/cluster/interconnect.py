"""Inter-board interconnect model: the latency term the single-board
simulator never had to charge.

The paper's cost model stops at the HBM/AXI boundary of one U280 (two
256-bit channels per unit, :mod:`repro.perf.memory`).  A fleet of boards
adds a second memory-system boundary: tensor shards exchanging partial
sums and pipeline stages handing activations across a serial link (QSFP /
Aurora-class on real U280 deployments, the multi-engine AI-fabric regime
of TransDot in PAPERS.md).  This module models that boundary in the same
idiom as :class:`~repro.perf.memory.AxiChannel` — a fixed per-message
issue latency plus streaming beats — with two quality tiers:

* **intra-board** — units on the same board exchange through HBM/the
  on-chip crossbar: wide (one 32-byte beat per cycle), short issue
  latency (an AXI round trip);
* **inter-board** — a serial link: narrower effective beat rate once
  8b/10b-style encoding and protocol framing are paid, and an issue
  latency in the hundreds of cycles (SerDes + protocol round trip at the
  300 MHz system clock).

All returns are integer cycles of the system clock, so interconnect
cycles add directly onto the compiled-schedule occupancy the dispatcher
charges a lane.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import ConfigurationError

__all__ = ["InterconnectModel", "DEFAULT_INTERCONNECT"]


@dataclass(frozen=True)
class InterconnectModel:
    """Two-tier link model: on-board crossbar vs board-to-board serial.

    ``*_bytes_per_cycle`` is the streaming rate once a message is issued;
    ``*_issue_latency`` the fixed cost per message (cycles).  Defaults:
    the intra-board tier matches one AXI beat (32 B/cycle) with the HBM
    issue latency of :class:`~repro.perf.memory.MemoryModel`; the
    inter-board tier is a 100 Gbit-class serial link at the 300 MHz
    system clock (~40 B/cycle raw, ~32 B/cycle after framing) with a
    500-cycle protocol round trip (~1.7 us).
    """

    inter_bytes_per_cycle: int = 32
    inter_issue_latency: int = 500
    intra_bytes_per_cycle: int = 32
    intra_issue_latency: int = 16

    def __post_init__(self) -> None:
        if self.inter_bytes_per_cycle <= 0 or self.intra_bytes_per_cycle <= 0:
            raise ConfigurationError("interconnect bandwidth must be positive")
        if self.inter_issue_latency < 0 or self.intra_issue_latency < 0:
            raise ConfigurationError("interconnect latency cannot be negative")

    def _tier(self, cross_board: bool) -> tuple[int, int]:
        if cross_board:
            return self.inter_bytes_per_cycle, self.inter_issue_latency
        return self.intra_bytes_per_cycle, self.intra_issue_latency

    # -- primitives ----------------------------------------------------------
    def transfer_cycles(self, n_bytes: int, *, cross_board: bool) -> int:
        """One point-to-point message of ``n_bytes`` (latency + beats)."""
        if n_bytes < 0:
            raise ConfigurationError("negative transfer size")
        if n_bytes == 0:
            return 0
        bw, lat = self._tier(cross_board)
        return lat + ceil(n_bytes / bw)

    def allreduce_cycles(
        self, n_bytes: int, world: int, *, cross_board: bool
    ) -> int:
        """Ring all-reduce of an ``n_bytes`` tensor across ``world`` peers.

        The standard ring moves ``2 * (world - 1) / world`` of the tensor
        through each link in ``2 * (world - 1)`` latency-bearing steps —
        the tensor-parallel partial-sum exchange charged per layer.
        """
        if world <= 0:
            raise ConfigurationError("all-reduce needs at least one peer")
        if world == 1 or n_bytes == 0:
            return 0
        bw, lat = self._tier(cross_board)
        steps = 2 * (world - 1)
        chunk = ceil(n_bytes / world)
        return steps * (lat + ceil(chunk / bw))


DEFAULT_INTERCONNECT = InterconnectModel()
