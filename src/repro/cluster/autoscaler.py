"""Load-driven autoscaler: add and drain replicas as the trace breathes.

The autoscaler samples the fleet every ``interval_us`` of simulated time
and compares two pressure signals against hysteresis bands:

* **queue depth per active replica** — queued phase items averaged over
  active replicas (the admission-control pressure the router sees);
* **window utilization** — lane-busy cycles accrued since the last
  sample, over the window's lane-cycle capacity (clamped to 1: the pool
  credits a batch's full occupancy at assign time).

Scale **up** when either signal crosses its high threshold (a deep queue
means latency is already degrading even if utilization lags; saturated
lanes mean the queue is about to grow).  Scale **down** only when *both*
signals sit below their low thresholds — the hysteresis gap between the
bands, plus a cool-down after every action, is what keeps a diurnal trace
from flapping the fleet at the crossover points.  New replicas take
``provision_us`` to come up (bitstream load + weight push); draining
replicas finish their resident sessions before releasing boards — live KV
is never evicted.

When an SLO tracker is wired in (``scale_up_burn_rate``), a third signal
joins: the fleet's sustained error-budget **burn rate**.  A burn above
the trigger scales up even before queue/utilization trip (deadline
misses lead the load signals under bursty traffic), and any burn >= 1.0
vetoes scale-down — the fleet never shrinks while the budget is burning.

Every decision is recorded as a :class:`ScaleEvent` with the signals that
triggered it (including the burn rate), so a run's scaling story is an
artifact, not a log line.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.cluster.topology import Replica
from repro.errors import ConfigurationError
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["AutoscalerConfig", "ScaleEvent", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds, hysteresis and pacing of the scaling loop."""

    min_replicas: int = 1
    max_replicas: int = 4
    interval_us: float = 2_000.0
    cooldown_us: float = 8_000.0
    provision_us: float = 1_000.0
    scale_up_queue: float = 16.0      # queued items per active replica
    scale_down_queue: float = 2.0
    scale_up_utilization: float = 0.85
    scale_down_utilization: float = 0.40
    #: Sustained SLO burn rate above which the fleet scales up even
    #: before the queue/utilization thresholds trip (None = no SLO
    #: coupling).  Any burn >= 1.0 also vetoes scale-down: never shrink
    #: while the error budget is burning.
    scale_up_burn_rate: float | None = None

    def __post_init__(self) -> None:
        if self.scale_up_burn_rate is not None and self.scale_up_burn_rate <= 0:
            raise ConfigurationError("scale_up_burn_rate must be positive")
        if self.min_replicas <= 0 or self.max_replicas < self.min_replicas:
            raise ConfigurationError(
                "need 1 <= min_replicas <= max_replicas"
            )
        if self.interval_us <= 0:
            raise ConfigurationError("autoscale interval must be positive")
        if self.scale_down_queue >= self.scale_up_queue:
            raise ConfigurationError(
                "queue thresholds need hysteresis (down < up)"
            )
        if self.scale_down_utilization >= self.scale_up_utilization:
            raise ConfigurationError(
                "utilization thresholds need hysteresis (down < up)"
            )

    def interval_cycles(self, clock: ClockConfig = DEFAULT_CLOCK) -> int:
        return max(int(round(self.interval_us * 1e-6 * clock.freq_hz)), 1)

    def cooldown_cycles(self, clock: ClockConfig = DEFAULT_CLOCK) -> int:
        return int(round(self.cooldown_us * 1e-6 * clock.freq_hz))

    def provision_cycles(self, clock: ClockConfig = DEFAULT_CLOCK) -> int:
        return int(round(self.provision_us * 1e-6 * clock.freq_hz))


@dataclass(frozen=True)
class ScaleEvent:
    """One scaling decision and the evidence behind it."""

    cycle: int
    action: str  # "scale_up" | "scale_down"
    rid: int  # replica spawned (up) or put into draining (down)
    n_active: int  # active replicas *after* the decision takes hold
    queue_per_replica: float
    utilization: float
    reason: str
    burn_rate: float = 0.0  # sustained SLO burn at decision time (0 = no SLO)
    #: Flight-recorder incident open at decision time (None = calm):
    #: ties "the fleet scaled" to "while this anomaly was active".
    incident: str | None = None

    def as_dict(self) -> dict:
        return asdict(self)


class Autoscaler:
    """Threshold/hysteresis/cool-down scaling policy over the fleet."""

    def __init__(
        self,
        cfg: AutoscalerConfig = AutoscalerConfig(),
        clock: ClockConfig = DEFAULT_CLOCK,
    ) -> None:
        self.cfg = cfg
        self.interval = cfg.interval_cycles(clock)
        self.cooldown = cfg.cooldown_cycles(clock)
        self.provision = cfg.provision_cycles(clock)
        self.events: list[ScaleEvent] = []
        self._last_action_at: int | None = None
        self._busy_seen: dict[int, int] = {}
        self._last_sample_at = 0
        #: signals behind the most recent :meth:`decide` call, for the
        #: driver to quote in the recorded scale event.
        self._last_signals: tuple[float, float] = (0.0, 0.0)

    # -- signals -------------------------------------------------------------
    def signals(self, now: int, replicas: list[Replica]) -> tuple[float, float]:
        """``(queue_per_replica, window_utilization)`` over active replicas.

        Utilization is measured over the window since the previous
        sample from each replica's busy-cycle counter delta, clamped to
        1.0 (occupancy is credited at assign time, so a just-dispatched
        long batch can momentarily exceed the window).
        """
        active = [r for r in replicas if r.active]
        window = max(now - self._last_sample_at, 1)
        self._last_sample_at = now
        if not active:
            return 0.0, 0.0
        depth = sum(r.dispatcher.depth() for r in active) / len(active)
        busy_delta = 0
        capacity = 0
        for r in active:
            busy = r.dispatcher.busy_cycles
            busy_delta += busy - self._busy_seen.get(r.rid, 0)
            self._busy_seen[r.rid] = busy
            capacity += window * r.dispatcher.pool.n_units
        util = min(busy_delta / capacity, 1.0) if capacity else 0.0
        return depth, util

    def _cooling(self, now: int) -> bool:
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.cooldown
        )

    # -- decision ------------------------------------------------------------
    def decide(
        self,
        now: int,
        replicas: list[Replica],
        *,
        pending_up: int = 0,
        free_capacity: int = 0,
        burn_rate: float = 0.0,
    ) -> str | None:
        """``"up"``, ``"down"`` or ``None`` for this sampling point.

        ``pending_up`` counts replicas already provisioning (they hold
        fleet budget before they serve); ``free_capacity`` how many more
        replicas the boards can physically host.  ``burn_rate`` is the
        fleet's sustained SLO burn (0 when no SLO tracker is wired): it
        can trigger a scale-up before the load signals trip
        (``cfg.scale_up_burn_rate``), and any burn >= 1.0 vetoes a
        scale-down — the fleet never shrinks while the error budget is
        actively burning.
        """
        cfg = self.cfg
        depth, util = self.signals(now, replicas)
        self._last_signals = (depth, util)
        n_active = sum(1 for r in replicas if r.active)
        n_committed = n_active + pending_up
        if self._cooling(now):
            return None
        burn_up = (
            cfg.scale_up_burn_rate is not None
            and burn_rate > cfg.scale_up_burn_rate
        )
        if (
            (depth > cfg.scale_up_queue or util > cfg.scale_up_utilization
             or burn_up)
            and n_committed < cfg.max_replicas
            and free_capacity > 0
        ):
            self._last_action_at = now
            return "up"
        if (
            depth < cfg.scale_down_queue
            and util < cfg.scale_down_utilization
            and burn_rate < 1.0
            and n_committed > cfg.min_replicas
            and pending_up == 0
        ):
            self._last_action_at = now
            return "down"
        return None

    def record(
        self,
        now: int,
        action: str,
        rid: int,
        n_active: int,
        depth: float,
        util: float,
        reason: str,
        burn_rate: float = 0.0,
        incident: str | None = None,
    ) -> ScaleEvent:
        ev = ScaleEvent(now, action, rid, n_active, depth, util, reason,
                        burn_rate, incident)
        self.events.append(ev)
        return ev
