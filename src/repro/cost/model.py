"""The one shared batch-job cost model every serving layer derives from.

Serve's ``CostModel``, cluster's ``ShardedCostModel`` and the incident
layer's ``SpikedCostModel`` used to each re-implement the batched-job
cycle lookup.  :class:`PolicyCostModel` is that lookup, once: phase
dispatch, context bucketing, and the memoized lowering through the
compiler (:mod:`repro.perf.latency`) under an optional per-layer
precision policy and :class:`~repro.cost.modes.ModeOptions`.  The layers
above it add exactly their own concern — batching (serve), sharding and
interconnect (cluster), fault injection (incidents).

The profile is duck-typed (``vit``/``vocab``/``dim``/``depth``/
``n_heads``/``context``/``mlp_ratio`` attributes) so this module never
imports the serving stack; ``repro.serve`` imports it, not the reverse.
"""

from __future__ import annotations

from math import ceil

from repro.cost.modes import ModeOptions
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["PolicyCostModel"]


class PolicyCostModel:
    """Cycle cost of one batched forward-pass job on one unit.

    Context buckets keep the compile cache small without distorting the
    cost materially: one bucket spans less than a block row of streams.
    """

    DECODE_BUCKET = 16
    PREFILL_BUCKET = 8

    def __init__(
        self,
        profile,
        *,
        clock: ClockConfig = DEFAULT_CLOCK,
        mem: MemoryModel = DEFAULT_MEMORY,
        precision=None,
        modes: ModeOptions | None = None,
    ) -> None:
        self.profile = profile
        self.clock = clock
        self.mem = mem
        self.precision = precision
        self.modes = modes

    def bucket_context(self, phase: str, context: int) -> int:
        """The context bucket a job's compile is keyed under."""
        bucket = self.DECODE_BUCKET if phase == "decode" else self.PREFILL_BUCKET
        return min(
            max(ceil(context / bucket), 1) * bucket,
            max(self.profile.context, bucket),
        )

    def vit_cycles(self, batch: int) -> int:
        # Lazy: perf.latency imports the mode registry from this package,
        # so the memoized lookups resolve at call time, not import time.
        from repro.perf.latency import vit_batch_unit_cycles

        return vit_batch_unit_cycles(
            self.profile.vit, batch, mem=self.mem, clock=self.clock,
            policy=self.precision, modes=self.modes,
        )

    def decoder_cycles(self, phase: str, batch: int, context: int) -> int:
        from repro.perf.latency import decoder_batch_unit_cycles

        p = self.profile
        return decoder_batch_unit_cycles(
            phase, batch, self.bucket_context(phase, context),
            vocab=p.vocab, dim=p.dim, depth=p.depth, n_heads=p.n_heads,
            mlp_ratio=p.mlp_ratio, mem=self.mem, clock=self.clock,
            policy=self.precision, modes=self.modes,
        )

    def job_cycles(self, phase: str, batch: int, context: int = 0) -> int:
        """Unit-occupancy cycles of one dispatched (phase, batch, ctx) job."""
        if phase == "vit":
            return self.vit_cycles(batch)
        return self.decoder_cycles(phase, batch, context)
