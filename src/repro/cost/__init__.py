"""Unified cost-model stack: unit-mode registry + shared batch-job model.

``repro.cost`` is the single source of cycle truth.  Per-chunk cycles of
every execution personality live in the :class:`~repro.cost.modes.
UnitMode` registry; every serving-side consumer (scheduler stages,
``perf.latency`` lookups, serve/cluster/incident cost models) derives
from :class:`~repro.cost.model.PolicyCostModel` on top of it.
"""

from repro.cost.model import PolicyCostModel
from repro.cost.modes import (
    ModeOptions,
    StageCost,
    UnitMode,
    available_modes,
    get_mode,
    register_mode,
    resolve_unit_mode,
)

__all__ = [
    "PolicyCostModel",
    "UnitMode",
    "StageCost",
    "ModeOptions",
    "register_mode",
    "get_mode",
    "available_modes",
    "resolve_unit_mode",
]
