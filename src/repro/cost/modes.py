"""Trans-precision unit-mode registry: the single source of cycle truth.

Historically the per-chunk cycle formulas of the two array personalities
(Eqn-9 bfp8 streams, the 4-lane fp32 vector unit) were duplicated across
five independent cost consumers — the scheduler's stage builders,
``perf/latency.py``'s measured-stream functions, serve's ``CostModel``,
cluster's ``ShardedCostModel`` and the incident layer's
``SpikedCostModel``.  Adding an execution mode meant editing every layer
by hand, which is why ROADMAP's "trans-precision unit modes" item stayed
open.

This module collapses the mode space into one registry, mirroring the
:mod:`repro.formats.registry` template:

* :class:`UnitMode` — one execution personality of a unit: how a stream's
  compute cycles scale (Eqn-9 ``slices * rows * N_X + 15`` for array
  modes, ``L + 8`` for the vector unit), what its operands cost on the
  AXI/HBM path, what a datapath reconfiguration costs, and which
  registered :class:`~repro.formats.registry.QuantFormat` names it
  natively executes.
* the builtin modes — ``bfp8_mac`` (the paper's array), ``fp32_vector``
  (the slicing fallback / non-linear personality), and ``fp16_dot``
  (a TransDot/DHFP-PE-style dual-precision dot-product mode: fp16 MACs
  on the same DSP48E2s, two mantissa slices per product, 16-bit operand
  streams, and a 32-cycle datapath reconfiguration on entry).
* :class:`ModeOptions` — the frozen, hashable per-run selection of
  format -> mode overrides plus the shift-aware alignment-prediction
  knob, threaded from the CLIs through the memoized cost lookups.

Every cost consumer resolves per-chunk cycles through
:func:`resolve_unit_mode` + :meth:`UnitMode.matmul_cost`; the golden
tests in ``tests/cost/test_golden_cycles.py`` pin that this refactor is
bit-identical for the pre-existing bfp8/int8/fp32 paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, RegistryError
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.resources import Resources

__all__ = [
    "UnitMode",
    "StageCost",
    "ModeOptions",
    "register_mode",
    "get_mode",
    "available_modes",
    "resolve_unit_mode",
]

#: One full (lanes x L) fp32 stream: the vector personality's chunk grain.
FP32_STREAM_ELEMS = 4 * 128
#: Reference fp32 stream length used for chunk-cycle costing.
FP32_STREAM_LENGTH = 128


@dataclass(frozen=True)
class StageCost:
    """Chunked cost of one matmul under a mode (scheduler stage terms)."""

    chunks: int
    chunk_cycles: int
    ops: float

    @property
    def total_cycles(self) -> int:
        """Unit-occupancy cycles: every chunk, end to end."""
        return self.chunks * self.chunk_cycles


@dataclass(frozen=True)
class UnitMode:
    """One execution personality of a compute unit.

    ``kind="array"`` modes cost through the Eqn-9 stream schedule:
    a stream of ``N_X`` X-blocks takes ``slices * rows * N_X + 15``
    compute cycles (``slices`` mantissa slices per product — 1 for bfp8,
    2 for the dual-precision fp16 dot-product datapath) overlapped with
    its operand DMA (``operand_bytes`` scales the 8-bit stream's byte
    counts).  ``kind="vector"`` is the 4-lane fp32 personality:
    ``L + 8`` cycles per length-``L`` stream.

    ``reconfig_cycles`` is charged by the scheduler once per transition
    *into* this mode (datapath reconfiguration, TransDot-style); modes
    that share the array's resting configuration charge nothing.
    """

    name: str
    kind: str  # "array" | "vector"
    slices: int = 1
    reconfig_cycles: int = 0
    operand_bytes: int = 1
    formats: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("array", "vector"):
            raise ConfigurationError(
                f"unit mode kind must be 'array' or 'vector', got {self.kind!r}"
            )
        if self.slices < 1:
            raise ConfigurationError("slices must be >= 1")
        if self.operand_bytes < 1:
            raise ConfigurationError("operand_bytes must be >= 1")
        if self.reconfig_cycles < 0:
            raise ConfigurationError("reconfig_cycles must be >= 0")

    # -- cycle truth ---------------------------------------------------------
    def stream_cycles(
        self,
        length: int,
        *,
        mem: MemoryModel = DEFAULT_MEMORY,
        clock: ClockConfig = DEFAULT_CLOCK,
        align_narrow_frac: float | None = None,
    ) -> int:
        """End-to-end cycles of one stream of ``length`` including memory.

        For array modes ``length`` is the Eqn-9 ``N_X`` (X blocks per
        stream); for the vector mode it is the element count ``L`` of one
        lane-parallel fp32 stream.  ``align_narrow_frac`` (array modes
        only) is the fraction of PSU accumulate steps predicted narrow by
        the shift-aware alignment predictor — each narrow step saves one
        cycle of the upper-half alignment shift (see
        :func:`repro.hw.shifter.alignment_shift_cycles`).
        """
        if length <= 0:
            raise ConfigurationError("stream length must be positive")
        if self.kind == "vector":
            compute = length + 8
            rd, wr = mem.fp32_stream_bytes(length, clock.fp32_lanes)
            return mem.stream_total_cycles("fp32", compute, rd, wr)
        compute = self.slices * clock.rows * length + 15
        if align_narrow_frac:
            if not 0.0 <= align_narrow_frac <= 1.0:
                raise ConfigurationError(
                    "align_narrow_frac must be within [0, 1]"
                )
            # One PSU alignment per accumulated X block after the first;
            # a predicted-narrow alignment skips the upper shifter stage.
            compute -= min(int(align_narrow_frac * (length - 1)), length - 1)
        rd, wr = mem.bfp_stream_bytes(length, clock.rows, clock.cols)
        return mem.stream_total_cycles(
            "bfp8", compute, rd * self.operand_bytes, wr * self.operand_bytes
        )

    def matmul_cost(
        self,
        m: int,
        k: int,
        n: int,
        *,
        copies: int = 1,
        mem: MemoryModel = DEFAULT_MEMORY,
        clock: ClockConfig = DEFAULT_CLOCK,
        align_narrow_frac: float | None = None,
    ) -> StageCost:
        """Chunked cost of a (possibly head-replicated) ``m x k x n`` matmul.

        Array modes lower through the block-streaming plan (Eqn-9
        streams); the vector mode executes MAC by MAC on the fp32 lanes —
        the cliff the array personalities exist to avoid.
        """
        if self.kind == "vector":
            fpu_ops = 2 * m * k * n * copies
            return StageCost(
                chunks=max(1, ceil(fpu_ops / FP32_STREAM_ELEMS)),
                chunk_cycles=self.stream_cycles(
                    FP32_STREAM_LENGTH, mem=mem, clock=clock
                ),
                ops=float(fpu_ops),
            )
        from repro.runtime.compiler import plan_matmul

        plan = plan_matmul(m, k, n)
        return StageCost(
            chunks=plan.streams * copies,
            chunk_cycles=self.stream_cycles(
                plan.stream_len, mem=mem, clock=clock,
                align_narrow_frac=align_narrow_frac,
            ),
            ops=float(plan.ops * copies),
        )

    # -- resource truth ------------------------------------------------------
    def resource_delta(self) -> "Resources | None":
        """Incremental FPGA resources of adding this mode to the multimode
        array (``None`` when the mode rides the baseline configuration).

        Resolution is by convention: a mode named ``<name>`` looks for
        ``repro.perf.resources.<name>_extension()``.
        """
        from repro.perf import resources

        fn = getattr(resources, f"{self.name}_extension", None)
        return fn() if fn is not None else None


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, UnitMode] = {}


def register_mode(mode: UnitMode, *, replace: bool = False) -> UnitMode:
    """Register a mode under its ``name``; duplicate names raise."""
    if not replace and mode.name in _REGISTRY:
        raise RegistryError(
            f"unit mode {mode.name!r} is already registered; pass "
            "replace=True to override deliberately"
        )
    _REGISTRY[mode.name] = mode
    return mode


def get_mode(name: str) -> UnitMode:
    """Look up a registered unit mode by name."""
    mode = _REGISTRY.get(name)
    if mode is None:
        raise RegistryError(
            f"unknown unit mode {name!r}; available: {sorted(_REGISTRY)}"
        )
    return mode


def available_modes() -> list[str]:
    """Names currently registered (sorted)."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    register_mode(UnitMode(
        name="bfp8_mac",
        kind="array",
        slices=1,
        formats=("bfp8", "int8", "ibert", "bf16", "fp8-e4m3", "fp8-e5m2"),
        description="The paper's 8x8 bfp8 MAC array (Eqn-9 streams); "
                    "also executes int8 and single-slice minifloats.",
    ))
    register_mode(UnitMode(
        name="fp32_vector",
        kind="vector",
        formats=("fp32",),
        description="4-lane fp32 vector personality: non-linear programs "
                    "and the MAC-by-MAC fallback for unmapped formats.",
    ))
    register_mode(UnitMode(
        name="fp16_dot",
        kind="array",
        slices=2,
        reconfig_cycles=32,
        operand_bytes=2,
        formats=("fp16",),
        description="TransDot-style dual-precision dot-product mode: fp16 "
                    "MACs on the same DSP48E2s, two mantissa slices per "
                    "product, 16-bit operand streams.",
    ))


_register_builtins()


# ---------------------------------------------------------------------------
# Per-run mode selection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModeOptions:
    """Frozen per-run mode selection (hashable: composes with the memoized
    cost lookups in :mod:`repro.perf.latency`).

    ``overrides`` maps format names to mode names — e.g. ``(("fp16",
    "fp16_dot"),)`` routes fp16 matmuls onto the dual-precision array
    instead of the vector cliff.  ``align_narrow_frac`` enables
    shift-aware alignment-width prediction on array streams: the fraction
    of PSU accumulate steps charged at the narrow (single-stage) shift
    rate, typically measured by the :mod:`repro.arith.bfp_matmul`
    alignment probe.
    """

    overrides: tuple[tuple[str, str], ...] = ()
    align_narrow_frac: float | None = None

    def __post_init__(self) -> None:
        if self.align_narrow_frac is not None and not (
            0.0 <= self.align_narrow_frac <= 1.0
        ):
            raise ConfigurationError("align_narrow_frac must be within [0, 1]")
        seen = set()
        for pair in self.overrides:
            fmt_name, mode_name = pair
            if fmt_name in seen:
                raise ConfigurationError(
                    f"duplicate mode override for format {fmt_name!r}"
                )
            seen.add(fmt_name)
            get_mode(mode_name)  # raises RegistryError on unknown modes

    def mode_for(self, fmt_name: str) -> str | None:
        for name, mode_name in self.overrides:
            if name == fmt_name:
                return mode_name
        return None

    # -- CLI / snapshot plumbing ---------------------------------------------
    @classmethod
    def parse(
        cls,
        spec: str | None,
        *,
        align_narrow_frac: float | None = None,
    ) -> "ModeOptions | None":
        """Parse a CLI ``--array-mode`` spec into options (or ``None``).

        ``spec`` is a comma-separated list of ``format=mode`` pairs; the
        bare shorthand ``fp16`` expands to ``fp16=fp16_dot``.  An empty /
        ``none`` spec with no alignment knob returns ``None`` (the
        historical cost model, byte for byte).
        """
        overrides: list[tuple[str, str]] = []
        if spec and spec.lower() != "none":
            from repro.formats.registry import get_format

            for entry in spec.split(","):
                entry = entry.strip()
                if not entry:
                    continue
                if "=" in entry:
                    fmt_name, mode_name = (s.strip() for s in entry.split("=", 1))
                elif entry == "fp16":
                    fmt_name, mode_name = "fp16", "fp16_dot"
                else:
                    raise ConfigurationError(
                        f"cannot parse --array-mode entry {entry!r}: expected "
                        "'format=mode' (or the shorthand 'fp16'); available "
                        f"modes: {available_modes()}"
                    )
                get_format(fmt_name)  # raises RegistryError on unknown formats
                overrides.append((fmt_name, mode_name))
        if not overrides and align_narrow_frac is None:
            return None
        return cls(overrides=tuple(overrides),
                   align_narrow_frac=align_narrow_frac)

    def as_dict(self) -> dict:
        return {
            "overrides": [list(pair) for pair in self.overrides],
            "align_narrow_frac": self.align_narrow_frac,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ModeOptions":
        return cls(
            overrides=tuple(
                (str(f), str(m)) for f, m in doc.get("overrides", ())
            ),
            align_narrow_frac=doc.get("align_narrow_frac"),
        )


def resolve_unit_mode(
    fmt_name: str, modes: ModeOptions | None = None
) -> UnitMode:
    """The unit mode a format's matmuls execute under.

    Precedence: an explicit :class:`ModeOptions` override, else the
    format's registered ``array_mode``, else the fp32 vector fallback —
    exactly the historical ``uses_array`` routing when no override is
    given.
    """
    if modes is not None:
        override = modes.mode_for(fmt_name)
        if override is not None:
            return get_mode(override)
    from repro.formats.registry import get_format

    array_mode = get_format(fmt_name).array_mode
    return get_mode(array_mode) if array_mode is not None else get_mode(
        "fp32_vector"
    )
