"""Command-line entry point: regenerate the full reproduction report.

Usage::

    python -m repro                  # all fast tables/figures to stdout
    python -m repro --full           # include training-based studies
    python -m repro --out results/   # also write one file per artifact
"""

from __future__ import annotations

import argparse
from pathlib import Path


def main() -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="include the training-based accuracy studies "
                        "(minutes)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write per-artifact text files")
    args = parser.parse_args()

    from repro.eval import (
        accuracy,
        bitwidth,
        fig6,
        fig7,
        halfprec,
        sensitivity,
        table1,
        table2,
        table3,
        table4,
    )

    artifacts: list[tuple[str, str]] = [
        ("table1_shared_operations", table1.run()),
        ("table2_hardware_utilization", table2.run()),
        ("fig6_design_comparison", fig6.run()),
        ("fig7_throughput", fig7.run()),
        ("table3_related_work", table3.run()),
        ("table4_deit_split", table4.run()),
        ("bitwidth_sqnr", bitwidth.run(include_model_sweep=args.full)),
        ("halfprec_vector_unit", halfprec.run()),
    ]
    if args.full:
        artifacts.append(("accuracy_regimes", accuracy.run()))
        artifacts.append(("component_sensitivity", sensitivity.run()))

    for name, content in artifacts:
        print(content)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(content + "\n")


if __name__ == "__main__":
    main()
