"""Command-line entry point: reproduction report + serving simulation.

Usage::

    python -m repro                  # all fast tables/figures to stdout
    python -m repro --full           # include training-based studies
    python -m repro --out results/   # also write one file per artifact
    python -m repro serve-sim --requests 2000 --seed 0
                                     # online serving simulation
    python -m repro profile --model deit-tiny --trace-out deit.perfetto.json
                                     # compiled-schedule cycle profile
    python -m repro numerics-report --check results/NUMERICS_golden_tinylm_bfp8.json
                                     # quantization health vs golden baseline
    python -m repro slo-report --trace run.perfetto.json --summary run.json
                                     # SLO story rebuilt from the trace alone
    python -m repro bench-gate       # history append + headline-metric gate
    python -m repro serve-sim --record --slo --requests 2000 --seed 0
                                     # flight recorder: anomaly-triggered
                                     # incident bundles under results/incidents
    python -m repro incident-replay results/incidents/serve-0/inc-000.json
                                     # deterministic re-simulation of a bundle
    python -m repro incident-report --dir results/incidents
                                     # summarize captured incident bundles
"""

from __future__ import annotations

import argparse
from pathlib import Path


def _run_report(args) -> int:
    from repro.eval import (
        accuracy,
        bitwidth,
        fig6,
        fig7,
        halfprec,
        sensitivity,
        table1,
        table2,
        table3,
        table4,
    )

    artifacts: list[tuple[str, str]] = [
        ("table1_shared_operations", table1.run()),
        ("table2_hardware_utilization", table2.run()),
        ("fig6_design_comparison", fig6.run()),
        ("fig7_throughput", fig7.run()),
        ("table3_related_work", table3.run()),
        ("table4_deit_split", table4.run()),
        ("bitwidth_sqnr", bitwidth.run(include_model_sweep=args.full)),
        ("halfprec_vector_unit", halfprec.run()),
    ]
    if args.full:
        artifacts.append(("accuracy_regimes", accuracy.run()))
        artifacts.append(("component_sensitivity", sensitivity.run()))

    for name, content in artifacts:
        print(content)
        print()
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{name}.txt").write_text(content + "\n")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="include the training-based accuracy studies "
                        "(minutes)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to write per-artifact text files")
    subparsers = parser.add_subparsers(dest="command")

    from repro.obs.bench_gate import add_bench_gate_parser, run_bench_gate
    from repro.obs.incident_cli import (
        add_incident_replay_parser,
        add_incident_report_parser,
        run_incident_replay,
        run_incident_report,
    )
    from repro.obs.cli import (
        add_align_predict_parser,
        add_numerics_report_parser,
        add_profile_parser,
        add_slo_report_parser,
        run_align_predict,
        run_numerics_report,
        run_profile,
        run_slo_report,
    )
    from repro.serve.cli import add_serve_sim_parser, run_serve_sim

    add_serve_sim_parser(subparsers)
    add_profile_parser(subparsers)
    add_align_predict_parser(subparsers)
    add_numerics_report_parser(subparsers)
    add_slo_report_parser(subparsers)
    add_bench_gate_parser(subparsers)
    add_incident_replay_parser(subparsers)
    add_incident_report_parser(subparsers)

    args = parser.parse_args()
    if args.command == "serve-sim":
        raise SystemExit(run_serve_sim(args))
    if args.command == "profile":
        raise SystemExit(run_profile(args))
    if args.command == "align-predict":
        raise SystemExit(run_align_predict(args))
    if args.command == "numerics-report":
        raise SystemExit(run_numerics_report(args))
    if args.command == "slo-report":
        raise SystemExit(run_slo_report(args))
    if args.command == "bench-gate":
        raise SystemExit(run_bench_gate(args))
    if args.command == "incident-replay":
        raise SystemExit(run_incident_replay(args))
    if args.command == "incident-report":
        raise SystemExit(run_incident_report(args))
    raise SystemExit(_run_report(args))


if __name__ == "__main__":
    main()
