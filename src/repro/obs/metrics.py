"""Process-wide metrics registry: named counters, gauges and histograms.

The simulator layers (``hw.unit``, ``runtime.executor``,
``runtime.scheduler``, ``serve.dispatcher``) publish into one shared
:class:`MetricsRegistry` — DSP-mode occupancy, PSU fill, host-op escapes,
batch fill, queue depth — so a single ``registry.as_dict()`` snapshot
explains where cycles and operations went across the whole stack.

Metric names are dot-scoped (``layer.subsystem.metric``, e.g.
``serve.dispatches.decode``).  Everything is deterministic: histograms
summarize with exact linear-interpolation percentiles over the recorded
samples, and exports sort keys.

A registry built with ``enabled=False`` hands out a shared no-op
instrument, so instrumented code needs no branching to support the
disabled path; :func:`get_registry`/:func:`set_registry` manage the
process-wide default instance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "percentiles",
    "weighted_percentiles",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "NULL_REGISTRY",
]


def weighted_percentiles(
    samples,
    weights=None,
    qs: tuple[float, ...] = (50, 95, 99),
) -> list[float]:
    """One definition of "p95" for the whole stack.

    * ``weights is None`` — exact linear-interpolation percentiles over
      the samples (``np.percentile`` semantics).
    * ``weights`` given — *step-function selection*: sample ``i`` counts
      for ``weights[i]`` of the distribution's mass (e.g. the cycles a
      queue depth was held), and the q-th percentile is the smallest
      sample whose cumulative mass reaches ``q`` — no interpolation,
      because a time-weighted depth that was never observed is not a
      meaningful answer.

    Edge cases are explicit: an empty series returns ``0.0`` for every
    requested percentile; a single sample (or all mass on one sample)
    returns that sample; non-positive total weight falls back to the
    unweighted path.
    """
    n = len(samples)
    if not n:
        return [0.0] * len(qs)
    arr = np.asarray(samples, dtype=np.float64)
    if weights is None:
        return [float(np.percentile(arr, q)) for q in qs]
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != arr.shape:
        raise ValueError(
            f"weights shape {w.shape} does not match samples {arr.shape}"
        )
    total = w.sum()
    if total <= 0.0:
        return [float(np.percentile(arr, q)) for q in qs]
    order = np.argsort(arr, kind="stable")
    ordered = arr[order]
    cum = np.cumsum(w[order]) / total
    hi = n - 1
    return [
        float(ordered[min(int(np.searchsorted(cum, q / 100.0)), hi)])
        for q in qs
    ]


def percentiles(
    samples: list, qs: tuple[float, ...] = (50, 95, 99)
) -> list[float]:
    """Percentiles with linear interpolation; zeros when empty."""
    return weighted_percentiles(samples, None, qs)


@dataclass
class Counter:
    """Monotonic count (events, operations, cycles)."""

    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def snapshot(self):
        return int(self.value) if float(self.value).is_integer() else self.value


@dataclass
class Gauge:
    """Last-set value, with the observed extremes kept alongside."""

    value: float = 0.0
    max: float = float("-inf")
    min: float = float("inf")
    sets: int = 0

    def set(self, v: float) -> None:
        self.value = v
        self.max = max(self.max, v)
        self.min = min(self.min, v)
        self.sets += 1

    def snapshot(self) -> dict:
        if not self.sets:
            return {"value": 0.0, "max": 0.0, "min": 0.0}
        return {"value": self.value, "max": self.max, "min": self.min}


@dataclass
class Histogram:
    """Sample accumulator summarized as count/mean/extremes/percentiles."""

    samples: list = field(default_factory=list)

    def observe(self, v: float) -> None:
        self.samples.append(v)

    def snapshot(self) -> dict:
        if not self.samples:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = percentiles(self.samples)
        return {
            "count": len(self.samples),
            "mean": float(np.mean(self.samples)),
            "min": float(np.min(self.samples)),
            "max": float(np.max(self.samples)),
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }


def _prom_name(name: str) -> str:
    """Dot-scoped registry name -> Prometheus-legal metric name."""
    out = "".join(c if c.isalnum() or c in "_:" else "_" for c in name)
    return "_" + out if out and out[0].isdigit() else out


def _prom_value(v: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    return str(int(v)) if float(v).is_integer() else repr(float(v))


class _NullInstrument:
    """Shared sink for disabled registries: every method is a no-op."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_INSTRUMENT  # type: ignore[return-value]
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- snapshot ------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "counters": {
                k: self._counters[k].snapshot() for k in sorted(self._counters)
            },
            "gauges": {k: self._gauges[k].snapshot() for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot() for k in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def to_prom_text(self, *, prefix: str = "repro_") -> str:
        """Prometheus text exposition format (version 0.0.4).

        Dot-scoped metric names become underscore-separated with the given
        prefix; counters get the conventional ``_total`` suffix, gauges
        export value/max/min, histograms export as summaries with
        p50/p95/p99 quantile labels plus ``_sum``/``_count``.
        """
        lines: list[str] = []
        for name in sorted(self._counters):
            n = prefix + _prom_name(name) + "_total"
            lines.append(f"# TYPE {n} counter")
            lines.append(f"{n} {_prom_value(self._counters[name].value)}")
        for name in sorted(self._gauges):
            g = self._gauges[name]
            snap = g.snapshot()
            n = prefix + _prom_name(name)
            lines.append(f"# TYPE {n} gauge")
            lines.append(f"{n} {_prom_value(snap['value'])}")
            for suffix in ("max", "min"):
                lines.append(f"# TYPE {n}_{suffix} gauge")
                lines.append(f"{n}_{suffix} {_prom_value(snap[suffix])}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            n = prefix + _prom_name(name)
            lines.append(f"# TYPE {n} summary")
            for q, v in zip(
                ("0.5", "0.95", "0.99"), percentiles(h.samples)
            ):
                lines.append(f'{n}{{quantile="{q}"}} {_prom_value(v)}')
            lines.append(f"{n}_sum {_prom_value(float(np.sum(h.samples)))}")
            lines.append(f"{n}_count {len(h.samples)}")
        if not lines:
            return ""
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the simulator layers publish into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
