"""Golden-baseline numerics reports: build, validate, diff, render.

The report is the serialized output of a :class:`~repro.obs.numerics.
NumericsMonitor` run plus enough run configuration to make the comparison
meaningful (model, backend, seed, decode length).  A *golden* report is
committed to ``results/`` and CI re-runs the same configuration and diffs
against it (``repro numerics-report --check``): the diff fails on

* per-layer SQNR degradation beyond a dB tolerance,
* saturation / underflow rates rising above the golden rate plus an
  absolute margin (the clip-rate ceiling),
* precision-label changes (a bfp8 layer silently becoming bfp7 *is* the
  regression the gate exists to catch),
* entries appearing or disappearing, and
* end-to-end logits SQNR (vs the fp32 reference forward) degrading.

Improvements never fail the gate — the golden encodes a floor, not an
exact fingerprint, so refactors that are bit-identical or better pass.

Everything here is dependency-free on purpose: the schema validator is a
small declarative walker, not an external jsonschema engine.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "DEFAULT_SQNR_TOL_DB",
    "DEFAULT_CLIP_MARGIN",
    "build_report",
    "validate_report",
    "compare_reports",
    "render_markdown",
    "load_report",
]

REPORT_SCHEMA_VERSION = 1

# A quantized run's SQNR is deterministic given (model, seed, backend);
# the tolerance absorbs deliberate*small* numerical refactors (e.g. a
# reassociated accumulation), not precision changes: dropping one
# mantissa bit costs ~6 dB, far outside the default.
DEFAULT_SQNR_TOL_DB = 1.0
# Absolute ceiling margin on saturation/underflow rates (fraction of
# elements): golden rate + margin is the highest acceptable rate.
DEFAULT_CLIP_MARGIN = 0.005


def build_report(
    monitor,
    *,
    model: str,
    backend: str,
    seed: int,
    gen_tokens: int,
    logits_sqnr_db: float | None = None,
) -> dict:
    """Assemble a schema-versioned report from a finished monitor run."""
    return {
        "schema": "repro.numerics-report",
        "version": REPORT_SCHEMA_VERSION,
        "config": {
            "model": model,
            "backend": backend,
            "seed": int(seed),
            "gen_tokens": int(gen_tokens),
        },
        "logits_sqnr_db": logits_sqnr_db,
        "totals": monitor.totals(),
        "entries": monitor.as_dict()["entries"],
    }


# -- schema --------------------------------------------------------------
_ENTRY_FIELDS = {
    "layer": str,
    "precision": str,
    "role": str,
    "code_bits": int,
    "tensors": int,
    "elements": int,
    "saturation_rate": float,
    "underflow_rate": float,
    "mantissa_utilization": float,
    "sqnr_db": (float, type(None)),
    "exponent": dict,
    "nonzero_block_fraction": float,
}
_EXP_FIELDS = {
    "min": int,
    "max": int,
    "hist": dict,
    "spread_mean": float,
    "spread_max": int,
    "zero_blocks": int,
    "blocks": int,
}
_RATE_FIELDS = ("saturation_rate", "underflow_rate")


def _expect(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigurationError(f"invalid numerics report: {msg}")


def _check_fields(obj: dict, fields: dict, where: str) -> None:
    for name, typ in fields.items():
        _expect(name in obj, f"{where} missing field {name!r}")
        val = obj[name]
        ok_types = typ if isinstance(typ, tuple) else (typ,)
        # bool is an int subclass; reject it where an int is expected.
        _expect(
            isinstance(val, ok_types) and not (
                isinstance(val, bool) and bool not in ok_types
            ),
            f"{where}.{name} has type {type(val).__name__}",
        )


def validate_report(doc: dict) -> dict:
    """Validate a report document against the schema; returns it.

    Raises :class:`~repro.errors.ConfigurationError` naming the first
    violation — CI surfaces the message directly.
    """
    _expect(isinstance(doc, dict), "document is not an object")
    _expect(doc.get("schema") == "repro.numerics-report",
            f"unknown schema {doc.get('schema')!r}")
    _expect(doc.get("version") == REPORT_SCHEMA_VERSION,
            f"unsupported version {doc.get('version')!r}")
    cfg = doc.get("config")
    _expect(isinstance(cfg, dict), "config is not an object")
    _check_fields(
        cfg,
        {"model": str, "backend": str, "seed": int, "gen_tokens": int},
        "config",
    )
    _expect(isinstance(doc.get("logits_sqnr_db"), (float, type(None))),
            "logits_sqnr_db is neither a number nor null")
    _expect(isinstance(doc.get("totals"), dict), "totals is not an object")
    entries = doc.get("entries")
    _expect(isinstance(entries, list) and entries, "entries missing or empty")
    seen: set[tuple[str, str]] = set()
    for i, e in enumerate(entries):
        where = f"entries[{i}]"
        _expect(isinstance(e, dict), f"{where} is not an object")
        _check_fields(e, _ENTRY_FIELDS, where)
        _check_fields(e["exponent"], _EXP_FIELDS, f"{where}.exponent")
        for rate in _RATE_FIELDS:
            _expect(0.0 <= e[rate] <= 1.0, f"{where}.{rate} outside [0, 1]")
        key = (e["layer"], e["role"])
        _expect(key not in seen, f"{where} duplicates key {key}")
        seen.add(key)
    return doc


def load_report(path: str | Path) -> dict:
    """Read and validate a report file."""
    return validate_report(json.loads(Path(path).read_text()))


# -- diff ----------------------------------------------------------------
def _keyed(doc: dict) -> dict[tuple[str, str], dict]:
    return {(e["layer"], e["role"]): e for e in doc["entries"]}


def compare_reports(
    current: dict,
    baseline: dict,
    *,
    sqnr_tol_db: float = DEFAULT_SQNR_TOL_DB,
    clip_margin: float = DEFAULT_CLIP_MARGIN,
) -> list[str]:
    """Drift messages of ``current`` against the golden ``baseline``.

    Empty list means the gate passes.  Entries are keyed on
    ``(layer, role)`` — *not* precision, so a precision change on an
    existing layer reports as a label drift rather than as one entry
    vanishing and an unrelated one appearing.
    """
    drift: list[str] = []
    cur_cfg, base_cfg = current["config"], baseline["config"]
    for k in ("model", "backend"):
        if cur_cfg[k] != base_cfg[k]:
            drift.append(
                f"config.{k}: {base_cfg[k]!r} -> {cur_cfg[k]!r} "
                "(report configurations are not comparable)"
            )
    cur, base = _keyed(current), _keyed(baseline)
    for key in sorted(base.keys() - cur.keys()):
        drift.append(f"{key[0]}/{key[1]}: entry disappeared")
    for key in sorted(cur.keys() - base.keys()):
        drift.append(f"{key[0]}/{key[1]}: new entry not in golden")
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        name = f"{key[0]}/{key[1]}"
        if c["precision"] != b["precision"]:
            drift.append(
                f"{name}: precision {b['precision']} -> {c['precision']}"
            )
        if b["sqnr_db"] is not None and c["sqnr_db"] is not None:
            loss = b["sqnr_db"] - c["sqnr_db"]
            if loss > sqnr_tol_db:
                drift.append(
                    f"{name}: SQNR degraded {b['sqnr_db']:.2f} -> "
                    f"{c['sqnr_db']:.2f} dB ({loss:.2f} dB > "
                    f"tolerance {sqnr_tol_db:.2f})"
                )
        elif b["sqnr_db"] is not None and c["sqnr_db"] is None:
            drift.append(f"{name}: SQNR became unmeasurable")
        for rate in _RATE_FIELDS:
            ceiling = b[rate] + clip_margin
            if c[rate] > ceiling:
                drift.append(
                    f"{name}: {rate} {c[rate]:.4f} exceeds ceiling "
                    f"{ceiling:.4f} (golden {b[rate]:.4f} + margin "
                    f"{clip_margin:.4f})"
                )
    b_sqnr, c_sqnr = baseline["logits_sqnr_db"], current["logits_sqnr_db"]
    if b_sqnr is not None and c_sqnr is not None:
        if b_sqnr - c_sqnr > sqnr_tol_db:
            drift.append(
                f"logits: end-to-end SQNR degraded {b_sqnr:.2f} -> "
                f"{c_sqnr:.2f} dB (> tolerance {sqnr_tol_db:.2f})"
            )
    elif b_sqnr is not None and c_sqnr is None:
        drift.append("logits: end-to-end SQNR became unmeasurable")
    return drift


# -- rendering -----------------------------------------------------------
def _fmt(v, nd: int = 2) -> str:
    return "-" if v is None else f"{v:.{nd}f}"


def render_markdown(report: dict, *, drift: list[str] | None = None) -> str:
    """Markdown summary: per-layer table, totals, and the drift verdict."""
    cfg = report["config"]
    lines = [
        "# Numerics report",
        "",
        f"model `{cfg['model']}` · backend `{cfg['backend']}` · "
        f"seed {cfg['seed']} · {cfg['gen_tokens']} decode tokens · "
        f"logits SQNR vs fp32: **{_fmt(report['logits_sqnr_db'])} dB**",
        "",
        "| layer | role | precision | SQNR (dB) | saturation | underflow "
        "| mantissa util | exp spread max |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for e in report["entries"]:
        lines.append(
            f"| {e['layer']} | {e['role']} | {e['precision']} "
            f"| {_fmt(e['sqnr_db'])} | {e['saturation_rate']:.4f} "
            f"| {e['underflow_rate']:.4f} "
            f"| {e['mantissa_utilization']:.3f} "
            f"| {e['exponent']['spread_max']} |"
        )
    lines.append("")
    for precision, g in sorted(report["totals"].items()):
        lines.append(
            f"**{precision} totals** — {g['tensors']} tensors, "
            f"{g['elements']} elements, saturation {g['saturation_rate']:.4f}, "
            f"underflow {g['underflow_rate']:.4f}, "
            f"SQNR {_fmt(g['sqnr_db'])} dB"
        )
    if drift is not None:
        lines.append("")
        if drift:
            lines.append(f"## DRIFT ({len(drift)})")
            lines.extend(f"- {d}" for d in drift)
        else:
            lines.append("## No drift against golden baseline")
    return "\n".join(lines) + "\n"
