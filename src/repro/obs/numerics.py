"""Value-domain numerics observability: quantization health telemetry.

PR 2's ``obs`` layer answers *where the cycles go*; this module answers
*where the bits go*.  The paper's central claim — bfp8 preserves
Transformer accuracy where per-tensor int8 collapses, because an outlier
only coarsens its own 8x8 block — hinges on value-domain quantities the
cycle profiler never sees: how often mantissas saturate at the clip
bound, how often small values flush to zero under an outlier's shared
exponent, how widely block exponents spread inside one tensor, and how
much of the mantissa's dynamic range is actually used.

A :class:`NumericsMonitor` accumulates exactly those quantities, keyed by
``(layer, precision, tensor-role)``:

* ``layer`` — the model scope (``block0.attn``, ``head``, ...) pushed via
  :meth:`scope`, shared with the cycle profiler through
  :meth:`repro.models.backend.ComputeBackend.scope`;
* ``precision`` — the quantization grid (``bfp8``, ``int8``, ``fp16``...);
* ``role`` — ``weight`` (prepared once, Y-stationary), ``activation``
  (streamed per call), or ``kv`` (KV-cache-derived attention operands).

Per key it records: saturation counts (mantissa at the clip bound),
underflow-to-zero counts (nonzero source quantized to exactly zero),
a shared-exponent histogram and per-tensor block-exponent spread,
effective mantissa-bit utilization, and *streaming* SQNR — running sums
of reference and error energy, so the ratio is exact over the whole run
without storing tensors.

Everything is deterministic (pure function of model + seed) and publishes
into the process :class:`~repro.obs.metrics.MetricsRegistry` under
``numerics.*``; :meth:`annotate_tracer` additionally attaches each key's
summary as span arguments on a ``numerics`` track of a cycle-domain
:class:`~repro.obs.tracer.Tracer`.

The disabled path mirrors ``NULL_TRACER``/``NULL_REGISTRY``:
:data:`NULL_MONITOR` — a true null-object subclass whose observation
methods are bare returns and whose ``scope`` is a shared reusable no-op
context manager — is installed process-wide by default.  Instrumentation
sites fetch it through the module-level :func:`get_monitor` (no per-call
imports) and check the single ``enabled`` attribute before doing any
work: quantizing kernels pay one function call and one attribute read,
nothing else (see ``results/BENCH_numerics_overhead.json``).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ROLES",
    "QuantStats",
    "NumericsMonitor",
    "NULL_MONITOR",
    "get_monitor",
    "set_monitor",
]

ROLES = ("weight", "activation", "kv", "tensor")


@dataclass
class QuantStats:
    """Accumulated quantization health of one (layer, precision, role) key.

    ``code_bits`` is the magnitude width of the grid (``man_bits - 1`` for
    block-fp, ``bits - 1`` for integer, the stored+implicit mantissa for
    half floats); utilization is measured against it.  ``sum_ref_sq`` /
    ``sum_err_sq`` are the streaming-SQNR accumulators.
    """

    code_bits: int
    tensors: int = 0
    elements: int = 0
    saturated: int = 0
    underflow: int = 0
    nonzero: int = 0
    bits_used: float = 0.0
    blocks: int = 0
    zero_blocks: int = 0
    sum_ref_sq: float = 0.0
    sum_err_sq: float = 0.0
    exp_hist: dict[int, int] = field(default_factory=dict)
    exp_spread_sum: float = 0.0
    exp_spread_max: int = 0

    # -- derived -------------------------------------------------------------
    def sqnr_db(self) -> float | None:
        """Streaming SQNR in dB; ``None`` when undefined (no signal or no
        error recorded — an exact encoding has no noise to measure)."""
        if self.sum_ref_sq <= 0.0 or self.sum_err_sq <= 0.0:
            return None
        return float(10.0 * np.log10(self.sum_ref_sq / self.sum_err_sq))

    def snapshot(self) -> dict:
        n = self.elements or 1
        nz = self.nonzero or 1
        nonzero_blocks = self.blocks - self.zero_blocks
        exp_keys = sorted(self.exp_hist)
        return {
            "code_bits": self.code_bits,
            "tensors": self.tensors,
            "elements": self.elements,
            "saturation_rate": self.saturated / n,
            "underflow_rate": self.underflow / n,
            "mantissa_utilization": self.bits_used / (nz * self.code_bits)
            if self.code_bits
            else 0.0,
            "sqnr_db": self.sqnr_db(),
            "exponent": {
                "min": exp_keys[0] if exp_keys else 0,
                "max": exp_keys[-1] if exp_keys else 0,
                "hist": {str(k): self.exp_hist[k] for k in exp_keys},
                "spread_mean": (
                    self.exp_spread_sum / self.tensors if self.tensors else 0.0
                ),
                "spread_max": self.exp_spread_max,
                "zero_blocks": self.zero_blocks,
                "blocks": self.blocks,
            },
            "nonzero_block_fraction": (
                nonzero_blocks / self.blocks if self.blocks else 0.0
            ),
        }


def _used_bits(man_abs: np.ndarray) -> float:
    """Sum over nonzero codes of the magnitude bits each occupies."""
    nz = man_abs[man_abs > 0]
    if not nz.size:
        return 0.0
    _, e = np.frexp(nz.astype(np.float64))
    return float(e.sum())


def _assemble_tiles(man: np.ndarray, exp: np.ndarray) -> np.ndarray:
    """Dequantize ``(..., Rb, Cb, r, c)`` tiles to ``(..., Rb*r, Cb*c)``."""
    vals = np.asarray(man, dtype=np.float64) * np.exp2(
        np.asarray(exp, dtype=np.float64)[..., None, None]
    )
    rb, cb, r, c = vals.shape[-4:]
    return vals.swapaxes(-3, -2).reshape(*vals.shape[:-4], rb * r, cb * c)


class NumericsMonitor:
    """Accumulates value-domain quantization statistics for a run.

    Instrumentation sites call :meth:`observe_bfp` /
    :meth:`observe_bfp_tiles` / :meth:`observe_int` /
    :meth:`observe_int_sliced` / :meth:`observe_half` with the source
    tensor and its quantized encoding; the monitor derives every statistic
    itself, so call sites stay one line.  All methods no-op when
    ``enabled`` is ``False`` — :data:`NULL_MONITOR` is the shared disabled
    instance, checked by a single attribute read in the hot paths.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats: dict[tuple[str, str, str], QuantStats] = {}
        self.alignment: dict[tuple[str, str], dict] = {}
        self._stack: list[str] = []

    # -- scoping -------------------------------------------------------------
    @contextmanager
    def scope(self, name: str):
        """Layer scope, shared with the cycle profiler via the backend."""
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()

    @property
    def current_layer(self) -> str:
        return ".".join(self._stack) if self._stack else "<root>"

    def _entry(self, precision: str, role: str, code_bits: int) -> QuantStats:
        key = (self.current_layer, precision, role)
        st = self.stats.get(key)
        if st is None:
            st = self.stats[key] = QuantStats(code_bits=code_bits)
        return st

    # -- core accumulation ---------------------------------------------------
    def _accumulate(
        self,
        st: QuantStats,
        *,
        source: np.ndarray,
        decoded: np.ndarray,
        codes_abs: np.ndarray,
        code_max: int,
        n_tensors: int,
    ) -> None:
        src = np.asarray(source, dtype=np.float64)
        err = src - decoded
        st.tensors += n_tensors
        st.elements += int(src.size)
        st.saturated += int((codes_abs >= code_max).sum())
        st.underflow += int(((codes_abs == 0) & (src != 0.0)).sum())
        st.nonzero += int((codes_abs > 0).sum())
        st.bits_used += _used_bits(codes_abs)
        st.sum_ref_sq += float((src * src).sum())
        st.sum_err_sq += float((err * err).sum())

    def _exponent_stats(
        self, st: QuantStats, man: np.ndarray, exp: np.ndarray
    ) -> None:
        """Histogram + per-tensor spread over *nonzero* blocks.

        An all-zero block carries the artificial minimum exponent (it has
        nothing to scale), so it is counted separately instead of
        polluting the spread — the spread measures how far an outlier
        block's exponent sits from its tensor's typical block.
        """
        man = np.asarray(man)
        exp = np.asarray(exp, dtype=np.int64)
        nz = man.astype(bool).any(axis=(-2, -1))  # (..., Rb, Cb)
        st.blocks += int(exp.size)
        st.zero_blocks += int(exp.size - nz.sum())
        live = exp[nz]
        vals, counts = np.unique(live, return_counts=True)
        for v, c in zip(vals.tolist(), counts.tolist()):
            st.exp_hist[int(v)] = st.exp_hist.get(int(v), 0) + int(c)
        # Per-tensor spread: reduce the trailing block-grid axes.
        grid_axes = (-2, -1)
        hi = np.where(nz, exp, np.int64(-(10**6))).max(axis=grid_axes)
        lo = np.where(nz, exp, np.int64(10**6)).min(axis=grid_axes)
        spread = np.maximum(hi - lo, 0)  # all-zero tensor -> 0
        st.exp_spread_sum += float(np.asarray(spread, dtype=np.float64).sum())
        st.exp_spread_max = max(st.exp_spread_max, int(np.max(spread, initial=0)))

    # -- observation entry points --------------------------------------------
    def observe_bfp(
        self, role: str, source: np.ndarray, matrix, *, man_bits: int = 8
    ) -> None:
        """One block-fp quantization event (``matrix``: a ``BfpMatrix``)."""
        if not self.enabled:
            return
        self.observe_bfp_tiles(
            role, source, matrix.mantissas, matrix.exponents, man_bits=man_bits
        )

    def observe_bfp_tiles(
        self,
        role: str,
        source: np.ndarray,
        mantissas: np.ndarray,
        exponents: np.ndarray,
        *,
        man_bits: int = 8,
    ) -> None:
        """Block-fp tiles ``(..., Rb, Cb, r, c)`` against their unpadded
        ``(..., m, k)`` source (zero padding contributes nothing)."""
        if not self.enabled:
            return
        src = np.asarray(source, dtype=np.float64)
        st = self._entry(f"bfp{man_bits}", role, man_bits - 1)
        dense = _assemble_tiles(mantissas, exponents)
        m, k = src.shape[-2:]
        decoded = dense[..., :m, :k]
        # Padding rows/cols hold zero mantissas from zero sources: slice
        # the codes the same way the decoded view is sliced.
        rb, cb, r, c = np.asarray(mantissas).shape[-4:]
        codes = (
            np.abs(np.asarray(mantissas, dtype=np.int64))
            .swapaxes(-3, -2)
            .reshape(*np.asarray(mantissas).shape[:-4], rb * r, cb * c)
        )[..., :m, :k]
        n_tensors = int(np.prod(src.shape[:-2])) if src.ndim > 2 else 1
        self._accumulate(
            st,
            source=src,
            decoded=decoded,
            codes_abs=codes,
            code_max=(1 << (man_bits - 1)) - 1,
            n_tensors=n_tensors,
        )
        self._exponent_stats(st, mantissas, exponents)

    def observe_int(self, role: str, source: np.ndarray, tensor, *, bits: int = 8) -> None:
        """One per-tensor integer quantization (``tensor``: Int8Tensor)."""
        if not self.enabled:
            return
        src = np.asarray(source, dtype=np.float64)
        st = self._entry(f"int{bits}", role, bits - 1)
        codes = np.abs(tensor.values.astype(np.int64))
        self._accumulate(
            st,
            source=src,
            decoded=tensor.values.astype(np.float64) * tensor.scale,
            codes_abs=codes,
            code_max=(1 << (bits - 1)) - 1,
            n_tensors=1,
        )
        # Per-tensor scale exponent stands in for the (absent) block grid.
        _, e = np.frexp(tensor.scale)
        st.blocks += 1
        st.exp_hist[int(e)] = st.exp_hist.get(int(e), 0) + 1

    def observe_int_sliced(
        self,
        role: str,
        source: np.ndarray,
        values: np.ndarray,
        scales: np.ndarray,
        *,
        bits: int = 8,
    ) -> None:
        """A ``(B, m, n)`` stack quantized per-slice (values + scales)."""
        if not self.enabled:
            return
        src = np.asarray(source, dtype=np.float64)
        st = self._entry(f"int{bits}", role, bits - 1)
        codes = np.abs(values.astype(np.int64))
        decoded = values.astype(np.float64) * np.asarray(scales)[:, None, None]
        self._accumulate(
            st,
            source=src,
            decoded=decoded,
            codes_abs=codes,
            code_max=(1 << (bits - 1)) - 1,
            n_tensors=int(src.shape[0]),
        )
        _, es = np.frexp(np.asarray(scales, dtype=np.float64))
        vals, counts = np.unique(es.astype(np.int64), return_counts=True)
        for v, c in zip(vals.tolist(), counts.tolist()):
            st.exp_hist[int(v)] = st.exp_hist.get(int(v), 0) + int(c)
        st.blocks += int(np.asarray(scales).size)

    def observe_half(
        self,
        fmt_name: str,
        *,
        man_bits: int,
        overflow: int,
        underflow: int,
        source: np.ndarray,
        quantized: np.ndarray,
        role: str = "tensor",
    ) -> None:
        """One half-precision rounding event (bf16/fp16 grids).

        ``overflow`` counts saturations to the format's max finite value,
        ``underflow`` flush-to-zero events — the two flag paths of
        :func:`repro.formats.halfprec.quantize_half`.
        """
        if not self.enabled:
            return
        src = np.asarray(source, dtype=np.float64)
        q = np.asarray(quantized, dtype=np.float64)
        st = self._entry(fmt_name, role, man_bits)
        err = src - q
        st.tensors += 1
        st.elements += int(src.size)
        st.saturated += int(overflow)
        st.underflow += int(underflow)
        st.nonzero += int((q != 0.0).sum())
        st.sum_ref_sq += float((src * src).sum())
        st.sum_err_sq += float((err * err).sum())

    def observe_alignment(self, probe, *, role: str = "matmul") -> None:
        """Fold an :class:`repro.arith.bfp_matmul.AlignmentProbe` into the
        run: the loss-free evidence (``under_predictions`` must stay 0)
        and the measured narrow fraction for the cost model's
        ``align_narrow_frac`` knob travel with the numerics report."""
        if not self.enabled or not probe.steps:
            return
        key = (self.current_layer, role)
        agg = self.alignment.setdefault(
            key,
            {
                "steps": 0,
                "narrow_steps": 0,
                "under_predictions": 0,
                "max_predicted_width": 0,
                "max_actual_width": 0,
            },
        )
        agg["steps"] += probe.steps
        agg["narrow_steps"] += probe.narrow_steps
        agg["under_predictions"] += probe.under_predictions
        agg["max_predicted_width"] = max(
            agg["max_predicted_width"], probe.max_predicted_width
        )
        agg["max_actual_width"] = max(
            agg["max_actual_width"], probe.max_actual_width
        )

    def alignment_summary(self) -> dict:
        """Run-wide aligned-width-prediction totals across all keys."""
        out = {
            "steps": 0,
            "narrow_steps": 0,
            "under_predictions": 0,
            "max_predicted_width": 0,
            "max_actual_width": 0,
        }
        for agg in self.alignment.values():
            out["steps"] += agg["steps"]
            out["narrow_steps"] += agg["narrow_steps"]
            out["under_predictions"] += agg["under_predictions"]
            out["max_predicted_width"] = max(
                out["max_predicted_width"], agg["max_predicted_width"]
            )
            out["max_actual_width"] = max(
                out["max_actual_width"], agg["max_actual_width"]
            )
        out["narrow_frac"] = (
            out["narrow_steps"] / out["steps"] if out["steps"] else 0.0
        )
        return out

    # -- export --------------------------------------------------------------
    def as_dict(self) -> dict:
        """Per-key snapshots, sorted for deterministic serialization."""
        entries = []
        for (layer, precision, role) in sorted(self.stats):
            snap = self.stats[(layer, precision, role)].snapshot()
            entries.append(
                {"layer": layer, "precision": precision, "role": role, **snap}
            )
        return {"entries": entries}

    def totals(self) -> dict:
        """Run-wide aggregates across all keys, by precision."""
        out: dict[str, dict] = {}
        for (_, precision, _), st in sorted(self.stats.items()):
            g = out.setdefault(
                precision,
                {
                    "tensors": 0,
                    "elements": 0,
                    "saturated": 0,
                    "underflow": 0,
                    "sum_ref_sq": 0.0,
                    "sum_err_sq": 0.0,
                },
            )
            g["tensors"] += st.tensors
            g["elements"] += st.elements
            g["saturated"] += st.saturated
            g["underflow"] += st.underflow
            g["sum_ref_sq"] += st.sum_ref_sq
            g["sum_err_sq"] += st.sum_err_sq
        for g in out.values():
            n = g["elements"] or 1
            g["saturation_rate"] = g["saturated"] / n
            g["underflow_rate"] = g["underflow"] / n
            g["sqnr_db"] = (
                float(10.0 * np.log10(g["sum_ref_sq"] / g["sum_err_sq"]))
                if g["sum_ref_sq"] > 0 and g["sum_err_sq"] > 0
                else None
            )
            del g["sum_ref_sq"], g["sum_err_sq"]
        return out

    def publish(self, registry=None) -> None:
        """Write final aggregates into a metrics registry (counters +
        gauges under ``numerics.*``)."""
        from repro.obs.metrics import get_registry

        reg = get_registry() if registry is None else registry
        if not reg.enabled:
            return
        for (layer, precision, role), st in sorted(self.stats.items()):
            base = f"numerics.{precision}.{role}"
            reg.counter(f"{base}.tensors").inc(st.tensors)
            reg.counter(f"{base}.elements").inc(st.elements)
            reg.counter(f"{base}.saturated").inc(st.saturated)
            reg.counter(f"{base}.underflow").inc(st.underflow)
            sqnr = st.sqnr_db()
            if sqnr is not None:
                reg.gauge(f"numerics.layer.{layer}.{precision}.{role}.sqnr_db").set(
                    sqnr
                )
        for precision, g in self.totals().items():
            reg.gauge(f"numerics.{precision}.saturation_rate").set(
                g["saturation_rate"]
            )
            reg.gauge(f"numerics.{precision}.underflow_rate").set(
                g["underflow_rate"]
            )
            if g["sqnr_db"] is not None:
                reg.gauge(f"numerics.{precision}.sqnr_db").set(g["sqnr_db"])
        if self.alignment:
            a = self.alignment_summary()
            reg.counter("numerics.alignment.steps").inc(a["steps"])
            reg.counter("numerics.alignment.narrow_steps").inc(
                a["narrow_steps"]
            )
            reg.counter("numerics.alignment.under_predictions").inc(
                a["under_predictions"]
            )
            reg.gauge("numerics.alignment.narrow_frac").set(a["narrow_frac"])

    def annotate_tracer(self, tracer, *, track: str = "numerics") -> None:
        """Attach each key's summary as span arguments on a tracer track.

        Emitted as zero-length spans at cycle 0 — the value domain has no
        duration; the spans exist so a Perfetto view of a run carries the
        quantization health alongside the cycle timeline.
        """
        if not tracer.enabled:
            return
        for (layer, precision, role) in sorted(self.stats):
            snap = self.stats[(layer, precision, role)].snapshot()
            tracer.span(
                f"{layer}/{precision}/{role}",
                track=track,
                start=0,
                end=0,
                cat="numerics",
                args={
                    "layer": layer,
                    "precision": precision,
                    "role": role,
                    "saturation_rate": snap["saturation_rate"],
                    "underflow_rate": snap["underflow_rate"],
                    "sqnr_db": snap["sqnr_db"],
                    "mantissa_utilization": snap["mantissa_utilization"],
                    "exp_spread_max": snap["exponent"]["spread_max"],
                },
            )

    def reset(self) -> None:
        self.stats.clear()
        self.alignment.clear()


class _NullScope:
    """Reusable no-op context manager (no generator frame per entry)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


class _NullMonitor(NumericsMonitor):
    """Disabled monitor with zero per-call work beyond the method call.

    Every observation entry point is a bare return — no ``enabled``
    branch, no argument inspection — and :meth:`scope` hands back one
    shared no-op context manager instead of building a generator frame.
    Call sites still guard on ``enabled`` (it stays ``False`` here) so
    they skip argument marshalling entirely; these overrides are the
    backstop that keeps an unguarded site nearly free too.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def scope(self, name: str):
        return _NULL_SCOPE

    def observe_bfp(self, *args, **kwargs) -> None:
        return None

    def observe_bfp_tiles(self, *args, **kwargs) -> None:
        return None

    def observe_int(self, *args, **kwargs) -> None:
        return None

    def observe_int_sliced(self, *args, **kwargs) -> None:
        return None

    def observe_half(self, *args, **kwargs) -> None:
        return None

    def observe_alignment(self, *args, **kwargs) -> None:
        return None


NULL_MONITOR = _NullMonitor()

_default_monitor: NumericsMonitor = NULL_MONITOR


def get_monitor() -> NumericsMonitor:
    """The process-wide numerics monitor (disabled by default)."""
    return _default_monitor


def set_monitor(monitor: NumericsMonitor) -> NumericsMonitor:
    """Swap the process-wide monitor; returns the previous one."""
    global _default_monitor
    previous = _default_monitor
    _default_monitor = monitor
    return previous
