"""Machine-readable benchmark artifacts: ``BENCH_<name>.json``.

Every benchmark writes a JSON artifact next to its text report so the
performance trajectory of the reproduction is scriptable: a summary dict,
the seed that produced it, and the git revision it ran at.  The shape is
intentionally flat and stable — CI uploads these files per run and a
one-liner can diff any metric across commits.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

__all__ = ["ARTIFACT_SCHEMA_VERSION", "git_rev", "jsonable",
           "write_bench_artifact"]

#: Bump when the artifact envelope (not the per-bench summary) changes
#: shape; history consumers key migrations off this.
ARTIFACT_SCHEMA_VERSION = 1


def git_rev(cwd: str | Path | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd or Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def jsonable(value):
    """Coerce numpy scalars/arrays and other leaves to JSON-native types."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # numpy scalar
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy array
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def write_bench_artifact(
    results_dir: str | Path,
    name: str,
    summary: dict,
    *,
    seed: int | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` under ``results_dir``; returns the path."""
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "bench": name,
        "seed": seed,
        "git_rev": git_rev(results_dir),
        "summary": jsonable(summary),
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
