"""Observability for the cycle domain: tracing, metrics, profiling.

Three complementary views of where simulated cycles go:

* :mod:`repro.obs.tracer` — hierarchical spans keyed on simulated cycles
  with Chrome-trace/Perfetto JSON export (per-unit timelines of a serving
  run or a compiled schedule);
* :mod:`repro.obs.metrics` — a process-wide registry of named
  counters/gauges/histograms that the hw, runtime and serve layers
  publish into;
* :mod:`repro.obs.profile` — per-layer, per-precision cycle and op
  attribution for the functional models.

All three are pure functions of (workload, config, seed): no wall-clock
value ever enters the recorded data, so every export is byte-identical
across runs.  The disabled path (:data:`NULL_TRACER`,
:data:`NULL_REGISTRY`, ``profiler=None``) is no-op cheap.
"""

from repro.obs.artifacts import git_rev, jsonable, write_bench_artifact
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentiles,
    set_registry,
)
from repro.obs.profile import Profiler
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "validate_chrome_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "NULL_REGISTRY",
    "percentiles",
    "Profiler",
    "git_rev",
    "jsonable",
    "write_bench_artifact",
]
