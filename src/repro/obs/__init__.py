"""Observability for the cycle domain: tracing, metrics, SLOs, profiling.

Complementary views of where simulated cycles go:

* :mod:`repro.obs.tracer` — hierarchical spans keyed on simulated cycles
  with Chrome-trace/Perfetto JSON export (per-unit timelines of a serving
  run or a compiled schedule), cross-process request-path spans and flow
  events for cluster runs;
* :mod:`repro.obs.metrics` — a process-wide registry of named
  counters/gauges/histograms that the hw, runtime and serve layers
  publish into;
* :mod:`repro.obs.slo` — per-class latency objectives, error budgets and
  multi-window burn rates over the dispatcher's completion stream, plus
  trace-side reconstruction for ``repro slo-report``;
* :mod:`repro.obs.profile` — per-layer, per-precision cycle and op
  attribution for the functional models;
* :mod:`repro.obs.bench_gate` — NDJSON history of ``BENCH_*.json`` runs
  and the pinned headline-metric regression gate;
* :mod:`repro.obs.anomaly` — online EWMA/z-score detectors and trigger
  taxonomy for the flight recorder;
* :mod:`repro.obs.recorder` — always-on bounded flight recorder with
  triggered incident-bundle capture and deterministic replay support
  (``repro incident-replay`` in :mod:`repro.obs.incident_cli`).

All of these are pure functions of (workload, config, seed): no
wall-clock value ever enters the recorded data, so every export is
byte-identical across runs.  The disabled path (:data:`NULL_TRACER`,
:data:`NULL_REGISTRY`, :data:`NULL_SLO`, ``profiler=None``) is no-op
cheap.
"""

from repro.obs.anomaly import (
    AnomalyConfig,
    AnomalyEngine,
    DetectorConfig,
    EwmaDetector,
    ThresholdDetector,
    Trigger,
)
from repro.obs.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    git_rev,
    jsonable,
    write_bench_artifact,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    percentiles,
    set_registry,
)
from repro.obs.profile import Profiler
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    RecorderConfig,
    canonical_sha256,
)
from repro.obs.slo import (
    NULL_SLO,
    NullSLOTracker,
    SLOClass,
    SLOConfig,
    SLOTracker,
    requests_from_trace,
    slo_report_from_trace,
)
from repro.obs.tracer import (
    DEFAULT_PROCESS,
    NULL_TRACER,
    REQUEST_STAGES,
    FlowEvent,
    NullTracer,
    RequestPathConfig,
    Span,
    SpanContext,
    Tracer,
    validate_chrome_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "FlowEvent",
    "RequestPathConfig",
    "REQUEST_STAGES",
    "DEFAULT_PROCESS",
    "validate_chrome_trace",
    "SLOClass",
    "SLOConfig",
    "SLOTracker",
    "NullSLOTracker",
    "NULL_SLO",
    "requests_from_trace",
    "slo_report_from_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_registry",
    "set_registry",
    "NULL_REGISTRY",
    "percentiles",
    "Profiler",
    "git_rev",
    "jsonable",
    "write_bench_artifact",
    "ARTIFACT_SCHEMA_VERSION",
    "AnomalyConfig",
    "AnomalyEngine",
    "DetectorConfig",
    "EwmaDetector",
    "ThresholdDetector",
    "Trigger",
    "RecorderConfig",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "canonical_sha256",
]
