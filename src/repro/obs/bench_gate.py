"""Bench-regression gate: history of ``BENCH_*.json`` runs + pinned floors.

Two responsibilities, both driven by the artifacts that
:func:`repro.obs.artifacts.write_bench_artifact` emits:

* **history** — every gate run appends each ``BENCH_<name>.json`` found
  under the results directory to ``results/history/<name>.ndjson`` (one
  JSON object per line).  Consecutive entries from the same git revision
  are deduped, so re-running the benchmarks locally does not inflate the
  file; across commits the NDJSON is the repo's own performance
  trajectory, greppable without any external dashboard.
* **gate** — ``results/bench_baselines.json`` pins a handful of headline
  metrics (addressed as ``"<bench>:<dotted.path.into.summary>"``) with a
  direction and a relative tolerance.  The gate compares the current
  artifacts against those pins and fails (exit 1 from the CLI) on any
  regression beyond tolerance — e.g. decode tokens/s dropping more than
  10% below its floor, or the 1->2 replica scaling factor sagging.

Baselines are committed, so moving one is a reviewed diff:
``repro bench-gate --update-baselines`` rewrites the pinned values from
the current artifacts while keeping direction/tolerance/notes.
Wall-clock metrics should pin a conservative floor (CI machines are
noisy); deterministic metrics (cycle-accurate ratios) can pin tight.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = [
    "BaselineMetric",
    "load_baselines",
    "resolve_metric",
    "append_history",
    "check_regressions",
    "update_baselines",
    "add_bench_gate_parser",
    "run_bench_gate",
]

BASELINES_NAME = "bench_baselines.json"
HISTORY_DIR = "history"


@dataclass(frozen=True)
class BaselineMetric:
    """One pinned headline metric and its regression policy."""

    key: str  # "<bench>:<dotted.path>"
    value: float
    direction: str = "higher"  # "higher" | "lower" is better
    tolerance: float = 0.10  # allowed relative regression
    note: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.key:
            raise ConfigurationError(
                f"baseline key must be '<bench>:<path>', got {self.key!r}"
            )
        if self.direction not in ("higher", "lower"):
            raise ConfigurationError(
                f"direction must be 'higher' or 'lower', got "
                f"{self.direction!r}"
            )
        if not 0.0 <= self.tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be in [0, 1), got {self.tolerance}"
            )

    @property
    def bench(self) -> str:
        return self.key.split(":", 1)[0]

    @property
    def path(self) -> str:
        return self.key.split(":", 1)[1]

    def bound(self) -> float:
        """The worst value that still passes."""
        if self.direction == "higher":
            return self.value * (1.0 - self.tolerance)
        return self.value * (1.0 + self.tolerance)

    def passes(self, current: float) -> bool:
        if self.direction == "higher":
            return current >= self.bound()
        return current <= self.bound()


def load_baselines(path: str | Path) -> list[BaselineMetric]:
    path = Path(path)
    doc = json.loads(path.read_text())
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ConfigurationError(
            f"{path} must contain a non-empty 'metrics' object"
        )
    out = []
    for key, row in sorted(metrics.items()):
        out.append(BaselineMetric(
            key=key,
            value=float(row["value"]),
            direction=row.get("direction", "higher"),
            tolerance=float(row.get("tolerance", 0.10)),
            note=row.get("note", ""),
        ))
    return out


def resolve_metric(summary: dict, dotted: str) -> float:
    """Walk a ``dotted.path`` into a bench summary; raise on a miss."""
    node = summary
    for part in dotted.split("."):
        if isinstance(node, list):
            node = node[int(part)]
            continue
        if not isinstance(node, dict) or part not in node:
            raise ConfigurationError(
                f"metric path {dotted!r} not found in summary "
                f"(missing {part!r})"
            )
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise ConfigurationError(
            f"metric path {dotted!r} resolves to {type(node).__name__}, "
            "not a number"
        )
    return float(node)


def _bench_artifacts(results_dir: Path) -> dict[str, dict]:
    """``{bench_name: artifact_doc}`` for every BENCH_*.json present."""
    out: dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        doc = json.loads(path.read_text())
        name = doc.get("bench") or path.stem[len("BENCH_"):]
        # Artifacts from before the envelope was versioned read as v0, so
        # history lines are distinguishable from current-schema ones.
        doc.setdefault("schema_version", 0)
        out[name] = doc
    return out


def append_history(results_dir: str | Path) -> list[Path]:
    """Append each bench artifact to ``history/<bench>.ndjson``.

    A run is skipped when the file's last line already carries the same
    git revision — local re-runs don't pile up; every new commit adds
    exactly one line per bench.  Returns the paths actually appended to.
    """
    results_dir = Path(results_dir)
    hist_dir = results_dir / HISTORY_DIR
    hist_dir.mkdir(parents=True, exist_ok=True)
    touched: list[Path] = []
    for name, doc in _bench_artifacts(results_dir).items():
        path = hist_dir / f"{name}.ndjson"
        if path.exists():
            lines = path.read_text().splitlines()
            if lines:
                last = json.loads(lines[-1])
                if last.get("git_rev") == doc.get("git_rev"):
                    continue
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with path.open("a") as fh:
            fh.write(line + "\n")
        touched.append(path)
    return touched


def check_regressions(
    results_dir: str | Path,
    baselines: list[BaselineMetric],
) -> list[dict]:
    """Evaluate every pinned metric; one row per metric, pass or fail."""
    results_dir = Path(results_dir)
    artifacts = _bench_artifacts(results_dir)
    rows: list[dict] = []
    for m in baselines:
        row = {
            "key": m.key,
            "baseline": m.value,
            "direction": m.direction,
            "tolerance": m.tolerance,
            "bound": m.bound(),
            "note": m.note,
        }
        doc = artifacts.get(m.bench)
        if doc is None:
            row.update(current=None, ok=False,
                       error=f"BENCH_{m.bench}.json not found")
            rows.append(row)
            continue
        try:
            current = resolve_metric(doc.get("summary", {}), m.path)
        except ConfigurationError as exc:
            row.update(current=None, ok=False, error=str(exc))
            rows.append(row)
            continue
        row.update(current=current, ok=m.passes(current))
        rows.append(row)
    return rows


def update_baselines(
    results_dir: str | Path,
    baselines_path: str | Path,
) -> list[BaselineMetric]:
    """Rewrite pinned values from current artifacts (keeps policy fields)."""
    baselines_path = Path(baselines_path)
    metrics_doc = json.loads(baselines_path.read_text())
    artifacts = _bench_artifacts(Path(results_dir))
    updated: list[BaselineMetric] = []
    for m in load_baselines(baselines_path):
        doc = artifacts.get(m.bench)
        if doc is None:
            raise ConfigurationError(
                f"cannot update {m.key}: BENCH_{m.bench}.json not found"
            )
        current = resolve_metric(doc.get("summary", {}), m.path)
        metrics_doc["metrics"][m.key]["value"] = current
        updated.append(BaselineMetric(m.key, current, m.direction,
                                      m.tolerance, m.note))
    baselines_path.write_text(
        json.dumps(metrics_doc, indent=2, sort_keys=True) + "\n"
    )
    return updated


# -- CLI ---------------------------------------------------------------------

def add_bench_gate_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "bench-gate",
        help="append bench runs to history and fail on headline regressions",
        description=(
            "Append every BENCH_*.json under --results to "
            "results/history/<bench>.ndjson (deduped per git revision), "
            "then compare the headline metrics pinned in "
            "bench_baselines.json against the current artifacts.  Exits 1 "
            "on any regression beyond tolerance.  --update-baselines "
            "rewrites the pinned values from the current artifacts instead "
            "of gating (the diff is the review)."
        ),
    )
    p.add_argument("--results", type=Path, default=Path("results"),
                   metavar="DIR", help="directory holding BENCH_*.json")
    p.add_argument("--baselines", type=Path, default=None, metavar="FILE",
                   help=f"pinned metrics (default: <results>/{BASELINES_NAME})")
    p.add_argument("--update-baselines", action="store_true",
                   help="rewrite pinned values from current artifacts")
    p.add_argument("--no-history", action="store_true",
                   help="skip the history append (gate only)")
    return p


def run_bench_gate(args) -> int:
    from repro.eval.reporting import render_table

    baselines_path = args.baselines or args.results / BASELINES_NAME
    if not args.results.is_dir():
        print(f"bench-gate: no results directory at {args.results} "
              "(run the benchmarks first, or pass --results)")
        return 1
    if not baselines_path.is_file():
        print(f"bench-gate: no baselines file at {baselines_path} "
              f"(commit {BASELINES_NAME} or pass --baselines)")
        return 1
    if not args.no_history:
        touched = append_history(args.results)
        for path in touched:
            print(f"history: appended to {path}")
        if not touched:
            print("history: up to date (no new git revisions)")

    if args.update_baselines:
        updated = update_baselines(args.results, baselines_path)
        for m in updated:
            print(f"baseline {m.key} := {m.value:g}")
        print(f"wrote {baselines_path}")
        return 0

    try:
        baselines = load_baselines(baselines_path)
    except (ConfigurationError, json.JSONDecodeError) as exc:
        print(f"bench-gate: cannot load {baselines_path}: {exc}")
        return 1
    rows = check_regressions(args.results, baselines)
    print(render_table(
        ["metric", "baseline", "bound", "current", "status"],
        [(r["key"], f"{r['baseline']:g}", f"{r['bound']:g}",
          "-" if r["current"] is None else f"{r['current']:g}",
          "ok" if r["ok"] else "FAIL")
         for r in rows],
        title=f"bench gate vs {baselines_path}",
    ))
    failures = [r for r in rows if not r["ok"]]
    for r in failures:
        detail = r.get("error") or (
            f"current {r['current']:g} vs bound {r['bound']:g} "
            f"({r['direction']} is better, tol {r['tolerance']:.0%})"
        )
        print(f"FAIL {r['key']}: {detail}")
        if r["note"]:
            print(f"     note: {r['note']}")
    if failures:
        return 1
    print(f"bench gate: {len(rows)} pinned metrics ok")
    return 0
