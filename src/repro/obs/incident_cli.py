"""``repro incident-replay`` / ``repro incident-report`` — bundle tooling.

An incident bundle written by the :class:`~repro.obs.recorder.FlightRecorder`
is *self-contained*: the capture epoch's arrival rows (rid/user/deadline
verbatim), the serve config snapshot, the anomaly-detector state at epoch
start, the SLO burn-window preload, and any injected-fault parameters.
``incident-replay`` rebuilds all of that from the bundle alone,
re-simulates the epoch at absolute cycles, and verifies the anomaly
*reproduces*: the same trigger (cycle, signal, value, z-score — exact
float equality), the same deadline-miss count, and the same per-request
completion digest.  A mismatch is an exit-1 diagnosis, not a warning —
either the bundle is stale against the code, or determinism broke.

``incident-report`` summarizes a directory of bundles (one line per
incident: trigger, window, outcome counts, replayability).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.recorder import FlightRecorder, RecorderConfig
from repro.obs.slo import NULL_SLO, SLOClass, SLOConfig, SLOTracker
from repro.serve.dispatcher import (
    CostModel,
    ServeConfig,
    serve_config_from_dict,
    simulate,
)
from repro.serve.request import Request

__all__ = [
    "SpikeInjection",
    "SpikedCostModel",
    "requests_from_subtrace",
    "replay_bundle",
    "verify_replay",
    "add_incident_replay_parser",
    "run_incident_replay",
    "add_incident_report_parser",
    "run_incident_report",
]


@dataclass(frozen=True)
class SpikeInjection:
    """A latency fault window: batches landing inside it run slower.

    The window is keyed on the batch's newest item-ready cycle (a pure
    function of simulation state), so an original run and its replay
    apply the spike to exactly the same batches.
    """

    start_cycle: int
    end_cycle: int
    extra_cycles: int

    def __post_init__(self) -> None:
        if self.end_cycle <= self.start_cycle or self.extra_cycles <= 0:
            raise ConfigurationError(
                "spike injection needs end > start and extra_cycles > 0")

    def as_dict(self) -> dict:
        return {"start_cycle": self.start_cycle,
                "end_cycle": self.end_cycle,
                "extra_cycles": self.extra_cycles}

    @classmethod
    def from_dict(cls, doc: dict) -> SpikeInjection:
        return cls(start_cycle=int(doc["start_cycle"]),
                   end_cycle=int(doc["end_cycle"]),
                   extra_cycles=int(doc["extra_cycles"]))


class SpikedCostModel:
    """A deterministic latency spike composed over *any* cost model.

    Since the cost-model unification this is a wrapper, not a subclass:
    it folds the spike over whatever model it is given — serve's plain
    :class:`~repro.serve.dispatcher.CostModel`, cluster's
    :class:`~repro.cluster.sharding.ShardedCostModel`, anything with
    ``batch_cycles``/``batch_breakdown`` — so ``--inject-spike-*`` now
    works under ``--cluster`` too.  Passing a :class:`ServeConfig` as
    the first argument keeps the historical constructor working (it
    wraps a fresh single-pool ``CostModel``); every attribute of the
    wrapped model (sharding accumulators, ``cfg``, ...) is delegated.
    """

    def __init__(
        self, cost: "CostModel | ServeConfig", spike: SpikeInjection
    ) -> None:
        self.inner = CostModel(cost) if isinstance(cost, ServeConfig) else cost
        self.spike = spike

    def _extra(self, batch) -> int:
        t = max(item.ready for item in batch.items)
        if self.spike.start_cycle <= t < self.spike.end_cycle:
            return self.spike.extra_cycles
        return 0

    def batch_cycles(self, batch) -> int:
        return self.inner.batch_cycles(batch) + self._extra(batch)

    def batch_breakdown(self, batch) -> dict[str, int]:
        """The wrapped model's stage split with the spike folded into the
        compute stage (keeps the invariant that the split sums to
        :meth:`batch_cycles`)."""
        breakdown = dict(self.inner.batch_breakdown(batch))
        extra = self._extra(batch)
        if extra:
            breakdown["shard_compute"] = (
                breakdown.get("shard_compute", 0) + extra
            )
        return breakdown

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


def requests_from_subtrace(rows: list) -> list[Request]:
    """Rebuild the epoch's arrivals verbatim (rids and users preserved —
    unlike :func:`~repro.serve.request.trace_from_rows`, which renumbers)."""
    return [
        Request(
            rid=int(r[0]), kind=r[1], arrival=int(r[2]),
            deadline=(int(r[3]) if r[3] is not None else None),
            prompt_tokens=int(r[4]), gen_tokens=int(r[5]),
            user=(int(r[6]) if r[6] is not None else None),
        )
        for r in rows
    ]


def replay_bundle(bundle: dict) -> FlightRecorder:
    """Re-simulate a bundle's capture epoch; returns the replay recorder.

    Raises :class:`ConfigurationError` when the bundle declares itself
    non-replayable (epoch overflow, cluster capture, truncated SLO
    history) or lacks a serve-config capture.
    """
    replay = bundle.get("replay", {})
    if not replay.get("supported"):
        raise ConfigurationError(
            f"bundle {bundle.get('id', '?')} is not replayable: "
            f"{replay.get('reason', 'no replay section')}")
    capture = bundle.get("capture", {})
    if not capture.get("serve_config"):
        raise ConfigurationError(
            f"bundle {bundle.get('id', '?')} has no serve_config capture")
    config = serve_config_from_dict(capture["serve_config"])
    requests = requests_from_subtrace(bundle["subtrace"]["requests"])

    cost = None
    if capture.get("injection"):
        cost = SpikedCostModel(config,
                               SpikeInjection.from_dict(capture["injection"]))

    slo = NULL_SLO
    slo_cfg = capture.get("slo")
    if slo_cfg:
        slo = SLOTracker(
            SLOConfig(
                classes=tuple(SLOClass(c["name"], c["objective"])
                              for c in slo_cfg["classes"]),
                short_window_ms=slo_cfg["short_window_ms"],
                long_window_ms=slo_cfg["long_window_ms"],
                count_rejections=slo_cfg.get("count_rejections", True),
            ),
            clock=config.clock,
        )
        for kind, cycle, bad in bundle.get("slo_preload", []):
            slo.preload(kind, int(cycle), bool(bad))

    recorder = FlightRecorder(
        RecorderConfig.from_dict(capture.get("recorder", {})),
        run=f"{bundle.get('run', 'run')}-replay",
        capture=capture,
    )
    recorder.preload_state(bundle)
    simulate(requests, config, slo=slo, recorder=recorder, cost=cost)
    return recorder


def verify_replay(bundle: dict, recorder: FlightRecorder) -> list[str]:
    """Mismatches between a bundle and its replay (empty = exact)."""
    if not recorder.incidents:
        return ["replay produced no incident: the trigger did not reproduce"]
    rep = recorder.incidents[0]
    mismatches: list[str] = []
    if len(recorder.incidents) != 1:
        mismatches.append(
            f"replay produced {len(recorder.incidents)} incidents, "
            "expected exactly 1")
    want, got = bundle["expected"], rep["expected"]
    for key in ("completed", "deadline_misses", "rejections",
                "completions_sha256"):
        if want[key] != got[key]:
            mismatches.append(
                f"expected.{key}: bundle {want[key]!r} vs replay {got[key]!r}")
    if bundle["trigger"] != rep["trigger"]:
        mismatches.append(
            f"trigger: bundle {bundle['trigger']!r} vs replay "
            f"{rep['trigger']!r}")
    want_close = bundle["window"]["closed_cycle"]
    got_close = rep["window"]["closed_cycle"]
    if want_close != got_close:
        mismatches.append(
            f"window.closed_cycle: bundle {want_close} vs replay {got_close}")
    return mismatches


# -- CLI ----------------------------------------------------------------------
def add_incident_replay_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "incident-replay",
        help="re-simulate an incident bundle and verify it reproduces",
        description="Deterministically re-simulate the capture epoch of a "
                    "flight-recorder incident bundle from the bundle alone, "
                    "and verify the anomaly reproduces exactly (same "
                    "trigger cycle/value/z-score, same deadline-miss count, "
                    "same per-request completion digest).",
    )
    p.add_argument("bundle", type=Path, help="incident bundle JSON")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the per-field comparison (exit code only)")
    return p


def run_incident_replay(args) -> int:
    try:
        bundle = json.loads(args.bundle.read_text())
    except FileNotFoundError:
        print(f"incident-replay: no such bundle: {args.bundle}")
        return 2
    except json.JSONDecodeError as e:
        print(f"incident-replay: {args.bundle} is not valid JSON: {e}")
        return 2
    try:
        recorder = replay_bundle(bundle)
    except ConfigurationError as e:
        print(f"incident-replay: {e}")
        return 2
    trig = bundle["trigger"]
    if not args.quiet:
        n_req = len(bundle["subtrace"]["requests"])
        window = bundle["window"]
        print(f"incident {bundle['id']} (run {bundle['run']}): "
              f"{trig['source']}/{trig['signal']} at cycle {trig['cycle']}")
        print(f"replayed {n_req} arrivals over epoch "
              f"[{window['epoch_start']}, {window['closed_cycle']}]")
    mismatches = verify_replay(bundle, recorder)
    if mismatches:
        print(f"incident {bundle['id']}: replay DIVERGED "
              f"({len(mismatches)} mismatch(es)):")
        for m in mismatches:
            print(f"  - {m}")
        return 1
    if not args.quiet:
        exp = bundle["expected"]
        z = trig.get("zscore")
        print(f"  trigger          exact match "
              f"(value {trig['value']:g}"
              + (f", z {z:.3f}" if z is not None else "") + ")")
        print(f"  completed        {exp['completed']}")
        print(f"  deadline_misses  {exp['deadline_misses']}")
        print(f"  rejections       {exp['rejections']}")
        print(f"  completions      sha256 {exp['completions_sha256'][:16]}…")
    print(f"incident {bundle['id']} reproduced exactly")
    return 0


def add_incident_report_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "incident-report",
        help="summarize flight-recorder incident bundles",
        description="One line per incident bundle found under --dir (or "
                    "given explicitly): trigger, capture window, outcome "
                    "counts, replayability.",
    )
    p.add_argument("bundles", nargs="*", type=Path,
                   help="bundle files (default: scan --dir)")
    p.add_argument("--dir", type=Path, default=Path("results/incidents"),
                   help="directory to scan recursively for *.json bundles")
    return p


def _bundle_row(path: Path, bundle: dict) -> str:
    trig = bundle.get("trigger", {})
    exp = bundle.get("expected", {})
    window = bundle.get("window", {})
    replay = bundle.get("replay", {})
    if replay.get("supported"):
        rep = "replayable"
    else:
        rep = f"capture-only ({replay.get('reason', 'unknown')})"
    z = trig.get("zscore")
    zs = f" z={z:.2f}" if z is not None else ""
    chain = len(bundle.get("cause_chain", []))
    return (
        f"{bundle.get('run', '?')}/{bundle.get('id', path.stem)}: "
        f"{trig.get('source', '?')}/{trig.get('signal', '?')} "
        f"value={trig.get('value', float('nan')):g}{zs} "
        f"at cycle {trig.get('cycle', '?')} "
        f"(+{chain} chained), window "
        f"[{window.get('epoch_start', '?')}, "
        f"{window.get('closed_cycle', '?')}], "
        f"{exp.get('completed', '?')} completed / "
        f"{exp.get('deadline_misses', '?')} missed / "
        f"{exp.get('rejections', '?')} rejected — {rep}"
    )


def run_incident_report(args) -> int:
    paths = list(args.bundles)
    if not paths:
        if not args.dir.is_dir():
            print(f"incident-report: no bundle directory at {args.dir} "
                  "(run serve-sim --record first, or pass bundle paths)")
            return 2
        paths = sorted(args.dir.rglob("*.json"))
    if not paths:
        print(f"incident-report: no bundles under {args.dir}")
        return 0
    shown = 0
    for path in paths:
        try:
            bundle = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: unreadable bundle ({e})")
            continue
        if bundle.get("schema_version") is None or "trigger" not in bundle:
            continue  # not an incident bundle (directory may hold other JSON)
        print(_bundle_row(path, bundle))
        shown += 1
    print(f"{shown} incident(s)")
    return 0
