"""``python -m repro profile`` — deterministic cycle/op profiles.

Two modes, both pure functions of configuration + seed (no wall clock):

* **schedule** (default): compile a model with the full-stack compiler and
  report its workload split, latency, and steady-state throughput; with
  ``--trace-out`` the compiled schedule is emitted as a per-unit
  Chrome-trace/Perfetto timeline whose critical path *is* the reported
  latency.
* **functional** (``--functional``): run the functional ``TinyLM`` under a
  chosen arithmetic backend with a :class:`repro.obs.profile.Profiler`
  attached, and report per-layer, per-precision cycle and op attribution
  (prefill forward + a cached greedy decode), plus ``backend.stats()``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

__all__ = [
    "add_profile_parser",
    "run_profile",
    "add_align_predict_parser",
    "run_align_predict",
    "add_numerics_report_parser",
    "run_numerics_report",
    "add_slo_report_parser",
    "run_slo_report",
]

_SCHEDULE_MODELS = ("deit-tiny", "deit-small", "deit-base",
                    "decoder-prefill", "decoder-decode")


def add_profile_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "profile",
        help="deterministic cycle/op profile of a compiled or functional model",
        description=__doc__,
    )
    p.add_argument("--model", choices=_SCHEDULE_MODELS, default="deit-tiny",
                   help="schedule mode: which model to compile")
    p.add_argument("--batch", type=int, default=1,
                   help="batch size for the compiled schedule")
    p.add_argument("--units", type=int, default=None,
                   help="number of processing units (default: clock config)")
    p.add_argument("--context", type=int, default=128,
                   help="decoder models: context length")
    p.add_argument("--dim", type=int, default=512,
                   help="decoder models: model width")
    p.add_argument("--depth", type=int, default=8,
                   help="decoder models: number of layers")
    p.add_argument("--heads", type=int, default=8,
                   help="decoder models: attention heads")
    p.add_argument("--vocab", type=int, default=32000,
                   help="decoder models: vocabulary size")
    p.add_argument("--functional", action="store_true",
                   help="profile the functional TinyLM instead of a schedule")
    p.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="functional mode: after the profiled (eager) run, "
                        "time compiled decode-plan replay vs eager and "
                        "print plan stats (the profiled run itself is "
                        "always eager — a profiler needs per-op scopes)")
    p.add_argument("--backend", default="bfp8-mixed",
                   help="functional mode: arithmetic backend name")
    p.add_argument("--policy", default=None, metavar="NAME_OR_JSON",
                   help="per-layer precision policy: a preset name or a "
                        "policy JSON file; overrides --backend in functional "
                        "mode and re-modes the compiled matmul stages in "
                        "schedule mode")
    p.add_argument("--array-mode", default=None, metavar="SPEC",
                   help="unit-mode overrides, e.g. 'fp16' or "
                        "'fp16=fp16_dot,bf16=bfp8_mac': map formats onto "
                        "registered unit modes (see repro.cost.modes); "
                        "affects both compiled schedules and functional "
                        "cycle attribution")
    p.add_argument("--align-predict", type=float, default=None, metavar="FRAC",
                   help="schedule mode: fraction of array alignment steps "
                        "predicted narrow by the shift-aware width "
                        "predictor (0..1); charges reduced alignment "
                        "cycles on array matmul stages")
    p.add_argument("--seed", type=int, default=0,
                   help="functional mode: model/token seed")
    p.add_argument("--gen-tokens", type=int, default=4,
                   help="functional mode: greedy decode steps to profile")
    p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                   help="schedule mode: write the per-unit schedule as "
                        "Chrome-trace/Perfetto JSON (timestamps are cycles)")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the profile as JSON")
    return p


def _policy(args):
    if getattr(args, "policy", None) is None:
        return None
    from repro.models.policy import load_policy

    return load_policy(args.policy)


def _modes(args):
    from repro.cost.modes import ModeOptions

    return ModeOptions.parse(
        getattr(args, "array_mode", None),
        align_narrow_frac=getattr(args, "align_predict", None),
    )


def _compile(args):
    from repro.models.configs import CONFIGS
    from repro.runtime.scheduler import compile_decoder, compile_vit

    policy = _policy(args)
    modes = _modes(args)
    if args.model in CONFIGS:
        return compile_vit(CONFIGS[args.model], batch=args.batch,
                           policy=policy, modes=modes)
    phase = args.model.split("-", 1)[1]
    return compile_decoder(
        vocab=args.vocab, dim=args.dim, depth=args.depth, n_heads=args.heads,
        context=args.context, phase=phase, batch=args.batch, policy=policy,
        modes=modes,
    )


def _run_schedule(args) -> int:
    from repro.eval.reporting import render_metrics, render_table
    from repro.obs.tracer import Tracer

    model = _compile(args)
    n = args.units or model.clock.n_units
    rows = model.workload_split(n)
    policy = _policy(args)
    print(render_table(
        ["partition", "ops", "ops%", "cycles", "latency%"],
        [(r["name"], f"{r['ops']:.3g}", f"{r['ops_pct']:.1f}",
          r["cycles"], f"{r['latency_pct']:.1f}") for r in rows],
        title=f"workload split: {model.name}, batch {args.batch}, {n} units",
    ))
    print()
    summary = {
        "model": model.name,
        "batch": args.batch,
        "n_units": n,
        "latency_cycles": model.latency_cycles(n),
        "latency_s": model.latency_seconds(n),
        "throughput_items_per_s": model.throughput_items_per_s(n),
        "fp32_latency_share": model.fp32_latency_share(n),
        "unit_cycles_per_item": model.unit_cycles_per_item(),
    }
    if policy is not None:
        summary["policy"] = policy.name
        for mode, cyc in sorted(model.latency_by_mode(n).items()):
            summary[f"latency_cycles.{mode}"] = cyc
    if _modes(args) is not None:
        for unit, cyc in sorted(model.latency_by_unit_mode(n).items()):
            summary[f"unit_mode.{unit}"] = cyc
    print(render_metrics("schedule profile", summary))

    if args.trace_out is not None:
        tracer = Tracer(meta={
            "model": model.name,
            "batch": args.batch,
            "n_units": n,
            "clock_freq_hz": model.clock.freq_hz,
        })
        makespan = model.trace_schedule(tracer, n)
        args.trace_out.write_text(tracer.to_json() + "\n")
        print(f"\ntrace written to {args.trace_out} "
              f"({len(tracer.spans)} spans, makespan {makespan} cycles; "
              "open in ui.perfetto.dev)")
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(
            {"summary": summary, "workload_split": rows},
            indent=2, sort_keys=True,
        ) + "\n")
    return 0


def _run_functional(args) -> int:
    import numpy as np

    from repro.eval.reporting import render_metrics
    from repro.models.backend import PolicyBackend, get_backend
    from repro.models.decoder import TinyLM
    from repro.obs.profile import Profiler

    policy = _policy(args)
    modes = _modes(args)
    if policy is not None:
        backend = PolicyBackend(policy, modes=modes)
    elif modes is not None:
        from repro.models.policy import load_policy

        # --array-mode changes *cycle attribution*, which is policy-level
        # information; lift the flat backend into the equivalent policy so
        # the profiler sees the remapped unit modes.
        backend = PolicyBackend(load_policy(args.backend), modes=modes)
    else:
        backend = get_backend(args.backend)
    backend.profiler = Profiler()
    model = TinyLM(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    tokens = rng.integers(0, model.vocab, size=(2, model.seq_len))

    with backend.scope("prefill"):
        model.forward(tokens, backend)
    with backend.scope("decode"):
        model.generate_cached(tokens[0, :4], args.gen_tokens, backend)

    print(backend.profiler.table(
        f"functional profile: TinyLM, backend {backend.name}, "
        f"seed {args.seed}"
    ))
    print()
    by_prec = backend.profiler.by_precision()
    total = backend.profiler.total_cycles()
    prec_summary = {
        f"cycles.{p}": g["cycles"] for p, g in sorted(by_prec.items())
    }
    prec_summary["cycles.total"] = total
    print(render_metrics("cycles by precision", prec_summary))
    print()
    print(render_metrics("backend stats", backend.stats()))

    profiler = backend.profiler
    plan_summary = None
    if getattr(args, "compiled", True):
        from repro.runtime.plan import plan_stats

        # Plans only activate on an unprofiled backend: per-op profiling
        # is exactly the dispatch the replay path removes.  Output here
        # is deterministic (same seed -> byte-identical); wall-clock
        # speedups live in benchmarks/bench_kernels.py.
        backend.profiler = None

        def _decode(compiled: bool) -> np.ndarray:
            caches = model.init_cache()
            logits = model.forward_step(
                int(tokens[0, 0]), 0, caches, backend, compiled=compiled
            )
            for pos in range(1, args.gen_tokens + 1):
                tok = int(np.argmax(logits)) % model.vocab
                logits = model.forward_step(
                    tok, pos, caches, backend, compiled=compiled
                )
            return logits

        eager_logits = _decode(False)
        compiled_logits = _decode(True)
        stats = plan_stats(model)
        plan_summary = {
            "bit_identical": bool(np.array_equal(eager_logits, compiled_logits)),
            "plans": len(stats),
            "replays": sum(s["replays"] for s in stats),
            "sampled_taps": sum(s["sampled_taps"] for s in stats),
        }
        print()
        print(render_metrics("compiled decode replay vs eager", plan_summary))

    if args.json_out is not None:
        args.json_out.write_text(json.dumps(
            {
                "backend": backend.name,
                "seed": args.seed,
                "profile": profiler.as_dict(),
                "backend_stats": backend.stats(),
                "compiled_replay": plan_summary,
            },
            indent=2, sort_keys=True,
        ) + "\n")
    return 0


def run_profile(args) -> int:
    if args.functional:
        return _run_functional(args)
    return _run_schedule(args)


def add_align_predict_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "align-predict",
        help="measure shift-aware aligned-width prediction on a real model",
        description=(
            "Run the functional TinyLM under a block-fp backend with the "
            "alignment probe attached: every sequential PSU alignment also "
            "runs the exponent unit's width predictor and is checked "
            "against the emulated mantissas.  Reports the narrow fraction "
            "(the measured value for --align-predict / align_narrow_frac) "
            "and exits non-zero if the predictor ever under-predicts or "
            "the probed run is not bit-identical to the unprobed one."
        ),
    )
    p.add_argument("--backend", default="bfp8-mixed",
                   help="arithmetic backend name (must use the bfp array)")
    p.add_argument("--seed", type=int, default=0,
                   help="model/token seed")
    p.add_argument("--gen-tokens", type=int, default=4,
                   help="greedy decode steps after the prefill forward")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the probe summary as JSON")
    return p


def run_align_predict(args) -> int:
    import numpy as np

    from repro.arith.bfp_matmul import AlignmentProbe, set_alignment_probe
    from repro.eval.reporting import render_metrics
    from repro.models.backend import get_backend
    from repro.models.decoder import TinyLM

    backend = get_backend(args.backend)
    model = TinyLM(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    tokens = rng.integers(0, model.vocab, size=(2, model.seq_len))

    # Unprobed reference first: the probe must be observation-only.
    ref = np.asarray(model.forward(tokens, backend))
    probe = AlignmentProbe()
    prev = set_alignment_probe(probe)
    try:
        got = np.asarray(model.forward(tokens, backend))
        model.generate_cached(tokens[0, :4], args.gen_tokens, backend)
    finally:
        set_alignment_probe(prev)

    summary = probe.as_dict()
    summary["bit_identical_with_probe"] = bool(np.array_equal(ref, got))
    print(render_metrics(
        f"alignment width prediction: TinyLM, backend {backend.name}, "
        f"seed {args.seed}",
        summary,
    ))
    if probe.steps:
        print(
            f"\ncost-model knob: --align-predict {probe.narrow_frac:.3f} "
            "(array matmul stages charge the single-stage shift on that "
            "fraction of accumulate steps)"
        )
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(
            summary, indent=2, sort_keys=True,
        ) + "\n")
    ok = (
        probe.steps > 0
        and probe.under_predictions == 0
        and summary["bit_identical_with_probe"]
    )
    return 0 if ok else 1


def add_numerics_report_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "numerics-report",
        help="value-domain quantization health report + golden-baseline gate",
        description=(
            "Run the functional TinyLM under a quantizing backend with the "
            "numerics monitor attached, and report per-layer saturation/"
            "underflow rates, exponent spread, mantissa utilization and "
            "SQNR (plus end-to-end logits SQNR vs the fp32 reference). "
            "With --check, diff against a committed golden report and exit "
            "non-zero on drift."
        ),
    )
    p.add_argument("--backend", default="bfp8-mixed",
                   help="arithmetic backend name (must quantize)")
    p.add_argument("--man-bits", type=int, default=8,
                   help="block-fp mantissa width for bfp backends "
                        "(<8 injects extra truncation — the regression "
                        "the gate must catch)")
    p.add_argument("--seed", type=int, default=0,
                   help="model/token seed")
    p.add_argument("--gen-tokens", type=int, default=4,
                   help="greedy decode steps after the prefill forward")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the schema-validated JSON report")
    p.add_argument("--markdown-out", type=Path, default=None, metavar="FILE",
                   help="write the markdown summary")
    p.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                   help="write the numerics.* metrics registry snapshot")
    p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                   help="write a Perfetto trace with the numerics summary "
                        "attached as span arguments")
    p.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                   help="diff against a golden report; exit 1 on drift")
    p.add_argument("--sqnr-tol-db", type=float, default=None,
                   help="per-layer SQNR degradation tolerance in dB "
                        "(default: baseline module default)")
    p.add_argument("--clip-margin", type=float, default=None,
                   help="absolute saturation/underflow rate ceiling margin "
                        "(default: baseline module default)")
    return p


def _numerics_backend(name: str, man_bits: int):
    from repro.models.backend import BFP8MixedBackend, get_backend

    backend = get_backend(name)
    if man_bits != 8:
        if not isinstance(backend, BFP8MixedBackend):
            raise SystemExit(f"--man-bits applies to bfp backends, not {name}")
        backend = type(backend)(man_bits=man_bits)
    return backend


def add_slo_report_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "slo-report",
        help="rebuild the SLO story (misses, burn, attribution) from a trace",
        description=(
            "Parse a serve-sim Perfetto trace, reconstruct every request's "
            "lifecycle from its async spans, and report per-class deadline "
            "misses plus where sampled requests spent their cycles "
            "(queue / batch_wait / shard_compute / allreduce / pp_transfer). "
            "With --summary, cross-check the trace-derived deadline-miss "
            "rate against the run summary and exit non-zero on mismatch — "
            "the trace is only an artifact if it reproduces the "
            "dispatcher's accounting exactly."
        ),
    )
    p.add_argument("--trace", type=Path, required=True, metavar="FILE",
                   help="Perfetto trace JSON from serve-sim --trace-out")
    p.add_argument("--summary", type=Path, default=None, metavar="FILE",
                   help="run summary JSON (serve-sim --json-out); the "
                        "trace-derived deadline-miss rate must match it "
                        "exactly or the command exits 1")
    p.add_argument("--objective", type=float, default=0.99,
                   help="success objective used for the per-class error "
                        "budgets in the report")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the full report as JSON")
    return p


def run_slo_report(args) -> int:
    from repro.eval.reporting import render_metrics
    from repro.obs.slo import slo_report_from_trace
    from repro.obs.tracer import validate_chrome_trace

    doc = json.loads(args.trace.read_text())
    validate_chrome_trace(doc)
    report = slo_report_from_trace(
        doc, objectives={"vit": args.objective, "llm": args.objective}
    )

    top = {
        "requests": report["requests"],
        "sampled_requests": report["sampled_requests"],
        "deadline_misses": report["deadline_misses"],
        "deadline_miss_rate": report["deadline_miss_rate"],
        "coverage_min": report["coverage_min"],
        "coverage_mean": report["coverage_mean"],
    }
    print(render_metrics(f"slo report: {args.trace}", top))
    for name, row in sorted(report["classes"].items()):
        print()
        print(render_metrics(f"class {name}", row))
    if report["sampled_requests"]:
        print()
        print(render_metrics(
            "latency attribution (fraction of sampled cycles)",
            {stage: row["fraction"]
             for stage, row in report["attribution"].items()},
        ))

    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )

    if args.summary is not None:
        ref = json.loads(args.summary.read_text())
        ref = ref.get("summary", ref)  # cluster --json-out nests the summary
        want = ref.get("deadline_miss_rate")
        if want is None:
            print("\nsummary cross-check: no deadline_miss_rate in "
                  f"{args.summary}")
            return 1
        got = report["deadline_miss_rate"]
        if got != want:
            print("\nsummary cross-check FAILED: trace-derived miss rate "
                  f"{got!r} != summary {want!r}")
            return 1
        print(f"\nsummary cross-check OK: deadline_miss_rate {got!r} "
              "reproduced from spans alone")
    return 0


def run_numerics_report(args) -> int:
    import numpy as np

    from repro.models.decoder import TinyLM
    from repro.obs import baseline as bl
    from repro.obs.metrics import MetricsRegistry, set_registry
    from repro.obs.numerics import NumericsMonitor, set_monitor
    from repro.perf.prepared import PreparedOperandCache, set_cache

    backend = _numerics_backend(args.backend, args.man_bits)
    model = TinyLM(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    tokens = rng.integers(0, model.vocab, size=(2, model.seq_len))

    # fp32 reference forward on the same inputs — the end-to-end anchor
    # the per-layer streaming SQNR is judged against.
    ref_logits = np.asarray(model.forward(tokens), dtype=np.float64)

    from repro.arith.bfp_matmul import AlignmentProbe, set_alignment_probe

    monitor = NumericsMonitor()
    prev_monitor = set_monitor(monitor)
    # A fresh operand cache so every weight is quantized (and therefore
    # observed) exactly once inside this run; a fresh registry so the
    # published numerics.* metrics carry no prior-process state.
    prev_cache = set_cache(PreparedOperandCache())
    registry = MetricsRegistry()
    prev_registry = set_registry(registry)
    # The alignment probe rides along: aligned-width-prediction evidence
    # (narrow fraction, zero under-predictions) joins the numerics story.
    probe = AlignmentProbe()
    prev_probe = set_alignment_probe(probe)
    try:
        logits = np.asarray(model.forward(tokens, backend), dtype=np.float64)
        model.generate_cached(tokens[0, :4], args.gen_tokens, backend)
        monitor.observe_alignment(probe)
        monitor.publish(registry)
    finally:
        set_monitor(prev_monitor)
        set_cache(prev_cache)
        set_registry(prev_registry)
        set_alignment_probe(prev_probe)

    err_sq = float(((logits - ref_logits) ** 2).sum())
    ref_sq = float((ref_logits**2).sum())
    logits_sqnr = (
        float(10.0 * np.log10(ref_sq / err_sq))
        if ref_sq > 0 and err_sq > 0
        else None
    )

    report = bl.build_report(
        monitor,
        model="tinylm",
        backend=backend.name,
        seed=args.seed,
        gen_tokens=args.gen_tokens,
        logits_sqnr_db=logits_sqnr,
    )
    bl.validate_report(report)

    drift: list[str] | None = None
    if args.check is not None:
        golden = bl.load_report(args.check)
        tol = {}
        if args.sqnr_tol_db is not None:
            tol["sqnr_tol_db"] = args.sqnr_tol_db
        if args.clip_margin is not None:
            tol["clip_margin"] = args.clip_margin
        drift = bl.compare_reports(report, golden, **tol)

    md = bl.render_markdown(report, drift=drift)
    print(md, end="")
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if args.markdown_out is not None:
        args.markdown_out.write_text(md)
    if args.metrics_out is not None:
        args.metrics_out.write_text(registry.to_json() + "\n")
    if args.trace_out is not None:
        from repro.obs.tracer import Tracer

        tracer = Tracer(meta={"model": "tinylm", "backend": backend.name,
                              "seed": args.seed})
        monitor.annotate_tracer(tracer)
        args.trace_out.write_text(tracer.to_json() + "\n")
    return 1 if drift else 0
