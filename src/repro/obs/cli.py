"""``python -m repro profile`` — deterministic cycle/op profiles.

Two modes, both pure functions of configuration + seed (no wall clock):

* **schedule** (default): compile a model with the full-stack compiler and
  report its workload split, latency, and steady-state throughput; with
  ``--trace-out`` the compiled schedule is emitted as a per-unit
  Chrome-trace/Perfetto timeline whose critical path *is* the reported
  latency.
* **functional** (``--functional``): run the functional ``TinyLM`` under a
  chosen arithmetic backend with a :class:`repro.obs.profile.Profiler`
  attached, and report per-layer, per-precision cycle and op attribution
  (prefill forward + a cached greedy decode), plus ``backend.stats()``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

__all__ = ["add_profile_parser", "run_profile"]

_SCHEDULE_MODELS = ("deit-tiny", "deit-small", "deit-base",
                    "decoder-prefill", "decoder-decode")


def add_profile_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "profile",
        help="deterministic cycle/op profile of a compiled or functional model",
        description=__doc__,
    )
    p.add_argument("--model", choices=_SCHEDULE_MODELS, default="deit-tiny",
                   help="schedule mode: which model to compile")
    p.add_argument("--batch", type=int, default=1,
                   help="batch size for the compiled schedule")
    p.add_argument("--units", type=int, default=None,
                   help="number of processing units (default: clock config)")
    p.add_argument("--context", type=int, default=128,
                   help="decoder models: context length")
    p.add_argument("--dim", type=int, default=512,
                   help="decoder models: model width")
    p.add_argument("--depth", type=int, default=8,
                   help="decoder models: number of layers")
    p.add_argument("--heads", type=int, default=8,
                   help="decoder models: attention heads")
    p.add_argument("--vocab", type=int, default=32000,
                   help="decoder models: vocabulary size")
    p.add_argument("--functional", action="store_true",
                   help="profile the functional TinyLM instead of a schedule")
    p.add_argument("--backend", default="bfp8-mixed",
                   help="functional mode: arithmetic backend name")
    p.add_argument("--seed", type=int, default=0,
                   help="functional mode: model/token seed")
    p.add_argument("--gen-tokens", type=int, default=4,
                   help="functional mode: greedy decode steps to profile")
    p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                   help="schedule mode: write the per-unit schedule as "
                        "Chrome-trace/Perfetto JSON (timestamps are cycles)")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the profile as JSON")
    return p


def _compile(args):
    from repro.models.configs import CONFIGS
    from repro.runtime.scheduler import compile_decoder, compile_vit

    if args.model in CONFIGS:
        return compile_vit(CONFIGS[args.model], batch=args.batch)
    phase = args.model.split("-", 1)[1]
    return compile_decoder(
        vocab=args.vocab, dim=args.dim, depth=args.depth, n_heads=args.heads,
        context=args.context, phase=phase, batch=args.batch,
    )


def _run_schedule(args) -> int:
    from repro.eval.reporting import render_metrics, render_table
    from repro.obs.tracer import Tracer

    model = _compile(args)
    n = args.units or model.clock.n_units
    rows = model.workload_split(n)
    print(render_table(
        ["partition", "ops", "ops%", "cycles", "latency%"],
        [(r["name"], f"{r['ops']:.3g}", f"{r['ops_pct']:.1f}",
          r["cycles"], f"{r['latency_pct']:.1f}") for r in rows],
        title=f"workload split: {model.name}, batch {args.batch}, {n} units",
    ))
    print()
    summary = {
        "model": model.name,
        "batch": args.batch,
        "n_units": n,
        "latency_cycles": model.latency_cycles(n),
        "latency_s": model.latency_seconds(n),
        "throughput_items_per_s": model.throughput_items_per_s(n),
        "fp32_latency_share": model.fp32_latency_share(n),
        "unit_cycles_per_item": model.unit_cycles_per_item(),
    }
    print(render_metrics("schedule profile", summary))

    if args.trace_out is not None:
        tracer = Tracer(meta={
            "model": model.name,
            "batch": args.batch,
            "n_units": n,
            "clock_freq_hz": model.clock.freq_hz,
        })
        makespan = model.trace_schedule(tracer, n)
        args.trace_out.write_text(tracer.to_json() + "\n")
        print(f"\ntrace written to {args.trace_out} "
              f"({len(tracer.spans)} spans, makespan {makespan} cycles; "
              "open in ui.perfetto.dev)")
    if args.json_out is not None:
        args.json_out.write_text(json.dumps(
            {"summary": summary, "workload_split": rows},
            indent=2, sort_keys=True,
        ) + "\n")
    return 0


def _run_functional(args) -> int:
    import numpy as np

    from repro.eval.reporting import render_metrics
    from repro.models.backend import get_backend
    from repro.models.decoder import TinyLM
    from repro.obs.profile import Profiler

    backend = get_backend(args.backend)
    backend.profiler = Profiler()
    model = TinyLM(seed=args.seed)
    rng = np.random.default_rng(args.seed)
    tokens = rng.integers(0, model.vocab, size=(2, model.seq_len))

    with backend.scope("prefill"):
        model.forward(tokens, backend)
    with backend.scope("decode"):
        model.generate_cached(tokens[0, :4], args.gen_tokens, backend)

    print(backend.profiler.table(
        f"functional profile: TinyLM, backend {backend.name}, "
        f"seed {args.seed}"
    ))
    print()
    by_prec = backend.profiler.by_precision()
    total = backend.profiler.total_cycles()
    prec_summary = {
        f"cycles.{p}": g["cycles"] for p, g in sorted(by_prec.items())
    }
    prec_summary["cycles.total"] = total
    print(render_metrics("cycles by precision", prec_summary))
    print()
    print(render_metrics("backend stats", backend.stats()))

    if args.json_out is not None:
        args.json_out.write_text(json.dumps(
            {
                "backend": backend.name,
                "seed": args.seed,
                "profile": backend.profiler.as_dict(),
                "backend_stats": backend.stats(),
            },
            indent=2, sort_keys=True,
        ) + "\n")
    return 0


def run_profile(args) -> int:
    if args.functional:
        return _run_functional(args)
    return _run_schedule(args)
