"""Flight recorder: bounded ring buffers + triggered incident capture.

The recorder rides along a serving simulation the way NULL_MONITOR /
NULL_SLO peers do: the dispatcher calls one guarded hook per event kind
(``if recorder.enabled: ...``), each hook is a deque append plus a few
EWMA float ops, and the disabled :data:`NULL_RECORDER` path costs one
attribute read.  What it buys:

* **ring buffers of recent activity** — completed request summaries,
  queue-depth samples, batcher/plan/autoscaler decisions, numerics taps
  — bounded by :class:`RecorderConfig` capacities, so steady-state memory
  and per-event cost never grow with run length;
* **online triggers** — an :class:`~repro.obs.anomaly.AnomalyEngine`
  over latency / queue depth / batch occupancy / SQNR, the SLO
  sustained-burn threshold, and external gates (numerics drift);
* **incident bundles** — when a trigger fires, the recorder assembles a
  self-contained JSON bundle (ring contents, trigger cause chain,
  config/policy fingerprints, seeds, the exact sub-trace of the current
  capture epoch, detector state at epoch start, SLO window preload, a
  trace slice) and writes it to ``<out_dir>/<run>/<id>.json``.

**Deterministic replay** rests on *capture epochs*: an idle point —
empty batcher, every unit idle — implies no in-flight batches and no
open KV sessions, so the dispatcher at that instant is
dynamics-equivalent to a freshly constructed one.  The recorder marks an
epoch at every idle point and keeps the epoch's arrival rows verbatim
(rid/user/deadline preserved).  Re-simulating *only those arrivals* at
their absolute cycles, with the anomaly engine seeded from the
epoch-start snapshot and the SLO burn windows preloaded from the
completion ring, reproduces the epoch — and therefore the trigger —
cycle- and bit-exactly.  ``repro incident-replay``
(:mod:`repro.obs.incident_cli`) does exactly that from the bundle alone.

Epochs whose arrival capture overflows ``max_epoch_requests``, and
cluster captures (router RNG and autoscaler state span epochs), are
still *captured* but marked ``replay.supported = false`` with a reason.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError
from repro.obs.anomaly import AnomalyConfig, AnomalyEngine, Trigger
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "RecorderConfig",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "BUNDLE_SCHEMA_VERSION",
    "canonical_sha256",
]

BUNDLE_SCHEMA_VERSION = 1

#: Cap on spans serialized into a bundle's trace slice.
_TRACE_SLICE_CAP = 2000
#: Cap on the trigger cause chain kept per incident.
_CAUSE_CHAIN_CAP = 32


def canonical_sha256(obj) -> str:
    """SHA-256 of an object's canonical (sorted, compact) JSON form."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _request_row(ev: tuple) -> list:
    """Expand a request-ring entry (which holds a Request reference) to
    its serialized bundle row — done once at bundle close, never on the
    hot path."""
    if ev[0] == "done":
        _, req, cycle, missed = ev
        return ["done", req.rid, req.kind, req.arrival, cycle, int(missed)]
    _, req, cycle = ev
    return ["reject", req.rid, req.kind, cycle]


def _decision_row(ev: tuple) -> list:
    """Expand a decision-ring entry (dispatch rows hold a Batch
    reference) to its serialized bundle row."""
    if ev[0] == "dispatch":
        _, cycle, batch, unit = ev
        return ["dispatch", cycle, batch.phase, batch.size, unit]
    return list(ev)


@dataclass(frozen=True)
class RecorderConfig:
    """Ring capacities, trigger policy, and capture bounds.

    ``cooldown_cycles`` suppresses new incidents for a window after one
    closes (default 100 ms at 300 MHz) so a rough patch produces one
    bundle with a cause chain, not a bundle per completion.
    ``max_epoch_requests`` bounds the verbatim arrival capture per epoch;
    overflowing epochs stay captured but lose exact replay.
    """

    ring_requests: int = 512
    ring_metrics: int = 512
    ring_decisions: int = 256
    ring_numerics: int = 128
    max_epoch_requests: int = 4096
    cooldown_cycles: int = 30_000_000
    anomaly: AnomalyConfig = AnomalyConfig()

    def as_dict(self) -> dict:
        return {
            "ring_requests": self.ring_requests,
            "ring_metrics": self.ring_metrics,
            "ring_decisions": self.ring_decisions,
            "ring_numerics": self.ring_numerics,
            "max_epoch_requests": self.max_epoch_requests,
            "cooldown_cycles": self.cooldown_cycles,
            "anomaly": self.anomaly.as_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> RecorderConfig:
        kwargs = {k: doc[k] for k in (
            "ring_requests", "ring_metrics", "ring_decisions",
            "ring_numerics", "max_epoch_requests", "cooldown_cycles",
        ) if k in doc}
        if "anomaly" in doc:
            kwargs["anomaly"] = AnomalyConfig.from_dict(doc["anomaly"])
        return cls(**kwargs)


class FlightRecorder:
    """Always-on bounded recorder with triggered incident capture.

    ``capture`` is the context the driver wants embedded in every bundle
    (serve config snapshot, seeds, SLO config, injected-fault params) —
    everything a replay needs beyond what the recorder observes itself.
    ``out_dir`` of ``None`` keeps bundles in :attr:`incidents` only
    (tests); otherwise each bundle lands at ``out_dir/run/<id>.json``.
    ``replayable=False`` (cluster captures) marks every bundle
    replay-unsupported up front.
    """

    enabled = True

    def __init__(
        self,
        config: RecorderConfig = RecorderConfig(),
        *,
        run: str = "run",
        out_dir=None,
        capture: dict | None = None,
        tracer: Tracer = NULL_TRACER,
        replayable: bool = True,
        replayable_reason: str | None = None,
    ) -> None:
        self.config = config
        self.run = run
        self.out_dir = out_dir
        self.capture = dict(capture or {})
        self.tracer = tracer
        self.replayable = replayable
        self.replayable_reason = replayable_reason
        self.engine = AnomalyEngine(config.anomaly)
        # Direct detector refs (None = stream disabled): the hot hooks
        # skip the engine's dict lookup and only build a Trigger on the
        # rare firing path.  The arithmetic and field order must match
        # AnomalyEngine.observe exactly — replays compare bit-for-bit.
        det = self.engine.detectors
        self._lat_det = det.get("latency_cycles")
        self._queue_det = det.get("queue_depth")
        self._occ_det = det.get("batch_occupancy")
        self._sqnr_det = det.get("sqnr_db")
        # Rings of recent activity (append-only on the hot path).
        self.ring_requests: deque = deque(maxlen=config.ring_requests)
        self.ring_metrics: deque = deque(maxlen=config.ring_metrics)
        self.ring_decisions: deque = deque(maxlen=config.ring_decisions)
        self.ring_numerics: deque = deque(maxlen=config.ring_numerics)
        # Capture epoch (reset at every idle point).  Arrivals hold
        # Request references; completions hold (Request, cycle, missed).
        self.epoch_start = 0
        self._epoch_arrivals: list = []
        self._epoch_overflow = False
        self._epoch_completions: list[tuple] = []
        self._epoch_misses = 0
        self._epoch_rejections = 0
        self._epoch_snapshot = self.engine.state()
        self._snap_obs = -1  # forces re-snapshot check via n_obs
        # Incident lifecycle.
        self.incidents: list[dict] = []
        self.incident_paths: list = []
        self._active: dict | None = None
        self._cooldown_until = -1
        self.suppressed = 0
        self._seq = 0
        self._last_depth = -1
        self._snap_depth = -1
        self._policy = None  # set by bind_policy() when wired to a dispatcher

    # -- hot-path hooks (caller guards on ``recorder.enabled``) ---------------
    # Hot appends store *references* to the (frozen, immutable) Request
    # objects; the serializable rows are expanded only at bundle close —
    # tuple construction per event is the dominant steady-state cost.
    def record_arrival(self, req, now: int) -> None:
        ep = self._epoch_arrivals
        if len(ep) >= self.config.max_epoch_requests:
            self._epoch_overflow = True
            return
        ep.append(req)

    def record_rejection(self, req, now: int) -> None:
        self.ring_requests.append(("reject", req, now))
        self._epoch_rejections += 1

    def record_completion(self, req, now: int, missed: bool) -> None:
        self.ring_requests.append(("done", req, now, missed))
        self._epoch_completions.append((req, now, missed))
        if missed:
            self._epoch_misses += 1
        det = self._lat_det
        if det is not None:
            self.engine.n_obs += 1
            value = float(now - req.arrival)
            z = det.observe(value)
            if z is not None:
                self._on_trigger(self.engine.make_trigger(
                    det, "latency_cycles", now, value, z))

    def observe_queue(self, now: int, depth: int) -> None:
        # Sampled once per admitted arrival (see Dispatcher.admit) —
        # arrivals are deterministic, so a replay sees the identical
        # depth sequence; decode re-queue oscillation between arrivals
        # never reaches the detector.  Consecutive equal samples are
        # still deduplicated so the ring holds transitions only.
        if depth == self._last_depth:
            return
        self.ring_metrics.append((now, "queue_depth", depth))
        self._last_depth = depth
        det = self._queue_det
        if det is not None:
            self.engine.n_obs += 1
            z = det.observe(float(depth))
            if z is not None:
                self._on_trigger(self.engine.make_trigger(
                    det, "queue_depth", now, float(depth), z))

    def bind_policy(self, policy) -> None:
        """Give record_dispatch the batch policy so it can compute batch
        fill lazily — only when the occupancy detector is enabled."""
        self._policy = policy

    def record_dispatch(self, now: int, batch, unit: int,
                        plan_new: bool = False) -> None:
        self.ring_decisions.append(("dispatch", now, batch, unit))
        if plan_new:
            self.ring_decisions.append(
                ("plan_trace", now, f"{batch.phase}x{batch.size}"))
        det = self._occ_det
        if det is not None:
            if self._policy is None:
                raise ConfigurationError(
                    "batch-occupancy detector requires bind_policy() "
                    "before record_dispatch()")
            fill = batch.size / self._policy.batch_limit(batch.phase)
            self.engine.n_obs += 1
            z = det.observe(fill)
            if z is not None:
                self._on_trigger(self.engine.make_trigger(
                    det, "batch_occupancy", now, fill, z))

    def observe_burn(self, now: int, burn: float) -> None:
        self._on_trigger(self.engine.observe_burn(now, burn))

    def record_numerics(self, now: int, layer: str, precision: str,
                        role: str, sqnr_db: float) -> None:
        self.ring_numerics.append((now, layer, precision, role, sqnr_db))
        det = self._sqnr_det
        if det is not None:
            self.engine.n_obs += 1
            z = det.observe(sqnr_db)
            if z is not None:
                self._on_trigger(self.engine.make_trigger(
                    det, "sqnr_db", now, sqnr_db, z))

    def record_scale(self, now: int, event: dict) -> None:
        self.ring_decisions.append(("scale", now, dict(event)))

    def external_trigger(self, now: int, source: str, signal: str,
                         value: float, threshold: float = 0.0,
                         details: dict | None = None) -> None:
        self._on_trigger(self.engine.external(
            now, source, signal, value, threshold, details))

    def end_event(self, now: int, idle: bool) -> None:
        """Driver hook after each processed event; ``idle`` marks an
        idle point (empty batcher, all units idle) — the epoch boundary
        replay relies on."""
        if not idle:
            return
        if self._active is not None:
            self._close(now)
        self._mark_epoch(now)

    # -- incident lifecycle ---------------------------------------------------
    def active_incident_id(self) -> str | None:
        return self._active["id"] if self._active is not None else None

    def _on_trigger(self, trig: Trigger | None) -> None:
        if trig is None:
            return
        if self._active is not None:
            chain = self._active["cause_chain"]
            if len(chain) < _CAUSE_CHAIN_CAP:
                chain.append(trig.as_dict())
            return
        if trig.cycle < self._cooldown_until:
            self.suppressed += 1
            return
        self._active = {
            "id": f"inc-{self._seq:03d}",
            "opened_cycle": trig.cycle,
            "trigger": trig.as_dict(),
            "cause_chain": [],
        }
        self._seq += 1

    def _mark_epoch(self, now: int) -> None:
        self.epoch_start = now
        if self._epoch_arrivals:
            self._epoch_arrivals = []
            self._epoch_completions = []
        self._epoch_overflow = False
        self._epoch_misses = 0
        self._epoch_rejections = 0
        self._snap_depth = self._last_depth
        if self._snap_obs != self.engine.n_obs:
            self._epoch_snapshot = self.engine.state()
            self._snap_obs = self.engine.n_obs

    def _slo_preload(self) -> tuple[list, bool]:
        """Pre-epoch completion/rejection events still inside the long
        burn window, rebuilt from the request ring — plus whether the
        ring provably covers the whole window."""
        slo_cfg = self.capture.get("slo")
        if not slo_cfg:
            return [], True
        long_cycles = int(slo_cfg.get("long_window_cycles", 0))
        if long_cycles <= 0:
            return [], True
        lo = self.epoch_start - long_cycles
        out = []
        for ev in self.ring_requests:
            # ("done", req, cycle, missed) | ("reject", req, cycle)
            cycle = ev[2]
            if lo < cycle <= self.epoch_start:
                bad = bool(ev[3]) if ev[0] == "done" else True
                out.append([ev[1].kind, cycle, bad])
        # The preload is complete when the ring never wrapped, or its
        # oldest entry predates the window (so nothing inside was lost).
        if len(self.ring_requests) < (self.ring_requests.maxlen or 0):
            complete = True
        else:
            complete = self.ring_requests[0][2] <= lo
        return out, complete

    def _trace_slice(self, lo: int, hi: int) -> dict | None:
        if not self.tracer.enabled:
            return None
        spans = [asdict(s) for s in self.tracer.spans
                 if s.end >= lo and s.start <= hi][:_TRACE_SLICE_CAP]
        async_spans = [asdict(s) for s in self.tracer.async_spans
                       if s.end >= lo and s.start <= hi][:_TRACE_SLICE_CAP]
        return {"spans": spans, "async_spans": async_spans,
                "window": [lo, hi]}

    def _close(self, now: int) -> None:
        inc = self._active
        assert inc is not None
        self._active = None
        # Incidents only close at idle points, so the pre-close cooldown
        # is also the value that was in force at epoch start — a replay
        # must seed it to suppress the same early triggers.
        cooldown_at_epoch = self._cooldown_until
        self._cooldown_until = now + self.config.cooldown_cycles
        preload, preload_complete = self._slo_preload()
        supported, reason = True, None
        if not self.replayable:
            supported, reason = False, (self.replayable_reason
                                        or "capture is not replayable")
        elif self._epoch_overflow:
            supported, reason = False, (
                "epoch arrival capture overflowed "
                f"max_epoch_requests={self.config.max_epoch_requests}")
        elif self.capture.get("slo") and not preload_complete:
            # Burn values feed the threshold detector on every
            # completion; without the full window history they diverge.
            supported, reason = False, (
                "slo burn window history truncated by request-ring capacity")
        completions = [(req.rid, cycle, int(missed))
                       for req, cycle, missed in self._epoch_completions]
        expected = {
            "completed": len(completions),
            "deadline_misses": self._epoch_misses,
            "rejections": self._epoch_rejections,
            "completions_sha256": canonical_sha256(completions),
            "trigger": inc["trigger"],
        }
        serve_config = self.capture.get("serve_config")
        bundle = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "id": inc["id"],
            "run": self.run,
            "incident": {
                "id": inc["id"],
                "run": self.run,
                "opened_cycle": inc["opened_cycle"],
                "closed_cycle": now,
                "suppressed_before": self.suppressed,
            },
            "trigger": inc["trigger"],
            "cause_chain": inc["cause_chain"],
            "window": {"epoch_start": self.epoch_start, "closed_cycle": now},
            "detector_state": self._epoch_snapshot,
            "recorder_state": {
                "last_depth": self._snap_depth,
                "cooldown_until": cooldown_at_epoch,
                "suppressed": self.suppressed,
            },
            "rings": {
                "requests": [_request_row(ev) for ev in self.ring_requests],
                "metrics": [list(ev) for ev in self.ring_metrics],
                "decisions": [_decision_row(ev) for ev in self.ring_decisions],
                "numerics": [list(ev) for ev in self.ring_numerics],
            },
            "subtrace": {
                "requests": [[r.rid, r.kind, r.arrival, r.deadline,
                              r.prompt_tokens, r.gen_tokens, r.user]
                             for r in self._epoch_arrivals],
                "truncated": self._epoch_overflow,
            },
            "slo_preload": preload,
            "expected": expected,
            "capture": {**self.capture,
                        "recorder": self.config.as_dict()},
            "fingerprints": {
                "capture_sha256": canonical_sha256(self.capture),
                "config_sha256": canonical_sha256(serve_config),
                "policy_sha256": canonical_sha256(
                    (serve_config or {}).get("precision")),
                "anomaly_sha256": canonical_sha256(
                    self.config.anomaly.as_dict()),
            },
            "trace_slice": self._trace_slice(self.epoch_start, now),
            "replay": {"supported": supported, "reason": reason},
        }
        self.incidents.append(bundle)
        if self.out_dir is not None:
            from pathlib import Path

            path = Path(self.out_dir) / self.run / f"{inc['id']}.json"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(bundle, indent=2, sort_keys=True)
                            + "\n")
            self.incident_paths.append(path)

    def finalize(self, now: int) -> dict:
        """Close any open incident and return the run-level summary."""
        if self._active is not None:
            self._close(now)
        return {
            "incidents": len(self.incidents),
            "suppressed": self.suppressed,
            "epoch_start": self.epoch_start,
            "ring_sizes": {
                "requests": len(self.ring_requests),
                "metrics": len(self.ring_metrics),
                "decisions": len(self.ring_decisions),
                "numerics": len(self.ring_numerics),
            },
        }

    # -- replay support -------------------------------------------------------
    def preload_state(self, bundle: dict) -> None:
        """Seed engine + recorder state from a bundle's epoch-start
        snapshot, so a replay scores the epoch's samples against exactly
        the statistics the original run held."""
        self.engine.load_state(bundle.get("detector_state", {}))
        rs = bundle.get("recorder_state", {})
        self._last_depth = int(rs.get("last_depth", -1))
        self._snap_depth = self._last_depth
        self._cooldown_until = int(rs.get("cooldown_until", -1))
        self._epoch_snapshot = self.engine.state()
        self._snap_obs = self.engine.n_obs


class NullFlightRecorder(FlightRecorder):
    """Disabled recorder: every hook is a no-op behind one attr read."""

    enabled = False

    def __init__(self) -> None:  # no rings, no engine
        self.incidents = []
        self.incident_paths = []
        self.suppressed = 0

    def record_arrival(self, req, now) -> None:
        pass

    def record_rejection(self, req, now) -> None:
        pass

    def record_completion(self, req, now, missed) -> None:
        pass

    def observe_queue(self, now, depth) -> None:
        pass

    def bind_policy(self, policy) -> None:
        pass

    def record_dispatch(self, now, batch, unit, plan_new=False) -> None:
        pass

    def observe_burn(self, now, burn) -> None:
        pass

    def record_numerics(self, now, layer, precision, role, sqnr_db) -> None:
        pass

    def record_scale(self, now, event) -> None:
        pass

    def external_trigger(self, now, source, signal, value, threshold=0.0,
                         details=None) -> None:
        pass

    def end_event(self, now, idle) -> None:
        pass

    def active_incident_id(self) -> None:
        return None

    def finalize(self, now) -> dict:
        return {}


NULL_RECORDER = NullFlightRecorder()
