"""Online anomaly detection over serving signal streams.

The flight recorder (:mod:`repro.obs.recorder`) feeds a handful of named
signal streams — completion latency, queue depth, batch occupancy, SQNR
taps — into this engine as they happen.  Each stream gets an
exponentially-weighted mean/variance estimate and fires a
:class:`Trigger` when a sample's z-score against the *pre-update* state
crosses the configured threshold in the configured direction.  Two more
trigger sources compose in: a level-crossing detector over the SLO
sustained burn rate (:mod:`repro.obs.slo`), and external triggers pushed
by existing gates (the numerics drift gate, a CLI hook).

Everything here is a pure function of the observation sequence: no
wall-clock, no randomness.  Detector state is a few floats and is
snapshot/restorable (:meth:`AnomalyEngine.state` /
:meth:`AnomalyEngine.load_state`) so an incident replay can seed the
engine exactly as it stood at the start of the captured window and
reproduce the trigger bit-for-bit — the same EWMA arithmetic over the
same doubles in the same order yields the same z-score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt

from repro.errors import ConfigurationError

__all__ = [
    "DetectorConfig",
    "EwmaDetector",
    "ThresholdDetector",
    "Trigger",
    "AnomalyConfig",
    "AnomalyEngine",
]

_DIRECTIONS = ("high", "low", "both")


@dataclass(frozen=True)
class DetectorConfig:
    """One signal stream's EWMA z-score policy.

    ``min_std`` is an absolute floor on the standard deviation used for
    scoring; without it a near-constant stream (variance ~0) would fire
    on any jitter.  Pick it in the signal's own units: cycles for
    latency, items for queue depth, dB for SQNR.
    """

    signal: str
    alpha: float = 0.05
    z_threshold: float = 5.0
    warmup: int = 64
    direction: str = "high"
    min_std: float = 1e-9

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"detector {self.signal!r}: alpha must be in (0, 1], "
                f"got {self.alpha}"
            )
        if self.z_threshold <= 0.0:
            raise ConfigurationError(
                f"detector {self.signal!r}: z_threshold must be > 0, "
                f"got {self.z_threshold}"
            )
        if self.warmup < 1:
            raise ConfigurationError(
                f"detector {self.signal!r}: warmup must be >= 1, "
                f"got {self.warmup}"
            )
        if self.direction not in _DIRECTIONS:
            raise ConfigurationError(
                f"detector {self.signal!r}: direction must be one of "
                f"{_DIRECTIONS}, got {self.direction!r}"
            )


class EwmaDetector:
    """EWMA mean/variance with pre-update z-scoring.

    A sample is scored against the state *before* it is folded in, so a
    spike cannot hide inside the statistics it just inflated.  The state
    is exactly three numbers (count, mean, var) — cheap to snapshot at
    every capture-epoch boundary.
    """

    __slots__ = ("cfg", "count", "mean", "var")

    def __init__(self, cfg: DetectorConfig) -> None:
        self.cfg = cfg
        self.count = 0
        self.mean = 0.0
        self.var = 0.0

    def score(self, value: float) -> float | None:
        """z-score of ``value`` against current state; None during warmup."""
        if self.count < self.cfg.warmup:
            return None
        std = sqrt(self.var)
        if std < self.cfg.min_std:
            std = self.cfg.min_std
        return (value - self.mean) / std

    def update(self, value: float) -> None:
        if self.count == 0:
            self.mean = value
            self.var = 0.0
        else:
            diff = value - self.mean
            incr = self.cfg.alpha * diff
            self.mean += incr
            self.var = (1.0 - self.cfg.alpha) * (self.var + diff * incr)
        self.count += 1

    def observe(self, value: float) -> float | None:
        """Score then update; returns the firing z-score or ``None``.

        Fires when the pre-update z crosses ``z_threshold`` in the
        configured direction.  The body inlines :meth:`score` and
        :meth:`update` (identical arithmetic, identical order — replay
        exactness depends on it): this runs on the serving hot path for
        every completion and queue transition, and the two extra method
        calls are measurable there.
        """
        cfg = self.cfg
        count = self.count
        if count == 0:
            self.mean = value
            self.var = 0.0
            self.count = 1
            return None
        z = None
        if count >= cfg.warmup:
            std = sqrt(self.var)
            if std < cfg.min_std:
                std = cfg.min_std
            z = (value - self.mean) / std
        diff = value - self.mean
        incr = cfg.alpha * diff
        self.mean += incr
        self.var = (1.0 - cfg.alpha) * (self.var + diff * incr)
        self.count = count + 1
        if z is None:
            return None
        d = cfg.direction
        if d == "high" and z >= cfg.z_threshold:
            return z
        if d == "low" and z <= -cfg.z_threshold:
            return z
        if d == "both" and abs(z) >= cfg.z_threshold:
            return z
        return None

    def state(self) -> dict:
        return {"count": self.count, "mean": self.mean, "var": self.var}

    def load_state(self, doc: dict) -> None:
        self.count = int(doc["count"])
        self.mean = float(doc["mean"])
        self.var = float(doc["var"])


class ThresholdDetector:
    """Level-crossing detector: fires once per upward threshold crossing.

    Used for the SLO sustained-burn trigger — burn hovering above the
    threshold is *one* incident, not one per completion; the detector
    rearms only after the signal drops back below.
    """

    __slots__ = ("signal", "threshold", "above")

    def __init__(self, signal: str, threshold: float) -> None:
        self.signal = signal
        self.threshold = threshold
        self.above = False

    def observe(self, value: float) -> bool:
        crossed = value >= self.threshold and not self.above
        self.above = value >= self.threshold
        return crossed

    def state(self) -> dict:
        return {"above": self.above}

    def load_state(self, doc: dict) -> None:
        self.above = bool(doc["above"])


@dataclass(frozen=True)
class Trigger:
    """One fired anomaly: what, where in simulated time, and how far out.

    ``source`` is the trigger taxonomy root (``anomaly`` for EWMA
    detectors, ``slo_burn`` for the burn-rate threshold,
    ``numerics_drift`` / ``external`` for pushed triggers); ``signal``
    names the stream; ``zscore`` is ``None`` for non-EWMA sources.
    """

    cycle: int
    source: str
    signal: str
    value: float
    threshold: float
    zscore: float | None = None
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "source": self.source,
            "signal": self.signal,
            "value": self.value,
            "threshold": self.threshold,
            "zscore": self.zscore,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> Trigger:
        return cls(
            cycle=int(doc["cycle"]),
            source=doc["source"],
            signal=doc["signal"],
            value=float(doc["value"]),
            threshold=float(doc["threshold"]),
            zscore=(None if doc.get("zscore") is None
                    else float(doc["zscore"])),
            details=dict(doc.get("details", {})),
        )


@dataclass(frozen=True)
class AnomalyConfig:
    """Thresholds for the built-in signal streams.

    The EWMA defaults are deliberately conservative (z >= 5-6 on a
    pre-update score): steady-state serving must not page.  ``burn_threshold``
    is in SLO burn units — 1.0 means the error budget burns exactly at
    the objective rate; 8.0 (default) pages only on a severe sustained
    burn.  Set any z to ``0`` to disable that stream.
    """

    warmup: int = 64
    alpha: float = 0.05
    latency_z: float = 5.0
    #: absolute std floor for latency scoring, cycles.
    latency_min_std: float = 1000.0
    queue_z: float = 5.0
    queue_min_std: float = 2.0
    #: Per-dispatch batch fill is bimodal under mixed traffic (a lone vit
    #: dispatch is 1/1, a full decode group 8/8, a straggler 1/8), so
    #: z-scoring it against a running mean pages on normal traffic; the
    #: stream is opt-in (0 = disabled) for occupancy-collapse hunts.
    occupancy_z: float = 0.0
    occupancy_min_std: float = 0.1
    sqnr_z: float = 4.0
    sqnr_min_std: float = 1.0
    burn_threshold: float = 8.0

    def as_dict(self) -> dict:
        return {
            "warmup": self.warmup,
            "alpha": self.alpha,
            "latency_z": self.latency_z,
            "latency_min_std": self.latency_min_std,
            "queue_z": self.queue_z,
            "queue_min_std": self.queue_min_std,
            "occupancy_z": self.occupancy_z,
            "occupancy_min_std": self.occupancy_min_std,
            "sqnr_z": self.sqnr_z,
            "sqnr_min_std": self.sqnr_min_std,
            "burn_threshold": self.burn_threshold,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> AnomalyConfig:
        return cls(**{k: doc[k] for k in cls().as_dict() if k in doc})


#: (z attr, min_std attr, direction) per built-in EWMA stream.
_STREAMS = (
    ("latency_cycles", "latency_z", "latency_min_std", "high"),
    ("queue_depth", "queue_z", "queue_min_std", "high"),
    ("batch_occupancy", "occupancy_z", "occupancy_min_std", "both"),
    ("sqnr_db", "sqnr_z", "sqnr_min_std", "low"),
)
_SIGNAL_NAMES = frozenset(s for s, *_ in _STREAMS)


class AnomalyEngine:
    """The recorder's trigger brain: EWMA streams + burn threshold.

    :meth:`observe` routes a sample to its stream's detector and returns
    a :class:`Trigger` when it fires (``None`` otherwise — the common
    case, one branch and a few float ops).  Unknown signal names raise:
    a typo'd stream would otherwise silently never fire.
    """

    def __init__(self, config: AnomalyConfig = AnomalyConfig()) -> None:
        self.config = config
        #: Monotonic count of samples folded into any detector — the
        #: recorder's cheap "did state change since my last snapshot" test.
        self.n_obs = 0
        self.detectors: dict[str, EwmaDetector] = {}
        for signal, z_attr, std_attr, direction in _STREAMS:
            z = getattr(config, z_attr)
            if z <= 0:
                continue
            self.detectors[signal] = EwmaDetector(DetectorConfig(
                signal=signal,
                alpha=config.alpha,
                z_threshold=z,
                warmup=config.warmup,
                direction=direction,
                min_std=getattr(config, std_attr),
            ))
        self.burn = ThresholdDetector("slo_burn", config.burn_threshold)

    def observe(self, signal: str, cycle: int, value: float) -> Trigger | None:
        det = self.detectors.get(signal)
        if det is None:
            if signal not in _SIGNAL_NAMES:
                raise ConfigurationError(f"unknown anomaly signal {signal!r}")
            return None  # stream disabled by config
        self.n_obs += 1
        z = det.observe(value)
        if z is None:
            return None
        return self.make_trigger(det, signal, cycle, value, z)

    def make_trigger(self, det: EwmaDetector, signal: str, cycle: int,
                     value: float, z: float) -> Trigger:
        """Build the trigger for a fired EWMA stream.

        Split out so :class:`~repro.obs.recorder.FlightRecorder` hooks
        holding a direct detector reference can skip :meth:`observe`'s
        dict lookup yet produce a byte-identical trigger on the rare
        firing path."""
        return Trigger(cycle=cycle, source="anomaly", signal=signal,
                       value=value, threshold=det.cfg.z_threshold, zscore=z,
                       details={"mean": det.mean, "direction":
                                det.cfg.direction})

    def observe_burn(self, cycle: int, value: float) -> Trigger | None:
        self.n_obs += 1
        if not self.burn.observe(value):
            return None
        return Trigger(cycle=cycle, source="slo_burn", signal="slo_burn",
                       value=value, threshold=self.burn.threshold)

    def external(self, cycle: int, source: str, signal: str, value: float,
                 threshold: float = 0.0, details: dict | None = None,
                 ) -> Trigger:
        """Wrap an externally-detected condition (numerics drift gate,
        CLI-injected test trigger) as a first-class trigger."""
        return Trigger(cycle=cycle, source=source, signal=signal,
                       value=value, threshold=threshold,
                       details=dict(details or {}))

    # -- replay support -------------------------------------------------------
    def state(self) -> dict:
        """Exact detector state (fresh dicts — safe to keep across epochs)."""
        return {
            "streams": {s: d.state() for s, d in self.detectors.items()},
            "burn": self.burn.state(),
        }

    def load_state(self, doc: dict) -> None:
        for signal, st in doc.get("streams", {}).items():
            det = self.detectors.get(signal)
            if det is not None:
                det.load_state(st)
        if "burn" in doc:
            self.burn.load_state(doc["burn"])
