"""Layer-level profiler: per-layer, per-precision cycle and op attribution.

A :class:`Profiler` attaches to a :class:`repro.models.backend.
ComputeBackend`; the model pushes named scopes (``block0``, ``block0.attn``,
...) while it runs, and every backend primitive — a linear-layer matmul, a
non-linear evaluation — lands in the current scope with the operation count
it performed and the unit cycles the hardware cost model charges for it:

* **bfp8 / int8 matmuls** are costed with the Eqn-9 stream schedule of
  :func:`repro.runtime.compiler.plan_matmul` plus the AXI/HBM memory model
  (the same accounting the compiler's ``_matmul_stage`` uses);
* **fp32 matmuls** have no array mapping — they are charged through the
  4-lane vector personality, which is exactly the cliff the paper's bfp8
  slicing avoids (expect the fp32 backend's matmul cycles to dwarf bfp8's);
* **non-linear functions** are charged per element from their compiled
  vector program's static op count (Eqn-10 streams), with host escapes
  (division, max) counted separately.

Everything is analytic and deterministic — no wall clock — so a profile is
a reproducible artifact, comparable across commits.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from math import ceil

__all__ = [
    "ProfileEntry",
    "Profiler",
    "bfp_matmul_unit_cycles",
    "mode_matmul_unit_cycles",
    "fp32_elementwise_cycles",
    "nonlinear_op_counts",
]

_FP32_STREAM_ELEMS = 4 * 128  # one full (lanes x L) fp32 stream


def bfp_matmul_unit_cycles(m: int, k: int, n: int) -> int:
    """Unit-occupancy cycles of ``(m,k) @ (k,n)`` on the bfp8 array.

    Stream schedule from :func:`plan_matmul`, memory-inclusive per-stream
    cost from the perf layer — matching the compiler's stage costing.
    """
    from repro.perf.latency import measured_bfp_stream_cycles
    from repro.runtime.compiler import plan_matmul

    plan = plan_matmul(m, k, n)
    return plan.streams * measured_bfp_stream_cycles(plan.stream_len)


@lru_cache(maxsize=4096)
def mode_matmul_unit_cycles(m: int, k: int, n: int, mode: str) -> int:
    """Unit-occupancy cycles of ``(m,k) @ (k,n)`` under a registered
    unit mode (the trans-precision generalization of
    :func:`bfp_matmul_unit_cycles`)."""
    from repro.cost.modes import get_mode

    return get_mode(mode).matmul_cost(m, k, n).total_cycles


def fp32_elementwise_cycles(n_ops: int) -> int:
    """Cycles for ``n_ops`` elementwise fp32 operations on the vector unit."""
    from repro.perf.latency import measured_fp32_stream_cycles

    if n_ops <= 0:
        return 0
    chunks = ceil(n_ops / _FP32_STREAM_ELEMS)
    return chunks * measured_fp32_stream_cycles(128)


@lru_cache(maxsize=None)
def nonlinear_op_counts(kind: str) -> tuple[int, int]:
    """``(fpu_ops, host_ops)`` per element of a non-linear function.

    Taken from the compiled vector program's static op count; unknown
    kinds fall back to one mul + one add per element.
    """
    from repro.runtime import vector_ops

    builders = {
        "softmax": vector_ops.build_softmax,
        "gelu": vector_ops.build_gelu,
        "layernorm": vector_ops.build_layernorm,
        "rmsnorm": vector_ops.build_rmsnorm,
        "silu": vector_ops.build_silu,
        "swiglu": vector_ops.build_swiglu,
    }
    builder = builders.get(kind)
    if builder is None:
        return 2, 0
    pe = builder().static_op_count()
    return pe.fpu_total, pe.host


@dataclass
class ProfileEntry:
    """Accumulated cost of one (scope, precision, kind) bucket."""

    calls: int = 0
    ops: float = 0.0
    cycles: int = 0
    host_ops: float = 0.0


@dataclass
class Profiler:
    """Scope-stacked attribution of backend operations.

    Scopes nest (``block0`` -> ``block0.attn``); costs land in the
    innermost scope only, so summing all entries never double-counts.
    """

    entries: dict[tuple[str, str, str], ProfileEntry] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list)

    @contextmanager
    def scope(self, name: str):
        self._stack.append(name)
        try:
            yield self
        finally:
            self._stack.pop()

    @property
    def current_scope(self) -> str:
        return ".".join(self._stack) if self._stack else "<root>"

    # -- recording -----------------------------------------------------------
    def record(
        self,
        *,
        kind: str,
        precision: str,
        ops: float,
        cycles: int,
        host_ops: float = 0.0,
    ) -> None:
        key = (self.current_scope, precision, kind)
        e = self.entries.get(key)
        if e is None:
            e = self.entries[key] = ProfileEntry()
        e.calls += 1
        e.ops += ops
        e.cycles += cycles
        e.host_ops += host_ops

    def record_matmul(
        self, m: int, k: int, n: int, *, precision: str,
        array: bool | str | None = None,
    ) -> None:
        """One linear-layer matmul under the backend's matmul precision.

        ``array`` names the :mod:`repro.cost.modes` unit mode the matmul
        executes under (a string such as ``"bfp8_mac"`` / ``"fp16_dot"``).
        The boolean spellings survive for compatibility: ``True`` is the
        historical bfp8 array costing, ``False`` the MAC-by-MAC vector
        fallback, and ``None`` infers from the precision label (bfp/int
        map to the array — the legacy heuristic, which knows nothing of
        the minifloat formats).
        """
        macs = m * k * n
        if array is None:
            array = precision.startswith(("bfp", "int"))
        if isinstance(array, str):
            cycles = mode_matmul_unit_cycles(m, k, n, array)
        elif array:
            cycles = bfp_matmul_unit_cycles(m, k, n)
        else:
            # No array mapping: every MAC goes through the vector unit.
            cycles = fp32_elementwise_cycles(2 * macs)
        self.record(kind="matmul", precision=precision, ops=2.0 * macs,
                    cycles=cycles)

    def record_quantize(self, elements: int, *, precision: str) -> None:
        """Operand quantization the *emulation* performed for a matmul.

        The modeled hardware quantizes weights offline (Y-stationary
        residency) and activations in the streaming datapath, so no unit
        cycles are charged — the bucket exists to make the emulation's
        own quantization work visible, and to show it collapsing once
        the prepared-operand cache serves weights from residency.
        """
        self.record(kind="quantize", precision=precision,
                    ops=float(elements), cycles=0)

    def record_nonlinear(self, kind: str, elements: int, *, precision: str) -> None:
        fpu_per_el, host_per_el = nonlinear_op_counts(kind)
        fpu_ops = elements * fpu_per_el
        self.record(
            kind=kind,
            precision=precision,
            ops=2.0 * fpu_ops,
            cycles=fp32_elementwise_cycles(fpu_ops),
            host_ops=float(elements * host_per_el),
        )

    # -- summaries -----------------------------------------------------------
    def total_cycles(self) -> int:
        return sum(e.cycles for e in self.entries.values())

    def by_precision(self) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for (_, precision, _), e in sorted(self.entries.items()):
            g = out.setdefault(
                precision, {"calls": 0, "ops": 0.0, "cycles": 0, "host_ops": 0.0}
            )
            g["calls"] += e.calls
            g["ops"] += e.ops
            g["cycles"] += e.cycles
            g["host_ops"] += e.host_ops
        return out

    def by_scope(self, depth: int = 1) -> dict[str, dict]:
        """Aggregate to the top ``depth`` scope components (layer view)."""
        out: dict[str, dict] = {}
        for (scope, _, _), e in sorted(self.entries.items()):
            top = ".".join(scope.split(".")[:depth])
            g = out.setdefault(
                top, {"calls": 0, "ops": 0.0, "cycles": 0, "host_ops": 0.0}
            )
            g["calls"] += e.calls
            g["ops"] += e.ops
            g["cycles"] += e.cycles
            g["host_ops"] += e.host_ops
        return out

    def as_dict(self) -> dict:
        total = self.total_cycles()
        rows = []
        for (scope, precision, kind), e in sorted(
            self.entries.items(), key=lambda kv: (-kv[1].cycles, kv[0])
        ):
            rows.append(
                {
                    "scope": scope,
                    "precision": precision,
                    "kind": kind,
                    "calls": e.calls,
                    "ops": e.ops,
                    "cycles": e.cycles,
                    "host_ops": e.host_ops,
                    "cycles_pct": 100.0 * e.cycles / total if total else 0.0,
                }
            )
        return {
            "entries": rows,
            "by_precision": self.by_precision(),
            "total_cycles": total,
        }

    def table(self, title: str = "profile") -> str:
        from repro.eval.reporting import render_table

        doc = self.as_dict()
        rows = [
            (
                r["scope"], r["precision"], r["kind"], r["calls"],
                f"{r['ops']:.3g}", r["cycles"], f"{r['cycles_pct']:.1f}",
                int(r["host_ops"]),
            )
            for r in doc["entries"]
        ]
        return render_table(
            ["scope", "precision", "kind", "calls", "ops", "cycles",
             "cycles%", "host_ops"],
            rows,
            title=title,
        )
