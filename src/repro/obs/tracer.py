"""Cycle-domain tracer: hierarchical spans over simulated time.

Every timestamp recorded here is an **integer cycle** of the simulated
system clock — never the wall clock — so a trace is a pure function of
(workload trace, configuration, seed) and two runs with the same seed
produce byte-identical exports.

The export target is the Chrome trace event format, which Perfetto and
``chrome://tracing`` both render: each simulated board becomes one
process, each unit one named track (thread) under it, dispatched batches
become complete ("X") slices on the unit's track, request lifetimes
become async ("b"/"e") spans, queue depth becomes a counter ("C")
series, and cross-process causality (edge -> board -> edge) is carried
by flow ("s"/"t"/"f") events.  One tick of the viewer's time axis is one
clock cycle; the clock frequency rides along in ``otherData`` so
wall-time can always be recovered (``seconds = ts / clock_freq_hz``).

Request-path decomposition uses *async child spans*: every child shares
its parent's ``(cat, id)`` so Perfetto nests them under the request's
async span, and the named stages (:data:`REQUEST_STAGES`) tile the
request's end-to-end latency.  :class:`SpanContext` is the causal handle
a request carries across router/replica/shard boundaries; it enforces a
per-request span budget so a traced run stays bounded even for
pathological requests.

:class:`NullTracer` is the zero-overhead disabled path: every recording
method is a no-op and ``enabled`` is ``False`` so hot loops can skip even
argument construction.  Simulation code should accept a tracer argument
defaulting to :data:`NULL_TRACER`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_PROCESS",
    "REQUEST_STAGES",
    "Span",
    "CounterSample",
    "AsyncSpan",
    "FlowEvent",
    "RequestPathConfig",
    "SpanContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
]

#: The default process every track lands in unless a board process is
#: named explicitly.  Pid 0, so single-process traces are byte-identical
#: to the pre-cluster exporter.
DEFAULT_PROCESS = "repro-sim"

#: Child-span names a request's end-to-end latency decomposes into, in
#: lifecycle order.  The validator uses this set to tell stage spans from
#: their request parent; :mod:`repro.obs.slo` attributes latency to them.
REQUEST_STAGES = (
    "admit",
    "route",
    "queue",
    "batch_wait",
    "shard_compute",
    "allreduce",
    "pp_transfer",
    "respond",
)


@dataclass(frozen=True)
class Span:
    """One complete slice on a track: ``[start, end)`` in cycles."""

    name: str
    track: str
    start: int
    end: int
    cat: str = "sim"
    args: tuple[tuple[str, object], ...] = ()
    process: str = DEFAULT_PROCESS

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One sample of a counter series (rendered as a step graph)."""

    name: str
    cycle: int
    value: float


@dataclass(frozen=True)
class AsyncSpan:
    """A span that may overlap others on the same track (request lifetime).

    Spans sharing ``(cat, span_id)`` form one nesting group in Perfetto:
    the request parent plus its stage children.
    """

    name: str
    span_id: int
    start: int
    end: int
    cat: str = "request"
    args: tuple[tuple[str, object], ...] = ()
    process: str = DEFAULT_PROCESS


@dataclass(frozen=True)
class FlowEvent:
    """One arrow head/tail of a cross-process causal flow.

    ``phase`` is the Chrome flow phase: ``"s"`` (start), ``"t"`` (step),
    ``"f"`` (finish).  Flows with the same ``flow_id`` are stitched into
    one arrow chain by the viewer — and by the validator, which uses them
    to prove cross-process async parentage.
    """

    name: str
    flow_id: int
    cycle: int
    phase: str
    track: str
    process: str = DEFAULT_PROCESS


def _freeze_args(args: dict | None) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(args.items())) if args else ()


@dataclass
class Tracer:
    """Records spans/counters/flows keyed on simulated cycles.

    Tracks and processes are created on first use and keep registration
    order, so the exported thread/process ids are deterministic.  Thread
    ids are allocated per process; the default process is pid 0 so a
    single-process trace exports exactly as it did before boards existed.
    ``meta`` lands in the export's ``otherData`` (put the seed and
    workload shape there, never wall-clock values).
    """

    enabled: bool = True
    spans: list[Span] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)
    async_spans: list[AsyncSpan] = field(default_factory=list)
    flows: list[FlowEvent] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    _tracks: dict[tuple[str, str], int] = field(default_factory=dict)
    _procs: dict[str, int] = field(
        default_factory=lambda: {DEFAULT_PROCESS: 0}
    )

    # -- recording -----------------------------------------------------------
    def process_id(self, process: str) -> int:
        """Stable pid of a named process (registers it on first use)."""
        if process not in self._procs:
            self._procs[process] = len(self._procs)
        return self._procs[process]

    def track_id(self, track: str, process: str = DEFAULT_PROCESS) -> int:
        """Stable thread id of a named track (registers it on first use).

        Thread ids count up per process, so the first track of every
        board is tid 0 on that board's pid.
        """
        self.process_id(process)
        key = (process, track)
        if key not in self._tracks:
            self._tracks[key] = sum(
                1 for p, _ in self._tracks if p == process
            )
        return self._tracks[key]

    def span(
        self,
        name: str,
        *,
        track: str,
        start: int,
        end: int,
        cat: str = "sim",
        args: dict | None = None,
        process: str = DEFAULT_PROCESS,
    ) -> None:
        if end < start:
            raise ConfigurationError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        self.track_id(track, process)
        self.spans.append(
            Span(name, track, start, end, cat, _freeze_args(args), process)
        )

    def counter(self, name: str, *, cycle: int, value: float) -> None:
        self.counters.append(CounterSample(name, cycle, value))

    def async_span(
        self,
        name: str,
        *,
        span_id: int,
        start: int,
        end: int,
        cat: str = "request",
        args: dict | None = None,
        process: str = DEFAULT_PROCESS,
    ) -> None:
        if end < start:
            raise ConfigurationError(
                f"async span {name!r} ends before it starts ({end} < {start})"
            )
        self.process_id(process)
        self.async_spans.append(
            AsyncSpan(name, span_id, start, end, cat, _freeze_args(args), process)
        )

    def flow(
        self,
        phase: str,
        *,
        flow_id: int,
        cycle: int,
        track: str,
        process: str = DEFAULT_PROCESS,
        name: str = "request",
    ) -> None:
        """Record one flow arrow endpoint (``"s"``/``"t"``/``"f"``)."""
        if phase not in ("s", "t", "f"):
            raise ConfigurationError(f"unknown flow phase {phase!r}")
        self.track_id(track, process)
        self.flows.append(FlowEvent(name, flow_id, cycle, phase, track, process))

    # -- queries -------------------------------------------------------------
    def busy_cycles(self, *, track: str | None = None, cat: str | None = None) -> int:
        """Total span duration, optionally filtered by track / category."""
        return sum(
            s.duration
            for s in self.spans
            if (track is None or s.track == track)
            and (cat is None or s.cat == cat)
        )

    def tracks(self) -> list[str]:
        return [track for _, track in self._tracks]

    def processes(self) -> list[str]:
        return list(self._procs)

    # -- export --------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace event document (Perfetto-compatible).

        ``ts``/``dur`` are integer cycles (the viewer's "us" unit reads as
        cycles); ``otherData.clock_freq_hz`` converts to wall time.
        """
        events: list[dict] = []
        for process, pid in self._procs.items():
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process},
                }
            )
        for (process, track), tid in self._tracks.items():
            pid = self._procs[process]
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        for s in self.spans:
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.cat,
                    "ts": s.start,
                    "dur": s.duration,
                    "pid": self._procs[s.process],
                    "tid": self._tracks[(s.process, s.track)],
                    "args": dict(s.args),
                }
            )
        for a in self.async_spans:
            common = {
                "name": a.name,
                "cat": a.cat,
                "id": a.span_id,
                "pid": self._procs[a.process],
                "tid": 0,
            }
            events.append({"ph": "b", "ts": a.start, "args": dict(a.args), **common})
            events.append({"ph": "e", "ts": a.end, **common})
        for fl in self.flows:
            ev = {
                "ph": fl.phase,
                "name": fl.name,
                "cat": "flow",
                "id": fl.flow_id,
                "ts": fl.cycle,
                "pid": self._procs[fl.process],
                "tid": self._tracks[(fl.process, fl.track)],
            }
            if fl.phase == "f":
                ev["bp"] = "e"
            events.append(ev)
        for c in self.counters:
            events.append(
                {
                    "ph": "C",
                    "name": c.name,
                    "ts": c.cycle,
                    "pid": 0,
                    "args": {"value": c.value},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "cycles", **self.meta},
        }

    def to_json(self) -> str:
        """Deterministic serialization (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        )


class NullTracer(Tracer):
    """Disabled tracer: records nothing, costs (almost) nothing."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def span(self, name, *, track, start, end, cat="sim", args=None,
             process=DEFAULT_PROCESS) -> None:
        pass

    def counter(self, name, *, cycle, value) -> None:
        pass

    def async_span(self, name, *, span_id, start, end, cat="request",
                   args=None, process=DEFAULT_PROCESS) -> None:
        pass

    def flow(self, phase, *, flow_id, cycle, track,
             process=DEFAULT_PROCESS, name="request") -> None:
        pass


NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class RequestPathConfig:
    """Sampling/budget policy for request-path stage decomposition.

    ``detail_every`` samples full stage detail for 1-in-N requests
    (keyed on ``rid % detail_every == 0`` so the sample is deterministic
    and seed-stable); ``max_spans_per_request`` caps how many child spans
    one sampled request may record — a runaway decode can't flood the
    trace, it just stops decomposing and counts the drop.
    """

    detail_every: int = 1
    max_spans_per_request: int = 512

    def __post_init__(self) -> None:
        if self.detail_every < 1:
            raise ConfigurationError(
                f"detail_every must be >= 1, got {self.detail_every}"
            )
        if self.max_spans_per_request < 8:
            raise ConfigurationError(
                "max_spans_per_request must be >= 8 "
                f"(one request phase needs several), got {self.max_spans_per_request}"
            )

    def samples(self, rid: int) -> bool:
        return rid % self.detail_every == 0


class SpanContext:
    """Causal handle of one sampled request, carried across boundaries.

    Created at admission, threaded through router -> replica dispatcher ->
    sharded compute, and closed at completion.  Every :meth:`child` span
    shares the request's ``(cat, id)`` so Perfetto nests the stages under
    the request's async span regardless of which board (process) recorded
    them; :meth:`flow` draws the cross-process arrows that make the
    parentage explicit (and machine-checkable).
    """

    __slots__ = ("trace_id", "cat", "tracer", "remaining", "dropped")

    def __init__(self, trace_id: int, cat: str, tracer: Tracer,
                 budget: int) -> None:
        self.trace_id = trace_id
        self.cat = cat
        self.tracer = tracer
        self.remaining = budget
        self.dropped = 0

    def child(
        self,
        name: str,
        *,
        start: int,
        end: int,
        process: str = DEFAULT_PROCESS,
        args: dict | None = None,
    ) -> bool:
        """Record one named stage span; ``False`` when over budget."""
        if self.remaining <= 0:
            self.dropped += 1
            return False
        self.remaining -= 1
        self.tracer.async_span(
            name, span_id=self.trace_id, start=start, end=end,
            cat=self.cat, args=args, process=process,
        )
        return True

    def flow(self, phase: str, *, cycle: int, track: str,
             process: str = DEFAULT_PROCESS) -> bool:
        """Record one flow endpoint for this request (budgeted)."""
        if self.remaining <= 0:
            self.dropped += 1
            return False
        self.remaining -= 1
        self.tracer.flow(phase, flow_id=self.trace_id, cycle=cycle,
                         track=track, process=process)
        return True


_STAGE_SET = frozenset(REQUEST_STAGES)


def validate_chrome_trace(doc: dict) -> dict:
    """Validate a Chrome-trace document; returns summary stats.

    Checks the structural schema the exporter guarantees: required
    top-level keys, well-formed events per phase, non-negative integer
    timestamps/durations, matched async begin/end pairs, and — for the
    request-path decomposition — *cross-process async parentage*: every
    ``(cat, id)`` group containing stage-named children must contain
    exactly one request parent whose interval encloses all children, and
    a group whose events span multiple processes must be stitched by flow
    events (an ``"s"`` start, plus at least one flow endpoint on every
    process the group touches, none earlier than the start).  Raises
    :class:`~repro.errors.ConfigurationError` on the first violation —
    used by the test suite and the CI smoke job.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError("trace document must be a JSON object")
    for key in ("traceEvents", "otherData"):
        if key not in doc:
            raise ConfigurationError(f"trace document missing {key!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ConfigurationError("traceEvents must be a non-empty list")
    stats = {"X": 0, "M": 0, "C": 0, "b": 0, "e": 0, "s": 0, "t": 0, "f": 0}
    open_async: dict[tuple, int] = {}
    declared_pids: set[int] = set()
    event_pids: set[int] = set()
    # (cat, id) -> per-name [min_b, max_e, count_b], plus the group's pids.
    groups: dict[tuple, dict[str, list[int]]] = {}
    group_pids: dict[tuple, set[int]] = {}
    flow_starts: dict[int, int] = {}
    flow_followers: list[tuple[int, int, int]] = []  # (id, ts, event index)
    flow_pids: dict[int, set[int]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ConfigurationError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in stats:
            raise ConfigurationError(f"event {i} has unknown phase {ph!r}")
        stats[ph] += 1
        if "name" not in ev or "pid" not in ev:
            raise ConfigurationError(f"event {i} missing name/pid")
        if ph == "M":
            if ev["name"] == "process_name":
                declared_pids.add(ev["pid"])
            continue
        event_pids.add(ev["pid"])
        ts = ev.get("ts")
        if not isinstance(ts, int) or ts < 0:
            raise ConfigurationError(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ConfigurationError(f"event {i} has bad dur {dur!r}")
            if "tid" not in ev:
                raise ConfigurationError(f"event {i} missing tid")
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                raise ConfigurationError(f"counter event {i} missing args.value")
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ConfigurationError(
                        f"async end without begin at event {i}: {key}"
                    )
                open_async[key] -= 1
            gkey = (ev.get("cat"), ev.get("id"))
            per_name = groups.setdefault(gkey, {})
            rec = per_name.setdefault(ev["name"], [None, None, 0])
            if ph == "b":
                rec[0] = ts if rec[0] is None else min(rec[0], ts)
                rec[2] += 1
            else:
                rec[1] = ts if rec[1] is None else max(rec[1], ts)
            group_pids.setdefault(gkey, set()).add(ev["pid"])
        else:  # flow s/t/f
            fid = ev.get("id")
            if fid is None:
                raise ConfigurationError(f"flow event {i} missing id")
            if "tid" not in ev:
                raise ConfigurationError(f"flow event {i} missing tid")
            if ph == "s":
                prev = flow_starts.get(fid)
                flow_starts[fid] = ts if prev is None else min(prev, ts)
            else:
                flow_followers.append((fid, ts, i))
            flow_pids.setdefault(fid, set()).add(ev["pid"])
    dangling = [k for k, n in open_async.items() if n]
    if dangling:
        raise ConfigurationError(f"unclosed async spans: {dangling[:3]}")
    undeclared = event_pids - declared_pids
    if undeclared:
        raise ConfigurationError(
            f"events reference pids without process_name metadata: "
            f"{sorted(undeclared)[:5]}"
        )
    for fid, ts, i in flow_followers:
        start = flow_starts.get(fid)
        if start is None:
            raise ConfigurationError(
                f"flow step/finish without start at event {i} (id {fid})"
            )
        if ts < start:
            raise ConfigurationError(
                f"flow id {fid} steps at {ts} before its start at {start}"
            )
    for gkey, per_name in groups.items():
        stage_names = [n for n in per_name if n in _STAGE_SET]
        if not stage_names:
            continue
        parents = [n for n in per_name if n not in _STAGE_SET]
        if len(parents) != 1:
            raise ConfigurationError(
                f"async group {gkey} has stage children but "
                f"{len(parents)} parents: {sorted(parents)[:3]}"
            )
        pb, pe, _ = per_name[parents[0]]
        for n in stage_names:
            cb, ce, _ = per_name[n]
            if cb < pb or ce > pe:
                raise ConfigurationError(
                    f"async group {gkey} child {n!r} [{cb}, {ce}] escapes "
                    f"parent {parents[0]!r} [{pb}, {pe}]"
                )
        pids = group_pids[gkey]
        if len(pids) > 1:
            fid = gkey[1]
            if fid not in flow_starts:
                raise ConfigurationError(
                    f"async group {gkey} spans pids {sorted(pids)} "
                    f"without a flow start"
                )
            missing = pids - flow_pids.get(fid, set())
            if missing:
                raise ConfigurationError(
                    f"async group {gkey} touches pids {sorted(missing)} "
                    f"with no flow endpoint linking them"
                )
    return stats
