"""Cycle-domain tracer: hierarchical spans over simulated time.

Every timestamp recorded here is an **integer cycle** of the simulated
system clock — never the wall clock — so a trace is a pure function of
(workload trace, configuration, seed) and two runs with the same seed
produce byte-identical exports.

The export target is the Chrome trace event format, which Perfetto and
``chrome://tracing`` both render: each simulated unit becomes one named
track (thread), dispatched batches become complete ("X") slices on the
unit's track, request lifetimes become async ("b"/"e") spans, and queue
depth becomes a counter ("C") series.  One tick of the viewer's time axis
is one clock cycle; the clock frequency rides along in ``otherData`` so
wall-time can always be recovered (``seconds = ts / clock_freq_hz``).

:class:`NullTracer` is the zero-overhead disabled path: every recording
method is a no-op and ``enabled`` is ``False`` so hot loops can skip even
argument construction.  Simulation code should accept a tracer argument
defaulting to :data:`NULL_TRACER`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "Span",
    "CounterSample",
    "AsyncSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_chrome_trace",
]

_PID = 0  # single simulated process; tracks are threads under it


@dataclass(frozen=True)
class Span:
    """One complete slice on a track: ``[start, end)`` in cycles."""

    name: str
    track: str
    start: int
    end: int
    cat: str = "sim"
    args: tuple[tuple[str, object], ...] = ()

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """One sample of a counter series (rendered as a step graph)."""

    name: str
    cycle: int
    value: float


@dataclass(frozen=True)
class AsyncSpan:
    """A span that may overlap others on the same track (request lifetime)."""

    name: str
    span_id: int
    start: int
    end: int
    cat: str = "request"
    args: tuple[tuple[str, object], ...] = ()


def _freeze_args(args: dict | None) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(args.items())) if args else ()


@dataclass
class Tracer:
    """Records spans/counters/instants keyed on simulated cycles.

    Tracks are created on first use and keep registration order, so the
    exported thread ids are deterministic.  ``meta`` lands in the export's
    ``otherData`` (put the seed and workload shape there, never wall-clock
    values).
    """

    enabled: bool = True
    spans: list[Span] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)
    async_spans: list[AsyncSpan] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    _tracks: dict[str, int] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------
    def track_id(self, track: str) -> int:
        """Stable thread id of a named track (registers it on first use)."""
        if track not in self._tracks:
            self._tracks[track] = len(self._tracks)
        return self._tracks[track]

    def span(
        self,
        name: str,
        *,
        track: str,
        start: int,
        end: int,
        cat: str = "sim",
        args: dict | None = None,
    ) -> None:
        if end < start:
            raise ConfigurationError(
                f"span {name!r} ends before it starts ({end} < {start})"
            )
        self.track_id(track)
        self.spans.append(Span(name, track, start, end, cat, _freeze_args(args)))

    def counter(self, name: str, *, cycle: int, value: float) -> None:
        self.counters.append(CounterSample(name, cycle, value))

    def async_span(
        self,
        name: str,
        *,
        span_id: int,
        start: int,
        end: int,
        cat: str = "request",
        args: dict | None = None,
    ) -> None:
        if end < start:
            raise ConfigurationError(
                f"async span {name!r} ends before it starts ({end} < {start})"
            )
        self.async_spans.append(
            AsyncSpan(name, span_id, start, end, cat, _freeze_args(args))
        )

    # -- queries -------------------------------------------------------------
    def busy_cycles(self, *, track: str | None = None, cat: str | None = None) -> int:
        """Total span duration, optionally filtered by track / category."""
        return sum(
            s.duration
            for s in self.spans
            if (track is None or s.track == track)
            and (cat is None or s.cat == cat)
        )

    def tracks(self) -> list[str]:
        return list(self._tracks)

    # -- export --------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome trace event document (Perfetto-compatible).

        ``ts``/``dur`` are integer cycles (the viewer's "us" unit reads as
        cycles); ``otherData.clock_freq_hz`` converts to wall time.
        """
        events: list[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": _PID,
                "tid": 0,
                "args": {"name": "repro-sim"},
            }
        ]
        for track, tid in self._tracks.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )
        for s in self.spans:
            events.append(
                {
                    "ph": "X",
                    "name": s.name,
                    "cat": s.cat,
                    "ts": s.start,
                    "dur": s.duration,
                    "pid": _PID,
                    "tid": self._tracks[s.track],
                    "args": dict(s.args),
                }
            )
        for a in self.async_spans:
            common = {
                "name": a.name,
                "cat": a.cat,
                "id": a.span_id,
                "pid": _PID,
                "tid": 0,
            }
            events.append({"ph": "b", "ts": a.start, "args": dict(a.args), **common})
            events.append({"ph": "e", "ts": a.end, **common})
        for c in self.counters:
            events.append(
                {
                    "ph": "C",
                    "name": c.name,
                    "ts": c.cycle,
                    "pid": _PID,
                    "args": {"value": c.value},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": "cycles", **self.meta},
        }

    def to_json(self) -> str:
        """Deterministic serialization (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_chrome_trace(), sort_keys=True, separators=(",", ":")
        )


class NullTracer(Tracer):
    """Disabled tracer: records nothing, costs (almost) nothing."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def span(self, name, *, track, start, end, cat="sim", args=None) -> None:
        pass

    def counter(self, name, *, cycle, value) -> None:
        pass

    def async_span(self, name, *, span_id, start, end, cat="request", args=None) -> None:
        pass


NULL_TRACER = NullTracer()


def validate_chrome_trace(doc: dict) -> dict:
    """Validate a Chrome-trace document; returns summary stats.

    Checks the structural schema the exporter guarantees: required
    top-level keys, well-formed events per phase, non-negative integer
    timestamps/durations, and matched async begin/end pairs.  Raises
    :class:`~repro.errors.ConfigurationError` on the first violation —
    used by the test suite and the CI smoke job.
    """
    if not isinstance(doc, dict):
        raise ConfigurationError("trace document must be a JSON object")
    for key in ("traceEvents", "otherData"):
        if key not in doc:
            raise ConfigurationError(f"trace document missing {key!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ConfigurationError("traceEvents must be a non-empty list")
    stats = {"X": 0, "M": 0, "C": 0, "b": 0, "e": 0}
    open_async: dict[tuple, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ConfigurationError(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in stats:
            raise ConfigurationError(f"event {i} has unknown phase {ph!r}")
        stats[ph] += 1
        if "name" not in ev or "pid" not in ev:
            raise ConfigurationError(f"event {i} missing name/pid")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, int) or ts < 0:
                raise ConfigurationError(f"event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ConfigurationError(f"event {i} has bad dur {dur!r}")
            if "tid" not in ev:
                raise ConfigurationError(f"event {i} missing tid")
        if ph == "C" and "value" not in ev.get("args", {}):
            raise ConfigurationError(f"counter event {i} missing args.value")
        if ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"), ev.get("name"))
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ConfigurationError(
                        f"async end without begin at event {i}: {key}"
                    )
                open_async[key] -= 1
    dangling = [k for k, n in open_async.items() if n]
    if dangling:
        raise ConfigurationError(f"unclosed async spans: {dangling[:3]}")
    return stats
