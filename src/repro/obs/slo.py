"""Serving SLOs: per-class latency objectives, error budgets, burn rates.

An SLO here is "fraction of requests that meet their deadline" per
request class (``vit`` / ``llm``), with the deadline itself carried on
each request (set by the traffic generator from the per-class deadline
knobs).  The tracker turns the dispatcher's completion/rejection stream
into:

* **error budgets** — a 99% objective leaves a 1% budget; the run-level
  ``budget_consumed`` is the miss fraction over that budget;
* **burn rates** — the classic multi-window form: the miss fraction
  inside a sliding window divided by the budget.  Burn 1.0 means missing
  exactly at the objective boundary; burn 10 means the budget burns ten
  times too fast.  Alerting (and the autoscaler's burn trigger) uses
  ``min(short_window_burn, long_window_burn)`` so a single transient
  spike (short high, long low) and a long-decayed incident (long high,
  short low) both stay quiet — only a *sustained, current* burn fires.

Everything is recorded in integer cycles of the simulated clock, so
tracker output is a pure function of (trace, config, seed).
:data:`NULL_SLO` is the zero-overhead disabled path, following the same
null-object discipline as :data:`~repro.obs.tracer.NULL_TRACER`.

The second half of this module reconstructs per-request records from an
exported Chrome trace *alone* (:func:`requests_from_trace`) and builds
the ``repro slo-report`` artifact (:func:`slo_report_from_trace`): stage
attribution over :data:`~repro.obs.tracer.REQUEST_STAGES`, per-class
miss fractions recomputed from span endpoints and deadlines, and
coverage (how much of each sampled request's latency the named stages
explain).  The dispatcher's own ``deadline_miss_rate`` must be exactly
reproducible this way — that round trip is CI-enforced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.tracer import REQUEST_STAGES
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = [
    "SLOClass",
    "SLOConfig",
    "SLOTracker",
    "NullSLOTracker",
    "NULL_SLO",
    "requests_from_trace",
    "slo_report_from_trace",
]

_STAGE_SET = frozenset(REQUEST_STAGES)


@dataclass(frozen=True)
class SLOClass:
    """One request class's latency objective.

    ``objective`` is the target fraction of requests meeting their
    deadline (e.g. 0.99); its complement is the error budget.
    """

    name: str
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ConfigurationError(
                f"SLO objective for {self.name!r} must be in (0, 1), "
                f"got {self.objective}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class SLOConfig:
    """Objectives plus the two burn-rate windows (in milliseconds).

    The short window catches a current spike, the long window proves it
    is sustained; both must burn for an alert/scale trigger.  Rejections
    (503 sheds) count against the budget by default — a shed user missed
    their deadline as far as the SLO is concerned.
    """

    classes: tuple[SLOClass, ...] = (SLOClass("vit"), SLOClass("llm"))
    short_window_ms: float = 250.0
    long_window_ms: float = 1000.0
    count_rejections: bool = True

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("SLOConfig needs at least one class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO class names: {names}")
        if not 0.0 < self.short_window_ms < self.long_window_ms:
            raise ConfigurationError(
                "need 0 < short_window_ms < long_window_ms, got "
                f"{self.short_window_ms} / {self.long_window_ms}"
            )


class _WindowCounter:
    """Sliding-window good/bad event counter over integer cycles."""

    __slots__ = ("window", "events", "bad")

    def __init__(self, window_cycles: int) -> None:
        self.window = window_cycles
        self.events: deque[tuple[int, bool]] = deque()
        self.bad = 0

    def add(self, cycle: int, is_bad: bool) -> None:
        self.events.append((cycle, is_bad))
        if is_bad:
            self.bad += 1
        self.prune(cycle)

    def prune(self, now: int) -> None:
        cutoff = now - self.window
        ev = self.events
        while ev and ev[0][0] <= cutoff:
            _, was_bad = ev.popleft()
            if was_bad:
                self.bad -= 1

    def bad_fraction(self, now: int) -> float:
        self.prune(now)
        return self.bad / len(self.events) if self.events else 0.0


class _ClassState:
    __slots__ = ("klass", "completed", "misses", "rejected",
                 "short", "long", "peak_burn", "miss_latencies")

    def __init__(self, klass: SLOClass, short_cycles: int,
                 long_cycles: int) -> None:
        self.klass = klass
        self.completed = 0
        self.misses = 0
        self.rejected = 0
        self.short = _WindowCounter(short_cycles)
        self.long = _WindowCounter(long_cycles)
        self.peak_burn = 0.0

    def burn(self, now: int) -> tuple[float, float]:
        budget = self.klass.error_budget
        return (self.short.bad_fraction(now) / budget,
                self.long.bad_fraction(now) / budget)


class SLOTracker:
    """Accumulates per-class deadline outcomes into budgets and burns."""

    enabled = True

    def __init__(self, config: SLOConfig = SLOConfig(), *,
                 clock: ClockConfig = DEFAULT_CLOCK) -> None:
        self.config = config
        self.clock = clock
        self._short_cycles = max(1, int(config.short_window_ms * 1e-3
                                        * clock.freq_hz))
        self._long_cycles = max(1, int(config.long_window_ms * 1e-3
                                       * clock.freq_hz))
        self._classes: dict[str, _ClassState] = {
            c.name: _ClassState(c, self._short_cycles, self._long_cycles)
            for c in config.classes
        }

    def _state(self, kind: str) -> _ClassState:
        st = self._classes.get(kind)
        if st is None:
            # Unconfigured class: adopt the default objective rather than
            # silently dropping its outcomes from the budget.
            st = _ClassState(SLOClass(kind), self._short_cycles,
                             self._long_cycles)
            self._classes[kind] = st
        return st

    def _observe(self, st: _ClassState, now: int, is_bad: bool) -> None:
        st.short.add(now, is_bad)
        st.long.add(now, is_bad)
        s, lo = st.burn(now)
        st.peak_burn = max(st.peak_burn, min(s, lo))

    # -- recording -----------------------------------------------------------
    def record_completion(self, req, now: int) -> bool:
        """Record one completion; returns ``True`` when it missed."""
        st = self._state(req.kind)
        missed = req.deadline is not None and now > req.deadline
        st.completed += 1
        if missed:
            st.misses += 1
        self._observe(st, now, missed)
        return missed

    def record_rejection(self, req, now: int) -> None:
        st = self._state(req.kind)
        st.rejected += 1
        if self.config.count_rejections:
            self._observe(st, now, True)

    def preload(self, kind: str, cycle: int, is_bad: bool) -> None:
        """Seed the burn windows with pre-run history (incident replay).

        Feeds only the sliding windows — not the lifetime
        completed/miss/rejection counters and not ``peak_burn`` — so a
        replayed window reports the same burn *values* the original run
        computed without inventing requests it never served.  Call in
        non-decreasing cycle order.
        """
        st = self._state(kind)
        st.short.add(cycle, is_bad)
        st.long.add(cycle, is_bad)

    # -- queries -------------------------------------------------------------
    def class_burn(self, kind: str, now: int) -> float:
        """Alert-grade burn of one class: min(short, long) window burn."""
        st = self._classes.get(kind)
        if st is None:
            return 0.0
        s, lo = st.burn(now)
        return min(s, lo)

    def fleet_burn(self, now: int) -> float:
        """Worst sustained burn across classes (the autoscaler signal)."""
        burns = [self.class_burn(k, now) for k in self._classes]
        return max(burns) if burns else 0.0

    def burn_rates(self, now: int) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for name, st in self._classes.items():
            s, lo = st.burn(now)
            out[name] = {"short": s, "long": lo, "sustained": min(s, lo)}
        return out

    def snapshot(self, now: int) -> dict:
        """JSON-ready run summary: budgets, misses, burns per class."""
        classes: dict[str, dict] = {}
        for name, st in sorted(self._classes.items()):
            total_bad = st.misses + (st.rejected
                                     if self.config.count_rejections else 0)
            denom = st.completed + (st.rejected
                                    if self.config.count_rejections else 0)
            bad_fraction = total_bad / denom if denom else 0.0
            s, lo = st.burn(now)
            classes[name] = {
                "objective": st.klass.objective,
                "error_budget": st.klass.error_budget,
                "completed": st.completed,
                "deadline_misses": st.misses,
                "rejected": st.rejected,
                "miss_fraction": (st.misses / st.completed
                                  if st.completed else 0.0),
                "bad_fraction": bad_fraction,
                "budget_consumed": bad_fraction / st.klass.error_budget,
                "burn_short": s,
                "burn_long": lo,
                "burn_sustained": min(s, lo),
                "peak_burn_sustained": st.peak_burn,
            }
        return {
            "short_window_ms": self.config.short_window_ms,
            "long_window_ms": self.config.long_window_ms,
            "count_rejections": self.config.count_rejections,
            "fleet_burn": self.fleet_burn(now),
            "classes": classes,
        }


class NullSLOTracker(SLOTracker):
    """Disabled SLO path: records nothing, costs (almost) nothing."""

    enabled = False

    def __init__(self) -> None:  # no per-class state at all
        self.config = SLOConfig()
        self.clock = DEFAULT_CLOCK
        self._classes = {}

    def record_completion(self, req, now) -> bool:
        return False

    def record_rejection(self, req, now) -> None:
        pass

    def class_burn(self, kind, now) -> float:
        return 0.0

    def fleet_burn(self, now) -> float:
        return 0.0

    def snapshot(self, now) -> dict:
        return {}


NULL_SLO = NullSLOTracker()


# -- trace reconstruction ----------------------------------------------------

def requests_from_trace(doc: dict) -> list[dict]:
    """Rebuild per-request records from a Chrome-trace document alone.

    Groups async events by ``(cat, id)``; the span whose name is not a
    known stage is the request parent, everything else is stage detail.
    Returns one record per request with recomputed latency, deadline
    outcome (from the parent's begin args), per-stage attributed cycles,
    and coverage (attributed / latency) for requests that carry stage
    detail (``detailed=True`` — the 1-in-N sampled ones).
    """
    groups: dict[tuple, dict[str, dict[str, list[int]]]] = {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph not in ("b", "e") or ev.get("cat") == "flow":
            continue
        gkey = (ev["cat"], ev["id"])
        per_name = groups.setdefault(gkey, {})
        rec = per_name.setdefault(ev["name"], {"b": [], "e": [], "args": []})
        rec[ph].append(ev["ts"])
        if ph == "b":
            rec["args"].append(ev.get("args", {}))
    out: list[dict] = []
    for (cat, rid), per_name in sorted(groups.items(),
                                       key=lambda kv: (str(kv[0][0]), kv[0][1])):
        parents = [n for n in per_name if n not in _STAGE_SET]
        if len(parents) != 1:
            raise ConfigurationError(
                f"request group ({cat}, {rid}) has {len(parents)} parent "
                f"spans; expected exactly 1"
            )
        p = per_name[parents[0]]
        if len(p["b"]) != 1 or len(p["e"]) != 1:
            raise ConfigurationError(
                f"request group ({cat}, {rid}) parent must be a single "
                f"begin/end pair"
            )
        start, end = p["b"][0], p["e"][0]
        args = p["args"][0] if p["args"] else {}
        stages: dict[str, int] = {}
        for name in REQUEST_STAGES:
            rec = per_name.get(name)
            if rec is None:
                continue
            if len(rec["b"]) != len(rec["e"]):
                raise ConfigurationError(
                    f"request group ({cat}, {rid}) stage {name!r} has "
                    f"unmatched begin/end counts"
                )
            stages[name] = sum(
                e - b for b, e in zip(sorted(rec["b"]), sorted(rec["e"]))
            )
        latency = end - start
        detailed = bool(stages)
        attributed = sum(stages.values())
        deadline = args.get("deadline")
        out.append({
            "rid": rid,
            "kind": cat,
            "start": start,
            "end": end,
            "latency": latency,
            "deadline": deadline,
            "missed": deadline is not None and end > deadline,
            "detailed": detailed,
            "stages": stages,
            "attributed": attributed,
            "coverage": (attributed / latency if latency else 1.0)
                        if detailed else None,
        })
    return out


def slo_report_from_trace(
    doc: dict,
    *,
    objectives: dict[str, float] | None = None,
) -> dict:
    """Build the ``repro slo-report`` artifact from a trace document.

    ``objectives`` maps class name to target fraction (default 0.99 per
    class).  All miss accounting is recomputed from span endpoints and
    the deadlines stamped in the parent spans' args — nothing is taken
    from the run summary, which is what makes the summary round trip a
    real check.
    """
    requests = requests_from_trace(doc)
    if not requests:
        raise ConfigurationError("trace contains no request spans")
    objectives = objectives or {}

    by_class: dict[str, list[dict]] = {}
    for r in requests:
        by_class.setdefault(r["kind"], []).append(r)
    classes: dict[str, dict] = {}
    for kind, rs in sorted(by_class.items()):
        misses = sum(1 for r in rs if r["missed"])
        objective = objectives.get(kind, 0.99)
        budget = 1.0 - objective
        miss_fraction = misses / len(rs)
        classes[kind] = {
            "requests": len(rs),
            "deadline_misses": misses,
            "miss_fraction": miss_fraction,
            "objective": objective,
            "error_budget": budget,
            "budget_consumed": miss_fraction / budget if budget else 0.0,
            "latency_cycles_mean": sum(r["latency"] for r in rs) / len(rs),
        }

    detailed = [r for r in requests if r["detailed"]]
    attribution: dict[str, dict[str, float]] = {}
    total_latency = sum(r["latency"] for r in detailed)
    for stage in REQUEST_STAGES:
        cycles = sum(r["stages"].get(stage, 0) for r in detailed)
        attribution[stage] = {
            "cycles": cycles,
            "fraction": cycles / total_latency if total_latency else 0.0,
        }
    coverages = [r["coverage"] for r in detailed]
    completed = len(requests)
    misses = sum(1 for r in requests if r["missed"])
    return {
        "requests": completed,
        "deadline_misses": misses,
        "deadline_miss_rate": misses / completed if completed else 0.0,
        "classes": classes,
        "sampled_requests": len(detailed),
        "attribution": attribution,
        "coverage_min": min(coverages) if coverages else 0.0,
        "coverage_mean": (sum(coverages) / len(coverages)
                          if coverages else 0.0),
    }
