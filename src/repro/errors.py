"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SpecialValueError(ReproError):
    """An fp32 NaN or Inf reached a datapath that has no special-value logic.

    The modeled hardware (paper Section II) has no NaN/Inf handling; by
    default the emulation refuses to silently produce garbage.  Pass
    ``special_values="propagate"`` to the relevant API to opt out.
    """


class HardwareContractError(ReproError):
    """A modeled hardware invariant was violated (port width, overflow, ...).

    These indicate a workload outside the modeled design's contract, e.g.
    accumulating more partial products than the 48-bit PSU can hold, or
    driving a DSP48E2 port with an out-of-range operand.
    """


class ProgramError(ReproError):
    """An invalid vector program or instruction stream was submitted."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or unsupported parameters."""


class RegistryError(ReproError):
    """A name-keyed registry was misused.

    Raised when registering a quantization format, backend factory, or
    policy preset under a name that is already taken (silent overwrite
    would make ``get_format``/``get_backend`` resolution depend on import
    order), and when looking up a name that was never registered.
    """
