"""Serving metrics: latency percentiles, TTFT, tokens/s, queue pressure.

Everything is recorded in cycles and converted to seconds with the system
clock only at summary time, so the numbers are exact functions of the
trace + policy (reproducible run-to-run).  The summary is a flat dict so
it exports directly to JSON and renders through
:func:`repro.eval.reporting.render_table`.

The percentile helper is shared with :mod:`repro.obs.metrics` (one
definition of "p95" across the stack).  Queue depth is summarized
time-weighted — each sampled depth counts for the cycles it actually
held, not once per event — and dispatched batch sizes are kept as
per-phase histograms, because the decode-fill distribution (not its mean)
is what the weight-pass amortization of Eqn 9 depends on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import percentiles, weighted_percentiles
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.serve.request import Request

__all__ = ["MetricsCollector", "percentiles"]


@dataclass
class MetricsCollector:
    """Accumulates serving events; summarizes on demand."""

    arrivals: int = 0
    rejections: int = 0
    completed: int = 0
    tokens_out: int = 0
    deadline_misses: int = 0
    latencies: list[int] = field(default_factory=list)  # request completion, cycles
    ttft: list[int] = field(default_factory=list)  # llm first token, cycles
    queue_samples: list[tuple[int, int]] = field(default_factory=list)
    batch_sizes: dict[str, list[int]] = field(default_factory=dict)
    last_completion: int = 0

    # -- recording -----------------------------------------------------------
    def record_arrival(self, request: Request) -> None:
        self.arrivals += 1

    def record_rejection(self, request: Request) -> None:
        self.rejections += 1

    def record_dispatch(self, phase: str, size: int) -> None:
        self.batch_sizes.setdefault(phase, []).append(size)

    def record_first_token(self, request: Request, now: int) -> None:
        self.ttft.append(now - request.arrival)

    def record_token(self) -> None:
        self.tokens_out += 1

    def record_completion(self, request: Request, now: int) -> None:
        self.completed += 1
        self.latencies.append(now - request.arrival)
        self.last_completion = max(self.last_completion, now)
        if request.deadline is not None and now > request.deadline:
            self.deadline_misses += 1

    def record_queue_depth(self, now: int, depth: int) -> None:
        self.queue_samples.append((now, depth))

    # -- summary -------------------------------------------------------------
    def _queue_stats(self) -> tuple[float, int, float, float]:
        """Time-weighted (mean, max, p95, p99) queue depth over the horizon.

        Each sampled depth is weighted by the cycles until the next sample.
        Degenerate horizons (no samples, one sample, or a zero-cycle span)
        fall back to the last observed depth for the distribution stats.
        """
        if not self.queue_samples:
            return 0.0, 0, 0.0, 0.0
        ts = [t for t, _ in self.queue_samples]
        ds = [d for _, d in self.queue_samples]
        if len(ts) < 2 or ts[-1] == ts[0]:
            last = float(ds[-1])
            return last, max(ds), last, last
        depths = np.asarray(ds[:-1], dtype=np.float64)
        weights = np.diff(np.asarray(ts, dtype=np.float64))
        mean = float((depths * weights).sum() / weights.sum())
        p95, p99 = weighted_percentiles(depths, weights, (95, 99))
        return mean, max(ds), p95, p99

    def _batch_histograms(self) -> dict[str, dict[str, int]]:
        """Per-phase ``{batch_size: dispatch_count}`` (string keys for JSON)."""
        out: dict[str, dict[str, int]] = {}
        for phase in sorted(self.batch_sizes):
            hist: dict[str, int] = {}
            for size in self.batch_sizes[phase]:
                key = str(size)
                hist[key] = hist.get(key, 0) + 1
            out[phase] = dict(sorted(hist.items(), key=lambda kv: int(kv[0])))
        return out

    def summary(
        self,
        *,
        clock: ClockConfig = DEFAULT_CLOCK,
        busy_cycles: int = 0,
    ) -> dict:
        """Flat metric dict; ``busy_cycles`` summed over all units."""
        f = clock.freq_hz
        horizon = self.last_completion
        p50, p95, p99 = percentiles(self.latencies)
        t50, t95, t99 = percentiles(self.ttft)
        mean_q, max_q, q95, q99 = self._queue_stats()
        sizes = [s for v in self.batch_sizes.values() for s in v]
        horizon_s = horizon / f if horizon else 0.0
        out = {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "rejected": self.rejections,
            "rejection_rate": self.rejections / self.arrivals if self.arrivals else 0.0,
            "deadline_miss_rate": (
                self.deadline_misses / self.completed if self.completed else 0.0
            ),
            "horizon_s": horizon_s,
            "requests_per_s": self.completed / horizon_s if horizon_s else 0.0,
            "tokens_per_s": self.tokens_out / horizon_s if horizon_s else 0.0,
            "tokens_out": self.tokens_out,
            "latency_p50_ms": p50 / f * 1e3,
            "latency_p95_ms": p95 / f * 1e3,
            "latency_p99_ms": p99 / f * 1e3,
            "ttft_p50_ms": t50 / f * 1e3,
            "ttft_p95_ms": t95 / f * 1e3,
            "ttft_p99_ms": t99 / f * 1e3,
            "utilization": (
                busy_cycles / (horizon * clock.n_units) if horizon else 0.0
            ),
            "mean_queue_depth": mean_q,
            "max_queue_depth": max_q,
            "queue_depth_p95": q95,
            "queue_depth_p99": q99,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "dispatches": len(sizes),
            "batch_size_hist": self._batch_histograms(),
        }
        # Serving-level weight-pass amortization: one decode dispatch is one
        # weight pass through the array serving `size` tokens — the same
        # matmuls-vs-rows ratio `ComputeBackend.stats()` reports for the
        # functional batched step (TinyLM.forward_step_batch).
        decode = self.batch_sizes.get("decode", [])
        out["decode_weight_passes"] = len(decode)
        out["decode_weight_pass_amortization"] = (
            sum(decode) / len(decode) if decode else 0.0
        )
        return out

    @staticmethod
    def to_json(summary: dict) -> str:
        return json.dumps(summary, indent=2, sort_keys=True)
