"""Serving metrics: latency percentiles, TTFT, tokens/s, queue pressure.

Everything is recorded in cycles and converted to seconds with the system
clock only at summary time, so the numbers are exact functions of the
trace + policy (reproducible run-to-run).  The summary is a flat dict so
it exports directly to JSON and renders through
:func:`repro.eval.reporting.render_table`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.serve.request import Request

__all__ = ["MetricsCollector", "percentiles"]


def percentiles(samples: list[int], qs: tuple[float, ...] = (50, 95, 99)) -> list[float]:
    """Cycle-count percentiles (linear interpolation); zeros when empty."""
    if not samples:
        return [0.0] * len(qs)
    arr = np.asarray(samples, dtype=np.float64)
    return [float(np.percentile(arr, q)) for q in qs]


@dataclass
class MetricsCollector:
    """Accumulates serving events; summarizes on demand."""

    arrivals: int = 0
    rejections: int = 0
    completed: int = 0
    tokens_out: int = 0
    deadline_misses: int = 0
    latencies: list[int] = field(default_factory=list)  # request completion, cycles
    ttft: list[int] = field(default_factory=list)  # llm first token, cycles
    queue_samples: list[tuple[int, int]] = field(default_factory=list)
    batch_sizes: dict[str, list[int]] = field(default_factory=dict)
    last_completion: int = 0

    # -- recording -----------------------------------------------------------
    def record_arrival(self, request: Request) -> None:
        self.arrivals += 1

    def record_rejection(self, request: Request) -> None:
        self.rejections += 1

    def record_dispatch(self, phase: str, size: int) -> None:
        self.batch_sizes.setdefault(phase, []).append(size)

    def record_first_token(self, request: Request, now: int) -> None:
        self.ttft.append(now - request.arrival)

    def record_token(self) -> None:
        self.tokens_out += 1

    def record_completion(self, request: Request, now: int) -> None:
        self.completed += 1
        self.latencies.append(now - request.arrival)
        self.last_completion = max(self.last_completion, now)
        if request.deadline is not None and now > request.deadline:
            self.deadline_misses += 1

    def record_queue_depth(self, now: int, depth: int) -> None:
        self.queue_samples.append((now, depth))

    # -- summary -------------------------------------------------------------
    def _queue_stats(self) -> tuple[float, int]:
        """(time-weighted mean, max) queue depth over the sampled horizon."""
        if not self.queue_samples:
            return 0.0, 0
        ts = [t for t, _ in self.queue_samples]
        ds = [d for _, d in self.queue_samples]
        if len(ts) < 2 or ts[-1] == ts[0]:
            return float(ds[-1]), max(ds)
        weighted = sum(
            ds[i] * (ts[i + 1] - ts[i]) for i in range(len(ts) - 1)
        )
        return weighted / (ts[-1] - ts[0]), max(ds)

    def summary(
        self,
        *,
        clock: ClockConfig = DEFAULT_CLOCK,
        busy_cycles: int = 0,
    ) -> dict:
        """Flat metric dict; ``busy_cycles`` summed over all units."""
        f = clock.freq_hz
        horizon = self.last_completion
        p50, p95, p99 = percentiles(self.latencies)
        t50, t95, t99 = percentiles(self.ttft)
        mean_q, max_q = self._queue_stats()
        sizes = [s for v in self.batch_sizes.values() for s in v]
        horizon_s = horizon / f if horizon else 0.0
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "rejected": self.rejections,
            "rejection_rate": self.rejections / self.arrivals if self.arrivals else 0.0,
            "deadline_miss_rate": (
                self.deadline_misses / self.completed if self.completed else 0.0
            ),
            "horizon_s": horizon_s,
            "requests_per_s": self.completed / horizon_s if horizon_s else 0.0,
            "tokens_per_s": self.tokens_out / horizon_s if horizon_s else 0.0,
            "tokens_out": self.tokens_out,
            "latency_p50_ms": p50 / f * 1e3,
            "latency_p95_ms": p95 / f * 1e3,
            "latency_p99_ms": p99 / f * 1e3,
            "ttft_p50_ms": t50 / f * 1e3,
            "ttft_p95_ms": t95 / f * 1e3,
            "ttft_p99_ms": t99 / f * 1e3,
            "utilization": (
                busy_cycles / (horizon * clock.n_units) if horizon else 0.0
            ),
            "mean_queue_depth": mean_q,
            "max_queue_depth": max_q,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "dispatches": len(sizes),
        }

    @staticmethod
    def to_json(summary: dict) -> str:
        return json.dumps(summary, indent=2, sort_keys=True)
