"""Event-driven online dispatcher over a unit pool.

This is the serving counterpart of :meth:`repro.hw.system.MultiUnitSystem.
schedule`: instead of a static job list scheduled longest-first, requests
arrive over simulated time, coalesce in the :class:`DynamicBatcher`, and
dispatch to the earliest available unit.  One batch occupies one unit for
the batched job's unit-occupancy cycles (request-level parallelism across
units, not intra-request chunk spreading — the regime the 15 independent
instruction streams support).

Flow control is preemption-free: a bounded intake queue sheds new arrivals
with a 503-style rejection once full, and per-unit KV session slots
throttle prefill dispatch (backpressure, never eviction of live sessions).

Since the cluster refactor the engine is split in two:

* :class:`Dispatcher` — *one replica's* serving state machine (batcher,
  session table, cost model, idle-unit set) over an externally-owned
  :class:`~repro.hw.system.UnitPool` handle and an externally-owned event
  heap (a ``push(t, tag, payload)`` sink).  It never owns the pool or the
  clock of the simulation, so a driver can run one of them (classic
  single-board serving) or a fleet of them (``repro.cluster``).
* :func:`simulate` — the historical single-pool driver: builds one pool,
  one dispatcher, and runs the event loop.  Its output is bit-identical
  to the pre-refactor monolithic loop for any seed/trace.

The whole simulation is deterministic: integer cycle time, a seeded trace,
and a (time, sequence) event order with no wall-clock reads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.cost import ModeOptions, PolicyCostModel
from repro.errors import ConfigurationError
from repro.hw.system import UnitPool
from repro.models.configs import DEIT_TINY, ViTConfig
from repro.models.policy import PrecisionPolicy
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.obs.slo import NULL_SLO, SLOTracker
from repro.obs.tracer import (
    DEFAULT_PROCESS,
    NULL_TRACER,
    RequestPathConfig,
    SpanContext,
    Tracer,
)
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.metrics import MetricsCollector
from repro.serve.request import PhaseItem, Request
from repro.serve.sessions import SessionTable

__all__ = [
    "ModelProfile",
    "ServeConfig",
    "ServeReport",
    "CostModel",
    "Dispatcher",
    "simulate",
    "serve_config_to_dict",
    "serve_config_from_dict",
]

#: Event sink signature: ``push(cycle, tag, payload)``.
EventSink = Callable[[int, str, object], None]


@dataclass(frozen=True)
class ModelProfile:
    """Cost-model identity of the two served model families.

    The decoder defaults match the repo's prefill-vs-decode study
    (``results/decoder_prefill_vs_decode.txt``); the ViT defaults are
    DeiT-Tiny, the smallest paper configuration.
    """

    vit: ViTConfig = DEIT_TINY
    vocab: int = 1000
    dim: int = 128
    depth: int = 4
    n_heads: int = 4
    context: int = 128
    mlp_ratio: float = 8 / 3

    @property
    def kv_bytes_per_token(self) -> int:
        """fp32 K+V bytes per resident token, all layers."""
        return 2 * self.depth * self.dim * 4


@dataclass(frozen=True)
class ServeConfig:
    """Everything the simulation needs besides the trace itself.

    ``policy`` shapes batching; ``precision`` is an optional per-layer
    :class:`~repro.models.policy.PrecisionPolicy` the cost model compiles
    batch jobs under (``None`` = the historical all-bfp8 schedule).
    """

    profile: ModelProfile = ModelProfile()
    policy: BatchPolicy = BatchPolicy()
    max_queue: int = 512
    max_sessions_per_unit: int = 8
    clock: ClockConfig = DEFAULT_CLOCK
    mem: MemoryModel = DEFAULT_MEMORY
    precision: PrecisionPolicy | None = None
    #: Optional per-format unit-mode routing (and the alignment-
    #: prediction knob) the cost model compiles under — e.g. fp16
    #: matmuls onto the ``fp16_dot`` array instead of the vector cliff.
    modes: ModeOptions | None = None
    #: Model decode batches as compiled-plan replays: the dispatcher
    #: ledgers one trace per distinct decode group shape and counts every
    #: later dispatch of that shape as a replay (``ServeReport.plans``).
    compiled: bool = True


class CostModel:
    """Cycle cost of one dispatched batch — serve's thin layer over the
    shared :class:`~repro.cost.model.PolicyCostModel`.

    This class owns only the :class:`~repro.serve.batcher.Batch` ->
    (phase, size, context) projection; phase dispatch, context bucketing
    and the memoized compile live in ``repro.cost`` (one cycle-cost
    source of truth for serve, cluster and incident layers alike).
    """

    # Back-compat aliases: bucketing policy now lives in the core model.
    DECODE_BUCKET = PolicyCostModel.DECODE_BUCKET
    PREFILL_BUCKET = PolicyCostModel.PREFILL_BUCKET

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg
        self.core = PolicyCostModel(
            cfg.profile, clock=cfg.clock, mem=cfg.mem,
            precision=cfg.precision, modes=cfg.modes,
        )

    def batch_cycles(self, batch: Batch) -> int:
        return self.core.job_cycles(batch.phase, batch.size, batch.context)

    def batch_breakdown(self, batch: Batch) -> dict[str, int]:
        """Named stage split of one batch's occupancy (sums to
        :meth:`batch_cycles`).  The unsharded model is pure compute; the
        sharded subclass splits out all-reduce and pipeline-transfer
        cycles."""
        return {"shard_compute": self.batch_cycles(batch)}


@dataclass
class ServeReport:
    """Outcome of one simulated serving run."""

    summary: dict
    config: ServeConfig
    pool: UnitPool
    metrics: MetricsCollector = field(repr=False)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER, repr=False)
    #: Compiled-plan ledger (``None`` when the run modeled eager decode):
    #: distinct decode group shapes traced, replay counts per shape.
    plans: dict | None = None

    def to_json(self) -> str:
        """Full-run artifact: summary + compiled-plan ledger + SLO snapshot.

        One ``--json-out`` file captures the whole run; the SLO section
        is surfaced top-level (it also stays under ``summary["slo"]``
        for older readers).
        """
        import json

        from repro.obs.artifacts import jsonable

        doc = {
            "schema_version": 1,
            "summary": jsonable(self.summary),
            "plans": jsonable(self.plans),
            "slo": jsonable(self.summary.get("slo")),
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    def render(self, title: str = "serve-sim") -> str:
        from repro.eval.reporting import render_metrics

        return render_metrics(title, self.summary)


class Dispatcher:
    """One replica's serving engine over an externally-owned unit pool.

    The dispatcher holds the per-replica state — dynamic batcher, KV
    session table, cost model, idle-unit set, metrics collector — but
    takes its :class:`~repro.hw.system.UnitPool` and its event sink from
    the driver.  Events it emits through ``push``:

    * ``("finish", (unit, batch))`` at a batch's completion cycle;
    * ``("wake", None)`` at the next batch-window expiry while units
      idle on a non-empty queue.

    The driver routes those events back into :meth:`on_finish` /
    :meth:`on_wake` and calls :meth:`try_dispatch` + :meth:`observe_queue`
    after every event it processes for this replica.  A cluster driver
    wraps ``push`` to tag events with the replica identity; the dispatcher
    itself is replica-agnostic.

    ``track_prefix`` namespaces tracer tracks (``r3.unit7`` in cluster
    runs, bare ``unit7`` in single-pool runs).  ``cost`` lets the cluster
    layer substitute a sharded cost model without subclassing.

    ``slo`` (default: the no-op :data:`~repro.obs.slo.NULL_SLO`) receives
    every completion/rejection for burn-rate accounting.  ``path``
    (default ``None`` = off) turns on request-path stage decomposition:
    sampled requests carry a :class:`~repro.obs.tracer.SpanContext` from
    admission to completion, and every dispatch records the named stage
    children (``queue``/``batch_wait``/``shard_compute``/...) that tile
    the request's latency.  ``processes`` maps unit index -> tracer
    process (board) name, so cluster traces show boards as processes;
    ``metric_prefix`` namespaces this replica's registry metrics
    (``cluster.r3.serve.dispatches.decode``).
    """

    def __init__(
        self,
        config: ServeConfig,
        pool: UnitPool,
        push: EventSink,
        *,
        cost: CostModel | None = None,
        metrics: MetricsCollector | None = None,
        tracer: Tracer = NULL_TRACER,
        registry: MetricsRegistry | None = None,
        track_prefix: str = "",
        slo: SLOTracker = NULL_SLO,
        path: RequestPathConfig | None = None,
        processes: tuple[str, ...] | None = None,
        metric_prefix: str = "",
        recorder: FlightRecorder = NULL_RECORDER,
    ) -> None:
        self.config = config
        self.pool = pool
        self.push = push
        self.batcher = DynamicBatcher(config.policy, config.clock)
        self.sessions = SessionTable(
            pool.n_units,
            max_sessions_per_unit=config.max_sessions_per_unit,
            kv_bytes_per_token=config.profile.kv_bytes_per_token,
        )
        self.cost = cost if cost is not None else CostModel(config)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer
        self.registry = get_registry() if registry is None else registry
        self.track_prefix = track_prefix
        self.slo = slo
        self.path = path if tracer.enabled else None
        self.processes = processes
        self.metric_prefix = metric_prefix
        self.recorder = recorder
        if recorder.enabled:
            # Lets record_dispatch compute batch fill lazily (only when
            # the occupancy detector is configured on).
            recorder.bind_policy(config.policy)
        self.idle = set(range(pool.n_units))
        #: (phase, batch size) -> dispatch count.  First hit per key is
        #: the trace (plan build), the rest are replays — the serving
        #: analogue of :func:`repro.runtime.plan.resolve_plan` keying
        #: plans on the batch-group shape.
        self.plan_ledger: dict[tuple[str, int], int] = {}
        self._pending_wakes: set[int] = set()
        self._last_depth = -1
        self._ctx: dict[int, SpanContext] = {}

    # -- intake ---------------------------------------------------------------
    def depth(self) -> int:
        """Queued phase items (the admission-control pressure signal)."""
        return self.batcher.depth()

    def admit(self, req: Request, now: int) -> bool:
        """Bounded-queue admission: enqueue the request or shed it (503).

        Records the arrival either way; returns ``True`` when admitted.
        """
        self.metrics.record_arrival(req)
        if self.recorder.enabled:
            self.recorder.record_arrival(req, now)
        if self.batcher.depth() >= self.config.max_queue:
            self.metrics.record_rejection(req)
            if self.slo.enabled:
                self.slo.record_rejection(req, now)
            if self.recorder.enabled:
                self.recorder.record_rejection(req, now)
                if self.slo.enabled:
                    self.recorder.observe_burn(
                        now, self.slo.fleet_burn(now))
            if self.registry.enabled:
                self.registry.counter(
                    f"{self.metric_prefix}serve.rejections"
                ).inc()
            return False
        self.enqueue(req, now)
        if self.recorder.enabled:
            # Queue depth is sampled once per admitted arrival — the
            # buildup signal the detector wants — rather than on every
            # decode re-queue oscillation (which would cost a hook call
            # per simulation event).  Arrivals are deterministic, so a
            # replay observes the identical depth sequence.
            self.recorder.observe_queue(now, self.batcher.depth())
        if self.path is not None and self.path.samples(req.rid):
            ctx = SpanContext(req.rid, req.kind, self.tracer,
                              self.path.max_spans_per_request)
            self._ctx[req.rid] = ctx
            ctx.child("admit", start=req.arrival, end=now)
            ctx.flow("s", cycle=now, track=f"{self.track_prefix}edge")
        return True

    def trace_ctx(self, req: Request) -> SpanContext | None:
        """The live span context of a sampled in-flight request (if any)."""
        return self._ctx.get(req.rid)

    def enqueue(self, req: Request, now: int) -> None:
        """Queue a request's first phase item without an admission check
        (the cluster edge does its own admission before routing here)."""
        phase = "vit" if req.kind == "vit" else "prefill"
        self.batcher.add(PhaseItem(req, phase, ready=now,
                                   context=req.prompt_tokens))

    # -- dispatch -------------------------------------------------------------
    def try_dispatch(self, now: int) -> None:
        """Launch every batch that can start now on an idle unit."""
        while self.idle:
            launched = False
            for u in sorted(self.idle):
                batch = self.batcher.pop_ready(
                    now, u,
                    prefill_slots=self.sessions.free_slots(u),
                    decode_sessions=self.sessions.active(u),
                )
                if batch is None:
                    continue
                if batch.phase == "prefill":
                    for item in batch.items:
                        self.sessions.open(item.request, u)
                cycles = self.cost.batch_cycles(batch)
                finish = self.pool.assign(u, now, cycles,
                                          f"{batch.phase}x{batch.size}")
                self.idle.discard(u)
                self.metrics.record_dispatch(batch.phase, batch.size)
                plan_new = False
                if self.config.compiled and batch.phase == "decode":
                    key = (batch.phase, batch.size)
                    seen = key in self.plan_ledger
                    plan_new = not seen
                    self.plan_ledger[key] = self.plan_ledger.get(key, 0) + 1
                    if self.registry.enabled:
                        self.registry.counter(
                            f"{self.metric_prefix}serve.plan."
                            f"{'replays' if seen else 'traces'}"
                        ).inc()
                if self.registry.enabled:
                    self.registry.counter(
                        f"{self.metric_prefix}serve.dispatches.{batch.phase}"
                    ).inc()
                    self.registry.histogram(
                        f"{self.metric_prefix}serve.batch_fill.{batch.phase}"
                    ).observe(
                        batch.size / self.config.policy.batch_limit(batch.phase)
                    )
                if self.recorder.enabled:
                    self.recorder.record_dispatch(now, batch, u, plan_new)
                if self.tracer.enabled:
                    self.tracer.span(
                        f"{batch.phase}x{batch.size}",
                        track=f"{self.track_prefix}unit{u}",
                        start=now,
                        end=finish,
                        cat="dispatch",
                        args={
                            "phase": batch.phase,
                            "size": batch.size,
                            "context": batch.context,
                            "rids": [i.request.rid for i in batch.items],
                        },
                        process=(self.processes[u] if self.processes
                                 else DEFAULT_PROCESS),
                    )
                if self._ctx:
                    self._record_path(batch, now, finish, u)
                self.push(finish, "finish", (u, batch))
                launched = True
                break
            if not launched:
                break
        # If units stay idle on a non-empty queue whose window has not
        # expired yet, arrange to re-check at the next *future* expiry.
        # An already-expired but undispatchable queue (KV slots exhausted,
        # decode pinned to a busy unit) can only unblock at a finish
        # event, which re-runs this function — no wake would help it.
        if self.idle and self.batcher.depth():
            expiry = self.batcher.next_expiry(now)
            if expiry is not None and expiry not in self._pending_wakes:
                self._pending_wakes.add(expiry)
                self.push(expiry, "wake", None)

    def _record_path(self, batch: Batch, now: int, finish: int, u: int) -> None:
        """Stage-decompose this dispatch for every sampled item in it.

        Per item the stages tile ``[item.ready, finish]`` exactly:
        ``batch_wait`` is the wait for the batch to close (the last
        item's ready time), ``queue`` the wait from batch-close to
        dispatch, and the compute window ``[now, finish]`` splits into
        the cost model's named breakdown (laid out sequentially — a
        modeling simplification; the real overlap is interleaved).
        Chained over a request's phase items (each item's ready is the
        previous finish) the stages tile the request end to end.
        """
        live = [(item, ctx) for item in batch.items
                if (ctx := self._ctx.get(item.request.rid)) is not None]
        if not live:
            return
        t_close = max(item.ready for item in batch.items)
        process = (self.processes[u] if self.processes else DEFAULT_PROCESS)
        track = f"{self.track_prefix}unit{u}"
        breakdown = self.cost.batch_breakdown(batch)
        for item, ctx in live:
            if t_close > item.ready:
                ctx.child("batch_wait", start=item.ready, end=t_close,
                          process=process, args={"phase": item.phase})
            if now > t_close:
                ctx.child("queue", start=t_close, end=now,
                          process=process, args={"phase": item.phase})
            cursor = now
            for stage in ("shard_compute", "allreduce", "pp_transfer"):
                cycles = breakdown.get(stage, 0)
                if cycles <= 0:
                    continue
                ctx.child(stage, start=cursor, end=cursor + cycles,
                          process=process,
                          args={"phase": item.phase, "batch": batch.size})
                cursor += cycles
            ctx.flow("t", cycle=now, track=track, process=process)

    # -- event handlers -------------------------------------------------------
    def on_finish(self, unit: int, batch: Batch, now: int) -> None:
        self.idle.add(unit)
        for item in batch.items:
            self._complete_item(item, now)

    def on_wake(self, now: int) -> None:
        self._pending_wakes.discard(now)

    def observe_queue(self, now: int) -> None:
        """Post-event queue-depth sample (metrics + tracer counter)."""
        depth = self.batcher.depth()
        self.metrics.record_queue_depth(now, depth)
        if depth != self._last_depth:
            if self.tracer.enabled:
                self.tracer.counter(f"{self.track_prefix}queue_depth",
                                    cycle=now, value=depth)
            self._last_depth = depth
        if self.registry.enabled:
            self.registry.histogram(
                f"{self.metric_prefix}serve.queue_depth"
            ).observe(depth)

    # -- request lifecycle ----------------------------------------------------
    def _complete_request(self, req: Request, now: int) -> None:
        self.metrics.record_completion(req, now)
        if self.slo.enabled:
            self.slo.record_completion(req, now)
        if self.recorder.enabled:
            self.recorder.record_completion(
                req, now, req.deadline is not None and now > req.deadline)
            if self.slo.enabled:
                self.recorder.observe_burn(now, self.slo.fleet_burn(now))
        ctx = self._ctx.pop(req.rid, None)
        if ctx is not None:
            ctx.child("respond", start=now, end=now)
            ctx.flow("f", cycle=now, track=f"{self.track_prefix}edge")
        if self.tracer.enabled:
            args = {"prompt_tokens": req.prompt_tokens,
                    "gen_tokens": req.gen_tokens}
            if self.path is not None:
                args["deadline"] = req.deadline
                args["user"] = req.user
                args["missed"] = (req.deadline is not None
                                  and now > req.deadline)
            self.tracer.async_span(
                f"{req.kind}-{req.rid}",
                span_id=req.rid,
                start=req.arrival,
                end=now,
                cat=req.kind,
                args=args,
            )

    def _complete_item(self, item: PhaseItem, now: int) -> None:
        req = item.request
        if item.phase == "vit":
            self._complete_request(req, now)
        elif item.phase == "prefill":
            self.batcher.add(self.sessions.first_decode_item(req.rid, now))
        else:  # decode: one generated token
            self.metrics.record_token()
            if item.step == 0:
                self.metrics.record_first_token(req, now)
            nxt = self.sessions.step(req.rid, now)
            if nxt is None:
                self._complete_request(req, now)
            else:
                self.batcher.add(nxt)

    # -- accounting -----------------------------------------------------------
    @property
    def busy_cycles(self) -> int:
        return sum(t.busy_cycles for t in self.pool.timelines)

    def active_sessions(self) -> int:
        return self.sessions.active()


def simulate(
    requests: list[Request],
    config: ServeConfig = ServeConfig(),
    *,
    tracer: Tracer = NULL_TRACER,
    registry: MetricsRegistry | None = None,
    slo: SLOTracker = NULL_SLO,
    path: RequestPathConfig | None = None,
    recorder: FlightRecorder = NULL_RECORDER,
    cost: CostModel | None = None,
) -> ServeReport:
    """Run the open-loop serving simulation over a request trace.

    The single-pool driver: one :class:`~repro.hw.system.UnitPool`, one
    :class:`Dispatcher`, one event heap.  ``tracer`` (default: the no-op
    :data:`NULL_TRACER`) records the run as per-unit dispatch spans,
    per-request async spans and a queue-depth counter series, all in
    simulated cycles — export with ``report.tracer.to_json()``.
    ``registry`` (default: the process-wide one) receives serving
    counters/histograms (dispatches, batch fill, queue depth, rejections,
    KV pressure).  ``slo`` (default: disabled) adds per-class deadline
    budgets/burn rates to the summary under ``"slo"``; ``path`` (default:
    off) turns on request-path stage decomposition in the trace.
    """
    clock = config.clock
    pool = UnitPool(clock.n_units)
    reg = get_registry() if registry is None else registry

    events: list[tuple[int, int, str, object]] = []
    seq = 0

    def push(t: int, tag: str, payload: object = None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, tag, payload))
        seq += 1

    d = Dispatcher(config, pool, push, tracer=tracer, registry=reg,
                   slo=slo, path=path, recorder=recorder, cost=cost)

    for r in sorted(requests, key=lambda r: (r.arrival, r.rid)):
        push(r.arrival, "arrive", r)

    now = 0
    rec_on = recorder.enabled
    n_units = pool.n_units
    while events:
        now, _, tag, payload = heapq.heappop(events)
        if tag == "arrive":
            d.admit(payload, now)
        elif tag == "finish":
            unit, batch = payload
            d.on_finish(unit, batch, now)
        elif tag == "wake":
            d.on_wake(now)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown event tag {tag!r}")
        d.try_dispatch(now)
        d.observe_queue(now)
        if rec_on and len(d.idle) == n_units and d.batcher.empty():
            # An idle point — empty batcher, all units free — is the
            # recorder's capture-epoch boundary (deterministic replay
            # re-simulates exactly one epoch from its arrival rows).
            # Non-idle events need no hook at all, so the common busy
            # case costs two attribute reads and a length check.
            recorder.end_event(now, True)

    busy = d.busy_cycles
    if reg.enabled:
        reg.counter("serve.arrivals").inc(d.metrics.arrivals)
        reg.counter("serve.tokens_out").inc(d.metrics.tokens_out)
        reg.counter("serve.busy_cycles").inc(busy)
        reg.gauge("serve.kv_bytes_peak").set(d.sessions.peak_kv_bytes)
        reg.gauge("serve.horizon_cycles").set(d.metrics.last_completion)
    summary = d.metrics.summary(clock=clock, busy_cycles=busy)
    summary["active_sessions_peak_kv_mib"] = d.sessions.peak_kv_bytes / 2**20
    if slo.enabled:
        summary["slo"] = slo.snapshot(d.metrics.last_completion)
    if recorder.enabled:
        summary["recorder"] = recorder.finalize(now)
    plans = None
    if config.compiled:
        total = sum(d.plan_ledger.values())
        plans = {
            "decode_group_shapes": len(d.plan_ledger),
            "traces": len(d.plan_ledger),
            "replays": total - len(d.plan_ledger),
            "dispatches": total,
            "by_shape": {
                f"{phase}x{size}": count
                for (phase, size), count in sorted(d.plan_ledger.items())
            },
        }
    return ServeReport(summary, config, pool, d.metrics, tracer, plans)


# -- config snapshots ---------------------------------------------------------

def serve_config_to_dict(config: ServeConfig) -> dict:
    """JSON-ready snapshot of a :class:`ServeConfig` (incident bundles).

    Every field the simulation's dynamics depend on round-trips through
    :func:`serve_config_from_dict` exactly — the pair is what makes an
    incident bundle self-contained.
    """
    from dataclasses import asdict

    return {
        "profile": asdict(config.profile),
        "policy": asdict(config.policy),
        "max_queue": config.max_queue,
        "max_sessions_per_unit": config.max_sessions_per_unit,
        "clock": asdict(config.clock),
        "mem": asdict(config.mem),
        "precision": (config.precision.to_dict()
                      if config.precision is not None else None),
        "modes": (config.modes.as_dict()
                  if config.modes is not None else None),
        "compiled": config.compiled,
    }


def serve_config_from_dict(doc: dict) -> ServeConfig:
    """Rebuild a :class:`ServeConfig` from its snapshot dict."""
    profile = dict(doc["profile"])
    vit = ViTConfig(**profile.pop("vit"))
    precision = doc.get("precision")
    return ServeConfig(
        profile=ModelProfile(vit=vit, **profile),
        policy=BatchPolicy(**doc["policy"]),
        max_queue=doc["max_queue"],
        max_sessions_per_unit=doc["max_sessions_per_unit"],
        clock=ClockConfig(**doc["clock"]),
        mem=MemoryModel(**doc["mem"]),
        precision=(PrecisionPolicy.from_dict(precision)
                   if precision else None),
        modes=(ModeOptions.from_dict(doc["modes"])
               if doc.get("modes") else None),
        compiled=doc.get("compiled", True),
    )
