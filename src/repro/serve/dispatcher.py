"""Event-driven online dispatcher over the unit pool.

This is the serving counterpart of :meth:`repro.hw.system.MultiUnitSystem.
schedule`: instead of a static job list scheduled longest-first, requests
arrive over simulated time, coalesce in the :class:`DynamicBatcher`, and
dispatch to the earliest available unit.  One batch occupies one unit for
the batched job's unit-occupancy cycles (request-level parallelism across
units, not intra-request chunk spreading — the regime the 15 independent
instruction streams support).

Flow control is preemption-free: a bounded intake queue sheds new arrivals
with a 503-style rejection once full, and per-unit KV session slots
throttle prefill dispatch (backpressure, never eviction of live sessions).

The whole simulation is deterministic: integer cycle time, a seeded trace,
and a (time, sequence) event order with no wall-clock reads.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from math import ceil

from repro.errors import ConfigurationError
from repro.hw.system import UnitPool
from repro.models.configs import DEIT_TINY, ViTConfig
from repro.models.policy import PrecisionPolicy
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.perf.latency import decoder_batch_unit_cycles, vit_batch_unit_cycles
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.metrics import MetricsCollector
from repro.serve.request import PhaseItem, Request
from repro.serve.sessions import SessionTable

__all__ = ["ModelProfile", "ServeConfig", "ServeReport", "CostModel", "simulate"]


@dataclass(frozen=True)
class ModelProfile:
    """Cost-model identity of the two served model families.

    The decoder defaults match the repo's prefill-vs-decode study
    (``results/decoder_prefill_vs_decode.txt``); the ViT defaults are
    DeiT-Tiny, the smallest paper configuration.
    """

    vit: ViTConfig = DEIT_TINY
    vocab: int = 1000
    dim: int = 128
    depth: int = 4
    n_heads: int = 4
    context: int = 128
    mlp_ratio: float = 8 / 3

    @property
    def kv_bytes_per_token(self) -> int:
        """fp32 K+V bytes per resident token, all layers."""
        return 2 * self.depth * self.dim * 4


@dataclass(frozen=True)
class ServeConfig:
    """Everything the simulation needs besides the trace itself.

    ``policy`` shapes batching; ``precision`` is an optional per-layer
    :class:`~repro.models.policy.PrecisionPolicy` the cost model compiles
    batch jobs under (``None`` = the historical all-bfp8 schedule).
    """

    profile: ModelProfile = ModelProfile()
    policy: BatchPolicy = BatchPolicy()
    max_queue: int = 512
    max_sessions_per_unit: int = 8
    clock: ClockConfig = DEFAULT_CLOCK
    mem: MemoryModel = DEFAULT_MEMORY
    precision: PrecisionPolicy | None = None


class CostModel:
    """Cycle cost of one dispatched batch (memoized via perf.latency)."""

    # Context buckets keep the compile cache small without distorting the
    # cost materially: one bucket spans less than a block row of streams.
    DECODE_BUCKET = 16
    PREFILL_BUCKET = 8

    def __init__(self, cfg: ServeConfig) -> None:
        self.cfg = cfg

    def _decoder(self, phase: str, batch: int, context: int) -> int:
        p = self.cfg.profile
        return decoder_batch_unit_cycles(
            phase, batch, context,
            vocab=p.vocab, dim=p.dim, depth=p.depth, n_heads=p.n_heads,
            mlp_ratio=p.mlp_ratio, mem=self.cfg.mem, clock=self.cfg.clock,
            policy=self.cfg.precision,
        )

    def batch_cycles(self, batch: Batch) -> int:
        if batch.phase == "vit":
            return vit_batch_unit_cycles(
                self.cfg.profile.vit, batch.size,
                mem=self.cfg.mem, clock=self.cfg.clock,
                policy=self.cfg.precision,
            )
        bucket = self.DECODE_BUCKET if batch.phase == "decode" else self.PREFILL_BUCKET
        ctx = min(
            max(ceil(batch.context / bucket), 1) * bucket,
            max(self.cfg.profile.context, bucket),
        )
        return self._decoder(batch.phase, batch.size, ctx)


@dataclass
class ServeReport:
    """Outcome of one simulated serving run."""

    summary: dict
    config: ServeConfig
    pool: UnitPool
    metrics: MetricsCollector = field(repr=False)
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER, repr=False)

    def to_json(self) -> str:
        return MetricsCollector.to_json(self.summary)

    def render(self, title: str = "serve-sim") -> str:
        from repro.eval.reporting import render_metrics

        return render_metrics(title, self.summary)


def simulate(
    requests: list[Request],
    config: ServeConfig = ServeConfig(),
    *,
    tracer: Tracer = NULL_TRACER,
    registry: MetricsRegistry | None = None,
) -> ServeReport:
    """Run the open-loop serving simulation over a request trace.

    ``tracer`` (default: the no-op :data:`NULL_TRACER`) records the run as
    per-unit dispatch spans, per-request async spans and a queue-depth
    counter series, all in simulated cycles — export with
    ``report.tracer.to_json()``.  ``registry`` (default: the process-wide
    one) receives serving counters/histograms (dispatches, batch fill,
    queue depth, rejections, KV pressure).
    """
    clock = config.clock
    pool = UnitPool(clock.n_units)
    batcher = DynamicBatcher(config.policy, clock)
    sessions = SessionTable(
        clock.n_units,
        max_sessions_per_unit=config.max_sessions_per_unit,
        kv_bytes_per_token=config.profile.kv_bytes_per_token,
    )
    metrics = MetricsCollector()
    cost = CostModel(config)
    reg = get_registry() if registry is None else registry
    trace_on = tracer.enabled

    events: list[tuple[int, int, str, object]] = []
    seq = 0

    def push(t: int, tag: str, payload: object = None) -> None:
        nonlocal seq
        heapq.heappush(events, (t, seq, tag, payload))
        seq += 1

    for r in sorted(requests, key=lambda r: (r.arrival, r.rid)):
        push(r.arrival, "arrive", r)

    idle = set(range(clock.n_units))
    pending_wakes: set[int] = set()

    def try_dispatch(now: int) -> None:
        while idle:
            launched = False
            for u in sorted(idle):
                batch = batcher.pop_ready(
                    now, u,
                    prefill_slots=sessions.free_slots(u),
                    decode_sessions=sessions.active(u),
                )
                if batch is None:
                    continue
                if batch.phase == "prefill":
                    for item in batch.items:
                        sessions.open(item.request, u)
                cycles = cost.batch_cycles(batch)
                finish = pool.assign(u, now, cycles,
                                     f"{batch.phase}x{batch.size}")
                idle.discard(u)
                metrics.record_dispatch(batch.phase, batch.size)
                if reg.enabled:
                    reg.counter(f"serve.dispatches.{batch.phase}").inc()
                    reg.histogram(f"serve.batch_fill.{batch.phase}").observe(
                        batch.size / config.policy.batch_limit(batch.phase)
                    )
                if trace_on:
                    tracer.span(
                        f"{batch.phase}x{batch.size}",
                        track=f"unit{u}",
                        start=now,
                        end=finish,
                        cat="dispatch",
                        args={
                            "phase": batch.phase,
                            "size": batch.size,
                            "context": batch.context,
                            "rids": [i.request.rid for i in batch.items],
                        },
                    )
                push(finish, "finish", (u, batch))
                launched = True
                break
            if not launched:
                break
        # If units stay idle on a non-empty queue whose window has not
        # expired yet, arrange to re-check at the next *future* expiry.
        # An already-expired but undispatchable queue (KV slots exhausted,
        # decode pinned to a busy unit) can only unblock at a finish
        # event, which re-runs this function — no wake would help it.
        if idle and batcher.depth():
            expiry = batcher.next_expiry(now)
            if expiry is not None and expiry not in pending_wakes:
                pending_wakes.add(expiry)
                push(expiry, "wake")

    def complete_request(req: Request, now: int) -> None:
        metrics.record_completion(req, now)
        if trace_on:
            tracer.async_span(
                f"{req.kind}-{req.rid}",
                span_id=req.rid,
                start=req.arrival,
                end=now,
                cat=req.kind,
                args={"prompt_tokens": req.prompt_tokens,
                      "gen_tokens": req.gen_tokens},
            )

    def complete_item(item: PhaseItem, now: int) -> None:
        req = item.request
        if item.phase == "vit":
            complete_request(req, now)
        elif item.phase == "prefill":
            batcher.add(sessions.first_decode_item(req.rid, now))
        else:  # decode: one generated token
            metrics.record_token()
            if item.step == 0:
                metrics.record_first_token(req, now)
            nxt = sessions.step(req.rid, now)
            if nxt is None:
                complete_request(req, now)
            else:
                batcher.add(nxt)

    last_depth = -1
    while events:
        now, _, tag, payload = heapq.heappop(events)
        if tag == "arrive":
            req = payload
            metrics.record_arrival(req)
            if batcher.depth() >= config.max_queue:
                metrics.record_rejection(req)
                if reg.enabled:
                    reg.counter("serve.rejections").inc()
            else:
                phase = "vit" if req.kind == "vit" else "prefill"
                batcher.add(PhaseItem(req, phase, ready=now,
                                      context=req.prompt_tokens))
        elif tag == "finish":
            unit, batch = payload
            idle.add(unit)
            for item in batch.items:
                complete_item(item, now)
        elif tag == "wake":
            pending_wakes.discard(now)
        else:  # pragma: no cover - defensive
            raise ConfigurationError(f"unknown event tag {tag!r}")
        try_dispatch(now)
        depth = batcher.depth()
        metrics.record_queue_depth(now, depth)
        if trace_on and depth != last_depth:
            tracer.counter("queue_depth", cycle=now, value=depth)
            last_depth = depth
        if reg.enabled:
            reg.histogram("serve.queue_depth").observe(depth)

    busy = sum(t.busy_cycles for t in pool.timelines)
    if reg.enabled:
        reg.counter("serve.arrivals").inc(metrics.arrivals)
        reg.counter("serve.tokens_out").inc(metrics.tokens_out)
        reg.counter("serve.busy_cycles").inc(busy)
        reg.gauge("serve.kv_bytes_peak").set(sessions.peak_kv_bytes)
        reg.gauge("serve.horizon_cycles").set(metrics.last_completion)
    summary = metrics.summary(clock=clock, busy_cycles=busy)
    summary["active_sessions_peak_kv_mib"] = sessions.peak_kv_bytes / 2**20
    return ServeReport(summary, config, pool, metrics, tracer)
