"""Decoder session state: KV-cache residency and unit affinity.

A prefill allocates a *session* on the unit that runs it: the KV cache is
written into that unit's HBM region, so every subsequent decode step of
the request must execute there (migrating KV across units is not modeled
— the paper's units have private AXI channels).  The table bounds live
sessions per unit (KV capacity) and accounts resident KV bytes, which is
the backpressure signal that throttles new prefills.

The cost-level table mirrors the *functional* path: a batch of resident
sessions stepping together is exactly
:meth:`repro.models.decoder.TinyLM.forward_step_batch`, which shares one
weight pass across the batch — the same amortization the cost model
charges via ``compile_decoder(batch=B, phase="decode")``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.serve.request import PhaseItem, Request

__all__ = ["Session", "SessionTable"]


@dataclass
class Session:
    """One resident generation: KV cache on a unit, tokens still owed."""

    rid: int
    unit: int
    context: int  # current KV length, tokens
    remaining: int  # decode steps still to run
    request: Request

    def kv_bytes(self, bytes_per_token: int) -> int:
        return self.context * bytes_per_token


class SessionTable:
    """Per-unit session residency with bounded capacity."""

    def __init__(
        self,
        n_units: int,
        *,
        max_sessions_per_unit: int = 8,
        kv_bytes_per_token: int = 4096,
    ) -> None:
        if max_sessions_per_unit <= 0:
            raise ConfigurationError("need at least one session slot per unit")
        self.max_sessions_per_unit = max_sessions_per_unit
        self.kv_bytes_per_token = kv_bytes_per_token
        self._by_unit: dict[int, dict[int, Session]] = {u: {} for u in range(n_units)}
        self._by_rid: dict[int, Session] = {}
        self.peak_kv_bytes = 0

    # -- capacity ------------------------------------------------------------
    def free_slots(self, unit: int) -> int:
        return self.max_sessions_per_unit - len(self._by_unit[unit])

    def active(self, unit: int | None = None) -> int:
        if unit is not None:
            return len(self._by_unit[unit])
        return len(self._by_rid)

    def kv_bytes(self, unit: int) -> int:
        return sum(
            s.kv_bytes(self.kv_bytes_per_token) for s in self._by_unit[unit].values()
        )

    # -- lifecycle -----------------------------------------------------------
    def open(self, request: Request, unit: int) -> Session:
        """Pin a new session to ``unit`` (called when its prefill dispatches)."""
        if request.rid in self._by_rid:
            raise ConfigurationError(f"request {request.rid} already has a session")
        if self.free_slots(unit) <= 0:
            raise ConfigurationError(f"unit {unit} has no free session slot")
        s = Session(request.rid, unit, request.prompt_tokens,
                    request.gen_tokens, request)
        self._by_unit[unit][request.rid] = s
        self._by_rid[request.rid] = s
        self.peak_kv_bytes = max(
            self.peak_kv_bytes,
            sum(self.kv_bytes(u) for u in self._by_unit),
        )
        return s

    def first_decode_item(self, rid: int, now: int) -> PhaseItem:
        """The decode step that becomes ready when the prefill finishes."""
        s = self._by_rid[rid]
        return PhaseItem(s.request, "decode", ready=now, step=0,
                         context=s.context, unit=s.unit)

    def step(self, rid: int, now: int) -> PhaseItem | None:
        """Advance a session one generated token.

        Returns the next decode :class:`PhaseItem` (ready at ``now``,
        pinned to the session's unit), or ``None`` when the generation is
        complete — the session is then evicted and its KV freed.
        """
        s = self._by_rid[rid]
        s.context += 1
        s.remaining -= 1
        if s.remaining <= 0:
            del self._by_unit[s.unit][rid]
            del self._by_rid[rid]
            return None
        step = s.request.gen_tokens - s.remaining
        return PhaseItem(s.request, "decode", ready=now, step=step,
                         context=s.context, unit=s.unit)
