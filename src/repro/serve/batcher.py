"""Dynamic batcher: coalesce compatible phase items under a wait window.

Items are only coalesced within a *batch class* — work that can share one
unit-occupancy job:

* ``("vit", None)`` — image classifications (any unit can take them);
* ``("prefill", None)`` — prompt prefills (any unit with a free session
  slot; the batch pins the sessions to the chosen unit);
* ``("decode", u)`` — decode steps of sessions resident on unit ``u``
  (KV-cache affinity: only unit ``u`` may run them).

A class's batch *closes* (becomes dispatchable) when it reaches
``max_batch`` items or its oldest item has waited ``max_wait_us``.  The
window is the classic latency/throughput knob: 0 degenerates to
dispatch-what-is-queued, large windows trade first-token latency for
stream efficiency (Eqn 9 via ``batched_bfp_efficiency``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.serve.request import PhaseItem

__all__ = ["BatchPolicy", "Batch", "DynamicBatcher"]

ClassKey = tuple[str, int | None]


@dataclass(frozen=True)
class BatchPolicy:
    """Coalescing limits of the dynamic batcher.

    ``max_batch`` governs decode and prefill.  ViT gets its own cap,
    default 1: a 197-token image is already a wide matmul (N_X ~ 25 block
    rows in Eqn 9), so batching gains ~1.0x per item while serializing
    completions behind a multi-second unit occupancy.  Decode is the
    N_X = 1 worst case and gains ~4.5x per item at batch 8 — batching is
    a *decode* economics story on this hardware.
    """

    max_batch: int = 8
    max_wait_us: float = 200.0
    vit_max_batch: int = 1

    def __post_init__(self) -> None:
        if self.max_batch <= 0 or self.vit_max_batch <= 0:
            raise ConfigurationError("batch limits must be positive")
        if self.max_wait_us < 0:
            raise ConfigurationError("max_wait_us cannot be negative")

    def batch_limit(self, phase: str) -> int:
        return self.vit_max_batch if phase == "vit" else self.max_batch

    def max_wait_cycles(self, clock: ClockConfig = DEFAULT_CLOCK) -> int:
        return int(round(self.max_wait_us * 1e-6 * clock.freq_hz))


@dataclass
class Batch:
    """A closed batch: one unit-occupancy job's worth of phase items."""

    phase: str
    items: list[PhaseItem]
    formed_at: int
    unit: int | None = None  # decode affinity pin

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def context(self) -> int:
        """Cost-model context: the worst (longest) item in the batch."""
        return max((i.context for i in self.items), default=0)


class DynamicBatcher:
    """FIFO per-class queues with size/window batch closing."""

    def __init__(
        self,
        policy: BatchPolicy = BatchPolicy(),
        clock: ClockConfig = DEFAULT_CLOCK,
    ) -> None:
        self.policy = policy
        self._wait = policy.max_wait_cycles(clock)
        self._queues: dict[ClassKey, deque[PhaseItem]] = {}

    # -- intake --------------------------------------------------------------
    def add(self, item: PhaseItem) -> None:
        key: ClassKey = (item.phase, item.unit if item.phase == "decode" else None)
        if item.phase == "decode" and item.unit is None:
            raise ConfigurationError("decode items must carry a unit pin")
        self._queues.setdefault(key, deque()).append(item)

    def depth(self) -> int:
        """Total queued items (the admission-control pressure signal)."""
        return sum(len(q) for q in self._queues.values())

    def empty(self) -> bool:
        """O(1) emptiness test: ``_pop`` deletes drained queues, so the
        dict is non-empty iff at least one item is queued.  Hot-loop
        guards (recorder epoch marking) use this instead of depth()."""
        return not self._queues

    def queued(self, phase: str) -> int:
        return sum(len(q) for (p, _), q in self._queues.items() if p == phase)

    # -- batch closing -------------------------------------------------------
    def _ready(self, key: ClassKey, now: int) -> bool:
        q = self._queues.get(key)
        if not q:
            return False
        return (len(q) >= self.policy.batch_limit(key[0])
                or now - q[0].ready >= self._wait)

    def _pop(self, key: ClassKey, now: int, limit: int | None = None) -> Batch:
        q = self._queues[key]
        take = min(len(q), self.policy.batch_limit(key[0]),
                   limit if limit is not None else len(q))
        items = [q.popleft() for _ in range(take)]
        if not q:
            del self._queues[key]
        phase, unit = key
        return Batch(phase, items, now, unit)

    def pop_ready(
        self,
        now: int,
        unit: int,
        *,
        prefill_slots: int | None = None,
        decode_sessions: int | None = None,
    ) -> Batch | None:
        """The batch unit ``unit`` should run now, or None to stay idle.

        Decode work pinned to this unit has priority (it holds live KV and
        is per-token latency-critical); otherwise the global class whose
        head item has waited longest wins.  ``prefill_slots`` caps a
        prefill batch to the unit's free session slots — 0 suppresses
        prefill entirely (KV backpressure).

        ``decode_sessions`` is the unit's resident session count: once
        that many decode items are queued, only a *new* prefill landing on
        this unit could grow the batch (each resident session has at most
        one outstanding step).  So when the session slots are full, or no
        prefill is queued anywhere, waiting out the window would be pure
        added latency and the batch closes early.  While prefills are
        still pending and admissible the window runs — it is the pacing
        that lets residency (and with it decode batch size) build up.
        """
        decode_key: ClassKey = ("decode", unit)
        dq = self._queues.get(decode_key)
        if dq:
            at_residency = (
                decode_sessions is not None and len(dq) >= decode_sessions
            )
            slots_full = prefill_slots is not None and prefill_slots <= 0
            prefill_pending = bool(self._queues.get(("prefill", None)))
            if self._ready(decode_key, now) or (
                at_residency and (slots_full or not prefill_pending)
            ):
                return self._pop(decode_key, now)
        candidates: list[tuple[int, ClassKey, int | None]] = []
        for key in (("vit", None), ("prefill", None)):
            limit = None
            if key[0] == "prefill":
                if prefill_slots is not None and prefill_slots <= 0:
                    continue
                limit = prefill_slots
            if self._ready(key, now):
                candidates.append((self._queues[key][0].ready, key, limit))
        if not candidates:
            return None
        _, key, limit = min(candidates)
        return self._pop(key, now, limit)

    def next_expiry(self, after: int | None = None) -> int | None:
        """Earliest time any queued class's wait window closes.

        With ``after``, only windows closing strictly later count: an
        already-expired class needs a dispatch opportunity (a unit or a
        session slot freeing up), not a timer — without the filter its
        stale expiry would mask the next real one.
        """
        exps = [q[0].ready + self._wait for q in self._queues.values() if q]
        if after is not None:
            exps = [e for e in exps if e > after]
        return min(exps) if exps else None
