"""Typed inference requests and seeded workload generation.

Two request families arrive at the system, matching the paper's two
workload classes:

* ``"vit"`` — a ViT/DeiT classification over one image (encoder traffic,
  the regime of the systolic-array related work);
* ``"llm"`` — a decoder generation: one prefill over ``prompt_tokens``
  followed by ``gen_tokens`` KV-cache decode steps (the prefill/decode
  split of ``results/decoder_prefill_vs_decode.txt``).

A request's lifecycle is broken into :class:`PhaseItem` units — the things
the batcher coalesces and the dispatcher places on units.  Time is always
integer *cycles* of the system clock; the generator is driven by a seeded
``numpy`` generator, never the wall clock, so traces are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["KINDS", "PHASES", "Request", "PhaseItem", "TrafficConfig",
           "DiurnalConfig", "poisson_trace", "diurnal_trace",
           "trace_from_rows"]

KINDS = ("vit", "llm")
PHASES = ("vit", "prefill", "decode")


@dataclass(frozen=True)
class Request:
    """One inference request with arrival time and latency deadline.

    ``user`` identifies the logical end user (session key): a cluster
    router keeps a user's consecutive requests on the replica that already
    warmed caches for them (session affinity).  ``None`` means anonymous —
    every such request routes purely on load.
    """

    rid: int
    kind: str  # "vit" | "llm"
    arrival: int  # cycles
    deadline: int | None = None  # absolute cycles, or None for best-effort
    prompt_tokens: int = 0  # llm only
    gen_tokens: int = 0  # llm only
    user: int | None = None  # affinity key for cluster routing

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(f"request {self.rid} has unknown kind "
                                     f"{self.kind!r}")
        if self.arrival < 0:
            raise ConfigurationError(f"request {self.rid} arrives before t=0")
        if self.kind == "llm" and (self.prompt_tokens <= 0 or self.gen_tokens <= 0):
            raise ConfigurationError(
                f"llm request {self.rid} needs prompt_tokens and gen_tokens"
            )


@dataclass
class PhaseItem:
    """One unit-schedulable piece of a request's lifecycle.

    ``context`` drives the cost model (prompt length for prefill, current
    KV length for decode); ``unit`` is the session-affinity pin — decode
    steps must run on the unit holding the session's KV cache.
    """

    request: Request
    phase: str  # "vit" | "prefill" | "decode"
    ready: int  # cycles when this item became dispatchable
    step: int = 0  # decode step index
    context: int = 0
    unit: int | None = None

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ConfigurationError(f"unknown phase {self.phase!r}")


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of the synthetic open-loop workload."""

    rate_rps: float = 100.0  # mean Poisson arrival rate, requests/s
    vit_fraction: float = 0.3
    prompt_tokens: tuple[int, int] = (8, 64)  # inclusive uniform range
    gen_tokens: tuple[int, int] = (4, 32)
    vit_deadline_ms: float | None = 500.0
    llm_deadline_ms: float | None = 2000.0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if not 0.0 <= self.vit_fraction <= 1.0:
            raise ConfigurationError("vit_fraction must be in [0, 1]")


def _deadline(arrival: int, ms: float | None, clock: ClockConfig) -> int | None:
    if ms is None:
        return None
    return arrival + int(ms * 1e-3 * clock.freq_hz)


def _emit_request(
    rng: np.random.Generator,
    rid: int,
    t: int,
    cfg: TrafficConfig,
    clock: ClockConfig,
    n_users: int | None,
) -> Request:
    """Draw one request's kind/shape (shared by the trace generators).

    The rng consumption order (kind, then token bounds, then — only when a
    user pool exists — the user id) is part of the reproducibility
    contract: traces are pinned by seed across releases.
    """
    if rng.random() < cfg.vit_fraction:
        req = Request(rid, "vit", t, _deadline(t, cfg.vit_deadline_ms, clock))
    else:
        lo, hi = cfg.prompt_tokens
        prompt = int(rng.integers(lo, hi + 1))
        lo, hi = cfg.gen_tokens
        gen = int(rng.integers(lo, hi + 1))
        req = Request(rid, "llm", t, _deadline(t, cfg.llm_deadline_ms, clock),
                      prompt_tokens=prompt, gen_tokens=gen)
    if n_users is not None:
        req = Request(req.rid, req.kind, req.arrival, req.deadline,
                      req.prompt_tokens, req.gen_tokens,
                      user=int(rng.integers(0, n_users)))
    return req


def poisson_trace(
    n_requests: int,
    cfg: TrafficConfig = TrafficConfig(),
    *,
    seed: int = 0,
    clock: ClockConfig = DEFAULT_CLOCK,
    n_users: int | None = None,
) -> list[Request]:
    """Generate ``n_requests`` Poisson arrivals (seeded, cycle timestamps).

    ``n_users`` (optional) tags each request with a user id drawn uniformly
    from a pool of that size — the affinity key cluster routing uses.  The
    default ``None`` draws nothing extra, so historical seeds reproduce
    byte-identical traces.
    """
    if n_requests < 0:
        raise ConfigurationError("cannot generate a negative request count")
    rng = np.random.default_rng(seed)
    mean_gap = clock.freq_hz / cfg.rate_rps  # cycles between arrivals
    out: list[Request] = []
    t = 0
    for rid in range(n_requests):
        t += max(1, int(round(rng.exponential(mean_gap))))
        out.append(_emit_request(rng, rid, t, cfg, clock, n_users))
    return out


@dataclass(frozen=True)
class DiurnalConfig:
    """Sinusoidal day/night modulation of the Poisson arrival rate.

    The instantaneous rate at cycle ``t`` is::

        rate(t) = rate_rps * (1 + amplitude * sin(2 pi t / period - phase))

    ``period_s`` is the "day" length in simulated seconds (scaled down
    from 86400 so a bench trace spans multiple peaks), ``amplitude`` in
    ``[0, 1)`` how deep the night trough is relative to the mean, and
    ``phase`` shifts where in the day the trace starts (the default
    starts at the mean on the way up, so a short trace sees a ramp to
    peak and a fall into the trough — one scale-up and one scale-down).
    """

    period_s: float = 2.0
    amplitude: float = 0.8
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ConfigurationError("diurnal period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")

    def rate_factor(self, t_cycles: int, clock: ClockConfig) -> float:
        """Multiplier on the mean rate at cycle ``t`` (always positive)."""
        t_s = t_cycles / clock.freq_hz
        return 1.0 + self.amplitude * float(
            np.sin(2.0 * np.pi * t_s / self.period_s - self.phase)
        )


def diurnal_trace(
    n_requests: int,
    cfg: TrafficConfig = TrafficConfig(),
    diurnal: DiurnalConfig = DiurnalConfig(),
    *,
    seed: int = 0,
    clock: ClockConfig = DEFAULT_CLOCK,
    n_users: int | None = None,
) -> list[Request]:
    """Seeded inhomogeneous-Poisson arrivals with day/night modulation.

    Arrival gaps are exponential with the *instantaneous* mean at the
    current simulated time — the classic thinning-free approximation for
    slowly-varying rates (the diurnal period is many orders of magnitude
    above a single gap).  ``cfg.rate_rps`` is the mean rate; the peak runs
    at ``1 + amplitude`` times it and the trough at ``1 - amplitude``.
    """
    if n_requests < 0:
        raise ConfigurationError("cannot generate a negative request count")
    rng = np.random.default_rng(seed)
    out: list[Request] = []
    t = 0
    for rid in range(n_requests):
        rate = cfg.rate_rps * diurnal.rate_factor(t, clock)
        mean_gap = clock.freq_hz / rate
        t += max(1, int(round(rng.exponential(mean_gap))))
        out.append(_emit_request(rng, rid, t, cfg, clock, n_users))
    return out


def trace_from_rows(rows: list[dict]) -> list[Request]:
    """Build a trace from explicit records (replay of a captured workload).

    Each row needs ``kind`` and ``arrival``; llm rows also
    ``prompt_tokens``/``gen_tokens``; ``deadline`` is optional.  Rows are
    sorted by arrival and re-numbered.
    """
    reqs = [
        Request(
            rid=i,
            kind=r["kind"],
            arrival=int(r["arrival"]),
            deadline=r.get("deadline"),
            prompt_tokens=int(r.get("prompt_tokens", 0)),
            gen_tokens=int(r.get("gen_tokens", 0)),
        )
        for i, r in enumerate(sorted(rows, key=lambda r: int(r["arrival"])))
    ]
    return reqs
