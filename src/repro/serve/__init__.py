"""Request-queue + dynamic-batching serving layer over the 15-unit system.

The paper's system section deploys 15 independent multi-mode units
"running with independent instructions"; ``repro.hw.system`` schedules a
*static* job list onto them.  This package adds the missing online half:
requests that arrive over simulated time (Poisson or trace-driven), a
dynamic batcher that coalesces compatible work, an event-driven dispatcher
with per-unit queues and admission control, decoder session state with
KV-cache affinity, and serving metrics (latency percentiles, TTFT,
tokens/s, utilization, rejection rate).

Everything runs in simulated cycles — no wall clock anywhere — so every
run is exactly reproducible from its seed.
"""

from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.dispatcher import ModelProfile, ServeConfig, ServeReport, simulate
from repro.serve.metrics import MetricsCollector
from repro.serve.request import PhaseItem, Request, TrafficConfig, poisson_trace
from repro.serve.sessions import Session, SessionTable

__all__ = [
    "Batch",
    "BatchPolicy",
    "DynamicBatcher",
    "MetricsCollector",
    "ModelProfile",
    "PhaseItem",
    "Request",
    "ServeConfig",
    "ServeReport",
    "Session",
    "SessionTable",
    "TrafficConfig",
    "poisson_trace",
    "simulate",
]
