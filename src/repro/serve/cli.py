"""``python -m repro serve-sim`` — run the serving simulation from the shell.

Generates a seeded Poisson trace, runs the event-driven dispatcher, and
prints the serving summary (p50/p95/p99 latency, TTFT, tokens/s,
utilization, rejection rate).  ``--compare-batch1`` replays the *same*
trace with batching disabled to quantify what dynamic batching buys.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.serve.batcher import BatchPolicy
from repro.serve.dispatcher import ServeConfig, ServeReport, simulate
from repro.serve.request import TrafficConfig, poisson_trace

__all__ = ["add_serve_sim_parser", "run_serve_sim"]


def add_serve_sim_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "serve-sim",
        help="simulate online serving with dynamic batching",
        description=__doc__,
    )
    p.add_argument("--requests", type=int, default=2000,
                   help="number of requests in the trace (default 2000)")
    p.add_argument("--seed", type=int, default=0, help="trace seed")
    p.add_argument("--rate", type=float, default=100.0,
                   help="mean Poisson arrival rate, requests/s")
    p.add_argument("--vit-frac", type=float, default=0.3,
                   help="fraction of ViT classify requests (rest are LLM)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="dynamic batcher size limit")
    p.add_argument("--max-wait-us", type=float, default=200.0,
                   help="batch window: max wait of the oldest queued item")
    p.add_argument("--vit-max-batch", type=int, default=1,
                   help="ViT batch cap (default 1: a 197-token image is "
                        "already stream-efficient, batching only adds latency)")
    p.add_argument("--max-queue", type=int, default=512,
                   help="admission bound; excess arrivals are rejected")
    p.add_argument("--max-sessions", type=int, default=8,
                   help="resident decoder sessions (KV caches) per unit")
    p.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="model decode batches as compiled-plan replays "
                        "(trace once per group shape); --no-compiled "
                        "models the eager per-step path")
    p.add_argument("--compare-batch1", action="store_true",
                   help="also replay the trace with batching disabled")
    p.add_argument("--json", type=Path, default=None, metavar="FILE",
                   help="deprecated alias for --json-out")
    p.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                   help="write the summary dict as JSON")
    p.add_argument("--trace-out", type=Path, default=None, metavar="FILE",
                   help="write a Chrome-trace/Perfetto JSON of the run "
                        "(per-unit dispatch timeline, request spans, queue "
                        "depth; timestamps are cycles)")
    p.add_argument("--metrics-out", type=Path, default=None, metavar="FILE",
                   help="write the metrics-registry snapshot")
    p.add_argument("--metrics-format", choices=("json", "prom"),
                   default="json",
                   help="--metrics-out format: JSON snapshot or Prometheus "
                        "text exposition")
    p.add_argument("--numerics-out", type=Path, default=None, metavar="FILE",
                   help="write a quantization-health report (JSON) from a "
                        "functional replay of the trace's first LLM requests "
                        "under bfp8-mixed (or the --policy backend)")
    p.add_argument("--numerics-requests", type=int, default=4,
                   help="LLM requests to replay for --numerics-out")
    p.add_argument("--policy", default=None, metavar="NAME_OR_JSON",
                   help="per-layer precision policy: a preset name or a "
                        "policy JSON file; shapes the cost model's compiled "
                        "schedules (default: the all-bfp8 schedule)")
    p.add_argument("--array-mode", default=None, metavar="SPEC",
                   help="unit-mode overrides for the cost model: comma-"
                        "separated format=mode pairs ('fp16=fp16_dot', "
                        "shorthand 'fp16'); routes those formats onto the "
                        "named repro.cost.modes array personality instead "
                        "of their default mapping")
    p.add_argument("--align-predict", type=float, default=None,
                   metavar="FRAC",
                   help="shift-aware alignment-width prediction: fraction "
                        "of PSU accumulate steps charged at the narrow "
                        "single-stage shift rate (0..1; measure it with "
                        "'repro align-predict' or the numerics monitor)")
    obs = p.add_argument_group(
        "SLO / request-path observability",
        "deadline objectives with burn-rate accounting (repro.obs.slo) and "
        "request-path stage decomposition in the trace",
    )
    obs.add_argument("--slo", action="store_true",
                     help="track per-class SLOs (deadline objectives, error "
                          "budgets, burn rates); adds an 'slo' summary "
                          "section")
    obs.add_argument("--slo-objective", type=float, default=0.99,
                     help="target fraction of requests meeting their "
                          "deadline, per class (default 0.99)")
    obs.add_argument("--slo-short-window-ms", type=float, default=250.0,
                     help="short burn-rate window, ms of simulated time")
    obs.add_argument("--slo-long-window-ms", type=float, default=1000.0,
                     help="long burn-rate window, ms of simulated time")
    obs.add_argument("--slo-out", type=Path, default=None, metavar="FILE",
                     help="write the SLO snapshot (budgets, burns, per-class "
                          "misses) as JSON; implies --slo")
    obs.add_argument("--slo-burn-scale-up", type=float, default=None,
                     metavar="BURN",
                     help="cluster+autoscale: scale up when the sustained "
                          "fleet burn rate exceeds BURN (also vetoes "
                          "scale-down while burn >= 1)")
    obs.add_argument("--trace-detail-every", type=int, default=1, metavar="N",
                     help="with --trace-out: sample full request-path stage "
                          "detail for 1-in-N requests (default 1 = all; "
                          "0 disables stage decomposition)")
    obs.add_argument("--trace-max-spans", type=int, default=512,
                     help="per-request child-span budget for sampled "
                          "requests (default 512)")
    rec = p.add_argument_group(
        "flight recorder / incident capture",
        "always-on bounded ring buffers with online anomaly detection "
        "(repro.obs.recorder); a trigger dumps a self-contained incident "
        "bundle that `repro incident-replay` re-simulates deterministically",
    )
    rec.add_argument("--record", action="store_true",
                     help="attach the flight recorder (anomaly triggers, "
                          "incident bundles)")
    rec.add_argument("--incident-dir", type=Path,
                     default=Path("results/incidents"), metavar="DIR",
                     help="bundle output root; bundles land at "
                          "DIR/<run>/<id>.json (default results/incidents)")
    rec.add_argument("--record-run", default=None, metavar="NAME",
                     help="run label for bundle paths (default serve-<seed>)")
    rec.add_argument("--record-cooldown-ms", type=float, default=100.0,
                     help="suppress new incidents for this long after one "
                          "closes (default 100 ms of simulated time)")
    rec.add_argument("--anomaly-warmup", type=int, default=64,
                     help="EWMA samples per signal before scoring starts")
    rec.add_argument("--anomaly-alpha", type=float, default=0.05,
                     help="EWMA smoothing factor")
    rec.add_argument("--anomaly-latency-z", type=float, default=5.0,
                     help="latency z-score trigger threshold (0 disables)")
    rec.add_argument("--anomaly-queue-z", type=float, default=5.0,
                     help="queue-depth z-score trigger threshold (0 disables)")
    rec.add_argument("--anomaly-occupancy-z", type=float, default=0.0,
                     help="batch-occupancy z-score threshold (default 0 = "
                          "disabled: per-dispatch fill is bimodal under "
                          "mixed traffic and pages on a running-mean score)")
    rec.add_argument("--anomaly-burn", type=float, default=8.0,
                     help="SLO sustained-burn trigger threshold (with --slo)")
    rec.add_argument("--inject-spike-at-us", type=float, default=None,
                     metavar="US",
                     help="fault injection: batches whose newest item is "
                          "ready inside the window starting here (simulated "
                          "us) run slower — a deterministic latency spike "
                          "for exercising triggers (single-node mode only)")
    rec.add_argument("--inject-spike-duration-us", type=float, default=500.0,
                     help="spike window length, us (default 500)")
    rec.add_argument("--inject-spike-extra-us", type=float, default=2000.0,
                     help="extra latency per affected batch, us "
                          "(default 2000)")
    cluster = p.add_argument_group(
        "cluster mode",
        "simulate a fleet of boards behind an affinity router "
        "(repro.cluster); --compare-batch1/--numerics-out do not apply",
    )
    cluster.add_argument("--cluster", action="store_true",
                         help="run the multi-board cluster simulation")
    cluster.add_argument("--boards", type=int, default=4,
                         help="boards in the fleet (default 4)")
    cluster.add_argument("--units-per-board", type=int, default=15,
                         help="processing units per board (default 15)")
    cluster.add_argument("--boards-per-replica", type=int, default=1,
                         help="boards one replica occupies (default 1)")
    cluster.add_argument("--tp", type=int, default=1,
                         help="tensor-parallel degree per lane")
    cluster.add_argument("--pp", type=int, default=1,
                         help="pipeline-parallel stages per lane")
    cluster.add_argument("--replicas", type=int, default=1,
                         help="replicas at cycle 0 (default 1)")
    cluster.add_argument("--users", type=int, default=64,
                         help="distinct user ids for session affinity "
                              "(0 disables user tagging; default 64)")
    cluster.add_argument("--router-seed", type=int, default=0,
                         help="seed for the router's tie-break draws")
    cluster.add_argument("--max-cluster-queue", type=int, default=4096,
                         help="fleet-wide admission bound at the edge")
    cluster.add_argument("--autoscale", action="store_true",
                         help="enable the load-driven autoscaler")
    cluster.add_argument("--min-replicas", type=int, default=1,
                         help="autoscaler floor (default 1)")
    cluster.add_argument("--max-replicas", type=int, default=None,
                         help="autoscaler ceiling (default: fleet capacity)")
    cluster.add_argument("--scale-interval-us", type=float, default=2000.0,
                         help="autoscaler sampling interval, us")
    cluster.add_argument("--scale-cooldown-us", type=float, default=8000.0,
                         help="cool-down after any scale action, us")
    cluster.add_argument("--provision-us", type=float, default=1000.0,
                         help="delay before a new replica serves, us")
    cluster.add_argument("--diurnal", action="store_true",
                         help="modulate the arrival rate sinusoidally")
    cluster.add_argument("--diurnal-period-s", type=float, default=0.6,
                         help="diurnal period in trace seconds")
    cluster.add_argument("--diurnal-amplitude", type=float, default=0.9,
                         help="diurnal swing as a fraction of the mean rate")
    return p


def _precision(args):
    if getattr(args, "policy", None) is None:
        return None
    from repro.models.policy import load_policy

    return load_policy(args.policy)


def _modes(args):
    """The run's unit-mode options (None = historical cost model)."""
    from repro.cost import ModeOptions

    return ModeOptions.parse(
        getattr(args, "array_mode", None),
        align_narrow_frac=getattr(args, "align_predict", None),
    )


def _slo_tracker(args):
    """The run's SLO tracker (the null object unless --slo/--slo-out)."""
    from repro.obs.slo import NULL_SLO, SLOClass, SLOConfig, SLOTracker

    if not (args.slo or args.slo_out is not None):
        return NULL_SLO
    cfg = SLOConfig(
        classes=(SLOClass("vit", args.slo_objective),
                 SLOClass("llm", args.slo_objective)),
        short_window_ms=args.slo_short_window_ms,
        long_window_ms=args.slo_long_window_ms,
    )
    return SLOTracker(cfg)


def _spike(args, config: ServeConfig):
    """The injected latency fault, or None (cycle window from us flags)."""
    if args.inject_spike_at_us is None:
        return None
    from repro.obs.incident_cli import SpikeInjection

    freq = config.clock.freq_hz
    start = int(args.inject_spike_at_us * 1e-6 * freq)
    return SpikeInjection(
        start_cycle=start,
        end_cycle=start + int(args.inject_spike_duration_us * 1e-6 * freq),
        extra_cycles=int(args.inject_spike_extra_us * 1e-6 * freq),
    )


def _recorder(args, config: ServeConfig, tracer, slo, spike, *,
              cluster: bool = False):
    """The run's flight recorder (NULL_RECORDER unless --record).

    The capture dict embedded in every bundle carries everything a
    replay needs beyond the recorder's own rings: the full serve-config
    snapshot, trace identity (seed/rate/mix), SLO windows, and the
    injected-fault parameters.  Cluster captures are marked
    non-replayable up front (router RNG and autoscaler window state span
    capture epochs).
    """
    from repro.obs.anomaly import AnomalyConfig
    from repro.obs.recorder import NULL_RECORDER, FlightRecorder, RecorderConfig
    from repro.serve.dispatcher import serve_config_to_dict

    if not args.record:
        return NULL_RECORDER
    anomaly = AnomalyConfig(
        warmup=args.anomaly_warmup,
        alpha=args.anomaly_alpha,
        latency_z=args.anomaly_latency_z,
        queue_z=args.anomaly_queue_z,
        occupancy_z=args.anomaly_occupancy_z,
        burn_threshold=args.anomaly_burn,
    )
    capture = {
        "kind": "cluster" if cluster else "serve",
        "seed": args.seed,
        "requests": args.requests,
        "rate_rps": args.rate,
        "vit_fraction": args.vit_frac,
        "serve_config": serve_config_to_dict(config),
    }
    if spike is not None:
        capture["injection"] = spike.as_dict()
    if slo.enabled:
        capture["slo"] = {
            "classes": [{"name": c.name, "objective": c.objective}
                        for c in slo.config.classes],
            "short_window_ms": slo.config.short_window_ms,
            "long_window_ms": slo.config.long_window_ms,
            "count_rejections": slo.config.count_rejections,
            "long_window_cycles": slo._long_cycles,
        }
    run = args.record_run or (f"cluster-{args.seed}" if cluster
                              else f"serve-{args.seed}")
    return FlightRecorder(
        RecorderConfig(
            anomaly=anomaly,
            cooldown_cycles=int(args.record_cooldown_ms * 1e-3
                                * config.clock.freq_hz),
        ),
        run=run,
        out_dir=args.incident_dir,
        capture=capture,
        tracer=tracer,
        replayable=not cluster,
        replayable_reason=("cluster capture: router RNG and autoscaler "
                           "window state span capture epochs"
                           if cluster else None),
    )


def _print_recorder_summary(args, recorder, summary: dict) -> None:
    rs = summary.get("recorder", {})
    line = (f"flight recorder: {rs.get('incidents', 0)} incident(s), "
            f"{rs.get('suppressed', 0)} trigger(s) suppressed by cool-down")
    if recorder.incident_paths:
        line += f"; bundles in {args.incident_dir / recorder.run}"
    print(line)
    for bundle in recorder.incidents:
        trig = bundle["trigger"]
        replay = bundle["replay"]
        status = ("replayable" if replay["supported"]
                  else f"capture-only: {replay['reason']}")
        print(f"  {bundle['id']}: {trig['source']}/{trig['signal']} at "
              f"cycle {trig['cycle']} ({status})")


def _path_config(args):
    """Request-path decomposition config (None when tracing is off)."""
    from repro.obs.tracer import RequestPathConfig

    if args.trace_out is None or args.trace_detail_every <= 0:
        return None
    return RequestPathConfig(detail_every=args.trace_detail_every,
                             max_spans_per_request=args.trace_max_spans)


def _write_slo_out(args, summary: dict) -> None:
    import json

    doc = {
        "seed": args.seed,
        "requests": args.requests,
        "rate_rps": args.rate,
        "deadline_miss_rate": summary.get("deadline_miss_rate"),
        "slo": summary.get("slo", {}),
    }
    args.slo_out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"SLO snapshot written to {args.slo_out}")


def _config(args, max_batch: int) -> ServeConfig:
    return ServeConfig(
        policy=BatchPolicy(max_batch=max_batch, max_wait_us=args.max_wait_us,
                           vit_max_batch=args.vit_max_batch),
        max_queue=args.max_queue,
        max_sessions_per_unit=args.max_sessions,
        precision=_precision(args),
        modes=_modes(args),
        compiled=getattr(args, "compiled", True),
    )


def run_serve_sim(args) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import NULL_TRACER, Tracer

    if args.cluster:
        return _run_cluster_sim(args)
    traffic = TrafficConfig(rate_rps=args.rate, vit_fraction=args.vit_frac)
    trace = poisson_trace(args.requests, traffic, seed=args.seed)
    tracer = NULL_TRACER
    if args.trace_out is not None:
        tracer = Tracer(meta={
            "seed": args.seed,
            "requests": args.requests,
            "rate_rps": args.rate,
            "max_batch": args.max_batch,
            "clock_freq_hz": _config(args, args.max_batch).clock.freq_hz,
        })
    registry = MetricsRegistry() if args.metrics_out is not None else None
    config = _config(args, args.max_batch)
    slo = _slo_tracker(args)
    spike = _spike(args, config)
    cost = None
    if spike is not None:
        from repro.obs.incident_cli import SpikedCostModel

        cost = SpikedCostModel(config, spike)
    recorder = _recorder(args, config, tracer, slo, spike)
    report: ServeReport = simulate(trace, config,
                                   tracer=tracer, registry=registry,
                                   slo=slo, path=_path_config(args),
                                   recorder=recorder, cost=cost)
    print(report.render(
        f"serve-sim: {args.requests} requests, rate {args.rate:g}/s, "
        f"seed {args.seed}, max_batch {args.max_batch}"
    ))
    if config.precision is not None:
        _print_precision_split(config)
    if report.plans is not None:
        pl = report.plans
        print(f"compiled decode plans: {pl['decode_group_shapes']} group "
              f"shapes traced once, {pl['replays']} replays "
              f"({pl['dispatches']} decode dispatches)")
    if args.compare_batch1:
        base = simulate(trace, _config(args, 1))
        got, ref = report.summary, base.summary
        print()
        print(base.render("same trace, batching disabled (max_batch=1)"))
        print()
        for key in ("tokens_per_s", "requests_per_s"):
            if ref[key]:
                print(f"dynamic batching {key} speedup: "
                      f"{got[key] / ref[key]:.2f}x")
    json_out = args.json_out if args.json_out is not None else args.json
    if json_out is not None:
        json_out.write_text(report.to_json() + "\n")
    if args.trace_out is not None:
        args.trace_out.write_text(tracer.to_json() + "\n")
        print(f"trace written to {args.trace_out} "
              f"({len(tracer.spans)} spans, {len(tracer.counters)} counter "
              "samples; open in ui.perfetto.dev)")
    if args.metrics_out is not None:
        if args.metrics_format == "prom":
            args.metrics_out.write_text(registry.to_prom_text())
        else:
            args.metrics_out.write_text(registry.to_json() + "\n")
    if args.slo_out is not None:
        _write_slo_out(args, report.summary)
    if recorder.enabled:
        _print_recorder_summary(args, recorder, report.summary)
    if args.numerics_out is not None:
        _write_serving_numerics(trace, args)
    return 0


def _run_cluster_sim(args) -> int:
    """``serve-sim --cluster``: fleet simulation via :mod:`repro.cluster`."""
    from repro.cluster import (
        AutoscalerConfig,
        ClusterConfig,
        ClusterSpec,
        ShardPlan,
        simulate_cluster,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import NULL_TRACER, Tracer
    from repro.serve.request import DiurnalConfig, diurnal_trace

    traffic = TrafficConfig(rate_rps=args.rate, vit_fraction=args.vit_frac)
    n_users = args.users if args.users > 0 else None
    if args.diurnal:
        trace = diurnal_trace(
            args.requests, traffic,
            DiurnalConfig(period_s=args.diurnal_period_s,
                          amplitude=args.diurnal_amplitude),
            seed=args.seed, n_users=n_users,
        )
    else:
        trace = poisson_trace(args.requests, traffic,
                              seed=args.seed, n_users=n_users)

    spec = ClusterSpec(
        boards=args.boards,
        units_per_board=args.units_per_board,
        boards_per_replica=args.boards_per_replica,
        plan=ShardPlan(tp=args.tp, pp=args.pp),
    )
    autoscaler = None
    if args.autoscale:
        autoscaler = AutoscalerConfig(
            min_replicas=args.min_replicas,
            max_replicas=(args.max_replicas if args.max_replicas is not None
                          else spec.max_replicas),
            interval_us=args.scale_interval_us,
            cooldown_us=args.scale_cooldown_us,
            provision_us=args.provision_us,
            scale_up_burn_rate=args.slo_burn_scale_up,
        )
    serve = _config(args, args.max_batch)
    spike = _spike(args, serve)
    config = ClusterConfig(
        serve=serve,
        spec=spec,
        autoscaler=autoscaler,
        initial_replicas=args.replicas,
        max_cluster_queue=args.max_cluster_queue,
        router_seed=args.router_seed,
        spike=spike,
    )

    tracer = NULL_TRACER
    if args.trace_out is not None:
        tracer = Tracer(meta={
            "seed": args.seed,
            "requests": args.requests,
            "rate_rps": args.rate,
            "boards": args.boards,
            "plan": spec.plan.describe(),
            "clock_freq_hz": config.serve.clock.freq_hz,
        })
    registry = MetricsRegistry() if args.metrics_out is not None else None
    slo = _slo_tracker(args)
    recorder = _recorder(args, config.serve, tracer, slo, spike, cluster=True)
    report = simulate_cluster(trace, config, tracer=tracer, registry=registry,
                              slo=slo, path=_path_config(args),
                              recorder=recorder)
    shape = (f"{args.boards} boards, {spec.plan.describe()}, "
             f"{args.replicas} initial replica(s)"
             + (", autoscaled" if autoscaler else ""))
    print(report.render(
        f"serve-sim --cluster: {args.requests} requests, rate "
        f"{args.rate:g}/s, seed {args.seed}, {shape}"
    ))
    json_out = args.json_out if args.json_out is not None else args.json
    if json_out is not None:
        json_out.write_text(report.to_json() + "\n")
    if args.trace_out is not None:
        args.trace_out.write_text(tracer.to_json() + "\n")
        print(f"trace written to {args.trace_out} "
              f"({len(tracer.spans)} spans, {len(tracer.counters)} counter "
              "samples; open in ui.perfetto.dev)")
    if args.metrics_out is not None:
        if args.metrics_format == "prom":
            args.metrics_out.write_text(registry.to_prom_text())
        else:
            args.metrics_out.write_text(registry.to_json() + "\n")
    if args.slo_out is not None:
        _write_slo_out(args, report.summary)
    if recorder.enabled:
        _print_recorder_summary(args, recorder, report.summary)
    return 0


def _print_precision_split(config: ServeConfig) -> None:
    """Per-format unit-cycle attribution of the policy-compiled batch jobs."""
    from repro.eval.reporting import render_metrics
    from repro.runtime.scheduler import compile_decoder

    p = config.profile
    for phase in ("prefill", "decode"):
        model = compile_decoder(
            vocab=p.vocab, dim=p.dim, depth=p.depth, n_heads=p.n_heads,
            context=p.context, mlp_ratio=p.mlp_ratio, phase=phase,
            clock=config.clock, mem=config.mem, policy=config.precision,
            modes=config.modes,
        )
        total = sum(model.latency_by_mode(1).values())
        split = {
            f"cycles.{mode}": cyc
            for mode, cyc in sorted(model.latency_by_mode(1).items())
        }
        split["cycles.total"] = total
        if config.modes is not None:
            for mode, cyc in sorted(model.latency_by_unit_mode(1).items()):
                split[f"unit_mode.{mode}"] = cyc
        print()
        print(render_metrics(
            f"precision policy {config.precision.name!r}: "
            f"{phase} unit-cycles by format", split))


def _write_serving_numerics(trace, args) -> None:
    """Value-domain health of the serving path: functional shadow replay.

    The dispatcher itself moves no tensors (it is a cycle-accurate cost
    model), so the numerics of the online path are measured by replaying
    the trace's first LLM requests through the functional ``TinyLM``
    decode under the paper's bfp8-mixed backend (or, with ``--policy``, a
    :class:`~repro.models.backend.PolicyBackend` over the same policy the
    cost model compiled) — same shapes (prompt + greedy decode, KV
    cache), same quantization kernels the hardware would run — with the
    numerics monitor attached.
    """
    import json

    import numpy as np

    from repro.models.backend import PolicyBackend, get_backend
    from repro.models.decoder import TinyLM
    from repro.obs import baseline as bl
    from repro.obs.numerics import NumericsMonitor, set_monitor
    from repro.perf.prepared import PreparedOperandCache, set_cache

    llm = [r for r in trace if r.kind == "llm"][: args.numerics_requests]
    model = TinyLM(seed=args.seed)
    precision = _precision(args)
    if precision is not None:
        backend = PolicyBackend(precision)
    else:
        backend = get_backend("bfp8-mixed")
    rng = np.random.default_rng(args.seed)
    monitor = NumericsMonitor()
    prev_monitor = set_monitor(monitor)
    prev_cache = set_cache(PreparedOperandCache())
    replayed_tokens = 0
    try:
        for r in llm:
            n_prompt = max(1, min(r.prompt_tokens, model.seq_len - 1))
            n_gen = max(1, min(r.gen_tokens, model.seq_len - n_prompt))
            prompt = rng.integers(0, model.vocab, size=n_prompt)
            model.generate_cached(prompt, n_gen, backend)
            replayed_tokens += n_gen
    finally:
        set_monitor(prev_monitor)
        set_cache(prev_cache)
    report = bl.build_report(
        monitor,
        model="tinylm-serve-replay",
        backend=backend.name,
        seed=args.seed,
        gen_tokens=replayed_tokens,
    )
    bl.validate_report(report)
    args.numerics_out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"numerics report written to {args.numerics_out} "
          f"({len(llm)} LLM requests replayed, "
          f"{len(report['entries'])} layer entries)")
