"""Hardware self-test: one call that cross-checks every datapath.

Mirrors the power-on self-test a deployed accelerator would run: random
workloads through (a) the vectorized cycle simulator, (b) the scalar
port-level PE co-simulation, (c) the fast functional engines and (d) the
numerical oracles, asserting bit-identity or the documented error bounds.
Returns a report; raises on any mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.bfp_matmul import bfp_matmul
from repro.arith.fp_sliced import sliced_multiply
from repro.errors import HardwareContractError
from repro.formats import fp32bits
from repro.formats.blocking import BfpMatrix
from repro.hw.cosim import ScalarArray
from repro.hw.systolic import SystolicArray
from repro.hw.unit import MultiModePU

__all__ = ["SelfTestReport", "run_self_test"]


@dataclass
class SelfTestReport:
    checks: list[str] = field(default_factory=list)
    seed: int = 0

    def record(self, name: str) -> None:
        self.checks.append(name)

    @property
    def passed(self) -> int:
        return len(self.checks)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"self-test: {self.passed} checks passed (seed {self.seed})"


def run_self_test(seed: int = 0) -> SelfTestReport:
    """Cross-check every datapath on randomized workloads."""
    rng = np.random.default_rng(seed)
    report = SelfTestReport(seed=seed)

    # 1. bfp8 stream: vectorized vs scalar co-sim vs exact integers.
    y_hi = rng.integers(-127, 128, (8, 8))
    y_lo = rng.integers(-127, 128, (8, 8))
    x = rng.integers(-127, 128, (3, 8, 8))
    arr = SystolicArray()
    arr.load_y_pair(y_hi, y_lo)
    vec = arr.run_bfp8_stream(x)
    s_hi, s_lo, s_cycles = ScalarArray().run_bfp8_stream(x, y_hi, y_lo)
    if not (
        np.array_equal(vec.z_hi, s_hi)
        and np.array_equal(vec.z_lo, s_lo)
        and vec.cycles == s_cycles == 8 * 3 + 15
    ):
        raise HardwareContractError("bfp8 co-simulation mismatch")
    for i in range(3):
        if not np.array_equal(vec.z_hi[i], x[i] @ y_hi):
            raise HardwareContractError("bfp8 product mismatch vs exact")
    report.record("bfp8 stream: vectorized == scalar co-sim == exact")

    # 2. fp32 multiply: cycle sim vs vectorized sliced multiply, and the
    #    scalar cascade accumulators.
    fx = rng.normal(size=(4, 5)).astype(np.float32)
    fy = rng.normal(size=(4, 5)).astype(np.float32)
    sx, ex, mx = fp32bits.decompose(fx)
    sy, ey, my = fp32bits.decompose(fy)
    res = arr.run_fp32_mul_stream(mx, my, sx, sy, ex, ey)
    if not np.array_equal(res.results, sliced_multiply(fx, fy)):
        raise HardwareContractError("fp32 mul cycle-vs-vectorized mismatch")
    if not np.array_equal(
        res.accumulators, ScalarArray().run_fp32_mul_accumulators(mx, my)
    ):
        raise HardwareContractError("fp32 cascade co-simulation mismatch")
    report.record("fp32 multiply: cycle == vectorized == scalar cascade")

    # 3. Full PU matmul: fast engine vs cycle engine vs oracle.
    a = BfpMatrix.from_dense(rng.normal(size=(16, 24)))
    b = BfpMatrix.from_dense(rng.normal(size=(24, 16)))
    fast = MultiModePU().matmul(a, b, engine="fast")
    cyc = MultiModePU().matmul(a, b, engine="cycle")
    oracle = bfp_matmul(a, b)
    if not (
        np.array_equal(fast.mantissas, cyc.mantissas)
        and np.array_equal(fast.mantissas, oracle.mantissas)
    ):
        raise HardwareContractError("PU matmul engines disagree")
    report.record("PU matmul: fast == cycle == oracle")

    # 4. fp32 ops through the PU within the documented error bounds.
    pu = MultiModePU()
    v = rng.normal(size=100).astype(np.float32)
    w = rng.normal(size=100).astype(np.float32)
    prod = pu.fp32_multiply(v, w)
    exact = v.astype(np.float64) * w.astype(np.float64)
    if (np.abs(prod - exact) > np.abs(exact) * 2.0**-22 + 1e-300).any():
        raise HardwareContractError("fp32 multiply error bound violated")
    total = pu.fp32_add(v, w)
    exact_sum = v.astype(np.float64) + w.astype(np.float64)
    ulp = np.spacing(np.abs(exact_sum).astype(np.float32)).astype(np.float64)
    if (np.abs(total - exact_sum) > 2 * ulp + 1e-300).any():
        raise HardwareContractError("fp32 add error bound violated")
    report.record("fp32 vector ops within documented bounds")

    return report
