"""Baseline int8 systolic array (the Fig. 6 "int8" design point, functional).

A conventional weight-stationary int8 array with the same geometry and the
same combined-MAC packing as the proposed unit, but no exponent unit, no
alignment shifter and no fp32 personality: partial blocks accumulate as
plain integers.  It exists so the comparison baseline is an *implemented*
design, not just a resource-model row — and so the accuracy baselines
(`int8-linear` / `int8-all` backends) have a hardware-faithful matmul.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.int8q import Int8Tensor, quantize_int8
from repro.hw.systolic import SystolicArray

__all__ = ["Int8Array", "Int8ArrayStats"]


@dataclass
class Int8ArrayStats:
    cycles: int = 0
    macs: int = 0
    streams: int = 0

    def throughput_ops(self, freq_hz: float) -> float:
        return 2.0 * self.macs * freq_hz / self.cycles if self.cycles else 0.0


@dataclass
class Int8Array:
    """int8 matmul engine built on the same systolic fabric."""

    rows: int = 8
    cols: int = 8
    array: SystolicArray = field(default_factory=SystolicArray)
    stats: Int8ArrayStats = field(default_factory=Int8ArrayStats)

    def matmul_quantized(self, a: Int8Tensor, b: Int8Tensor) -> np.ndarray:
        """Tiled int8 matmul of pre-quantized tensors; dequantized output.

        Uses the cycle-level fabric per (row-chunk, column-pair, K) stream,
        accumulating exactly in wide integers (a conventional int8
        accelerator's int32 accumulators never need alignment).
        """
        av = a.values.astype(np.int64)
        bv = b.values.astype(np.int64)
        if av.ndim != 2 or bv.ndim != 2 or av.shape[1] != bv.shape[0]:
            raise ConfigurationError(
                f"bad matmul shapes: {av.shape} @ {bv.shape}"
            )
        m, k = av.shape
        n = bv.shape[1]
        r, c = self.rows, self.cols
        ap = np.zeros(((m + r - 1) // r * r, (k + r - 1) // r * r), np.int64)
        bp = np.zeros((ap.shape[1], (n + c - 1) // c * c), np.int64)
        ap[:m, :k] = av
        bp[:k, :n] = bv
        acc = np.zeros((ap.shape[0], bp.shape[1]), dtype=np.int64)
        for kb in range(ap.shape[1] // r):
            ks = slice(kb * r, (kb + 1) * r)
            for jb in range(0, bp.shape[1] // c, 2):
                j0 = jb * c
                y_hi = bp[ks, j0 : j0 + c]
                has_second = j0 + 2 * c <= bp.shape[1]
                y_lo = (
                    bp[ks, j0 + c : j0 + 2 * c]
                    if has_second
                    else np.zeros((r, c), np.int64)
                )
                self.array.load_y_pair(y_hi, y_lo)
                x = ap[:, ks].reshape(-1, r, c)
                res = self.array.run_bfp8_stream(x)
                z_hi = res.z_hi.reshape(ap.shape[0], c)
                acc[:, j0 : j0 + c] += z_hi
                if has_second:
                    acc[:, j0 + c : j0 + 2 * c] += res.z_lo.reshape(
                        ap.shape[0], c
                    )
                self.stats.cycles += res.cycles
                self.stats.streams += 1
                self.stats.macs += 2 * x.shape[0] * r * r * c
        out = acc[:m, :n].astype(np.float64) * (a.scale * b.scale)
        return out

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Quantize fp inputs per-tensor and multiply on the fabric."""
        return self.matmul_quantized(quantize_int8(a), quantize_int8(b))
