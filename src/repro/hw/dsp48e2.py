"""Functional model of the AMD DSP48E2 slice (UG579) as used by the design.

Only the behaviour the paper's PE exercises is modeled:

* a 27-bit (A:D pre-adder path) by 18-bit (B) signed multiplier,
* the 48-bit ALU accumulating the product with either the C port, the
  previous P value, or the PCIN cascade input from the neighbour below,
* 48-bit two's-complement wraparound semantics.

Port-width violations raise :class:`HardwareContractError` — in silicon they
would silently truncate, so the simulator treats them as design bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareContractError

__all__ = ["DSP48E2", "wrap48", "A_PORT_BITS", "B_PORT_BITS", "P_PORT_BITS"]

A_PORT_BITS = 27
B_PORT_BITS = 18
P_PORT_BITS = 48

_A_MIN, _A_MAX = -(1 << (A_PORT_BITS - 1)), (1 << (A_PORT_BITS - 1)) - 1
_B_MIN, _B_MAX = -(1 << (B_PORT_BITS - 1)), (1 << (B_PORT_BITS - 1)) - 1
_P_MOD = 1 << P_PORT_BITS
_P_HALF = 1 << (P_PORT_BITS - 1)


def wrap48(x: np.ndarray | int) -> np.ndarray | int:
    """48-bit two's-complement wraparound (vectorized)."""
    if isinstance(x, (int, np.integer)):
        v = (int(x) + _P_HALF) % _P_MOD - _P_HALF
        return v
    x = np.asarray(x, dtype=np.int64)
    return ((x + _P_HALF) % _P_MOD) - _P_HALF


def _check_port(value: int, lo: int, hi: int, name: str) -> None:
    if not (lo <= value <= hi):
        raise HardwareContractError(
            f"DSP48E2 {name} port operand {value} outside [{lo}, {hi}]"
        )


@dataclass
class DSP48E2:
    """One DSP slice with its P register and cascade output.

    The object is deliberately tiny: the cycle-level array simulator
    vectorizes the same arithmetic over all 64 PEs; this scalar model is the
    per-slice oracle used by unit tests and by the single-PE documentation
    examples.
    """

    p: int = 0
    _pcout: int = field(default=0, repr=False)

    @property
    def pcout(self) -> int:
        """Dedicated cascade output (registered P value)."""
        return self._pcout

    def cycle(self, a: int, b: int, *, c: int = 0, accumulate: bool = False,
              pcin: int = 0) -> int:
        """One clock: P <= a*b + (P if accumulate else c + pcin).

        Returns the new P value.  ``c`` models the C port, ``pcin`` the
        cascade input; the design never drives both at once (asserted).
        """
        _check_port(a, _A_MIN, _A_MAX, "A:D")
        _check_port(b, _B_MIN, _B_MAX, "B")
        if c and pcin:
            raise HardwareContractError("C and PCIN driven simultaneously")
        base = self.p if accumulate else (c + pcin)
        self.p = int(wrap48(a * b + base))
        self._pcout = self.p
        return self.p

    def reset(self) -> None:
        self.p = 0
        self._pcout = 0
