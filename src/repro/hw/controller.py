"""Run-time controller: mode FSM and cycle bookkeeping (Fig. 2).

The controller owns the unit's mode (bfp8 MatMul / fp32 mul / fp32 add),
charges a small reconfiguration penalty when the mode changes (programming
the PE pre-shifters and the crossbar), and aggregates cycle statistics that
the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import HardwareContractError

__all__ = ["Mode", "Controller", "RECONFIG_CYCLES"]

RECONFIG_CYCLES = 2  # program pre-shifters + crossbar select


class Mode(Enum):
    IDLE = "idle"
    BFP_MATMUL = "bfp_matmul"
    FP32_MUL = "fp32_mul"
    FP32_ADD = "fp32_add"


@dataclass
class Controller:
    mode: Mode = Mode.IDLE
    cycles_total: int = 0
    reconfigurations: int = 0
    cycles_by_mode: dict[str, int] = field(
        default_factory=lambda: {m.value: 0 for m in Mode}
    )

    def set_mode(self, mode: Mode) -> int:
        """Switch mode; returns the cycles charged for reconfiguration."""
        if not isinstance(mode, Mode):
            raise HardwareContractError(f"unknown mode {mode!r}")
        if mode is self.mode:
            return 0
        self.mode = mode
        self.reconfigurations += 1
        self.charge(RECONFIG_CYCLES, Mode.IDLE)
        return RECONFIG_CYCLES

    def charge(self, cycles: int, mode: Mode | None = None) -> None:
        """Account ``cycles`` against ``mode`` (defaults to current mode)."""
        if cycles < 0:
            raise HardwareContractError("negative cycle charge")
        m = (mode or self.mode).value
        self.cycles_total += cycles
        self.cycles_by_mode[m] = self.cycles_by_mode.get(m, 0) + cycles

    def require(self, mode: Mode) -> None:
        if self.mode is not mode:
            raise HardwareContractError(
                f"operation requires mode {mode.value}, controller is in "
                f"{self.mode.value}"
            )
