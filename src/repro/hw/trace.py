"""Cycle-trace recorder: observe the array's registers over time.

A development/debug aid: wraps a bfp8 stream run and records selected
per-cycle signals — input skew, a chosen PE's X register and partial sum,
and the bottom-row outputs — then renders them as an aligned text waveform
(a lightweight stand-in for the waveform viewer an RTL flow would use).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.packing import pack_pair
from repro.errors import ConfigurationError
from repro.hw.dsp48e2 import wrap48

__all__ = ["TraceEvent", "ArrayTrace", "trace_bfp8_stream"]


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    signal: str
    value: int


@dataclass
class ArrayTrace:
    """Recorded signals, indexable by name, renderable as text."""

    events: list[TraceEvent] = field(default_factory=list)
    cycles: int = 0

    def signal(self, name: str) -> list[tuple[int, int]]:
        return [(e.cycle, e.value) for e in self.events if e.signal == name]

    def signals(self) -> list[str]:
        seen: list[str] = []
        for e in self.events:
            if e.signal not in seen:
                seen.append(e.signal)
        return seen

    def render(self, *, width: int = 8) -> str:
        """Aligned text waveform: one row per signal, one column per cycle."""
        lines = []
        header = "cycle".ljust(16) + "".join(
            str(t).rjust(width) for t in range(self.cycles)
        )
        lines.append(header)
        for name in self.signals():
            values = {c: v for c, v in self.signal(name)}
            row = name.ljust(16)
            for t in range(self.cycles):
                row += (str(values[t]) if t in values else ".").rjust(width)
            lines.append(row)
        return "\n".join(lines)


def trace_bfp8_stream(
    x_blocks: np.ndarray,
    y_hi: np.ndarray,
    y_lo: np.ndarray,
    *,
    watch_pe: tuple[int, int] = (0, 0),
    watch_column: int = 0,
) -> ArrayTrace:
    """Run a bfp8 stream while recording per-cycle signals.

    Semantically identical to ``SystolicArray.run_bfp8_stream`` (same
    register structure); returns the trace rather than the outputs.
    """
    x = np.asarray(x_blocks, dtype=np.int64)
    if x.ndim != 3 or x.shape[1:] != (8, 8):
        raise ConfigurationError("X stream must have shape (N, 8, 8)")
    wr, wc = watch_pe
    if not (0 <= wr < 8 and 0 <= wc < 8 and 0 <= watch_column < 8):
        raise ConfigurationError("watch indices out of range")
    y_packed = pack_pair(np.asarray(y_hi, np.int64), np.asarray(y_lo, np.int64))

    n_total = x.shape[0] * 8
    x_stream = x.reshape(n_total, 8)
    x_pipe = np.zeros((8, 8), dtype=np.int64)
    psum = np.zeros((8, 8), dtype=np.int64)
    trace = ArrayTrace()
    collected = np.zeros((n_total, 8), dtype=bool)
    t = 0
    last = -1
    while True:
        idx = t - np.arange(8)
        valid = (idx >= 0) & (idx < n_total)
        x_in = np.where(valid, x_stream[np.clip(idx, 0, n_total - 1),
                                        np.arange(8)], 0)
        x_pipe = np.concatenate([x_in[:, None], x_pipe[:, :-1]], axis=1)
        psum = wrap48(wrap48(x_pipe * y_packed)
                      + np.vstack([np.zeros((1, 8), np.int64), psum[:-1]]))
        trace.events.append(TraceEvent(t, "x_in[0]", int(x_in[0])))
        trace.events.append(
            TraceEvent(t, f"pe{wr}{wc}.x", int(x_pipe[wr, wc]))
        )
        trace.events.append(
            TraceEvent(t, f"pe{wr}{wc}.psum", int(psum[wr, wc]))
        )
        i_out = t - np.arange(8) - 7
        j = watch_column
        i = int(i_out[j])
        if 0 <= i < n_total and not collected[i, j]:
            trace.events.append(TraceEvent(t, f"col{j}.out", int(psum[7, j])))
        for jj in range(8):
            ii = int(i_out[jj])
            if 0 <= ii < n_total and not collected[ii, jj]:
                collected[ii, jj] = True
                last = t + 1
        t += 1
        if collected.all() and t > last:
            break
    trace.cycles = t
    return trace
