"""Co-simulation: scalar per-PE models against the vectorized array.

The cycle-level :class:`~repro.hw.systolic.SystolicArray` vectorizes the
whole 8x8 grid with NumPy for speed.  This module builds the same array out
of 64 individual :class:`~repro.hw.pe.PE` objects (each with its own
:class:`~repro.hw.dsp48e2.DSP48E2` slice) and steps it cycle by cycle, so
the vectorized implementation can be checked for *bit-identical* behaviour
against the port-level model — the reproduction's equivalent of RTL-vs-
golden-model co-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.fp_sliced import FP32_MUL_TERMS
from repro.arith.packing import unpack_accumulator
from repro.errors import ConfigurationError
from repro.formats import fp32bits
from repro.hw.pe import PE

__all__ = ["ScalarArray"]


@dataclass
class ScalarArray:
    """An 8x8 grid of scalar PEs stepped one clock at a time."""

    rows: int = 8
    cols: int = 8
    pes: list[list[PE]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pes:
            self.pes = [
                [PE(r, c) for c in range(self.cols)] for r in range(self.rows)
            ]

    # ------------------------------------------------------------------ bfp8
    def run_bfp8_stream(
        self, x_blocks: np.ndarray, y_hi: np.ndarray, y_lo: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Scalar-PE version of ``SystolicArray.run_bfp8_stream``.

        Returns ``(z_hi, z_lo, cycles)`` with identical semantics.
        """
        x = np.asarray(x_blocks, dtype=np.int64)
        if x.ndim != 3 or x.shape[1:] != (self.rows, self.cols):
            raise ConfigurationError("X stream must have shape (N, 8, 8)")
        for r in range(self.rows):
            for c in range(self.cols):
                pe = self.pes[r][c]
                pe.configure("bfp8")
                pe.load_y(int(y_hi[r, c]), int(y_lo[r, c]))

        n_total = x.shape[0] * self.rows
        x_stream = x.reshape(n_total, self.cols)
        # Register state mirrored explicitly: psum register per PE.
        psum = [[0] * self.cols for _ in range(self.rows)]
        x_reg = [[0] * self.cols for _ in range(self.rows)]
        z_packed = np.zeros((n_total, self.cols), dtype=np.int64)
        collected = np.zeros((n_total, self.cols), dtype=bool)
        t = 0
        last = -1
        while True:
            new_psum = [[0] * self.cols for _ in range(self.rows)]
            new_x = [[0] * self.cols for _ in range(self.rows)]
            for r in range(self.rows):
                idx = t - r
                x_in_row = int(x_stream[idx, r]) if 0 <= idx < n_total else 0
                for c in range(self.cols):
                    x_val = x_in_row if c == 0 else x_reg[r][c - 1]
                    psum_in = psum[r - 1][c] if r > 0 else 0
                    pe = self.pes[r][c]
                    pe.dsp.reset()  # P register is re-driven every cycle
                    x_out, p = pe.step_bfp8(x_val, psum_in)
                    new_x[r][c] = x_out
                    new_psum[r][c] = p
            x_reg, psum = new_x, new_psum
            for j in range(self.cols):
                i = t - j - (self.rows - 1)
                if 0 <= i < n_total and not collected[i, j]:
                    z_packed[i, j] = psum[self.rows - 1][j]
                    collected[i, j] = True
                    last = t + 1
            t += 1
            if collected.all() and t > last:
                break
        hi, lo = unpack_accumulator(z_packed, self.rows)
        n_blocks = x.shape[0]
        return (
            hi.reshape(n_blocks, self.rows, self.cols),
            lo.reshape(n_blocks, self.rows, self.cols),
            t,
        )

    # --------------------------------------------------------------- fp32 mul
    def run_fp32_mul_accumulators(
        self, man_x: np.ndarray, man_y: np.ndarray
    ) -> np.ndarray:
        """Scalar-PE cascade accumulators for ``(4, L)`` mantissa pairs.

        Returns the raw 48-bit sums, to be compared bit-for-bit against
        ``SystolicArray.run_fp32_mul_stream(...).accumulators``.
        """
        man_x = np.asarray(man_x, dtype=np.int64)
        man_y = np.asarray(man_y, dtype=np.int64)
        lanes, L = man_x.shape
        for t_ in FP32_MUL_TERMS:
            for lane in range(lanes):
                self.pes[t_.row][lane].configure(
                    "fp32_mul", x_preshift=t_.x_preshift, y_preshift=t_.y_preshift
                )
        acc = np.zeros((lanes, L), dtype=np.int64)
        for lane in range(lanes):
            for e in range(L):
                sx = fp32bits.mantissa_slices(man_x[lane, e])
                sy = fp32bits.mantissa_slices(man_y[lane, e])
                pcin = 0
                for t_ in FP32_MUL_TERMS:
                    pe = self.pes[t_.row][lane]
                    pe.dsp.reset()
                    pcin = pe.step_fp32_mul(
                        int(sx[t_.x_slice]), int(sy[t_.y_slice]), pcin
                    )
                acc[lane, e] = pcin
        return acc
