"""Multi-unit system: 15 processing units on the U280 fed by HBM.

The paper deploys 15 independent units, each with two 256-bit AXI channels
into HBM, "running with independent instructions" (Section III-B).  This
module models that system level: a pool of units, a work queue of
independent jobs, greedy earliest-available dispatch, and aggregate
throughput/utilization reporting.  Jobs either carry explicit cycle costs
(from the compiler/latency models) or are executed functionally on a
:class:`~repro.hw.unit.MultiModePU`.

:class:`UnitPool` is the reusable online core: it tracks per-unit busy
intervals and supports assigning work at arbitrary points in simulated
time, which is what the request-serving layer (``repro.serve``) builds on.
:class:`MultiUnitSystem` keeps the original offline batch-scheduling API
on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["Job", "UnitTimeline", "UnitPool", "SystemReport", "MultiUnitSystem"]


@dataclass(frozen=True)
class Job:
    """One independent unit-schedulable job.

    ``cycles`` is the end-to-end unit-occupancy (compute + memory) of the
    job; ``ops`` its useful operation count (bfp8 ops or fp32 FLOPs,
    paper conventions); ``mode`` tags the workload class.
    """

    name: str
    mode: str  # "bfp8" | "fp32"
    cycles: int
    ops: float

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError(f"job {self.name!r} has no cycles")
        if self.mode not in ("bfp8", "fp32"):
            raise ConfigurationError(f"job {self.name!r} has unknown mode")


@dataclass
class UnitTimeline:
    """Dispatch record of one unit."""

    unit: int
    busy_cycles: int = 0
    jobs: list[str] = field(default_factory=list)
    finish: int = 0


class UnitPool:
    """Per-unit availability tracker, usable offline *and* online.

    A unit is free again at its ``finish`` time; :meth:`assign` places a
    job on a unit no earlier than both the unit's free time and the
    caller-supplied start (a request's arrival / readiness time).  Ties on
    the earliest-free query break deterministically on ``(finish, unit)``.
    """

    def __init__(self, n_units: int) -> None:
        if n_units <= 0:
            raise ConfigurationError("system needs at least one unit")
        self.timelines = [UnitTimeline(i) for i in range(n_units)]

    @property
    def n_units(self) -> int:
        return len(self.timelines)

    def free_at(self, unit: int) -> int:
        return self.timelines[unit].finish

    def earliest_free(self) -> tuple[int, int]:
        """``(free_time, unit)`` of the unit that frees first (ties: lowest unit)."""
        return min((t.finish, t.unit) for t in self.timelines)

    def idle_units(self, now: int) -> list[int]:
        """Units free at time ``now``, in index order."""
        return [t.unit for t in self.timelines if t.finish <= now]

    def assign(self, unit: int, start: int, cycles: int, name: str) -> int:
        """Occupy ``unit`` for ``cycles`` from ``max(start, free_at)``; returns finish."""
        if cycles <= 0:
            raise ConfigurationError(f"job {name!r} has no cycles")
        t = self.timelines[unit]
        begin = max(start, t.finish)
        t.busy_cycles += cycles
        t.jobs.append(name)
        t.finish = begin + cycles
        return t.finish

    @property
    def makespan(self) -> int:
        return max((t.finish for t in self.timelines), default=0)

    def busy_fraction(self, horizon: int | None = None) -> float:
        """Mean busy fraction across units over ``horizon`` (default makespan)."""
        horizon = self.makespan if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        busy = sum(t.busy_cycles for t in self.timelines)
        return busy / (horizon * self.n_units)


@dataclass
class SystemReport:
    """Result of scheduling a job set onto the system."""

    makespan_cycles: int
    timelines: list[UnitTimeline]
    total_ops: dict[str, float]
    clock: ClockConfig

    @property
    def n_units(self) -> int:
        return len(self.timelines)

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / self.clock.freq_hz

    def utilization(self) -> float:
        """Mean busy fraction across units over the makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        busy = sum(t.busy_cycles for t in self.timelines)
        return busy / (self.makespan_cycles * self.n_units)

    def throughput_ops(self, mode: str) -> float:
        """Aggregate achieved ops/s for one workload class."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_ops.get(mode, 0.0) / self.makespan_seconds


@dataclass
class MultiUnitSystem:
    """Greedy earliest-available scheduler over identical units."""

    clock: ClockConfig = DEFAULT_CLOCK
    memory: MemoryModel = DEFAULT_MEMORY

    def schedule(self, jobs: list[Job]) -> SystemReport:
        """Dispatch independent jobs to the earliest-free unit.

        Longest-processing-time (LPT) list scheduling on identical
        machines: at most 4/3 - 1/(3m) of the optimal makespan (Graham
        1969) — good, but *not* optimal in general (e.g. jobs {3,3,2,2,2}
        on 2 machines: LPT gives 7, optimal is 6).  Dispatch ties break
        deterministically on ``(finish, unit_index)`` and equal-length
        jobs on their name, so reports are stable across heap orderings.
        """
        pool = UnitPool(self.clock.n_units)
        total_ops: dict[str, float] = {}
        for job in sorted(jobs, key=lambda j: (-j.cycles, j.name)):
            start, idx = pool.earliest_free()
            pool.assign(idx, start, job.cycles, job.name)
            total_ops[job.mode] = total_ops.get(job.mode, 0.0) + job.ops
        return SystemReport(pool.makespan, pool.timelines, total_ops, self.clock)

    # -- convenience job builders -------------------------------------------
    def bfp_stream_job(self, name: str, n_x: int) -> Job:
        """One bfp8 stream of ``n_x`` X blocks, including memory I/O."""
        compute = self.clock.rows * n_x + 15
        rd, wr = self.memory.bfp_stream_bytes(n_x, self.clock.rows, self.clock.cols)
        cycles = self.memory.stream_total_cycles("bfp8", compute, rd, wr)
        ops = 2.0 * 2 * n_x * self.clock.rows * self.clock.rows * self.clock.cols
        return Job(name, "bfp8", cycles, ops)

    def fp32_stream_job(self, name: str, length: int) -> Job:
        """One fp32 stream of per-lane length ``length``, including I/O."""
        compute = length + 8
        rd, wr = self.memory.fp32_stream_bytes(length, self.clock.fp32_lanes)
        cycles = self.memory.stream_total_cycles("fp32", compute, rd, wr)
        ops = 2.0 * self.clock.fp32_lanes * length
        return Job(name, "fp32", cycles, ops)
