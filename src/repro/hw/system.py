"""Multi-unit system: 15 processing units on the U280 fed by HBM.

The paper deploys 15 independent units, each with two 256-bit AXI channels
into HBM, "running with independent instructions" (Section III-B).  This
module models that system level: a pool of units, a work queue of
independent jobs, greedy earliest-available dispatch, and aggregate
throughput/utilization reporting.  Jobs either carry explicit cycle costs
(from the compiler/latency models) or are executed functionally on a
:class:`~repro.hw.unit.MultiModePU`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["Job", "UnitTimeline", "SystemReport", "MultiUnitSystem"]


@dataclass(frozen=True)
class Job:
    """One independent unit-schedulable job.

    ``cycles`` is the end-to-end unit-occupancy (compute + memory) of the
    job; ``ops`` its useful operation count (bfp8 ops or fp32 FLOPs,
    paper conventions); ``mode`` tags the workload class.
    """

    name: str
    mode: str  # "bfp8" | "fp32"
    cycles: int
    ops: float

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError(f"job {self.name!r} has no cycles")
        if self.mode not in ("bfp8", "fp32"):
            raise ConfigurationError(f"job {self.name!r} has unknown mode")


@dataclass
class UnitTimeline:
    """Dispatch record of one unit."""

    unit: int
    busy_cycles: int = 0
    jobs: list[str] = field(default_factory=list)
    finish: int = 0


@dataclass
class SystemReport:
    """Result of scheduling a job set onto the system."""

    makespan_cycles: int
    timelines: list[UnitTimeline]
    total_ops: dict[str, float]
    clock: ClockConfig

    @property
    def n_units(self) -> int:
        return len(self.timelines)

    @property
    def makespan_seconds(self) -> float:
        return self.makespan_cycles / self.clock.freq_hz

    def utilization(self) -> float:
        """Mean busy fraction across units over the makespan."""
        if self.makespan_cycles == 0:
            return 0.0
        busy = sum(t.busy_cycles for t in self.timelines)
        return busy / (self.makespan_cycles * self.n_units)

    def throughput_ops(self, mode: str) -> float:
        """Aggregate achieved ops/s for one workload class."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.total_ops.get(mode, 0.0) / self.makespan_seconds


@dataclass
class MultiUnitSystem:
    """Greedy earliest-available scheduler over identical units."""

    clock: ClockConfig = DEFAULT_CLOCK
    memory: MemoryModel = DEFAULT_MEMORY

    def schedule(self, jobs: list[Job]) -> SystemReport:
        """Dispatch independent jobs to the earliest-free unit.

        Greedy list scheduling on identical machines (2-approximate for
        makespan; optimal here because jobs have no dependencies and the
        queue is served longest-first).
        """
        n = self.clock.n_units
        if n <= 0:
            raise ConfigurationError("system needs at least one unit")
        timelines = [UnitTimeline(i) for i in range(n)]
        heap: list[tuple[int, int]] = [(0, i) for i in range(n)]
        heapq.heapify(heap)
        total_ops: dict[str, float] = {}
        for job in sorted(jobs, key=lambda j: -j.cycles):
            finish, idx = heapq.heappop(heap)
            t = timelines[idx]
            t.busy_cycles += job.cycles
            t.jobs.append(job.name)
            t.finish = finish + job.cycles
            total_ops[job.mode] = total_ops.get(job.mode, 0.0) + job.ops
            heapq.heappush(heap, (t.finish, idx))
        makespan = max((t.finish for t in timelines), default=0)
        return SystemReport(makespan, timelines, total_ops, self.clock)

    # -- convenience job builders -------------------------------------------
    def bfp_stream_job(self, name: str, n_x: int) -> Job:
        """One bfp8 stream of ``n_x`` X blocks, including memory I/O."""
        compute = self.clock.rows * n_x + 15
        rd, wr = self.memory.bfp_stream_bytes(n_x, self.clock.rows, self.clock.cols)
        cycles = self.memory.stream_total_cycles("bfp8", compute, rd, wr)
        ops = 2.0 * 2 * n_x * self.clock.rows * self.clock.rows * self.clock.cols
        return Job(name, "bfp8", cycles, ops)

    def fp32_stream_job(self, name: str, length: int) -> Job:
        """One fp32 stream of per-lane length ``length``, including I/O."""
        compute = length + 8
        rd, wr = self.memory.fp32_stream_bytes(length, self.clock.fp32_lanes)
        cycles = self.memory.stream_total_cycles("fp32", compute, rd, wr)
        ops = 2.0 * self.clock.fp32_lanes * length
        return Job(name, "fp32", cycles, ops)
