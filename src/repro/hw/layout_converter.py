"""fp32 layout converter / crossbar (Fig. 2, Fig. 5b).

In fp32 multiplication mode there is no data reuse, so the systolic dataflow
is bypassed: the converter broadcasts each lane's operand pair into its PE
column, duplicating and routing the three mantissa slices so that row ``r``
receives exactly the slice pair of partial-product term ``r`` (the mapping
in ``repro.arith.fp_sliced.FP32_MUL_TERMS``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.fp_sliced import FP32_MUL_TERMS
from repro.errors import HardwareContractError
from repro.formats import fp32bits

__all__ = ["LayoutConverter", "RowOperands"]


@dataclass(frozen=True)
class RowOperands:
    """Slice operands for the 8 rows of one column, one stream position."""

    x_slices: np.ndarray  # (8,) unsigned slice bytes for the X input
    y_slices: np.ndarray  # (8,)


class LayoutConverter:
    """Routes mantissa slices of an fp32 operand pair to the 8 PE rows."""

    def map_pair(self, man_x: int, man_y: int) -> RowOperands:
        if not (0 <= man_x < (1 << fp32bits.MAN_BITS)):
            raise HardwareContractError("X mantissa outside 24-bit magnitude")
        if not (0 <= man_y < (1 << fp32bits.MAN_BITS)):
            raise HardwareContractError("Y mantissa outside 24-bit magnitude")
        sx = [(man_x >> (8 * i)) & 0xFF for i in range(fp32bits.N_SLICES)]
        sy = [(man_y >> (8 * i)) & 0xFF for i in range(fp32bits.N_SLICES)]
        xs = np.zeros(len(FP32_MUL_TERMS), dtype=np.int64)
        ys = np.zeros(len(FP32_MUL_TERMS), dtype=np.int64)
        for t in FP32_MUL_TERMS:
            xs[t.row] = sx[t.x_slice]
            ys[t.row] = sy[t.y_slice]
        return RowOperands(xs, ys)

    @staticmethod
    def preshift_schedule() -> list[tuple[int, int]]:
        """Per-row (x_preshift, y_preshift) the controller programs once."""
        return [(t.x_preshift, t.y_preshift) for t in FP32_MUL_TERMS]
