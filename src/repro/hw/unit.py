"""The multi-mode processing unit (PU): the paper's primary contribution.

A :class:`MultiModePU` assembles the whole Fig. 2 microarchitecture — X/Y
buffers, the 8x8 systolic array, exponent unit, per-column shifters and
accumulators with PSU buffers, the fp32 layout converter, the output
quantizer and the run-time controller — and exposes the three workload
types:

* :meth:`matmul` — tiled bfp8 matrix multiplication (Y-stationary streams,
  combined MAC, aligned cross-block accumulation, output requantization);
* :meth:`fp32_multiply` — fp32 vector multiply on the reconfigured array
  (4 FPU columns, sliced mantissas);
* :meth:`fp32_add` — fp32 vector add on the shifter/ACC path (DSPs idle).

Each method supports two engines:

* ``engine="cycle"`` drives the register-accurate simulator and produces
  emergent cycle counts — the ground truth, but slow;
* ``engine="fast"`` (default) uses the bit-identical vectorized arithmetic
  from :mod:`repro.arith` and the cycle formulas that the test suite proves
  equal to the cycle engine's emergent counts (Eqns 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.bfp_matmul import WideBlock, accumulate, block_matmul
from repro.arith.fp_align_add import aligned_add
from repro.arith.fp_sliced import sliced_multiply
from repro.errors import ConfigurationError, HardwareContractError
from repro.formats import fp32bits
from repro.formats.bfp8 import BfpBlock
from repro.formats.blocking import BfpMatrix
from repro.hw.accumulator import PSU_DEPTH, ColumnAccumulator
from repro.hw.buffers import (
    FP32_LANES,
    MAX_FP32_STREAM,
    MAX_X_BLOCKS,
    XBuffer,
    YBuffer,
)
from repro.hw.controller import Controller, Mode
from repro.hw.exponent_unit import ExponentUnit
from repro.hw.layout_converter import LayoutConverter
from repro.hw.quantizer import OutputQuantizer
from repro.hw.systolic import FP32_COLS, SystolicArray
from repro.obs.metrics import get_registry

__all__ = ["MultiModePU", "PUStats", "FP32_PIPELINE_FILL", "BFP_STREAM_OVERHEAD"]

# Validated against the cycle engine (tests/hw/test_cycle_counts.py): one
# bfp8 stream of N blocks takes 8N + 15 cycles; one fp32 stream of length L
# takes L + 8 cycles.  These constants are the paper's Eqn 9/10 terms.
BFP_STREAM_OVERHEAD = 15
FP32_PIPELINE_FILL = 8


@dataclass
class PUStats:
    """Cycle and operation accounting for one PU."""

    cycles_bfp: int = 0
    cycles_fp32_mul: int = 0
    cycles_fp32_add: int = 0
    cycles_reconfig: int = 0
    bfp_macs: int = 0  # useful 8-bit MACs performed
    fp32_mul_ops: int = 0
    fp32_add_ops: int = 0
    bfp_streams: int = 0
    fp32_streams: int = 0
    blocks_quantized: int = 0

    @property
    def cycles_total(self) -> int:
        return (
            self.cycles_bfp
            + self.cycles_fp32_mul
            + self.cycles_fp32_add
            + self.cycles_reconfig
        )

    def merge(self, other: "PUStats") -> "PUStats":
        out = PUStats()
        for f in self.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def bfp_throughput_ops(self, freq_hz: float) -> float:
        """Achieved bfp8 OPS (MAC = 2 ops) at a clock frequency."""
        if self.cycles_bfp == 0:
            return 0.0
        return 2.0 * self.bfp_macs * freq_hz / self.cycles_bfp

    def fp32_throughput_flops(self, freq_hz: float) -> float:
        """Achieved fp32 FLOPS (each mul/add = 2 FLOPs, paper convention)."""
        cycles = self.cycles_fp32_mul + self.cycles_fp32_add
        if cycles == 0:
            return 0.0
        ops = self.fp32_mul_ops + self.fp32_add_ops
        return 2.0 * ops * freq_hz / cycles


@dataclass
class MultiModePU:
    """One reconfigurable bfp8/fp32 processing unit."""

    rows: int = 8
    cols: int = 8
    array: SystolicArray = field(default_factory=SystolicArray)
    x_buffer: XBuffer = field(default_factory=XBuffer)
    y_buffer: YBuffer = field(default_factory=YBuffer)
    eu: ExponentUnit = field(default_factory=ExponentUnit)
    converter: LayoutConverter = field(default_factory=LayoutConverter)
    quantizer: OutputQuantizer = field(default_factory=OutputQuantizer)
    controller: Controller = field(default_factory=Controller)
    stats: PUStats = field(default_factory=PUStats)

    def __post_init__(self) -> None:
        # Two accumulator banks per column: one per packed Y field.
        self._acc_banks = [
            [ColumnAccumulator() for _ in range(self.cols)] for _ in range(2)
        ]

    # ------------------------------------------------------------------ bfp8
    def matmul(
        self, a: BfpMatrix, b: BfpMatrix, *, engine: str = "fast"
    ) -> BfpMatrix:
        """Tiled bfp8 MatMul ``a @ b`` with full hardware semantics.

        The schedule follows Section II-D: for each output row-block chunk
        (at most 64 X blocks, the PSU depth), for each pair of output column
        blocks, the unit iterates over the K dimension with a Y-stationary
        stream per (K block, pair).
        """
        if engine not in ("fast", "cycle"):
            raise ConfigurationError(f"unknown engine {engine!r}")
        if a.shape[1] != b.shape[0]:
            raise ConfigurationError(f"shape mismatch: {a.shape} @ {b.shape}")
        bfp0, reconfig0 = self.stats.cycles_bfp, self.stats.cycles_reconfig
        self.stats.cycles_reconfig += self.controller.set_mode(Mode.BFP_MATMUL)
        rb, kb = a.block_grid
        _, cb = b.block_grid
        r, c = self.rows, self.cols
        out_man = np.zeros((rb, cb, r, c), dtype=np.int16)
        out_exp = np.zeros((rb, cb), dtype=np.int16)

        for ib0 in range(0, rb, MAX_X_BLOCKS):
            chunk = list(range(ib0, min(ib0 + MAX_X_BLOCKS, rb)))
            for jb0 in range(0, cb, 2):
                pair = [jb0, jb0 + 1] if jb0 + 1 < cb else [jb0]
                psus = self._run_pair_streams(a, b, chunk, pair, kb, engine)
                for slot, jb in enumerate(pair):
                    for pos, ib in enumerate(chunk):
                        q = self.quantizer.quantize(
                            psus[slot][pos].mantissas, psus[slot][pos].exponent
                        )
                        out_man[ib, jb] = q.mantissas
                        out_exp[ib, jb] = q.exponent
                        self.stats.blocks_quantized += 1
        reg = get_registry()
        if reg.enabled:
            # DSP-mode occupancy, published per matmul call (cycle deltas).
            reg.counter("hw.pu.matmuls").inc()
            reg.counter("hw.pu.occupancy.bfp8").inc(self.stats.cycles_bfp - bfp0)
            reg.counter("hw.pu.occupancy.reconfig").inc(
                self.stats.cycles_reconfig - reconfig0
            )
        return BfpMatrix(out_man, out_exp, (a.shape[0], b.shape[1]))

    def _run_pair_streams(
        self,
        a: BfpMatrix,
        b: BfpMatrix,
        chunk: list[int],
        pair: list[int],
        kb: int,
        engine: str,
    ) -> list[list[WideBlock]]:
        """All K streams for one (row chunk, column pair); returns PSUs."""
        n_x = len(chunk)
        reg = get_registry()
        if reg.enabled:
            # Pressure on the per-column PSU banks and the X buffer: how
            # full the chunking left them (1.0 = at the hardware bound).
            reg.histogram("hw.pu.psu_fill").observe(n_x * self.rows / PSU_DEPTH)
            reg.histogram("hw.pu.xbuffer_fill").observe(n_x / MAX_X_BLOCKS)
        psus: list[list[WideBlock | None]] = [
            [None] * n_x for _ in range(2)
        ]
        for bk in range(kb):
            y_hi = b.block(bk, pair[0])
            y_lo = (
                b.block(bk, pair[1])
                if len(pair) > 1
                else BfpBlock(np.zeros((self.rows, self.cols), np.int8), -128)
            )
            x_blocks = [a.block(ib, bk) for ib in chunk]
            if engine == "cycle":
                self.y_buffer.load_bfp_pair(y_hi, y_lo)
                self.x_buffer.load_bfp_blocks(x_blocks)
                self.array.load_y_pair(y_hi.mantissas, y_lo.mantissas)
                x_man = np.stack([blk.mantissas for blk in x_blocks]).astype(np.int64)
                result = self.array.run_bfp8_stream(x_man)
                z = [result.z_hi, result.z_lo]
                cycles = result.cycles
            else:
                z_hi = np.stack(
                    [
                        (blk.mantissas.astype(np.int64) @ y_hi.mantissas.astype(np.int64))
                        for blk in x_blocks
                    ]
                )
                z_lo = np.stack(
                    [
                        (blk.mantissas.astype(np.int64) @ y_lo.mantissas.astype(np.int64))
                        for blk in x_blocks
                    ]
                )
                z = [z_hi, z_lo]
                cycles = self.rows * n_x + BFP_STREAM_OVERHEAD
            self.stats.cycles_bfp += cycles
            self.stats.bfp_streams += 1
            self.stats.bfp_macs += 2 * n_x * self.rows * self.rows * self.cols
            for slot, y_blk in enumerate((y_hi, y_lo)):
                for pos, ib in enumerate(chunk):
                    exp = self.eu.add(x_blocks[pos].exponent, y_blk.exponent)
                    incoming = WideBlock(np.asarray(z[slot][pos]), exp)
                    psus[slot][pos] = accumulate(psus[slot][pos], incoming)
        # PSU depth contract: n_x blocks * rows addresses per column bank.
        if n_x * self.rows > PSU_DEPTH:
            raise HardwareContractError("PSU depth exceeded")  # pragma: no cover
        return [[p for p in bank if p is not None] for bank in psus]

    # ------------------------------------------------------------------ fp32
    def fp32_multiply(
        self, x: np.ndarray, y: np.ndarray, *, engine: str = "fast"
    ) -> np.ndarray:
        """Elementwise fp32 multiply of equal-shape arrays on the FPU columns."""
        return self._fp32_op(x, y, "mul", engine)

    def fp32_add(
        self, x: np.ndarray, y: np.ndarray, *, engine: str = "fast"
    ) -> np.ndarray:
        """Elementwise fp32 add on the shifter/ACC path."""
        return self._fp32_op(x, y, "add", engine)

    def _fp32_op(
        self, x: np.ndarray, y: np.ndarray, op: str, engine: str
    ) -> np.ndarray:
        if engine not in ("fast", "cycle"):
            raise ConfigurationError(f"unknown engine {engine!r}")
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.float32)
        if x.shape != y.shape:
            raise ConfigurationError("fp32 op requires equal shapes")
        mode = Mode.FP32_MUL if op == "mul" else Mode.FP32_ADD
        self.stats.cycles_reconfig += self.controller.set_mode(mode)
        n = x.size
        if n == 0:
            return x.copy()
        flat_x = x.reshape(-1)
        flat_y = y.reshape(-1)

        # Chunk into (4, L) streams, L <= 128 (buffer capacity).
        per_stream = FP32_LANES * MAX_FP32_STREAM
        outs = []
        cycles = 0
        for s0 in range(0, n, per_stream):
            cx = flat_x[s0 : s0 + per_stream]
            cy = flat_y[s0 : s0 + per_stream]
            m = cx.size
            lanes_len = -(-m // FP32_LANES)  # ceil
            pad = lanes_len * FP32_LANES - m
            sx = np.pad(cx, (0, pad)).reshape(FP32_LANES, lanes_len)
            sy = np.pad(cy, (0, pad)).reshape(FP32_LANES, lanes_len)
            if engine == "cycle":
                res, c = self._fp32_stream_cycle(sx, sy, op)
            else:
                res = (
                    sliced_multiply(sx, sy) if op == "mul" else aligned_add(sx, sy)
                )
                c = lanes_len + FP32_PIPELINE_FILL
            cycles += c
            outs.append(res.reshape(-1)[:m])
            self.stats.fp32_streams += 1
        if op == "mul":
            self.stats.cycles_fp32_mul += cycles
            self.stats.fp32_mul_ops += n
        else:
            self.stats.cycles_fp32_add += cycles
            self.stats.fp32_add_ops += n
        reg = get_registry()
        if reg.enabled:
            reg.counter(f"hw.pu.occupancy.fp32_{op}").inc(cycles)
            reg.counter("hw.pu.fp32_streams").inc(len(outs))
        return np.concatenate(outs).reshape(x.shape).astype(np.float32)

    def _fp32_stream_cycle(
        self, sx: np.ndarray, sy: np.ndarray, op: str
    ) -> tuple[np.ndarray, int]:
        """One stream on the cycle engine (buffers loaded, array driven)."""
        self.x_buffer.load_fp32(sx)
        self.y_buffer.load_fp32(sy)
        L = sx.shape[1]
        s_x = np.zeros((FP32_COLS, L), np.int64)
        e_x = np.zeros((FP32_COLS, L), np.int64)
        m_x = np.zeros((FP32_COLS, L), np.int64)
        s_y = np.zeros_like(s_x)
        e_y = np.zeros_like(e_x)
        m_y = np.zeros_like(m_x)
        for lane in range(FP32_COLS):
            for pos in range(L):
                s_x[lane, pos], e_x[lane, pos], m_x[lane, pos] = self.x_buffer.read_fp32(
                    lane, pos
                )
                s_y[lane, pos], e_y[lane, pos], m_y[lane, pos] = self.y_buffer.read_fp32(
                    lane, pos
                )
        if op == "mul":
            r = self.array.run_fp32_mul_stream(m_x, m_y, s_x, s_y, e_x, e_y)
            return r.results, r.cycles
        # fpadd: DSPs idle; exponent unit + shifter + ACC, one element per
        # lane per cycle with the same pipeline fill as the mul path.
        out = np.zeros((FP32_COLS, L), dtype=np.float32)
        for lane in range(FP32_COLS):
            for pos in range(L):
                out[lane, pos] = self._fpadd_element(
                    (int(s_x[lane, pos]), int(e_x[lane, pos]), int(m_x[lane, pos])),
                    (int(s_y[lane, pos]), int(e_y[lane, pos]), int(m_y[lane, pos])),
                )
        return out, L + FP32_PIPELINE_FILL

    def _fpadd_element(
        self, xa: tuple[int, int, int], yb: tuple[int, int, int]
    ) -> float:
        """One fpadd through EU + alignment shifter + 48-bit ACC + normalizer.

        Mirrors :func:`repro.arith.fp_align_add.aligned_add` element-wise
        (bit-identity asserted in tests): operands enter the wide
        accumulator with 24 guard bits, so alignment is exact within the
        48-bit window.
        """
        from repro.arith.fp_align_add import GUARD_BITS, MAX_ALIGN_SHIFT

        sx, ex, mx = xa
        sy, ey, my = yb
        if mx == 0 and my == 0:
            return 0.0
        if mx == 0:
            ex = ey
        if my == 0:
            ey = ex
        exp, d_x, d_y = self.eu.align(ex, ey)
        smx = -mx if sx else mx
        smy = -my if sy else my
        total = ((smx << GUARD_BITS) >> min(d_x, MAX_ALIGN_SHIFT)) + (
            (smy << GUARD_BITS) >> min(d_y, MAX_ALIGN_SHIFT)
        )
        if total == 0:
            return 0.0
        sign = 1 if total < 0 else 0
        man, shift = self.array._normalizer.normalize(abs(total))
        exp_out = exp + shift - GUARD_BITS
        if exp_out >= fp32bits.EXP_SPECIAL:
            raise HardwareContractError("fpadd exponent overflow")
        if exp_out < 1:
            return 0.0
        return float(
            fp32bits.compose(np.uint32(sign), np.int64(exp_out), np.int64(man))
        )
