"""Cycle-level simulator of the 8x8 PE array (Fig. 2, Fig. 5).

The simulator advances the array one clock at a time with register-accurate
dataflow; it does **not** hard-code the paper's cycle formulas — the counts
``8*N_X + 15`` (Eqn 9) and ``L + 8`` (Eqn 10) must *emerge* from the
pipeline structure, and the test suite asserts that they do.

Dataflow (bfp8 MatMul, Y-stationary, Fig. 5a)
---------------------------------------------
PE ``(r, j)`` holds the packed pair ``(Y_hi[r, j], Y_lo[r, j])``.  The X
buffer emits row ``i`` of the streamed blocks at cycle ``i``; the per-row
delay chains (the "Misc." delay chains of Table II) skew element ``X[i, r]``
into array row ``r`` at cycle ``i + r``.  X values shift right, partial
sums flow down; element ``Z[i, j]`` lands in the bottom register of column
``j`` at cycle ``i + j + 7`` and is handed to the shifter/ACC the following
cycle.  Y preloading overlaps the skew: row ``r`` is written at cycle
``r - 1`` relative to stream start (write-before-read), so no separate
preload bubble exists inside one stream — the 15-cycle constant is pure
pipeline fill/drain.

Dataflow (fp32 mul, Fig. 5b)
----------------------------
Only 4 columns are fed (buffer bandwidth).  Column ``l`` is one FPU: the 8
rows hold the 8 retained partial-product terms, pre-shifted at the inputs;
the DSP cascade adds them downward with one register per row, so element
``e`` finishes the cascade at cycle ``e + 7`` and leaves the normalizer at
``e + 8``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.fp_sliced import FP32_MUL_TERMS
from repro.arith.packing import pack_pair, unpack_accumulator
from repro.errors import ConfigurationError, HardwareContractError
from repro.formats import fp32bits
from repro.hw.dsp48e2 import wrap48
from repro.hw.shifter import Normalizer

__all__ = ["SystolicArray", "BfpStreamResult", "Fp32MulResult"]

ROWS = 8
COLS = 8
FP32_COLS = 4


@dataclass(frozen=True)
class BfpStreamResult:
    """Outputs of one bfp8 stream: per-X-block products against both Y blocks.

    ``z_hi``/``z_lo`` have shape ``(N_X, 8, 8)`` and hold exact integer
    mantissa products ``X_i @ Y_hi`` and ``X_i @ Y_lo``; ``cycles`` is the
    emergent cycle count of the stream (fill + 8 per block + drain).
    """

    z_hi: np.ndarray
    z_lo: np.ndarray
    cycles: int


@dataclass(frozen=True)
class Fp32MulResult:
    """Outputs of one fp32 multiply stream.

    ``accumulators`` has shape ``(lanes, L)``: the raw 48-bit cascade sums
    (``(man_x*man_y - x0*y0) >> 8``); ``results`` the normalized float32
    products; ``cycles`` the emergent count (``L + 8``).
    """

    accumulators: np.ndarray
    results: np.ndarray
    cycles: int


@dataclass
class SystolicArray:
    """Register-accurate model of the PE array."""

    rows: int = ROWS
    cols: int = COLS
    y_packed: np.ndarray = field(default_factory=lambda: np.zeros((ROWS, COLS), np.int64))
    _normalizer: Normalizer = field(default_factory=Normalizer)

    # ------------------------------------------------------------------ bfp8
    def load_y_pair(self, y_hi_man: np.ndarray, y_lo_man: np.ndarray) -> None:
        """Preload the resident packed Y mantissas (combined MAC)."""
        y_hi = np.asarray(y_hi_man, dtype=np.int64)
        y_lo = np.asarray(y_lo_man, dtype=np.int64)
        if y_hi.shape != (self.rows, self.cols) or y_lo.shape != (self.rows, self.cols):
            raise ConfigurationError("Y blocks must match the array shape")
        self.y_packed = pack_pair(y_hi, y_lo)

    def run_bfp8_stream(self, x_mantissas: np.ndarray) -> BfpStreamResult:
        """Stream ``(N_X, rows, cols)`` X mantissa blocks through the array.

        Returns the packed-and-unpacked column sums per X block, plus the
        emergent cycle count.  Arithmetic is performed exactly as the DSP
        slices do (48-bit wraparound, packed fields).
        """
        x = np.asarray(x_mantissas, dtype=np.int64)
        if x.ndim != 3 or x.shape[1:] != (self.rows, self.cols):
            raise ConfigurationError("X stream must have shape (N_X, 8, 8)")
        if x.size and (x.min() < -127 or x.max() > 127):
            raise HardwareContractError(
                "X mantissas outside [-127, 127] (quantizer contract)"
            )
        n_blocks = x.shape[0]
        n_rows_total = n_blocks * self.rows
        x_stream = x.reshape(n_rows_total, self.cols)  # row i of the stream

        x_pipe = np.zeros((self.rows, self.cols), dtype=np.int64)
        psum = np.zeros((self.rows, self.cols), dtype=np.int64)
        z_packed = np.zeros((n_rows_total, self.cols), dtype=np.int64)
        collected = np.zeros((n_rows_total, self.cols), dtype=bool)

        t = 0
        # Termination is data-driven: run until every output element has been
        # handed to the accumulator stage (one cycle after it lands in the
        # bottom register).
        last_handoff = -1
        while True:
            # -- input skew: array row r receives X[t - r, r] this cycle
            idx = t - np.arange(self.rows)
            valid_in = (idx >= 0) & (idx < n_rows_total)
            x_in = np.where(valid_in, x_stream[np.clip(idx, 0, n_rows_total - 1),
                                               np.arange(self.rows)], 0)
            # -- register updates (X shifts right, products join column sums)
            x_pipe = np.concatenate([x_in[:, None], x_pipe[:, :-1]], axis=1)
            prod = wrap48(x_pipe * self.y_packed)
            shifted_psum = np.vstack([np.zeros((1, self.cols), np.int64), psum[:-1]])
            psum = wrap48(prod + shifted_psum)
            # -- bottom register exits to the shifter/ACC next cycle
            i_out = t - np.arange(self.cols) - (self.rows - 1)
            for j in range(self.cols):
                i = int(i_out[j])
                if 0 <= i < n_rows_total and not collected[i, j]:
                    z_packed[i, j] = psum[self.rows - 1, j]
                    collected[i, j] = True
                    last_handoff = max(last_handoff, t + 1)
            t += 1
            if collected.all() and t > last_handoff:
                break
        cycles = t
        hi, lo = unpack_accumulator(z_packed, self.rows)
        return BfpStreamResult(
            z_hi=hi.reshape(n_blocks, self.rows, self.cols),
            z_lo=lo.reshape(n_blocks, self.rows, self.cols),
            cycles=cycles,
        )

    # --------------------------------------------------------------- fp32 mul
    def run_fp32_mul_stream(
        self,
        man_x: np.ndarray,
        man_y: np.ndarray,
        sign_x: np.ndarray,
        sign_y: np.ndarray,
        exp_x: np.ndarray,
        exp_y: np.ndarray,
    ) -> Fp32MulResult:
        """Run ``(lanes, L)`` operand pairs through the 4 FPU columns.

        All arrays have shape ``(4, L)``.  Mantissas are 24-bit magnitudes
        (0 for zero operands), exponents biased.  Returns the raw cascade
        accumulators and the normalized float32 products.
        """
        man_x = np.asarray(man_x, dtype=np.int64)
        man_y = np.asarray(man_y, dtype=np.int64)
        if man_x.shape != man_y.shape or man_x.ndim != 2 or man_x.shape[0] != FP32_COLS:
            raise ConfigurationError("fp32 operands must have shape (4, L)")
        lanes, L = man_x.shape

        # Slice routing (layout converter): per row r, the slice indices and
        # pre-shifts of FP32_MUL_TERMS.
        xsl = np.array([t.x_slice for t in FP32_MUL_TERMS])
        ysl = np.array([t.y_slice for t in FP32_MUL_TERMS])
        xps = np.array([t.x_preshift for t in FP32_MUL_TERMS])
        yps = np.array([t.y_preshift for t in FP32_MUL_TERMS])
        slx = fp32bits.mantissa_slices(man_x)  # (4, L, 3)
        sly = fp32bits.mantissa_slices(man_y)

        psum = np.zeros((self.rows, lanes), dtype=np.int64)
        acc = np.zeros((lanes, L), dtype=np.int64)
        done = np.zeros((lanes, L), dtype=bool)
        t = 0
        last_exit = -1
        while True:
            e_idx = t - np.arange(self.rows)  # element index at each row
            valid = (e_idx >= 0) & (e_idx < L)
            e_c = np.clip(e_idx, 0, L - 1)
            # operands entering row r this cycle (per lane)
            a = np.where(
                valid[:, None],
                slx[:, e_c, xsl].T << xps[:, None],  # (rows, lanes)
                0,
            )
            b = np.where(valid[:, None], sly[:, e_c, ysl].T << yps[:, None], 0)
            prod = wrap48(a * b)
            shifted = np.vstack([np.zeros((1, lanes), np.int64), psum[:-1]])
            psum = wrap48(prod + shifted)
            e_bottom = t - (self.rows - 1)
            if 0 <= e_bottom < L:
                acc[:, e_bottom] = psum[self.rows - 1]
                done[:, e_bottom] = True
                last_exit = t + 1  # normalizer register stage
            t += 1
            if done.all() and t > last_exit:
                break
        cycles = t

        results = self._normalize_products(acc, sign_x, sign_y, exp_x, exp_y)
        return Fp32MulResult(accumulators=acc, results=results, cycles=cycles)

    def _normalize_products(
        self,
        acc: np.ndarray,
        sign_x: np.ndarray,
        sign_y: np.ndarray,
        exp_x: np.ndarray,
        exp_y: np.ndarray,
    ) -> np.ndarray:
        """Normalizer + XOR sign + exponent unit, per element (scalar path)."""
        lanes, L = acc.shape
        out = np.zeros((lanes, L), dtype=np.float32)
        for lane in range(lanes):
            for e in range(L):
                a = int(acc[lane, e])
                ex, ey = int(exp_x[lane, e]), int(exp_y[lane, e])
                if a <= 0 or ex == 0 or ey == 0:
                    out[lane, e] = 0.0
                    continue
                man, shift = self._normalizer.normalize(a)
                exp = ex + ey + (23 + shift) - 165
                sign = int(sign_x[lane, e]) ^ int(sign_y[lane, e])
                if exp >= fp32bits.EXP_SPECIAL:
                    raise HardwareContractError("fp32 product exponent overflow")
                if exp < 1:
                    out[lane, e] = 0.0
                    continue
                out[lane, e] = float(
                    fp32bits.compose(
                        np.uint32(sign), np.int64(exp), np.int64(man)
                    )
                )
        return out
