"""BRAM18 model: an 18 Kb block RAM with a byte-wide port (Fig. 4).

The buffers use BRAM18 primitives in the 2048 x 9 configuration with 8 data
bits used, i.e. 2048 addressable bytes with one byte read per cycle.  The
PSU buffer uses the 512 x 36 configuration (handled in
``repro.hw.accumulator``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareContractError

__all__ = ["Bram18", "BRAM18_BYTES"]

BRAM18_BYTES = 2048


@dataclass
class Bram18:
    """Byte-addressable BRAM18 with bounds-checked access."""

    name: str = "bram"
    data: np.ndarray = field(
        default_factory=lambda: np.zeros(BRAM18_BYTES, dtype=np.int16)
    )

    def _check(self, addr: int, n: int = 1) -> None:
        if not (0 <= addr and addr + n <= BRAM18_BYTES):
            raise HardwareContractError(
                f"{self.name}: address range [{addr}, {addr + n}) outside "
                f"{BRAM18_BYTES}-byte BRAM18"
            )

    def write(self, addr: int, value: int) -> None:
        """Write one signed byte."""
        self._check(addr)
        if not (-128 <= value <= 255):
            raise HardwareContractError(f"{self.name}: byte value {value} out of range")
        self.data[addr] = value if value < 128 else value - 256

    def write_block(self, addr: int, values: np.ndarray) -> None:
        values = np.asarray(values)
        self._check(addr, values.size)
        if values.size and (values.min() < -128 or values.max() > 255):
            raise HardwareContractError(f"{self.name}: byte values out of range")
        signed = np.where(values >= 128, values - 256, values)
        self.data[addr : addr + values.size] = signed

    def read(self, addr: int) -> int:
        """Read one signed byte."""
        self._check(addr)
        return int(self.data[addr])

    def read_block(self, addr: int, n: int) -> np.ndarray:
        self._check(addr, n)
        return self.data[addr : addr + n].astype(np.int64)
