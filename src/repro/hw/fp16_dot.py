"""fp16 dot-product personality: two fp16 MACs per DSP48E2 (extension).

The paper's multi-mode unit pays the vector cliff for every scalar-float
format: fp16 falls back to the 4-lane fp32 path, which slices its mantissa
into 3x3 partial products.  This module models the *fp16 dot-product*
personality the cost registry exposes as ``fp16_dot``
(:mod:`repro.cost.modes`): the same TransDot/DHFP-PE trick as the bfp8
combined MAC (:mod:`repro.arith.packing`), applied to fp16 operands.

An fp16 mantissa is 11 bits (10 stored + implicit), split into an 8-bit
high slice and a 3-bit low slice.  Both Y slices ride in one 27-bit DSP
operand (the bfp8 mode's ``PACK_SHIFT`` field layout), so each DSP pass
computes *two* partial products::

    packed   = y_hi * 2**18 + y_lo
    pass 1:    x_hi * packed = (x_hi*y_hi) << 18 + (x_hi*y_lo)
    pass 2:    x_lo * packed = (x_lo*y_hi) << 18 + (x_lo*y_lo)

Two passes cover all four partial products of the 11x11 multiply — the
``slices = 2`` of the registry's ``fp16_dot`` entry, against the fp32
path's 3x3.  The low field cannot collide with the high one: a low
partial product is at most ``255 * 7`` and the column accumulates at
most 8 of them, far inside the 2**17 packed-field bound the bfp8 mode
already relies on.

Accumulation reuses the bfp alignment semantics (Eqn 3): a running
max-exponent PSU with truncating right shifts, which is exactly where the
shift-aware width predictor (:func:`repro.hw.shifter.alignment_shift_cycles`)
earns its cycles back — fp16 exponent spread within a dot product is
typically small, so most alignments stay in the narrow window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.packing import PACK_SHIFT
from repro.errors import HardwareContractError
from repro.formats.halfprec import FP16, decompose_half, quantize_half
from repro.formats.rounding import shift_right

__all__ = [
    "FP16_LO_BITS",
    "FP16_HI_BITS",
    "Fp16DotResult",
    "pack_y_slices",
    "dual_mac_partials",
    "fp16_dot",
]

FP16_LO_BITS = 3  # 11-bit mantissa = 8-bit high slice + 3-bit low slice
FP16_HI_BITS = FP16.man_bits - FP16_LO_BITS
_LO_MASK = (1 << FP16_LO_BITS) - 1
_FIELD_MASK = (np.int64(1) << PACK_SHIFT) - 1
_PSU_WIDTH = 48  # same DSP48E2 accumulator window as the bfp8 mode


@dataclass(frozen=True)
class Fp16DotResult:
    """One emulated fp16 dot product plus its hardware accounting."""

    value: np.float32
    dsp_passes: int  # 2 per nonzero element pair (the dual-MAC packing)
    align_steps: int  # PSU alignment events (terms after the first)
    align_narrow_steps: int  # steps the width predictor proves narrow


def pack_y_slices(y_hi: np.ndarray, y_lo: np.ndarray) -> np.ndarray:
    """Pack an fp16 mantissa's two magnitude slices into one DSP operand."""
    y_hi = np.asarray(y_hi, dtype=np.int64)
    y_lo = np.asarray(y_lo, dtype=np.int64)
    if y_hi.size and (y_hi.min() < 0 or y_hi.max() >= (1 << FP16_HI_BITS)):
        raise HardwareContractError("y_hi outside the 8-bit slice range")
    if y_lo.size and (y_lo.min() < 0 or y_lo.max() >= (1 << FP16_LO_BITS)):
        raise HardwareContractError("y_lo outside the 3-bit slice range")
    return (y_hi << PACK_SHIFT) + y_lo


def dual_mac_partials(
    x_slice: np.ndarray, packed_y: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One DSP pass: multiply a slice against a packed Y pair, unpack both.

    All operands are magnitudes, so the fields split with a plain mask —
    the signed-field correction of :func:`repro.arith.packing.
    unpack_accumulator` is not needed here.
    """
    acc = np.asarray(x_slice, dtype=np.int64) * np.asarray(
        packed_y, dtype=np.int64
    )
    return acc >> PACK_SHIFT, acc & _FIELD_MASK


def fp16_dot(x: np.ndarray, y: np.ndarray) -> Fp16DotResult:
    """Dot product of two vectors on the fp16 dot-product datapath.

    Quantizes both operands to the fp16 grid, multiplies mantissas with the
    packed dual MAC (two DSP passes per element), and accumulates with the
    bfp-style aligned-truncating PSU.  Exact-products contract: the
    recombined partials must equal the full 11x11 mantissa product — the
    packing argument is checked, not assumed.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise HardwareContractError(
            f"dot operands disagree: {x.shape} vs {y.shape}"
        )
    s_x, e_x, m_x = decompose_half(quantize_half(x.astype(np.float32), FP16), FP16)
    s_y, e_y, m_y = decompose_half(quantize_half(y.astype(np.float32), FP16), FP16)

    live = (m_x > 0) & (m_y > 0)  # zero operands are clock-gated
    if not live.any():
        return Fp16DotResult(np.float32(0.0), 0, 0, 0)
    s_x, e_x, m_x = s_x[live], e_x[live], np.asarray(m_x)[live]
    s_y, e_y, m_y = s_y[live], e_y[live], np.asarray(m_y)[live]

    packed = pack_y_slices(m_y >> FP16_LO_BITS, m_y & _LO_MASK)
    hh, hl = dual_mac_partials(m_x >> FP16_LO_BITS, packed)
    lh, ll = dual_mac_partials(m_x & _LO_MASK, packed)
    prod = (hh << (2 * FP16_LO_BITS)) + ((hl + lh) << FP16_LO_BITS) + ll
    if not np.array_equal(prod, m_x.astype(np.int64) * m_y):
        raise HardwareContractError("dual-MAC recombination lost a partial")
    sign = (s_x.astype(np.int64) ^ s_y.astype(np.int64)).astype(bool)
    man = np.where(sign, -prod, prod)
    # True product exponent (value = man * 2**exp), one subtraction per
    # operand to leave the biased field convention of decompose_half.
    exp = (
        e_x.astype(np.int64) + e_y.astype(np.int64)
        - 2 * (FP16.bias + FP16.man_bits - 1)
    )

    # Aligned-truncating accumulation, scalar PSU (Eqn 3), with the
    # shift-aware width predictor running alongside.  The predictor tracks
    # a *magnitude bound* from format limits and shift distances alone
    # (nothing the exponent unit does not already know); a step whose
    # bounded sum fits the low half of the 48-bit shifter window is
    # "narrow" — see :func:`repro.hw.shifter.alignment_shift_cycles`.
    from repro.hw.shifter import NARROW_ALIGN_BITS

    w0_bound = ((1 << FP16.man_bits) - 1) ** 2  # one 11x11 product
    psu_man = int(man[0])
    psu_exp = int(exp[0])
    psu_bound = w0_bound
    narrow = 0
    steps = 0
    for sm, pe in zip(man[1:].tolist(), exp[1:].tolist()):
        steps += 1
        if psu_exp >= pe:
            d = psu_exp - pe
            # |x >> d| can exceed |x| >> d by one for negative x.
            psu_bound = psu_bound + (w0_bound >> d) + (1 if d else 0)
            psu_man = psu_man + int(
                shift_right(np.int64(sm), min(d, 63), "truncate")
            )
        else:
            d = pe - psu_exp
            psu_bound = (psu_bound >> d) + (1 if d else 0) + w0_bound
            psu_man = int(
                shift_right(np.int64(psu_man), min(d, 63), "truncate")
            ) + sm
            psu_exp = pe
        if abs(psu_man) > psu_bound:
            raise HardwareContractError(
                "alignment width predictor under-predicted"
            )
        if psu_bound < (1 << NARROW_ALIGN_BITS):
            narrow += 1
        if not -(1 << (_PSU_WIDTH - 1)) <= psu_man < (1 << (_PSU_WIDTH - 1)):
            raise HardwareContractError("fp16 dot PSU overflowed 48 bits")

    value = np.float32(psu_man * float(np.exp2(psu_exp)))
    return Fp16DotResult(value, 2 * int(live.sum()), steps, narrow)
