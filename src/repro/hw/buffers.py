"""X and Y buffers with the dual-format BRAM data layout (paper Fig. 4).

bfp8 mode
---------
The X buffer holds 17 BRAM18s: 16 for mantissas (two groups of 8; streamed
blocks stripe across the groups) and one for the shared exponents.  Within a
group, BRAM ``k`` stores column ``k`` of each block, so one byte per BRAM
per cycle yields a full X row for the (delay-chain skewed) systolic array.
The Y buffer replicates the mantissa bank (16 + 16 + 1 BRAMs = 33) because
the combined-MAC optimization streams *two* resident Y blocks at once.

fp32 mode
---------
The same 16 mantissa BRAMs are repurposed: each fp32 value owns 4 BRAMs —
three 8-bit mantissa slices plus one exponent byte — so the 128-bit port
yields exactly **4 fp32 values per cycle**, which is why only 4 of the 8 PE
columns can be used in fp32 mode (Section II-C).  The sign bit is stored in
bit 7 of the top slice byte: for normalized values bit 23 of the magnitude
is the implicit one and need not be stored, so the top byte packs
``sign << 7 | magnitude[22:16]`` and an exponent byte of 0 denotes zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.errors import ConfigurationError, HardwareContractError
from repro.formats import fp32bits
from repro.formats.bfp8 import BLOCK_COLS, BLOCK_ROWS, BfpBlock
from repro.hw.bram import BRAM18_BYTES, Bram18

__all__ = [
    "XBuffer",
    "YBuffer",
    "MAX_X_BLOCKS",
    "MAX_FP32_STREAM",
    "FP32_LANES",
]

MAX_X_BLOCKS = 64  # paper II-D: continuous X stream bound (PSU depth 512)
MAX_FP32_STREAM = 128  # paper II-D: L_fp32 bound (single BRAM18 capacity share)
FP32_LANES = 4

BufferMode = Literal["idle", "bfp8", "fp32"]


def _encode_fp32_bytes(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode float32 values into (4, n) slice bytes + zero-flag handling.

    Returns ``(bytes_, exps)`` where ``bytes_[0..2]`` are mantissa slice
    bytes (top slice packed with the sign) and ``exps`` the exponent bytes.
    """
    values = np.asarray(values, dtype=np.float32)
    sign, exp, man = fp32bits.decompose(values)
    slices = fp32bits.mantissa_slices(man)
    top = (sign.astype(np.int64) << 7) | (slices[..., 2] & 0x7F)
    bytes_ = np.stack([slices[..., 0], slices[..., 1], top], axis=0)
    return bytes_.astype(np.int64), exp.astype(np.int64)


def _decode_fp32_bytes(
    b0: int, b1: int, b2: int, exp: int
) -> tuple[int, int, int]:
    """Inverse of :func:`_encode_fp32_bytes` for one value.

    Returns ``(sign, biased_exp, man24)``; an exponent byte of 0 is zero.
    """
    if exp == 0:
        return 0, 0, 0
    sign = (b2 >> 7) & 1
    man = ((0x80 | (b2 & 0x7F)) << 16) | ((b1 & 0xFF) << 8) | (b0 & 0xFF)
    return sign, exp, man


@dataclass
class XBuffer:
    """17-BRAM X-side buffer (16 mantissa + 1 exponent)."""

    name: str = "xbuf"
    mode: BufferMode = "idle"
    brams: list[Bram18] = field(default_factory=list)
    _n_blocks: int = 0
    _fp32_len: int = 0

    def __post_init__(self) -> None:
        if not self.brams:
            self.brams = [Bram18(f"{self.name}.man{i}") for i in range(16)]
            self.brams.append(Bram18(f"{self.name}.exp"))
        if len(self.brams) != 17:
            raise ConfigurationError("X buffer requires exactly 17 BRAM18s")

    @property
    def n_brams(self) -> int:
        return len(self.brams)

    @property
    def exponent_bram(self) -> Bram18:
        return self.brams[16]

    # -- bfp8 ----------------------------------------------------------------
    def load_bfp_blocks(self, blocks: list[BfpBlock]) -> None:
        """Store a continuous X block stream (group-striped, Fig. 4)."""
        if len(blocks) == 0:
            raise ConfigurationError("empty X block stream")
        if len(blocks) > MAX_X_BLOCKS:
            raise HardwareContractError(
                f"X stream of {len(blocks)} blocks exceeds the "
                f"{MAX_X_BLOCKS}-block limit (PSU depth)"
            )
        self.mode = "bfp8"
        self._n_blocks = len(blocks)
        for b_idx, block in enumerate(blocks):
            if block.shape != (BLOCK_ROWS, BLOCK_COLS):
                raise ConfigurationError(f"X block {b_idx} is not 8x8")
            group = b_idx % 2
            depth = (b_idx // 2) * BLOCK_ROWS
            if depth + BLOCK_ROWS > BRAM18_BYTES:
                raise HardwareContractError("X buffer BRAM capacity exceeded")
            for k in range(BLOCK_COLS):
                self.brams[group * 8 + k].write_block(
                    depth, block.mantissas[:, k].astype(np.int64)
                )
            self.exponent_bram.write(b_idx, int(block.exponent) & 0xFF)

    def read_bfp_row(self, block_idx: int, row: int) -> tuple[np.ndarray, int]:
        """One cycle's port read: row ``row`` of block ``block_idx`` + exp."""
        if self.mode != "bfp8":
            raise HardwareContractError("X buffer not in bfp8 mode")
        if not (0 <= block_idx < self._n_blocks):
            raise HardwareContractError(f"X block index {block_idx} out of range")
        group = block_idx % 2
        depth = (block_idx // 2) * BLOCK_ROWS + row
        row_vals = np.array(
            [self.brams[group * 8 + k].read(depth) for k in range(BLOCK_COLS)],
            dtype=np.int64,
        )
        exp = self.exponent_bram.read(block_idx)
        return row_vals, exp

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    # -- fp32 ----------------------------------------------------------------
    def load_fp32(self, values: np.ndarray) -> None:
        """Store an fp32 stream of shape ``(4, L)`` — 4 lanes, length L."""
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2 or values.shape[0] != FP32_LANES:
            raise ConfigurationError("fp32 stream must have shape (4, L)")
        L = values.shape[1]
        if L == 0:
            raise ConfigurationError("empty fp32 stream")
        if L > MAX_FP32_STREAM:
            raise HardwareContractError(
                f"fp32 stream length {L} exceeds the {MAX_FP32_STREAM} limit"
            )
        self.mode = "fp32"
        self._fp32_len = L
        bytes_, exps = _encode_fp32_bytes(values)  # (3, 4, L), (4, L)
        for lane in range(FP32_LANES):
            for s in range(3):
                self.brams[lane * 4 + s].write_block(0, bytes_[s, lane])
            self.brams[lane * 4 + 3].write_block(0, exps[lane] & 0xFF)

    def read_fp32(self, lane: int, pos: int) -> tuple[int, int, int]:
        """One lane's port read at stream position ``pos``: (sign, exp, man24)."""
        if self.mode != "fp32":
            raise HardwareContractError("X buffer not in fp32 mode")
        if not (0 <= lane < FP32_LANES and 0 <= pos < self._fp32_len):
            raise HardwareContractError("fp32 read out of range")
        b0 = self.brams[lane * 4 + 0].read(pos)
        b1 = self.brams[lane * 4 + 1].read(pos)
        b2 = self.brams[lane * 4 + 2].read(pos)
        exp = self.brams[lane * 4 + 3].read(pos)
        return _decode_fp32_bytes(b0 & 0xFF, b1 & 0xFF, b2 & 0xFF, exp & 0xFF)

    @property
    def fp32_len(self) -> int:
        return self._fp32_len


@dataclass
class YBuffer(XBuffer):
    """33-BRAM Y-side buffer: replicated mantissa banks for the packed pair.

    Bank 0 (BRAMs 0..15) follows the X layout; bank 1 (BRAMs 17..32) holds
    the second resident Y block's mantissas so both can stream per cycle.
    In fp32 mode only bank 0 is used.
    """

    name: str = "ybuf"

    def __post_init__(self) -> None:
        if not self.brams:
            self.brams = [Bram18(f"{self.name}.man{i}") for i in range(16)]
            self.brams.append(Bram18(f"{self.name}.exp"))
            self.brams.extend(Bram18(f"{self.name}.man{i + 16}") for i in range(16))
        if len(self.brams) != 33:
            raise ConfigurationError("Y buffer requires exactly 33 BRAM18s")

    def load_bfp_pair(self, y_hi: BfpBlock, y_lo: BfpBlock) -> None:
        """Store the two resident Y blocks (combined-MAC pair)."""
        for name, blk in (("y_hi", y_hi), ("y_lo", y_lo)):
            if blk.shape != (BLOCK_ROWS, BLOCK_COLS):
                raise ConfigurationError(f"{name} is not 8x8")
        self.mode = "bfp8"
        self._n_blocks = 2
        for k in range(BLOCK_COLS):
            self.brams[k].write_block(0, y_hi.mantissas[:, k].astype(np.int64))
            self.brams[17 + k].write_block(0, y_lo.mantissas[:, k].astype(np.int64))
        self.exponent_bram.write(0, int(y_hi.exponent) & 0xFF)
        self.exponent_bram.write(1, int(y_lo.exponent) & 0xFF)

    def read_bfp_pair_row(self, row: int) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Both resident blocks' row ``row`` plus their exponents."""
        if self.mode != "bfp8":
            raise HardwareContractError("Y buffer not in bfp8 mode")
        hi = np.array([self.brams[k].read(row) for k in range(BLOCK_COLS)], dtype=np.int64)
        lo = np.array(
            [self.brams[17 + k].read(row) for k in range(BLOCK_COLS)], dtype=np.int64
        )
        e_hi = self.exponent_bram.read(0)
        e_lo = self.exponent_bram.read(1)
        return hi, lo, e_hi, e_lo
