"""Exponent unit (EU): shared-exponent arithmetic for both modes (Fig. 2).

In bfp8 MatMul mode the EU adds the two block exponents of each X/Y tile
pair and compares the result against the PSU buffer's running exponent,
producing the alignment-shift distances for the column shifters (Eqn 3).
In fp32 mode it adds/compares the per-element biased exponents (Eqns 4-6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareContractError

__all__ = ["ExponentUnit", "EXP_FIELD_BITS", "predict_aligned_bound"]

EXP_FIELD_BITS = 10  # internal width: sums of two 8-bit exponents need 9+sign


@dataclass
class ExponentUnit:
    """Combinational exponent add/compare with a width contract."""

    width: int = EXP_FIELD_BITS

    def _check(self, value: int, what: str) -> int:
        lo = -(1 << (self.width - 1))
        hi = (1 << (self.width - 1)) - 1
        if not (lo <= value <= hi):
            raise HardwareContractError(
                f"exponent unit {what} {value} exceeds {self.width}-bit field"
            )
        return value

    def add(self, exp_a: int, exp_b: int) -> int:
        """Product exponent: ``expb_Z = expb_X + expb_Y`` (Eqn 2 / Eqn 4)."""
        return self._check(exp_a + exp_b, "sum")

    def align(self, exp_a: int, exp_b: int) -> tuple[int, int, int]:
        """Compare two exponents for the alignment shifter (Eqn 3 / Eqn 6).

        Returns ``(exp_out, shift_a, shift_b)`` where the operand with the
        smaller exponent receives the positive shift distance.
        """
        self._check(exp_a, "operand")
        self._check(exp_b, "operand")
        if exp_a >= exp_b:
            return exp_a, 0, exp_a - exp_b
        return exp_b, exp_b - exp_a, 0


def predict_aligned_bound(
    bound_a: int, bound_b: int, shift_a: int, shift_b: int
) -> int:
    """Magnitude bound on an aligned sum, from operand bounds and shifts.

    The shift-aware width predictor: given ``|a| <= bound_a`` and
    ``|b| <= bound_b`` and the alignment distances the exponent unit just
    computed, the sum after truncating alignment satisfies
    ``|sum| <= predict_aligned_bound(...)``.  Truncating right shifts
    round toward minus infinity, so a shifted *negative* operand's
    magnitude can exceed its shifted bound by one — hence the ``+ 1``
    per nonzero shift.  The predicted mantissa width is the bound's bit
    length; when it fits :data:`repro.hw.shifter.NARROW_ALIGN_BITS` the
    upper shifter stage is provably idle.
    """
    if min(bound_a, bound_b, shift_a, shift_b) < 0:
        raise HardwareContractError("bounds and shifts are unsigned")
    a = (bound_a >> shift_a) + (1 if shift_a else 0)
    b = (bound_b >> shift_b) + (1 if shift_b else 0)
    return a + b
