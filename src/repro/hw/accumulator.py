"""Column accumulator (ACC) with its PSU buffer (Fig. 2).

Each of the 8 columns owns a 48-bit accumulator that combines the freshly
computed block column with the previous partial sums fetched from the PSU
buffer (BRAM-backed, depth 512 words: 64 X blocks x 8 rows, the paper's
maximum continuous stream).  Exponent bookkeeping for the buffered partial
sums lives here too: one running exponent per buffered tile row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import HardwareContractError
from repro.hw.exponent_unit import ExponentUnit
from repro.hw.shifter import AlignmentShifter

__all__ = ["ColumnAccumulator", "PSU_DEPTH"]

PSU_DEPTH = 512  # words per column buffer (BRAM18: 512 x 36 config, paper II-D)


@dataclass
class ColumnAccumulator:
    """One column's shifter + ACC + PSU buffer slice."""

    depth: int = PSU_DEPTH
    width: int = 48
    shifter: AlignmentShifter = field(default_factory=AlignmentShifter)
    eu: ExponentUnit = field(default_factory=ExponentUnit)

    def __post_init__(self) -> None:
        self._psu = np.zeros(self.depth, dtype=np.int64)
        self._valid = np.zeros(self.depth, dtype=bool)
        self._exp = np.zeros(self.depth, dtype=np.int64)

    def clear(self) -> None:
        self._valid[:] = False
        self._psu[:] = 0
        self._exp[:] = 0

    def accumulate(self, addr: int, mantissa: int, exponent: int) -> None:
        """Fold one incoming 48-bit mantissa into PSU[addr] with alignment."""
        if not (0 <= addr < self.depth):
            raise HardwareContractError(
                f"PSU address {addr} outside depth {self.depth}"
            )
        if not self._valid[addr]:
            self._psu[addr] = mantissa
            self._exp[addr] = exponent
            self._valid[addr] = True
            return
        exp_out, sh_old, sh_new = self.eu.align(int(self._exp[addr]), exponent)
        old = self.shifter.shift(int(self._psu[addr]), sh_old)
        new = self.shifter.shift(int(mantissa), sh_new)
        total = int(old) + int(new)
        limit = 1 << (self.width - 1)
        if not (-limit <= total < limit):
            raise HardwareContractError("column accumulator overflowed 48 bits")
        self._psu[addr] = total
        self._exp[addr] = exp_out

    def read(self, addr: int) -> tuple[int, int]:
        if not self._valid[addr]:
            raise HardwareContractError(f"PSU read of invalid address {addr}")
        return int(self._psu[addr]), int(self._exp[addr])

    def occupancy(self) -> int:
        return int(self._valid.sum())
