"""Per-column alignment shifter and the normalizer (Fig. 2, bottom of array).

The alignment shifter truncating-right-shifts a 48-bit two's-complement
mantissa by the distance computed in the exponent unit.  The normalizer
(used by the fp32 paths) is a leading-zero counter plus barrel shifter that
brings a magnitude into the 24-bit window.

Shift-aware width prediction (extension): the 48-bit shifter is physically
two cascaded 24-bit barrel stages.  When the exponent unit can prove —
from format magnitude bounds and the shift distance alone, before any
mantissa arrives — that the aligned sum fits the low
:data:`NARROW_ALIGN_BITS` half of the window, the upper stage is bypassed
and the alignment completes in one cycle instead of two
(:func:`alignment_shift_cycles`).  The bypass is *loss-free by
construction*: a value provably inside the low half has nothing for the
upper stage to move.  :class:`repro.arith.bfp_matmul.AlignmentProbe`
verifies the bound against emulated mantissas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HardwareContractError
from repro.formats.rounding import shift_right

__all__ = [
    "NARROW_ALIGN_BITS",
    "alignment_shift_cycles",
    "AlignmentShifter",
    "Normalizer",
]

NARROW_ALIGN_BITS = 24  # low barrel-shifter stage / narrow-window width


def alignment_shift_cycles(
    predicted_width: int, *, narrow_bits: int = NARROW_ALIGN_BITS
) -> int:
    """Cycles one PSU alignment costs given the predicted aligned width.

    A narrow alignment (predicted width within the low shifter stage)
    takes 1 cycle; anything wider engages both cascaded stages and takes
    2.  This is the per-step saving ``align_narrow_frac`` charges in
    :meth:`repro.cost.modes.UnitMode.stream_cycles`.
    """
    if predicted_width < 0:
        raise HardwareContractError("predicted width is unsigned")
    return 1 if predicted_width <= narrow_bits else 2


@dataclass
class AlignmentShifter:
    """Truncating arithmetic right shifter of bounded distance."""

    width: int = 48
    max_shift: int = 48

    def shift(self, value: np.ndarray | int, distance: int) -> np.ndarray | int:
        if distance < 0:
            raise HardwareContractError("alignment shifter distance is unsigned")
        d = min(distance, self.max_shift)
        scalar = isinstance(value, (int, np.integer))
        out = shift_right(np.asarray(value, dtype=np.int64), d, "truncate")
        limit = np.int64(1) << (self.width - 1)
        arr = np.asarray(out)
        if arr.size and (arr.min() < -limit or arr.max() >= limit):
            raise HardwareContractError(f"shifter value exceeds {self.width} bits")
        return int(arr) if scalar else out


@dataclass
class Normalizer:
    """LZC + barrel shifter: normalize a positive magnitude to ``target_msb``.

    Returns ``(normalized, shift)`` where ``shift`` is positive for right
    shifts (value was too large) and negative for left shifts; the caller
    adds ``shift`` to the exponent.  Right shifts truncate.
    """

    target_msb: int = 23

    def normalize(self, magnitude: int) -> tuple[int, int]:
        if magnitude < 0:
            raise HardwareContractError("normalizer input must be a magnitude")
        if magnitude == 0:
            return 0, 0
        msb = magnitude.bit_length() - 1
        shift = msb - self.target_msb
        if shift >= 0:
            return magnitude >> shift, shift
        return magnitude << (-shift), shift
