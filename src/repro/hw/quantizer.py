"""Hardware output quantizer: PSU-domain partial sums back to bfp8.

Sits after the column accumulators (Table II lists it as a distinct
component).  For each completed output block it finds the block-wide
normalization shift, rounds the 48-bit mantissas to 8 bits (nearest-even)
and emits a fresh :class:`~repro.formats.bfp8.BfpBlock`.  Functionally
identical to :func:`repro.arith.bfp_matmul.requantize_wide` — that function
is the oracle in this module's tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.bfp_matmul import WideBlock, requantize_wide
from repro.errors import HardwareContractError
from repro.formats.bfp8 import BfpBlock

__all__ = ["OutputQuantizer"]


@dataclass
class OutputQuantizer:
    """Block renormalizer with a running count of quantized blocks."""

    blocks_quantized: int = 0

    def quantize(self, mantissas: np.ndarray, exponent: int) -> BfpBlock:
        man = np.asarray(mantissas, dtype=np.int64)
        if man.ndim != 2:
            raise HardwareContractError("quantizer expects a 2-D PSU block")
        block = requantize_wide(WideBlock(man, exponent))
        self.blocks_quantized += 1
        return block
