"""Hardware functional and cycle models of the multi-mode processing unit."""

from repro.hw.accumulator import PSU_DEPTH, ColumnAccumulator
from repro.hw.bram import BRAM18_BYTES, Bram18
from repro.hw.buffers import (
    FP32_LANES,
    MAX_FP32_STREAM,
    MAX_X_BLOCKS,
    XBuffer,
    YBuffer,
)
from repro.hw.controller import RECONFIG_CYCLES, Controller, Mode
from repro.hw.dsp48e2 import DSP48E2, wrap48
from repro.hw.exponent_unit import ExponentUnit, predict_aligned_bound
from repro.hw.fp16_dot import Fp16DotResult, fp16_dot
from repro.hw.layout_converter import LayoutConverter, RowOperands
from repro.hw.pe import PE
from repro.hw.quantizer import OutputQuantizer
from repro.hw.shifter import (
    NARROW_ALIGN_BITS,
    AlignmentShifter,
    Normalizer,
    alignment_shift_cycles,
)
from repro.hw.int8_array import Int8Array, Int8ArrayStats
from repro.hw.system import Job, MultiUnitSystem, SystemReport, UnitTimeline
from repro.hw.cosim import ScalarArray
from repro.hw.selftest import SelfTestReport, run_self_test
from repro.hw.systolic import BfpStreamResult, Fp32MulResult, SystolicArray
from repro.hw.trace import ArrayTrace, TraceEvent, trace_bfp8_stream
from repro.hw.unit import (
    BFP_STREAM_OVERHEAD,
    FP32_PIPELINE_FILL,
    MultiModePU,
    PUStats,
)

__all__ = [
    "BFP_STREAM_OVERHEAD",
    "BRAM18_BYTES",
    "BfpStreamResult",
    "Bram18",
    "ColumnAccumulator",
    "Controller",
    "DSP48E2",
    "ExponentUnit",
    "FP32_LANES",
    "FP32_PIPELINE_FILL",
    "Int8Array",
    "Int8ArrayStats",
    "Job",
    "MultiUnitSystem",
    "SystemReport",
    "UnitTimeline",
    "Fp16DotResult",
    "Fp32MulResult",
    "LayoutConverter",
    "NARROW_ALIGN_BITS",
    "alignment_shift_cycles",
    "fp16_dot",
    "predict_aligned_bound",
    "MAX_FP32_STREAM",
    "MAX_X_BLOCKS",
    "Mode",
    "MultiModePU",
    "Normalizer",
    "OutputQuantizer",
    "PE",
    "PSU_DEPTH",
    "PUStats",
    "RECONFIG_CYCLES",
    "RowOperands",
    "AlignmentShifter",
    "SystolicArray",
    "ScalarArray",
    "SelfTestReport",
    "run_self_test",
    "ArrayTrace",
    "TraceEvent",
    "trace_bfp8_stream",
    "XBuffer",
    "YBuffer",
    "wrap48",
]
