"""Processing element: data registers, pre-shifters and one DSP48E2 (Fig. 3).

A PE has three personalities selected by the controller:

* ``bfp8``: the resident operand register holds a *packed* pair of Y
  mantissas (two Y blocks, combined-MAC); each cycle the streamed X mantissa
  multiplies the pair and the product joins the column partial sum.
* ``fp32_mul``: the pre-shifters left-shift the incoming X/Y mantissa slices
  by the row's assigned amounts (``repro.arith.fp_sliced.FP32_MUL_TERMS``)
  before the multiply; the column cascade accumulates the partial products.
* ``idle``: the PE is gated off (fp32 add mode, or an unused fp32 column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.arith.packing import pack_pair
from repro.errors import HardwareContractError
from repro.hw.dsp48e2 import DSP48E2

__all__ = ["PE", "PEMode"]

PEMode = Literal["bfp8", "fp32_mul", "idle"]


@dataclass
class PE:
    row: int
    col: int
    mode: PEMode = "idle"
    x_preshift: int = 0
    y_preshift: int = 0
    y_resident: int = 0  # packed pair (bfp8) -- loaded by the controller
    x_reg: int = 0
    dsp: DSP48E2 = field(default_factory=DSP48E2)

    def configure(self, mode: PEMode, *, x_preshift: int = 0, y_preshift: int = 0) -> None:
        self.mode = mode
        self.x_preshift = x_preshift
        self.y_preshift = y_preshift
        self.dsp.reset()

    def load_y(self, y_hi: int, y_lo: int) -> None:
        """Preload the resident packed Y pair (bfp8 mode)."""
        self.y_resident = int(pack_pair(y_hi, y_lo))

    def step_bfp8(self, x_in: int, psum_in: int) -> tuple[int, int]:
        """One bfp8 cycle: register X, MAC against the resident pair.

        Returns ``(x_out, psum_out)``: X forwarded right, partial sum
        forwarded down the column.
        """
        if self.mode != "bfp8":
            raise HardwareContractError(f"PE({self.row},{self.col}) not in bfp8 mode")
        if not (-128 <= x_in <= 127):
            raise HardwareContractError("bfp8 X operand outside int8")
        self.x_reg = x_in
        psum_out = self.dsp.cycle(self.y_resident, x_in, pcin=psum_in)
        return self.x_reg, psum_out

    def step_fp32_mul(self, x_slice: int, y_slice: int, pcin: int) -> int:
        """One fp32-mul cycle: pre-shift both slices, MAC into the cascade."""
        if self.mode != "fp32_mul":
            raise HardwareContractError(f"PE({self.row},{self.col}) not in fp32_mul mode")
        if not (0 <= x_slice <= 0xFF and 0 <= y_slice <= 0xFF):
            raise HardwareContractError("fp32 mantissa slice outside 8-bit range")
        a = x_slice << self.x_preshift
        b = y_slice << self.y_preshift
        return self.dsp.cycle(a, b, pcin=pcin)
