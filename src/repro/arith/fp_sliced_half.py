"""Half-precision multiplication on the sliced int8 datapath (extension).

bf16's 8-bit mantissa is a single slice — one DSP product per multiply —
and fp16's 11-bit mantissa is two slices — four products, all of which fit
the 8-row column with room to spare, so *no partial product is omitted*
(unlike fp32's dropped LSP).  Fewer rows per result means more results per
column per pass:

* bf16: 1 row/result -> 8 results per column, and a 16-bit word doubles the
  buffer lane count to 8 -> **8 lanes at 1 result/lane/cycle**, 4x fp32's
  element throughput;
* fp16: 4 rows/result -> 2 results per column (cascade split), 8 buffer
  lanes -> **8 lanes**, same 4x.

These lane counts feed the throughput extension model in
``repro.perf.throughput.half_peak_flops``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareContractError  # noqa: F401  (kept for API)
from repro.formats.halfprec import (
    HalfFormat,
    compose_half,
    decompose_half,
    quantize_half,
)

__all__ = ["sliced_multiply_half", "half_lane_count", "half_rows_per_result"]


def half_rows_per_result(fmt: HalfFormat) -> int:
    """PE-array rows consumed per multiplication result."""
    return fmt.n_partial_products


def half_lane_count(fmt: HalfFormat, cols: int = 8, port_bits: int = 128) -> int:
    """Parallel lanes: min(buffer bandwidth, array capacity)."""
    bandwidth_lanes = port_bits // 16  # 16-bit operands
    rows_per = half_rows_per_result(fmt)
    array_lanes = cols * (8 // rows_per)
    return min(bandwidth_lanes, array_lanes)


def sliced_multiply_half(
    x: np.ndarray, y: np.ndarray, fmt: HalfFormat
) -> np.ndarray:
    """Multiply half-format values exactly as the sliced datapath would.

    Inputs are float32 arrays; they are first snapped to the format's grid
    (the quantizer stage), then multiplied via slice products with
    truncating normalization.  Returns float32 values on the format's grid.
    """
    x = quantize_half(np.asarray(x, dtype=np.float32), fmt)
    y = quantize_half(np.asarray(y, dtype=np.float32), fmt)
    s_x, e_x, m_x = decompose_half(x, fmt)
    s_y, e_y, m_y = decompose_half(y, fmt)
    sign = (s_x.astype(np.uint8) ^ s_y.astype(np.uint8))
    zero = (m_x == 0) | (m_y == 0)

    # All slice products retained (<= 4 terms, fits the rows).
    prod = m_x.astype(np.int64) * m_y.astype(np.int64)  # exact, < 2**22
    safe = np.where(zero | (prod <= 0), np.int64(1), prod)
    _, e_pos = np.frexp(safe.astype(np.float64))
    msb = (e_pos - 1).astype(np.int64)
    target = fmt.man_bits - 1
    right = np.maximum(msb - target, 0)
    left = np.maximum(target - msb, 0)
    man = (safe >> right) << left  # truncate (hardware normalizer)
    # value = prod * 2**(e_x + e_y - 2*bias - 2*(man_bits-1))
    #       = man * 2**(msb - target) * 2**(...)
    exp = e_x + e_y - fmt.bias + (msb - target) - (fmt.man_bits - 1)
    # Overflow saturates to the largest finite value (the vector-unit
    # personality has no Inf datapath; saturation keeps downstream
    # arithmetic — e.g. 1/(e^2z + 1) in GELU — well-behaved).
    overflow = (~zero) & (exp >= fmt.exp_max)
    man = np.where(overflow, (1 << fmt.man_bits) - 1, man)
    underflow = (~zero) & (exp < 1)
    man = np.where(zero | underflow, 0, man)
    exp = np.clip(exp, 0, fmt.exp_max - 1)
    return compose_half(sign, exp, man, fmt)
