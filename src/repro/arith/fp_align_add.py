"""fp32 addition on the shifter + accumulator path (paper Eqn 6).

In fpadd mode the DSPs stay idle: the exponent unit compares exponents, the
alignment shifter right-shifts the smaller operand's signed mantissa, and
the PSU accumulator adds.  Crucially the accumulator datapath is **48 bits
wide** (the DSP48E2/PSU width), so a 24-bit mantissa aligned by up to 24
positions keeps every shifted-out bit as a guard bit below the binary
point — alignment is exact for exponent distances <= 24 and truncates only
beyond the 48-bit window.  The normalizer (leading-zero counter) then
renormalizes the wide sum to 24 bits, truncating.

Error model (property-tested): <= 2 ulp of the result, including
catastrophic-cancellation cases (which the wide accumulator resolves
exactly before the final truncation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareContractError
from repro.formats import fp32bits
from repro.formats.fp32bits import SpecialPolicy

__all__ = [
    "aligned_add",
    "alignment_narrow_fraction",
    "MAX_ALIGN_SHIFT",
    "GUARD_BITS",
]

GUARD_BITS = 24  # fraction bits below the point in the 48-bit accumulator
MAX_ALIGN_SHIFT = 48  # the shifter saturates at the accumulator width


def alignment_narrow_fraction(x: np.ndarray, y: np.ndarray) -> float:
    """Fraction of fpadd alignments the width predictor proves narrow.

    On the fpadd path the shifted operand enters the 48-bit window at
    full 24-bit mantissa + guard width; its *post-shift* width is
    ``48 - d``, so the upper barrel-shifter stage
    (:data:`repro.hw.shifter.NARROW_ALIGN_BITS`) is provably idle exactly
    when the exponent distance ``d`` reaches the guard width.  Like the
    array-side :class:`repro.arith.bfp_matmul.AlignmentProbe`, this only
    inspects exponents — :func:`aligned_add` results are unaffected.
    """
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    _, e_x, m_x = fp32bits.decompose(x)
    _, e_y, m_y = fp32bits.decompose(y)
    live = (m_x != 0) & (m_y != 0)  # a zero operand needs no alignment
    if not live.any():
        return 1.0
    d = np.abs(e_x.astype(np.int64) - e_y.astype(np.int64))[live]
    return float((np.minimum(d, MAX_ALIGN_SHIFT) >= GUARD_BITS).mean())


def aligned_add(
    x: np.ndarray,
    y: np.ndarray,
    *,
    special_values: SpecialPolicy = "raise",
) -> np.ndarray:
    """Add float32 arrays exactly as the fpadd datapath does (vectorized)."""
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    s_x, e_x, m_x = fp32bits.decompose(x, special_values=special_values)
    s_y, e_y, m_y = fp32bits.decompose(y, special_values=special_values)
    sm_x = fp32bits.signed_mantissa(s_x, m_x)
    sm_y = fp32bits.signed_mantissa(s_y, m_y)
    e_x = e_x.astype(np.int64)
    e_y = e_y.astype(np.int64)
    # Zeros carry exponent 0; give them the other operand's exponent so the
    # alignment distance is 0 and the add is exact.
    zx = m_x == 0
    zy = m_y == 0
    e_x = np.where(zx, e_y, e_x)
    e_y = np.where(zy, e_x, e_y)

    exp = np.maximum(e_x, e_y)
    d_x = np.minimum(exp - e_x, MAX_ALIGN_SHIFT)
    d_y = np.minimum(exp - e_y, MAX_ALIGN_SHIFT)
    # 48-bit accumulator: operands enter with GUARD_BITS fraction bits, so
    # alignment keeps the shifted-out bits (exact up to the window edge).
    wide_x = (sm_x << GUARD_BITS) >> d_x  # arithmetic shift == truncation
    wide_y = (sm_y << GUARD_BITS) >> d_y
    total = wide_x + wide_y  # |total| < 2**49, exact in int64

    sign = (total < 0).astype(np.uint32)
    mag = np.abs(total)
    zero = mag == 0
    safe = np.where(zero, np.int64(1 << 23), mag)
    # Normalize the wide sum to a 24-bit mantissa (LZC + barrel shifter).
    _, e_pos = np.frexp(safe.astype(np.float64))
    msb = (e_pos - 1).astype(np.int64)
    right = np.maximum(msb - 23, 0)
    left = np.maximum(23 - msb, 0)
    man = (safe >> right) << left
    exp_out = exp + msb - (23 + GUARD_BITS)
    if (man[~zero] >= (1 << fp32bits.MAN_BITS)).any():
        raise HardwareContractError("fpadd normalizer produced a >24-bit mantissa")
    result = fp32bits.compose(
        sign,
        np.where(zero, 0, exp_out),
        np.where(zero, 0, man),
        strict=False,
    )
    overflow = (~zero) & (exp_out >= fp32bits.EXP_SPECIAL)
    if overflow.any():
        raise HardwareContractError(
            "fp32 add overflowed the exponent range (no Inf datapath)"
        )
    return result.reshape(np.broadcast_shapes(x.shape, y.shape)).astype(np.float32)
