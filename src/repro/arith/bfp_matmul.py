"""Reference semantics of bfp8 matrix multiplication (paper Eqns 2-3).

Multiplying two bfp8 blocks is an int8 matrix multiply of the mantissas plus
an int8 add of the shared exponents (Eqn 2).  Accumulating across the K
dimension of a tiled matmul requires *alignment*: the partial block with the
smaller exponent is right-shifted (truncating) before the integer add
(Eqn 3), exactly what the per-column shifter + PSU accumulator do in
hardware.

This module is the numerical oracle for the cycle-level simulator in
``repro.hw`` and the fast path for model emulation in ``repro.models``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, HardwareContractError
from repro.formats.bfp8 import BfpBlock, quantize_tiles
from repro.formats.blocking import BfpMatrix
from repro.formats.rounding import shift_right

__all__ = [
    "WideBlock",
    "PSU_WIDTH",
    "block_matmul",
    "accumulate",
    "requantize_wide",
    "bfp_matmul_dense",
    "bfp_matmul",
    "bfp_matmul_emulate",
]

PSU_WIDTH = 48  # DSP48E2 accumulator / PSU buffer word width


@dataclass(frozen=True)
class WideBlock:
    """A partial-sum block in the PSU domain: wide mantissas + exponent.

    ``mantissas`` are int64 values guaranteed (by contract checks) to fit the
    48-bit PSU; ``exponent`` is the shared block exponent of the partial sum.
    """

    mantissas: np.ndarray
    exponent: int

    def __post_init__(self) -> None:
        man = np.asarray(self.mantissas, dtype=np.int64)
        limit = np.int64(1) << (PSU_WIDTH - 1)
        if man.size and (man.min() < -limit or man.max() >= limit):
            raise HardwareContractError("mantissa exceeds the 48-bit PSU width")
        object.__setattr__(self, "mantissas", man)
        object.__setattr__(self, "exponent", int(self.exponent))

    def decode(self) -> np.ndarray:
        return self.mantissas.astype(np.float64) * np.ldexp(1.0, self.exponent)


def block_matmul(x: BfpBlock, y: BfpBlock) -> WideBlock:
    """Multiply two bfp8 blocks (Eqn 2): int mantissa matmul, exponent add."""
    if x.shape[1] != y.shape[0]:
        raise ConfigurationError(
            f"inner dimensions disagree: {x.shape} @ {y.shape}"
        )
    man = x.mantissas.astype(np.int64) @ y.mantissas.astype(np.int64)
    return WideBlock(man, x.exponent + y.exponent)


def accumulate(psu: WideBlock | None, incoming: WideBlock) -> WideBlock:
    """Aligned accumulation of partial blocks (Eqn 3).

    The operand with the smaller exponent is truncating-right-shifted so both
    share the larger exponent, then added.  ``psu is None`` models an empty
    PSU buffer (first partial block of a tile row).
    """
    if psu is None:
        return incoming
    if psu.exponent >= incoming.exponent:
        d = psu.exponent - incoming.exponent
        man = psu.mantissas + shift_right(incoming.mantissas, d, "truncate")
        exp = psu.exponent
    else:
        d = incoming.exponent - psu.exponent
        man = incoming.mantissas + shift_right(psu.mantissas, d, "truncate")
        exp = incoming.exponent
    return WideBlock(man, exp)


def requantize_wide(wide: WideBlock) -> BfpBlock:
    """Hardware output quantizer: renormalize a PSU block back to bfp8.

    Finds the smallest shift that brings every mantissa into [-127, 127]
    (nearest-even on the discarded bits, with a one-step bump if rounding
    overflows), and adds the shift to the exponent.
    """
    man = wide.mantissas
    amax = int(np.abs(man).max()) if man.size else 0
    shift = 0
    while (amax >> shift) > 127:
        shift += 1
    out = shift_right(man, shift, "nearest_even")
    if out.size and int(np.abs(out).max()) > 127:
        shift += 1
        out = shift_right(man, shift, "nearest_even")
    exp = wide.exponent + shift
    if exp > 127:
        raise HardwareContractError(
            f"requantized block exponent {exp} exceeds the 8-bit field"
        )
    if exp < -128:
        # Value too small for the exponent field: shift mantissas right to
        # raise the exponent to the representable minimum (precision loss).
        out = shift_right(out, -128 - exp, "nearest_even")
        exp = -128
    return BfpBlock(np.clip(out, -127, 127).astype(np.int8), exp)


def bfp_matmul_dense(a: BfpMatrix, b: BfpMatrix) -> np.ndarray:
    """Tiled bfp8 matmul returning the dequantized dense result (float64).

    Faithful to hardware accumulation order (K blocks in ascending order,
    truncating alignment at each step).
    """
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    rb, kb = a.block_grid
    kb2, cb = b.block_grid
    if kb != kb2:
        raise ConfigurationError("block grids disagree on the inner dimension")
    r, _ = a.block_shape
    _, c = b.block_shape
    out = np.zeros((rb * r, cb * c), dtype=np.float64)
    for bi in range(rb):
        for bj in range(cb):
            psu: WideBlock | None = None
            for bk in range(kb):
                prod = block_matmul(a.block(bi, bk), b.block(bk, bj))
                psu = accumulate(psu, prod)
            assert psu is not None
            out[bi * r : (bi + 1) * r, bj * c : (bj + 1) * c] = psu.decode()
    return out[: a.shape[0], : b.shape[1]]


def bfp_matmul(a: BfpMatrix, b: BfpMatrix) -> BfpMatrix:
    """Tiled bfp8 matmul with hardware output requantization to bfp8."""
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    rb, kb = a.block_grid
    _, cb = b.block_grid
    r, _ = a.block_shape
    _, c = b.block_shape
    man = np.zeros((rb, cb, r, c), dtype=np.int16)
    exps = np.zeros((rb, cb), dtype=np.int16)
    for bi in range(rb):
        for bj in range(cb):
            psu: WideBlock | None = None
            for bk in range(kb):
                psu = accumulate(psu, block_matmul(a.block(bi, bk), b.block(bk, bj)))
            assert psu is not None
            q = requantize_wide(psu)
            man[bi, bj] = q.mantissas
            exps[bi, bj] = q.exponent
    return BfpMatrix(man, exps, (a.shape[0], b.shape[1]))


def bfp_matmul_emulate(
    a: np.ndarray,
    b: np.ndarray,
    *,
    exact_accumulate: bool = False,
    man_bits: int = 8,
) -> np.ndarray:
    """Fast vectorized emulation of bfp8 matmul on dense fp inputs.

    Quantizes both operands to 8x8 bfp8 tiles and multiplies with the same
    aligned-truncating accumulation as the hardware, vectorized over the
    whole output block grid (the K loop runs in Python, everything else in
    NumPy).  With ``exact_accumulate=True`` the truncating alignment is
    replaced by exact float64 accumulation — useful to isolate how much error
    the alignment truncation itself contributes.

    This is the workhorse of the Transformer accuracy experiments: a
    DeiT-Small layer is thousands of blocks, far too many for the per-block
    oracle above.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"bad matmul shapes: {a.shape} @ {b.shape}")
    am = BfpMatrix.from_dense(a, man_bits=man_bits)
    bm = BfpMatrix.from_dense(b, man_bits=man_bits)
    a_man = am.mantissas.astype(np.int64)  # (Rb, Kb, 8, 8)
    b_man = bm.mantissas.astype(np.int64)  # (Kb, Cb, 8, 8)
    a_exp = am.exponents.astype(np.int64)
    b_exp = bm.exponents.astype(np.int64)
    rb, kb = a_man.shape[:2]
    cb = b_man.shape[1]
    r, c = a_man.shape[2], b_man.shape[3]

    if exact_accumulate:
        acc = np.zeros((rb, cb, r, c), dtype=np.float64)
        for bk in range(kb):
            prod = np.einsum("iab,jbc->ijac", a_man[:, bk], b_man[bk])
            e = a_exp[:, bk, None] + b_exp[None, bk, :]
            acc += prod * np.exp2(e)[..., None, None]
        dense = acc.swapaxes(1, 2).reshape(rb * r, cb * c)
        return dense[: a.shape[0], : b.shape[1]]

    psu_man = np.zeros((rb, cb, r, c), dtype=np.int64)
    psu_exp = np.full((rb, cb), np.iinfo(np.int32).min, dtype=np.int64)
    for bk in range(kb):
        prod = np.einsum("iab,jbc->ijac", a_man[:, bk], b_man[bk])
        e = a_exp[:, bk, None] + b_exp[None, bk, :]
        first = bk == 0
        if first:
            psu_man, psu_exp = prod, e.copy()
            continue
        keep_psu = psu_exp >= e
        d = np.abs(psu_exp - e)
        shifted_new = shift_right(prod, d[..., None, None], "truncate")
        shifted_old = shift_right(psu_man, d[..., None, None], "truncate")
        psu_man = np.where(
            keep_psu[..., None, None], psu_man + shifted_new, prod + shifted_old
        )
        psu_exp = np.maximum(psu_exp, e)
    limit = np.int64(1) << (PSU_WIDTH - 1)
    if psu_man.size and (psu_man.min() < -limit or psu_man.max() >= limit):
        raise HardwareContractError("emulated PSU overflowed 48 bits")
    dense = (psu_man.astype(np.float64) * np.exp2(psu_exp.astype(np.float64))[..., None, None])
    dense = dense.swapaxes(1, 2).reshape(rb * r, cb * c)
    return dense[: a.shape[0], : b.shape[1]]
