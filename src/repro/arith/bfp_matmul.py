"""Reference semantics of bfp8 matrix multiplication (paper Eqns 2-3).

Multiplying two bfp8 blocks is an int8 matrix multiply of the mantissas plus
an int8 add of the shared exponents (Eqn 2).  Accumulating across the K
dimension of a tiled matmul requires *alignment*: the partial block with the
smaller exponent is right-shifted (truncating) before the integer add
(Eqn 3), exactly what the per-column shifter + PSU accumulator do in
hardware.

This module is the numerical oracle for the cycle-level simulator in
``repro.hw`` and the fast path for model emulation in ``repro.models``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, HardwareContractError
from repro.formats.bfp8 import BLOCK_COLS, BLOCK_ROWS, BfpBlock, quantize_tiles
from repro.formats.blocking import BfpMatrix
from repro.formats.rounding import shift_right

__all__ = [
    "WideBlock",
    "BfpWeight",
    "PSU_WIDTH",
    "AlignmentProbe",
    "set_alignment_probe",
    "get_alignment_probe",
    "block_matmul",
    "accumulate",
    "requantize_wide",
    "bfp_matmul_dense",
    "bfp_matmul",
    "bfp_matmul_emulate",
    "bfp_matmul_prepared",
    "bfp_matmul_emulate_batched",
    "bfp_batched_tiles",
    "bfp_matmul_from_tiles",
    "activation_blocks",
]

PSU_WIDTH = 48  # DSP48E2 accumulator / PSU buffer word width


@dataclass
class AlignmentProbe:
    """Observer for the shift-aware aligned-width predictor (extension).

    While attached (:func:`set_alignment_probe`), every sequential PSU
    alignment step inside :func:`_emulate_blocks` also runs the exponent
    unit's magnitude-bound predictor
    (:func:`repro.hw.exponent_unit.predict_aligned_bound` semantics,
    vectorized) and cross-checks it against the emulated mantissas.  The
    probe only *observes* — results are bit-identical with or without it —
    so a zero ``under_predictions`` count is a machine-checked proof that
    bypassing the upper shifter stage on predicted-narrow steps
    (:func:`repro.hw.shifter.alignment_shift_cycles`) loses nothing.
    ``narrow_frac`` is the measured input to the cost model's
    ``align_narrow_frac`` knob.
    """

    narrow_bits: int | None = None  # default: repro.hw.shifter.NARROW_ALIGN_BITS
    steps: int = 0
    narrow_steps: int = 0
    under_predictions: int = 0
    max_predicted_width: int = 0
    max_actual_width: int = 0

    def __post_init__(self) -> None:
        if self.narrow_bits is None:
            from repro.hw.shifter import NARROW_ALIGN_BITS

            self.narrow_bits = NARROW_ALIGN_BITS

    @property
    def narrow_frac(self) -> float:
        return self.narrow_steps / self.steps if self.steps else 0.0

    def observe(self, bounds: np.ndarray, actual_mags: np.ndarray) -> None:
        """Fold one alignment step's predicted bounds + actual magnitudes."""
        bounds = np.asarray(bounds, dtype=np.int64)
        actual = np.asarray(actual_mags, dtype=np.int64)
        self.steps += int(bounds.size)
        self.narrow_steps += int(
            (bounds < (np.int64(1) << self.narrow_bits)).sum()
        )
        self.under_predictions += int((actual > bounds).sum())
        # frexp's exponent is the bit length (exact: bounds stay far
        # below 2**53).
        if bounds.size:
            self.max_predicted_width = max(
                self.max_predicted_width,
                int(np.frexp(bounds.astype(np.float64))[1].max()),
            )
            self.max_actual_width = max(
                self.max_actual_width,
                int(np.frexp(actual.astype(np.float64))[1].max()),
            )

    def as_dict(self) -> dict:
        return {
            "steps": self.steps,
            "narrow_steps": self.narrow_steps,
            "narrow_frac": self.narrow_frac,
            "under_predictions": self.under_predictions,
            "max_predicted_width": self.max_predicted_width,
            "max_actual_width": self.max_actual_width,
            "narrow_bits": self.narrow_bits,
        }


_ALIGN_PROBE: AlignmentProbe | None = None


def set_alignment_probe(
    probe: AlignmentProbe | None,
) -> AlignmentProbe | None:
    """Attach (or detach with ``None``) the alignment probe; returns the
    previous one.  The emulation hot path pays one ``is None`` check per
    call plus one per alignment step when detached."""
    global _ALIGN_PROBE
    previous = _ALIGN_PROBE
    _ALIGN_PROBE = probe
    return previous


def get_alignment_probe() -> AlignmentProbe | None:
    return _ALIGN_PROBE


@dataclass(frozen=True)
class WideBlock:
    """A partial-sum block in the PSU domain: wide mantissas + exponent.

    ``mantissas`` are int64 values guaranteed (by contract checks) to fit the
    48-bit PSU; ``exponent`` is the shared block exponent of the partial sum.
    """

    mantissas: np.ndarray
    exponent: int

    def __post_init__(self) -> None:
        man = np.asarray(self.mantissas, dtype=np.int64)
        limit = np.int64(1) << (PSU_WIDTH - 1)
        if man.size and (man.min() < -limit or man.max() >= limit):
            raise HardwareContractError("mantissa exceeds the 48-bit PSU width")
        object.__setattr__(self, "mantissas", man)
        object.__setattr__(self, "exponent", int(self.exponent))

    def decode(self) -> np.ndarray:
        return self.mantissas.astype(np.float64) * np.ldexp(1.0, self.exponent)


def block_matmul(x: BfpBlock, y: BfpBlock) -> WideBlock:
    """Multiply two bfp8 blocks (Eqn 2): int mantissa matmul, exponent add."""
    if x.shape[1] != y.shape[0]:
        raise ConfigurationError(
            f"inner dimensions disagree: {x.shape} @ {y.shape}"
        )
    man = x.mantissas.astype(np.int64) @ y.mantissas.astype(np.int64)
    return WideBlock(man, x.exponent + y.exponent)


def accumulate(psu: WideBlock | None, incoming: WideBlock) -> WideBlock:
    """Aligned accumulation of partial blocks (Eqn 3).

    The operand with the smaller exponent is truncating-right-shifted so both
    share the larger exponent, then added.  ``psu is None`` models an empty
    PSU buffer (first partial block of a tile row).
    """
    if psu is None:
        return incoming
    if psu.exponent >= incoming.exponent:
        d = psu.exponent - incoming.exponent
        man = psu.mantissas + shift_right(incoming.mantissas, d, "truncate")
        exp = psu.exponent
    else:
        d = incoming.exponent - psu.exponent
        man = incoming.mantissas + shift_right(psu.mantissas, d, "truncate")
        exp = incoming.exponent
    return WideBlock(man, exp)


def requantize_wide(wide: WideBlock) -> BfpBlock:
    """Hardware output quantizer: renormalize a PSU block back to bfp8.

    Finds the smallest shift that brings every mantissa into [-127, 127]
    (nearest-even on the discarded bits, with a one-step bump if rounding
    overflows), and adds the shift to the exponent.
    """
    man = wide.mantissas
    amax = int(np.abs(man).max()) if man.size else 0
    shift = 0
    while (amax >> shift) > 127:
        shift += 1
    out = shift_right(man, shift, "nearest_even")
    if out.size and int(np.abs(out).max()) > 127:
        shift += 1
        out = shift_right(man, shift, "nearest_even")
    exp = wide.exponent + shift
    if exp > 127:
        raise HardwareContractError(
            f"requantized block exponent {exp} exceeds the 8-bit field"
        )
    if exp < -128:
        # Value too small for the exponent field: shift mantissas right to
        # raise the exponent to the representable minimum (precision loss).
        out = shift_right(out, -128 - exp, "nearest_even")
        exp = -128
    return BfpBlock(np.clip(out, -127, 127).astype(np.int8), exp)


def bfp_matmul_dense(a: BfpMatrix, b: BfpMatrix) -> np.ndarray:
    """Tiled bfp8 matmul returning the dequantized dense result (float64).

    Faithful to hardware accumulation order (K blocks in ascending order,
    truncating alignment at each step).
    """
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    rb, kb = a.block_grid
    kb2, cb = b.block_grid
    if kb != kb2:
        raise ConfigurationError("block grids disagree on the inner dimension")
    r, _ = a.block_shape
    _, c = b.block_shape
    out = np.zeros((rb * r, cb * c), dtype=np.float64)
    for bi in range(rb):
        for bj in range(cb):
            psu: WideBlock | None = None
            for bk in range(kb):
                prod = block_matmul(a.block(bi, bk), b.block(bk, bj))
                psu = accumulate(psu, prod)
            assert psu is not None
            out[bi * r : (bi + 1) * r, bj * c : (bj + 1) * c] = psu.decode()
    return out[: a.shape[0], : b.shape[1]]


def bfp_matmul(a: BfpMatrix, b: BfpMatrix) -> BfpMatrix:
    """Tiled bfp8 matmul with hardware output requantization to bfp8."""
    if a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    rb, kb = a.block_grid
    _, cb = b.block_grid
    r, _ = a.block_shape
    _, c = b.block_shape
    man = np.zeros((rb, cb, r, c), dtype=np.int16)
    exps = np.zeros((rb, cb), dtype=np.int16)
    for bi in range(rb):
        for bj in range(cb):
            psu: WideBlock | None = None
            for bk in range(kb):
                psu = accumulate(psu, block_matmul(a.block(bi, bk), b.block(bk, bj)))
            assert psu is not None
            q = requantize_wide(psu)
            man[bi, bj] = q.mantissas
            exps[bi, bj] = q.exponent
    return BfpMatrix(man, exps, (a.shape[0], b.shape[1]))


def _flatten_cols(b_man: np.ndarray) -> np.ndarray:
    """Right-operand mantissas ``(..., Kb, Cb, h, c)`` -> ``(..., Kb, h, Cb*c)``.

    The column-flattened int64 layout the emulation core multiplies
    against: all Cb column blocks of one K block form a single matmul
    operand, so the mantissa product is one gufunc slice per (K block,
    row block) instead of one per output block.
    """
    kb, cb, h, c = b_man.shape[-4:]
    return np.ascontiguousarray(
        b_man.astype(np.int64).swapaxes(-2, -3)
    ).reshape(*b_man.shape[:-4], kb, h, cb * c)


@dataclass(frozen=True)
class BfpWeight:
    """A quantized right-hand operand in matmul-ready layout.

    Built once per weight (prepare time): the :class:`BfpMatrix`
    mantissas widened to int64 and column-flattened to ``(Kb, h, Cb*c)``
    so the emulation's mantissa product needs no per-call cast or
    re-layout — the per-call work the Y-stationary hardware also never
    repeats.
    """

    matrix: BfpMatrix
    man64: np.ndarray  # (Kb, h, Cb*c) int64
    exp64: np.ndarray  # (Kb, Cb) int64

    @classmethod
    def from_matrix(cls, bm: BfpMatrix) -> "BfpWeight":
        return cls(
            bm, _flatten_cols(bm.mantissas), bm.exponents.astype(np.int64)
        )

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def block_shape(self) -> tuple[int, int]:
        return self.matrix.block_shape

    def to_dense(self) -> np.ndarray:
        return self.matrix.to_dense()


def activation_blocks(a: np.ndarray, *, man_bits: int = 8) -> BfpMatrix:
    """Block-quantize an activation matrix with trimmed block rows.

    A decode-step activation is a single row; padding it to the full 8-row
    tile makes the mantissa matmul do 8x the useful work on zeros.  For
    matrices shorter than one tile this uses ``M``-row blocks instead —
    *bit-identical* to the padded encoding, because padded rows are zero:
    they leave the shared exponent unchanged (it is chosen from the tile's
    max magnitude) and contribute zero products to every partial sum.
    """
    a = np.asarray(a, dtype=np.float64)
    rows = BLOCK_ROWS if a.shape[0] >= BLOCK_ROWS else max(1, a.shape[0])
    return BfpMatrix.from_dense(a, rows=rows, man_bits=man_bits)


def _tile_batch(
    x: np.ndarray, rows: int, cols: int, *, man_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a ``(..., M, K)`` stack into ``(..., Mb, Kb, rows, cols)``."""
    lead = x.shape[:-2]
    m, k = x.shape[-2:]
    pm, pk = (-m) % rows, (-k) % cols
    if pm or pk:
        x = np.pad(x, [(0, 0)] * len(lead) + [(0, pm), (0, pk)])
    tiles = x.reshape(
        *lead, (m + pm) // rows, rows, (k + pk) // cols, cols
    ).swapaxes(-3, -2)
    return quantize_tiles(tiles, man_bits=man_bits)


def _emulate_blocks(
    a_man: np.ndarray,
    a_exp: np.ndarray,
    b_flat: np.ndarray,
    b_exp: np.ndarray,
    *,
    exact_accumulate: bool,
) -> np.ndarray:
    """Block-grid matmul core shared by all emulation entry points.

    ``a_man``: ``(..., Rb, Kb, r, h)`` block-grid mantissas; ``b_flat``:
    ``(..., Kb, h, Cb*c)`` — the right operand widened to int64 and
    column-flattened (a :class:`BfpWeight`'s resident layout, see
    :func:`_flatten_cols`); ``b_exp``: ``(..., Kb, Cb)``.  Leading batch
    dimensions are optional and broadcast-compatible.  Returns the dense
    padded result ``(..., Rb*r, Cb*c)`` in float64.

    The sequential-truncation path keeps the per-K-block Python loop — the
    running PSU exponent makes each alignment depend on the previous step,
    exactly as in hardware.  The exact-accumulate path has no such
    dependency and contracts every K block in a single einsum.
    """
    a_man = np.asarray(a_man, dtype=np.int64)
    a_exp = np.asarray(a_exp, dtype=np.int64)
    b_flat = np.asarray(b_flat, dtype=np.int64)
    b_exp = np.asarray(b_exp, dtype=np.int64)
    rb, kb, r = a_man.shape[-4], a_man.shape[-3], a_man.shape[-2]
    cb = b_exp.shape[-1]
    nc = b_flat.shape[-1]
    lead = np.broadcast_shapes(a_man.shape[:-4], b_flat.shape[:-3])
    if kb == 0 or cb == 0:
        return np.zeros((*lead, rb * r, nc), dtype=np.float64)
    c = nc // cb
    a_sw = a_man.swapaxes(-4, -3)  # (..., Kb, Rb, r, h)

    if exact_accumulate:
        sa = a_sw * np.exp2(a_exp.swapaxes(-2, -1))[..., None, None]
        sb = b_flat * np.exp2(np.repeat(b_exp, c, axis=-1))[..., None, :]
        acc = np.einsum("...kiab,...kbn->...ian", sa, sb)
        return acc.reshape(*lead, rb * r, nc)

    # Mantissa products are independent of accumulation order, so compute
    # them for every K block in one batched matmul up front — one gufunc
    # slice per (K block, row block) thanks to the flat column layout;
    # only the truncating alignment chain below is inherently sequential.
    prods = np.matmul(
        a_sw,  # (..., Kb, Rb, r, h)
        b_flat[..., :, None, :, :],  # (..., Kb, 1, h, Cb*c)
    )  # (..., Kb, Rb, r, Cb*c)
    exps = a_exp.swapaxes(-2, -1)[..., None] + b_exp[..., None, :]
    # (..., Kb, Rb, Cb)

    # The PSU exponent after block k is the prefix max of the product
    # exponents, so every alignment decision (who shifts, by how much) is
    # known up front; only the truncating integer adds are sequential.
    # A clamp at 63 preserves shift_right's >=63 saturation for the
    # truncate mode (an arithmetic ``x >> 63`` is already the sign).
    run = np.maximum.accumulate(exps, axis=-3)
    keeps = run[..., :-1, :, :] >= exps[..., 1:, :, :]
    ds = np.minimum(np.abs(run[..., :-1, :, :] - exps[..., 1:, :, :]), 63)
    # Per-step "is every PSU keeping its exponent" flags, reduced once up
    # front: a True step needs no branch select in the loop below.
    kb_axis = keeps.ndim - 3
    uniform = keeps.all(axis=tuple(i for i in range(keeps.ndim) if i != kb_axis))

    probe = _ALIGN_PROBE
    if probe is not None:
        # Format-level magnitude bound on one product block: ``h`` MACs of
        # the operands' largest mantissa codes — the constant a hardware
        # exponent unit derives from the format alone.
        h = a_man.shape[-1]
        m_a = int(np.abs(a_man).max()) if a_man.size else 0
        m_b = int(np.abs(b_flat).max()) if b_flat.size else 0
        w0_bound = np.int64(h * m_a * m_b)
        pred_bound = np.full_like(exps[..., 0, :, :], w0_bound)

    pv = prods.reshape(*prods.shape[:-1], cb, c)  # (..., Kb, Rb, r, Cb, c)
    psu_man = pv[..., 0, :, :, :, :]  # (..., Rb, r, Cb, c)
    for bk in range(1, kb):
        prod = pv[..., bk, :, :, :, :]
        d = ds[..., bk - 1, :, None, :, None]
        if uniform[bk - 1]:
            psu_man = psu_man + (prod >> d)
        else:
            psu_man = np.where(
                keeps[..., bk - 1, :, None, :, None],
                psu_man + (prod >> d),
                prod + (psu_man >> d),
            )
        if probe is not None:
            # Predictor update mirrors predict_aligned_bound(): the
            # shifted side's bound gains +1 (truncation of a negative
            # value can round its magnitude up), then the sides add.
            d_s = ds[..., bk - 1, :, :]
            k_s = keeps[..., bk - 1, :, :]
            nz = (d_s > 0).astype(np.int64)
            pred_bound = np.where(
                k_s,
                pred_bound + (w0_bound >> d_s) + nz,
                (pred_bound >> d_s) + nz + w0_bound,
            )
            probe.observe(pred_bound, np.abs(psu_man).max(axis=(-3, -1)))
    limit = np.int64(1) << (PSU_WIDTH - 1)
    if psu_man.size and (psu_man.min() < -limit or psu_man.max() >= limit):
        raise HardwareContractError("emulated PSU overflowed 48 bits")
    dense = psu_man.astype(np.float64) * np.exp2(
        run[..., -1, :, :].astype(np.float64)
    )[..., :, None, :, None]
    return dense.reshape(*lead, rb * r, nc)


def bfp_matmul_prepared(
    am: BfpMatrix,
    bm: BfpMatrix | BfpWeight,
    *,
    exact_accumulate: bool = False,
) -> np.ndarray:
    """Emulated bfp matmul of two *already quantized* operands.

    This is the hot-path entry point for the prepared-operand cache
    (:mod:`repro.perf.prepared`): a weight quantized once — ideally as a
    :class:`BfpWeight`, whose matmul-ready layout is also precomputed —
    can be multiplied against any number of activation encodings without
    paying its quantization again, the emulation analogue of
    Y-stationary weight residency.  The operands' inner block edges must
    agree; the activation's row-block height may be trimmed (see
    :func:`activation_blocks`).
    """
    if am.shape[1] != bm.shape[0]:
        raise ConfigurationError(
            f"inner dimensions disagree: {am.shape} @ {bm.shape}"
        )
    if am.block_shape[1] != bm.block_shape[0]:
        raise ConfigurationError(
            "inner block edges disagree: "
            f"{am.block_shape} @ {bm.block_shape}"
        )
    bw = bm if isinstance(bm, BfpWeight) else BfpWeight.from_matrix(bm)
    dense = _emulate_blocks(
        am.mantissas, am.exponents, bw.man64, bw.exp64,
        exact_accumulate=exact_accumulate,
    )
    return dense[: am.shape[0], : bm.shape[1]]


def bfp_matmul_emulate(
    a: np.ndarray,
    b: np.ndarray,
    *,
    exact_accumulate: bool = False,
    man_bits: int = 8,
) -> np.ndarray:
    """Fast vectorized emulation of bfp8 matmul on dense fp inputs.

    Quantizes both operands to bfp tiles and multiplies with the same
    aligned-truncating accumulation as the hardware, vectorized over the
    whole output block grid.  A thin wrapper over
    :func:`bfp_matmul_prepared`; pre-quantized operands (cached weights)
    enter there directly.  With ``exact_accumulate=True`` the truncating
    alignment is replaced by exact float64 accumulation (one einsum over
    all K blocks) — useful to isolate how much error the alignment
    truncation itself contributes.

    This is the workhorse of the Transformer accuracy experiments: a
    DeiT-Small layer is thousands of blocks, far too many for the
    per-block oracle above.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ConfigurationError(f"bad matmul shapes: {a.shape} @ {b.shape}")
    am = activation_blocks(a, man_bits=man_bits)
    bm = BfpMatrix.from_dense(b, man_bits=man_bits)
    return bfp_matmul_prepared(am, bm, exact_accumulate=exact_accumulate)


def bfp_matmul_emulate_batched(
    a: np.ndarray,
    b: np.ndarray,
    *,
    exact_accumulate: bool = False,
    man_bits: int = 8,
) -> np.ndarray:
    """Batched bfp matmul emulation: ``(B, M, K) @ (B, K, N) -> (B, M, N)``.

    One fused kernel for a stack of independent 2-D matmuls — the compute
    shape of per-head attention and of batched decode steps.  Block
    quantization, the mantissa einsum, and the aligned-truncating PSU
    accumulation are all vectorized over the batch axis; each slice's
    result is bit-identical to :func:`bfp_matmul_emulate` on that slice,
    because quantization grids and alignment decisions are per-block and
    blocks never span slices.
    """
    tiles = bfp_batched_tiles(a, b, man_bits=man_bits)
    return bfp_matmul_from_tiles(*tiles, exact_accumulate=exact_accumulate)


def bfp_batched_tiles(
    a: np.ndarray, b: np.ndarray, *, man_bits: int = 8
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Quantize both operands of a batched matmul to block-grid tiles.

    Returns ``(a_man, a_exp, b_man, b_exp, m, n)`` — the split exists so
    callers that also *observe* the quantization (the numerics monitor)
    can inspect the tiles without quantizing twice; the pair
    (:func:`bfp_batched_tiles`, :func:`bfp_matmul_from_tiles`) composes
    to exactly :func:`bfp_matmul_emulate_batched`.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 3 or b.ndim != 3 or a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise ConfigurationError(f"bad batched matmul shapes: {a.shape} @ {b.shape}")
    m, n = a.shape[1], b.shape[2]
    rows = BLOCK_ROWS if m >= BLOCK_ROWS else max(1, m)
    a_man, a_exp = _tile_batch(a, rows, BLOCK_COLS, man_bits=man_bits)
    b_man, b_exp = _tile_batch(b, BLOCK_ROWS, BLOCK_COLS, man_bits=man_bits)
    return a_man, a_exp, b_man, b_exp, m, n


def bfp_matmul_from_tiles(
    a_man: np.ndarray,
    a_exp: np.ndarray,
    b_man: np.ndarray,
    b_exp: np.ndarray,
    m: int,
    n: int,
    *,
    exact_accumulate: bool = False,
) -> np.ndarray:
    """Finish a batched emulated matmul from pre-quantized tiles."""
    dense = _emulate_blocks(
        a_man, a_exp, _flatten_cols(b_man), b_exp,
        exact_accumulate=exact_accumulate,
    )
    return dense[:, :m, :n]
