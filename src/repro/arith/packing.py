"""Combined-MAC packing: two 8-bit MACs per DSP48E2 (paper Fig. 3).

The bfp8 MatMul mode keeps *two* Y blocks resident and multiplies each
streamed X mantissa against both in a single DSP48E2 by packing the two Y
values into one wide operand::

    packed = y_hi * 2**18 + y_lo          (fits the 27-bit A:D pre-adder path)
    x * packed = (x * y_hi) << 18 + (x * y_lo)

Accumulating such products down a column keeps the two running sums in
disjoint fields as long as the low sum stays within +/-2**17.  With
mantissas clamped to [-127, 127] (see ``repro.formats.bfp8``) the worst case
after ``n`` accumulations is ``n * 127**2``; for the paper's 8-row array
``8 * 127**2 = 129032 < 2**17 = 131072`` — this is the "cleverly circumvent
such overflow problems" argument of Section II-B, and the reason the
quantizer never emits -128 (``8 * 128**2`` would be exactly 2**17 and corrupt
the high field).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareContractError

__all__ = [
    "PACK_SHIFT",
    "LOW_FIELD_BITS",
    "pack_pair",
    "unpack_accumulator",
    "max_safe_terms",
    "check_accumulation_contract",
]

PACK_SHIFT = 18  # field offset chosen to fit the DSP48E2 27-bit port
LOW_FIELD_BITS = PACK_SHIFT
_LOW_MASK = (np.int64(1) << PACK_SHIFT) - 1
_LOW_SIGN = np.int64(1) << (PACK_SHIFT - 1)
_A_PORT_MAX = (1 << 26) - 1  # 27-bit signed operand magnitude bound


def pack_pair(y_hi: np.ndarray, y_lo: np.ndarray) -> np.ndarray:
    """Pack two int8 mantissas into one DSP operand.

    Raises :class:`HardwareContractError` if the packed value would not fit
    the 27-bit DSP48E2 port.
    """
    y_hi = np.asarray(y_hi, dtype=np.int64)
    y_lo = np.asarray(y_lo, dtype=np.int64)
    for name, v in (("y_hi", y_hi), ("y_lo", y_lo)):
        if v.size and (v.min() < -128 or v.max() > 127):
            raise HardwareContractError(f"{name} outside int8 range")
    packed = (y_hi << PACK_SHIFT) + y_lo
    if packed.size and (packed.min() < -_A_PORT_MAX - 1 or packed.max() > _A_PORT_MAX):
        raise HardwareContractError("packed operand exceeds the 27-bit DSP port")
    return packed


def unpack_accumulator(
    acc: np.ndarray, n_terms: int, man_max: int = 127
) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed accumulator into ``(sum_hi, sum_lo)``.

    ``n_terms`` and ``man_max`` describe the accumulation that produced
    ``acc``; they are used to *prove* the low field cannot have overflowed
    (the hardware has no way to detect it after the fact).
    """
    check_accumulation_contract(n_terms, man_max)
    acc = np.asarray(acc, dtype=np.int64)
    low = acc & _LOW_MASK
    low = np.where(low & _LOW_SIGN, low - (np.int64(1) << PACK_SHIFT), low)
    high = (acc - low) >> PACK_SHIFT
    return high, low


def max_safe_terms(man_max: int = 127) -> int:
    """Largest accumulation depth that keeps the low field unambiguous."""
    if man_max <= 0:
        raise ValueError("man_max must be positive")
    return ((1 << (PACK_SHIFT - 1)) - 1) // (man_max * man_max)


def check_accumulation_contract(n_terms: int, man_max: int = 127) -> None:
    """Raise unless ``n_terms`` products of ``|m| <= man_max`` are field-safe."""
    if n_terms < 0:
        raise ValueError("n_terms must be non-negative")
    if n_terms * man_max * man_max >= (1 << (PACK_SHIFT - 1)):
        raise HardwareContractError(
            f"{n_terms} accumulations of |man| <= {man_max} products can "
            f"overflow the packed low field (limit {max_safe_terms(man_max)})"
        )
