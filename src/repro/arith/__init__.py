"""Bit-faithful arithmetic: bfp8 matmul, sliced fp32 mul/add, MAC packing."""

from repro.arith.bfp_matmul import (
    PSU_WIDTH,
    WideBlock,
    accumulate,
    bfp_matmul,
    bfp_matmul_dense,
    bfp_matmul_emulate,
    block_matmul,
    requantize_wide,
)
from repro.arith.fp_align_add import MAX_ALIGN_SHIFT, aligned_add
from repro.arith.fp_sliced import (
    FP32_MUL_TERMS,
    PartialProductTerm,
    accumulator_value,
    sliced_multiply,
    split_preshift,
)
from repro.arith.fp_sliced_half import (
    half_lane_count,
    half_rows_per_result,
    sliced_multiply_half,
)
from repro.arith.packing import (
    LOW_FIELD_BITS,
    PACK_SHIFT,
    check_accumulation_contract,
    max_safe_terms,
    pack_pair,
    unpack_accumulator,
)

__all__ = [
    "FP32_MUL_TERMS",
    "LOW_FIELD_BITS",
    "MAX_ALIGN_SHIFT",
    "PACK_SHIFT",
    "PSU_WIDTH",
    "PartialProductTerm",
    "WideBlock",
    "accumulate",
    "accumulator_value",
    "aligned_add",
    "bfp_matmul",
    "bfp_matmul_dense",
    "bfp_matmul_emulate",
    "block_matmul",
    "check_accumulation_contract",
    "max_safe_terms",
    "pack_pair",
    "requantize_wide",
    "sliced_multiply",
    "sliced_multiply_half",
    "half_lane_count",
    "half_rows_per_result",
    "split_preshift",
    "unpack_accumulator",
]
