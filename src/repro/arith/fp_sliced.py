"""fp32 multiplication on the int8 array via mantissa slicing (paper Eqn 5).

The 24-bit magnitude mantissa of each operand is cut into three 8-bit slices
``man(i) = man[8i+7 : 8i]``; the full product is the sum of nine partial
products ``man_x(i) * man_y(j) << 8(i+j)``.  To fit the 8-row PE array the
least significant partial product ``(0, 0)`` is **omitted** (Section II-D),
and the remaining eight are *pre-shifted at the inputs* (rather than
post-shifted) so the DSP48E2 cascade can accumulate them directly; the
common factor of ``2**8`` is carried implicitly (the accumulator therefore
holds ``(product - x0*y0) / 2**8`` exactly).

Error model (property-tested): omitting ``x0*y0`` perturbs the product by
less than ``2**16`` out of at least ``2**46``, i.e. relative error below
``2**-30``; normalization then truncates to 24 bits (<= 1 ulp).  Sign bits
are combined by the XOR gate; exponents by the exponent unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, HardwareContractError
from repro.formats import fp32bits
from repro.formats.fp32bits import SpecialPolicy

__all__ = [
    "PartialProductTerm",
    "FP32_MUL_TERMS",
    "split_preshift",
    "sliced_multiply",
    "accumulator_value",
]

# DSP48E2 port budgets for pre-shifted 8-bit slices: the 27-bit (A:D) port
# takes the X slice, the 18-bit (B) port takes the Y slice.  An unsigned
# 8-bit slice shifted left by s occupies 8+s bits and must still fit as a
# non-negative value in a signed port.
_X_PORT_SHIFT_MAX = 27 - 1 - 8  # 18
_Y_PORT_SHIFT_MAX = 18 - 1 - 8  # 9


@dataclass(frozen=True)
class PartialProductTerm:
    """One row of the fp32-mul mapping: which slices, how pre-shifted."""

    row: int
    x_slice: int  # slice index of the X mantissa (0 = least significant)
    y_slice: int
    x_preshift: int
    y_preshift: int

    @property
    def relative_shift(self) -> int:
        return self.x_preshift + self.y_preshift


def split_preshift(relative_shift: int) -> tuple[int, int]:
    """Split a term's relative shift between the two DSP input ports.

    The Y (18-bit) port absorbs at most 8 bits, the X (27-bit) port the
    remainder — mirroring the paper's example of splitting the shift across
    both inputs while respecting the 27x18 multiplier geometry.
    """
    if relative_shift < 0:
        raise ConfigurationError("negative relative shift")
    y = min(relative_shift, 8)
    x = relative_shift - y
    if x > _X_PORT_SHIFT_MAX or y > _Y_PORT_SHIFT_MAX:
        raise HardwareContractError(
            f"pre-shift {relative_shift} cannot fit the 27x18 DSP ports"
        )
    return x, y


def _build_terms() -> tuple[PartialProductTerm, ...]:
    # All (i, j) slice pairs except (0, 0), ordered by ascending shift so the
    # row index matches Fig. 5(b)'s bottom-to-top accumulation order.
    pairs = [
        (i, j)
        for i in range(fp32bits.N_SLICES)
        for j in range(fp32bits.N_SLICES)
        if (i, j) != (0, 0)
    ]
    pairs.sort(key=lambda p: (p[0] + p[1], p[0]))
    terms = []
    for row, (i, j) in enumerate(pairs):
        rel = 8 * (i + j) - 8  # common factor 2**8 dropped with term (0,0)
        xs, ys = split_preshift(rel)
        terms.append(PartialProductTerm(row, i, j, xs, ys))
    return tuple(terms)


FP32_MUL_TERMS: tuple[PartialProductTerm, ...] = _build_terms()
assert len(FP32_MUL_TERMS) == 8


def accumulator_value(man_x: np.ndarray, man_y: np.ndarray) -> np.ndarray:
    """Exact value the column cascade accumulates: ``(mx*my - x0*y0) >> 8``.

    Operates on 24-bit magnitude mantissas; vectorized.  This is the oracle
    the DSP-level simulator is checked against.
    """
    man_x = np.asarray(man_x, dtype=np.int64)
    man_y = np.asarray(man_y, dtype=np.int64)
    sx = fp32bits.mantissa_slices(man_x)
    sy = fp32bits.mantissa_slices(man_y)
    acc = np.zeros(np.broadcast_shapes(man_x.shape, man_y.shape), dtype=np.int64)
    for t in FP32_MUL_TERMS:
        acc = acc + (
            (sx[..., t.x_slice] << t.x_preshift)
            * (sy[..., t.y_slice] << t.y_preshift)
        )
    return acc


def _msb_position(x: np.ndarray) -> np.ndarray:
    """Index of the most significant set bit (x > 0 assumed)."""
    # 2**39 < acc < 2**40 at most, so float64 log2 is exact enough, but we
    # compute it robustly via frexp on the integer value.
    _, e = np.frexp(x.astype(np.float64))
    pos = e - 1
    # frexp on float64 is exact for magnitudes < 2**53; our accumulators are
    # < 2**40, so no correction is needed, but guard anyway.
    too_high = (np.int64(1) << np.minimum(pos, 62)) > x
    pos = pos - too_high.astype(np.int64)
    return pos.astype(np.int64)


def sliced_multiply(
    x: np.ndarray,
    y: np.ndarray,
    *,
    special_values: SpecialPolicy = "raise",
) -> np.ndarray:
    """Multiply float32 arrays exactly as the reconfigured array does.

    Vectorized, bit-faithful: slicing, omission of the (0,0) partial
    product, pre-shifted integer accumulation, LZC normalization of the
    accumulator, truncation to 24 bits.  Underflow flushes to zero;
    exponent overflow raises (the modeled hardware has no Inf encoding).
    """
    x = np.asarray(x, dtype=np.float32)
    y = np.asarray(y, dtype=np.float32)
    s_x, e_x, m_x = fp32bits.decompose(x, special_values=special_values)
    s_y, e_y, m_y = fp32bits.decompose(y, special_values=special_values)
    sign = (s_x ^ s_y).astype(np.uint32)
    zero = (m_x == 0) | (m_y == 0)

    acc = accumulator_value(m_x, m_y)
    # Normalize what the accumulator actually holds (the hardware LZC sees
    # the post-omission value, not the exact product).
    safe_acc = np.where(zero | (acc <= 0), np.int64(1), acc)
    msb = _msb_position(safe_acc)
    man = safe_acc >> np.maximum(msb - 23, 0)
    man = np.where(msb < 23, safe_acc << (23 - np.minimum(msb, 23)), man)
    # value = acc * 2**8 * 2**(e_x + e_y - 2*127 - 2*23)
    #       = man * 2**(msb - 23) * 2**(e_x + e_y - 300 + 8)
    # compose() expects value = man * 2**(E - 127 - 23)  =>  E below.
    exp = e_x.astype(np.int64) + e_y.astype(np.int64) + msb - 165
    result = fp32bits.compose(
        sign, np.where(zero, 0, exp), np.where(zero, 0, man), strict=False
    )
    overflow = (~zero) & (exp >= fp32bits.EXP_SPECIAL)
    if overflow.any():
        raise HardwareContractError(
            "fp32 multiply overflowed the exponent range (no Inf datapath)"
        )
    return result.reshape(np.broadcast_shapes(x.shape, y.shape)).astype(np.float32)
