"""Accuracy experiment: mixed-precision inference without retraining.

Reproduces the paper's motivating claim (Section I, Section IV-A): a
Transformer trained in fp32 keeps its accuracy when the linear layers run
in bfp8 and the non-linear layers in fp32, while a conventional
int8-everything pipeline (per-tensor scales, quantized non-linear tensors
and residual stream, no retraining) deviates substantially.

Metrics per arithmetic regime: task accuracy, prediction agreement with the
fp32 reference, and logit RMSE.  The invariant the paper needs — and our
tests assert — is that ``bfp8-mixed`` tracks fp32 strictly better than
``int8-all`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.reporting import header, render_table
from repro.models.data import TASKS
from repro.models.quantized import RegimeResult, evaluate_regimes
from repro.models.training import train_classifier
from repro.models.vit import SequenceClassifier

__all__ = ["ExperimentConfig", "run_task", "run"]


@dataclass(frozen=True)
class ExperimentConfig:
    task: str = "majority"
    n_samples: int = 3000
    seq_len: int = 16
    dim: int = 48
    depth: int = 3
    n_heads: int = 4
    epochs: int = 25
    lr: float = 2e-3
    seed: int = 7


def run_task(cfg: ExperimentConfig) -> tuple[float, list[RegimeResult]]:
    """Train one model and evaluate it under every regime."""
    data = TASKS[cfg.task](n=cfg.n_samples, seq_len=cfg.seq_len, seed=cfg.seed)
    train, test = data.split()
    model = SequenceClassifier(
        vocab=data.vocab,
        seq_len=cfg.seq_len,
        dim=cfg.dim,
        depth=cfg.depth,
        n_heads=cfg.n_heads,
        n_classes=data.n_classes,
        seed=cfg.seed + 1,
    )
    result = train_classifier(
        model, train, test, epochs=cfg.epochs, lr=cfg.lr, seed=cfg.seed + 2
    )
    return result.test_accuracy, evaluate_regimes(model, test)


def run(configs: list[ExperimentConfig] | None = None) -> str:
    configs = configs or [
        ExperimentConfig(task="majority"),
        ExperimentConfig(task="matching-pairs", n_samples=2400, epochs=30),
    ]
    out = [header("Accuracy -- mixed-precision inference without retraining")]
    for cfg in configs:
        fp32_acc, regimes = run_task(cfg)
        rows = [
            [r.backend, f"{r.accuracy:.4f}", f"{r.agreement:.4f}",
             f"{r.logit_rmse:.4f}"]
            for r in regimes
        ]
        out.append(render_table(
            ["Regime", "Accuracy", "Agreement vs fp32", "Logit RMSE"],
            rows,
            title=f"task={cfg.task} (fp32 test accuracy {fp32_acc:.4f})",
        ))
        by = {r.backend: r for r in regimes}
        out.append(
            f"  bfp8-mixed tracks fp32 better than int8-all: "
            f"RMSE {by['bfp8-mixed'].logit_rmse:.4f} vs "
            f"{by['int8-all'].logit_rmse:.4f}; agreement "
            f"{by['bfp8-mixed'].agreement:.4f} vs {by['int8-all'].agreement:.4f}"
        )
        out.append("")
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
