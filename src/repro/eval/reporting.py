"""Fixed-width rendering of reproduction tables and figure series."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "render_metrics", "header"]


def header(title: str, width: int = 78) -> str:
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def render_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table."""
    str_rows = []
    for row in rows:
        str_rows.append(
            [
                float_fmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_metrics(
    title: str,
    metrics: dict,
    *,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render a flat metric dict (e.g. a serving summary) as a name/value table."""
    rows = [
        (k, float_fmt.format(v) if isinstance(v, float) else str(v))
        for k, v in metrics.items()
    ]
    return render_table(["metric", "value"], rows, title=title)


def render_series(
    name: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    *,
    x_label: str = "x",
    fmt: str = "{:.3f}",
) -> str:
    """Render one figure's data series (x sweep, named curves) as a table."""
    columns = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x), *[fmt.format(series[k][i]) for k in series]])
    return render_table(columns, rows, title=name, float_fmt=fmt)
