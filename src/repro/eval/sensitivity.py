"""Component-sensitivity study driver (paper Section IV-A).

Quantizes one Transformer component class at a time and reports the output
perturbation — reproducing the observation that motivates the paper's
mixed-precision split: linear layers tolerate low-bitwidth block fp, while
the non-linear operations demand higher precision.
"""

from __future__ import annotations

from repro.eval.reporting import header, render_table
from repro.models.data import majority_task
from repro.models.sensitivity import component_sensitivity
from repro.models.training import train_classifier
from repro.models.vit import SequenceClassifier

__all__ = ["run", "run_on_trained_model"]


def run_on_trained_model(
    *,
    n_samples: int = 1000,
    epochs: int = 8,
    dim: int = 32,
    depth: int = 2,
    seed: int = 5,
    schemes: list[tuple[str, int]] | None = None,
) -> tuple[float, list]:
    data = majority_task(n=n_samples, seq_len=12, vocab=8, seed=seed)
    train, test = data.split()
    model = SequenceClassifier(
        vocab=8, seq_len=12, dim=dim, depth=depth, n_heads=4, seed=seed + 1
    )
    result = train_classifier(model, train, test, epochs=epochs, seed=seed + 2)
    rows = component_sensitivity(
        model, test.tokens,
        schemes=schemes or [("bfp", 8), ("bfp", 4), ("int", 8), ("int", 4)],
    )
    return result.test_accuracy, rows


def run() -> str:
    out = [header("Component sensitivity -- quantize one class at a time")]
    acc, rows = run_on_trained_model()
    out.append(f"fp32 test accuracy: {acc:.4f}\n")
    out.append(render_table(
        ["Component", "Scheme", "Logit RMSE", "Agreement"],
        [[r.component, r.scheme, f"{r.logit_rmse:.4f}", f"{r.agreement:.4f}"]
         for r in rows],
    ))
    by = {(r.component, r.scheme): r for r in rows}
    lin4 = by[("linear", "bfp4")].logit_rmse
    lin8 = by[("linear", "bfp8")].logit_rmse
    out.append(
        f"\nLinear layers under bfp8 perturb logits by {lin8:.4f} RMSE "
        f"(bfp4: {lin4:.4f}) -- the resilience that lets the paper keep "
        "MatMuls in 8-bit block fp while non-linear classes run in fp32."
    )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
