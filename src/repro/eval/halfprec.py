"""Half-precision vector unit study (paper Section V future work).

The paper's conclusion argues "the fp32 format is often overly precise"
for the non-linear layers and plans to optimize the vector personality
with cheaper floats.  This driver prototypes that direction on the same
sliced datapath: bf16 (one mantissa slice) and fp16 (two slices) double the
lane count to 8 — a 2x non-linear throughput gain — and this study measures
what that costs in non-linear function accuracy and in end-to-end DeiT
latency (where fp32 work dominates, Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.eval.reporting import header, render_table
from repro.models.configs import DEIT_SMALL
from repro.models.layers import gelu as gelu_ref
from repro.models.layers import softmax as softmax_ref
from repro.models.ops_count import table4_partitions
from repro.perf.latency import deit_latency_split, system_measured_fp32_flops
from repro.perf.throughput import (
    DEFAULT_CLOCK,
    fp32_peak_flops,
    half_peak_flops,
)
from repro.runtime.executor import VectorExecutor
from repro.runtime.vector_ops import build_gelu, build_softmax

__all__ = ["nonlinear_accuracy", "throughput_gain", "deit_latency_with_half", "run"]

PRECISIONS = ("fp32", "bf16", "fp16")


def nonlinear_accuracy(seed: int = 0) -> list[dict]:
    """Max abs error of softmax/GELU on the vector unit per precision."""
    rng = np.random.default_rng(seed)
    x = (rng.normal(size=(16, 64)) * 3).astype(np.float32)
    rows = []
    sm_ref = softmax_ref(x.astype(np.float64))
    ge_ref = gelu_ref(x.astype(np.float64))
    for prec in PRECISIONS:
        ex = VectorExecutor(faithful=False, precision=prec)
        sm, _ = ex.run(build_softmax(), {"x": x})
        ge, _ = ex.run(build_gelu(), {"x": x})
        rows.append(
            {
                "precision": prec,
                "softmax_max_err": float(np.abs(sm - sm_ref).max()),
                "gelu_max_err": float(np.abs(ge - ge_ref).max()),
            }
        )
    return rows


def throughput_gain() -> list[dict]:
    """Peak vector-unit FLOPS per precision (one unit)."""
    rows = [{"precision": "fp32", "peak_gflops": fp32_peak_flops() / 1e9,
             "lanes": DEFAULT_CLOCK.fp32_lanes}]
    from repro.arith.fp_sliced_half import half_lane_count
    from repro.formats.halfprec import HALF_FORMATS

    for name, fmt in HALF_FORMATS.items():
        rows.append(
            {
                "precision": name,
                "peak_gflops": half_peak_flops(name) / 1e9,
                "lanes": half_lane_count(fmt),
            }
        )
    return rows


def deit_latency_with_half(fmt_name: str = "bf16") -> dict:
    """End-to-end DeiT-Small latency if the non-linear layers ran in a
    16-bit format at 2x the effective fp32 rate (memory behaviour assumed
    unchanged — the gain is compute-side lane doubling)."""
    parts = table4_partitions(DEIT_SMALL)
    base = deit_latency_split(parts)
    scale = half_peak_flops(fmt_name) / fp32_peak_flops()
    boosted = deit_latency_split(
        parts, fp32_system_flops=system_measured_fp32_flops(128) * scale
    )
    return {
        "format": fmt_name,
        "baseline_ms": base.total_latency_s * 1e3,
        "boosted_ms": boosted.total_latency_s * 1e3,
        "speedup": base.total_latency_s / boosted.total_latency_s,
        "fp32_share_before": base.fp32_latency_share(),
        "fp32_share_after": boosted.fp32_latency_share(),
    }


def run() -> str:
    out = [header("Half-precision vector unit (extension; paper Section V)")]
    acc = nonlinear_accuracy()
    out.append(render_table(
        ["Precision", "softmax max err", "GELU max err"],
        [[r["precision"], f"{r['softmax_max_err']:.2e}",
          f"{r['gelu_max_err']:.2e}"] for r in acc],
        title="Non-linear function accuracy on the vector unit",
    ))
    out.append("")
    thr = throughput_gain()
    out.append(render_table(
        ["Precision", "Lanes", "Peak GFLOPS/unit"],
        [[r["precision"], r["lanes"], round(r["peak_gflops"], 2)] for r in thr],
        title="Vector-unit throughput",
    ))
    out.append("")
    lat = deit_latency_with_half("bf16")
    out.append(
        f"DeiT-Small end-to-end: {lat['baseline_ms']:.2f} ms (fp32 vector "
        f"unit, fp32 share {100 * lat['fp32_share_before']:.1f}%) -> "
        f"{lat['boosted_ms']:.2f} ms with bf16 non-linear "
        f"({lat['speedup']:.2f}x, fp32-class share now "
        f"{100 * lat['fp32_share_after']:.1f}%)."
    )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
