"""Table I: shared basic operations between bfp8 MatMul and fp32 mul/add.

The table is structural — which primitive each workload exercises — so the
reproduction *derives* it from the implementation: it inspects which
hardware stages each arithmetic path actually uses and prints the matrix.
Tests assert the derived matrix equals the paper's.
"""

from __future__ import annotations

from repro.eval.reporting import header, render_table

__all__ = ["shared_operations", "run", "PAPER_TABLE1"]

# Rows: basic operation; columns: workloads.  True = the workload uses it.
PAPER_TABLE1 = {
    "8-bit MAC": {"bfp8 MatMul": True, "fp32 mul": True, "fp32 add": False},
    "Align & shift": {"bfp8 MatMul": True, "fp32 mul": False, "fp32 add": True},
    "Partial sum add": {"bfp8 MatMul": True, "fp32 mul": True, "fp32 add": False},
    "Mantissa add": {"bfp8 MatMul": False, "fp32 mul": False, "fp32 add": True},
    "Normalize": {"bfp8 MatMul": True, "fp32 mul": True, "fp32 add": True},
}


def shared_operations() -> dict[str, dict[str, bool]]:
    """Derive the op/stage usage matrix from the implemented datapaths.

    * bfp8 MatMul: int8 MACs in the array, alignment shifts in the column
      shifter (Eqn 3), partial-sum adds in the ACC, normalization in the
      output quantizer.
    * fp32 mul: int8 MACs on mantissa slices, partial-product adds in the
      cascade, LZC normalization; no alignment (single product).
    * fp32 add: alignment shift + signed mantissa add + normalization;
      DSPs (MACs) idle.
    """
    from repro.arith.fp_sliced import FP32_MUL_TERMS

    uses = {
        "8-bit MAC": {
            "bfp8 MatMul": True,  # PE array MACs (systolic)
            "fp32 mul": len(FP32_MUL_TERMS) > 0,  # slice products on DSPs
            "fp32 add": False,  # DSPs idle in fpadd mode
        },
        "Align & shift": {
            "bfp8 MatMul": True,  # Eqn 3 cross-block alignment
            "fp32 mul": False,  # pre-shifts are static routing, not alignment
            "fp32 add": True,  # Eqn 6 operand alignment
        },
        "Partial sum add": {
            "bfp8 MatMul": True,  # PSU accumulation across blocks
            "fp32 mul": True,  # cascade partial-product accumulation
            "fp32 add": False,
        },
        "Mantissa add": {
            "bfp8 MatMul": False,
            "fp32 mul": False,
            "fp32 add": True,  # signed-magnitude mantissa adder
        },
        "Normalize": {
            "bfp8 MatMul": True,  # output quantizer renormalization
            "fp32 mul": True,  # LZC normalizer after the cascade
            "fp32 add": True,  # LZC normalizer after the add
        },
    }
    return uses


def run() -> str:
    ops = shared_operations()
    cols = ["Basic Operation", "bfp8 MatMul", "fp32 mul", "fp32 add"]
    rows = [
        [name, *("x" if ops[name][w] else "" for w in cols[1:])] for name in ops
    ]
    out = [header("Table I -- Shared basic operations between bfp8 and fp32")]
    out.append(render_table(cols, rows))
    match = ops == PAPER_TABLE1
    out.append(f"\nMatches the paper's Table I: {match}")
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
