"""Table III: comparison with prior mixed-precision FPGA accelerators."""

from __future__ import annotations

from repro.eval.reporting import header, render_table
from repro.perf.related_work import table3_rows

__all__ = ["run"]


def run() -> str:
    rows = []
    for e in table3_rows():
        rows.append([
            e.work,
            e.data_format,
            e.application,
            "Yes" if e.needs_retraining else "No",
            e.platform,
            "-" if e.lut_k is None else f"{e.lut_k:.1f}",
            "-" if e.ff_k is None else f"{e.ff_k:.1f}",
            "-" if e.bram is None else f"{e.bram:.0f}",
            e.dsp,
            f"{e.freq_mhz:.0f}",
            f"{e.throughput_gops:.1f}",
            f"{e.efficiency_gops_per_dsp:.2f}",
        ])
    out = [header("Table III -- Comparison with related mixed-precision "
                  "FPGA accelerators")]
    out.append(render_table(
        ["Work", "Format", "App", "Retrain", "Platform", "LUT(k)", "FF(k)",
         "BRAM", "DSP", "MHz", "GOPS", "GOPS/DSP"],
        rows,
    ))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
