"""Table IV: linear vs non-linear workload and latency split for DeiT-Small."""

from __future__ import annotations

from repro.eval.reporting import header, render_table
from repro.models.configs import DEIT_SMALL, ViTConfig
from repro.models.ops_count import (
    PAPER_TABLE4_LATENCY_MS,
    PAPER_TABLE4_OPS,
    table4_partitions,
)
from repro.perf.latency import deit_latency_split

__all__ = ["run", "reproduce_paper_table", "analytic_table"]


def _render(report, title: str) -> str:
    rows = []
    for r in report.proportions():
        rows.append([
            r["name"],
            f"{r['ops'] / 1e6:.2f}M",
            f"{r['ops_pct']:.3f}%",
            f"{r['latency_s'] * 1e3:.3f}",
            f"{r['latency_pct']:.3f}%",
        ])
    table = render_table(
        ["Workload", "OPs/FLOPs", "Ops %", "Latency (ms)", "Latency %"], rows,
        title=title,
    )
    share = 100 * report.fp32_latency_share()
    return f"{table}\nfp32 share of latency: {share:.2f}%"


def reproduce_paper_table(cfg: ViTConfig = DEIT_SMALL):
    """Paper op counts + paper effective rates (2052 GOPS / 15 GFLOPS)."""
    return deit_latency_split(
        table4_partitions(cfg, use_paper_counts=True),
        bfp_system_ops=2052.06e9,
        fp32_system_flops=15.0e9,
    )


def analytic_table(cfg: ViTConfig = DEIT_SMALL):
    """Our analytic op counts + our measured-throughput model rates."""
    return deit_latency_split(table4_partitions(cfg))


def run() -> str:
    out = [header("Table IV -- Linear/non-linear workload split, DeiT-Small")]
    out.append(_render(
        reproduce_paper_table(),
        "(a) Paper op counts at the paper's effective rates "
        "(2052.06 GOPS bfp8 / 15.0 GFLOPS fp32)",
    ))
    out.append("")
    out.append(_render(
        analytic_table(),
        "(b) Analytic op counts (this reproduction) at the modeled "
        "measured system rates",
    ))
    out.append("\nPaper-reported latency (ms) for reference: "
               + ", ".join(f"{k}={v}" for k, v in PAPER_TABLE4_LATENCY_MS.items()))
    out.append("Paper-reported op counts: "
               + ", ".join(f"{k}={v / 1e6:.1f}M" for k, v in PAPER_TABLE4_OPS.items()))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
