"""Bitwidth sweep: why block floating point, structurally.

Two experiments supporting the paper's central argument ("block-based
low-bitwidth floating-point operations are adequate to preserve the accuracy
of Transformer models", Section I):

1. **Format-level SQNR** — block-fp vs per-tensor integer quantization at
   4/6/8 bits over benign, heavy-tailed and outlier-laden tensors.  Block
   fp's shared exponent contains outliers to their own 8x8 block; a
   per-tensor integer scale is poisoned globally.
2. **Model-level sweep** — a trained Transformer served with
   ``bfpN-mixed`` vs ``intN-all`` arithmetic as N shrinks: the integer
   pipeline's accuracy collapses earlier.
"""

from __future__ import annotations

import numpy as np

from repro.eval.reporting import header, render_table
from repro.formats.metrics import (
    DISTRIBUTIONS,
    bfp_sqnr_db,
    intn_sqnr_db,
    sample_distribution,
)
from repro.models.backend import BFP8MixedBackend, INT8AllBackend
from repro.models.data import majority_task
from repro.models.quantized import evaluate_regimes
from repro.models.training import train_classifier
from repro.models.vit import SequenceClassifier

__all__ = ["sqnr_table", "model_sweep", "run"]

SWEEP_BITS = (4, 5, 6, 8)


def sqnr_table(
    shape: tuple[int, int] = (256, 256), seed: int = 0
) -> list[dict]:
    """SQNR (dB) of bfp-N vs int-N across distributions and bitwidths.

    The sqnr helpers memoize through the prepared-operand cache
    (:mod:`repro.perf.prepared`), so repeated sweeps over the same
    tensors quantize each (tensor, width) pair once; the model sweep
    below likewise prepares each model weight once per width via the
    backends instead of requantizing it per evaluation batch.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for dist in DISTRIBUTIONS:
        x = sample_distribution(dist, shape, rng)
        for bits in SWEEP_BITS:
            rows.append(
                {
                    "distribution": dist,
                    "bits": bits,
                    "bfp_sqnr_db": bfp_sqnr_db(x, bits),
                    "int_sqnr_db": intn_sqnr_db(x, bits),
                }
            )
    return rows


def model_sweep(
    *,
    n_samples: int = 1200,
    epochs: int = 10,
    dim: int = 32,
    depth: int = 2,
    seed: int = 0,
    bits: tuple[int, ...] = SWEEP_BITS,
) -> tuple[float, list[dict]]:
    """Serve one trained model under bfpN-mixed / intN-all for each N."""
    data = majority_task(n=n_samples, seq_len=12, vocab=8, seed=seed)
    train, test = data.split()
    model = SequenceClassifier(
        vocab=8, seq_len=12, dim=dim, depth=depth, n_heads=4, seed=seed + 1
    )
    result = train_classifier(model, train, test, epochs=epochs, seed=seed + 2)
    factories = {}
    for b in bits:
        factories[f"bfp{b}-mixed"] = lambda b=b: BFP8MixedBackend(man_bits=b)
        factories[f"int{b}-all"] = lambda b=b: INT8AllBackend(bits=b)
    regimes = {
        r.backend: r
        for r in evaluate_regimes(model, test, backends=["fp32"], factories=factories)
    }
    rows = []
    for b in bits:
        bf, it = regimes[f"bfp{b}-mixed"], regimes[f"int{b}-all"]
        rows.append(
            {
                "bits": b,
                "bfp_accuracy": bf.accuracy,
                "bfp_agreement": bf.agreement,
                "bfp_rmse": bf.logit_rmse,
                "int_accuracy": it.accuracy,
                "int_agreement": it.agreement,
                "int_rmse": it.logit_rmse,
            }
        )
    return result.test_accuracy, rows


def run(*, include_model_sweep: bool = True) -> str:
    out = [header("Bitwidth sweep -- block floating point vs per-tensor integer")]
    rows = sqnr_table()
    out.append(render_table(
        ["Distribution", "Bits", "bfp SQNR (dB)", "int SQNR (dB)", "bfp advantage (dB)"],
        [[r["distribution"], r["bits"], round(r["bfp_sqnr_db"], 2),
          round(r["int_sqnr_db"], 2),
          round(r["bfp_sqnr_db"] - r["int_sqnr_db"], 2)] for r in rows],
        title="Format-level SQNR (8x8 block-fp vs per-tensor symmetric int)",
    ))
    if include_model_sweep:
        fp32_acc, mrows = model_sweep()
        out.append("")
        out.append(render_table(
            ["Bits", "bfpN-mixed acc", "agree", "RMSE", "intN-all acc",
             "agree", "RMSE"],
            [[r["bits"], round(r["bfp_accuracy"], 3), round(r["bfp_agreement"], 3),
              round(r["bfp_rmse"], 3), round(r["int_accuracy"], 3),
              round(r["int_agreement"], 3), round(r["int_rmse"], 3)]
             for r in mrows],
            title=f"Model-level sweep (fp32 test accuracy {fp32_acc:.3f})",
        ))
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
