"""Fig. 7: measured vs theoretical throughput under different workloads.

Theoretical curves are Eqns 9/10; "measured" runs the cycle simulator's
compute counts through the AXI/HBM memory model (and, on request, the full
register-accurate simulator).  Shapes to match the paper: throughput rises
toward theory as the stream lengthens; bfp8 gets close at N_X = 64 while
fp32 stays well below theory (short-burst random access).
"""

from __future__ import annotations

from repro.eval.reporting import header, render_series
from repro.hw.systolic import SystolicArray
from repro.perf.latency import (
    measured_bfp_throughput_ops,
    measured_fp32_throughput_flops,
)
from repro.perf.throughput import bfp_throughput_ops, fp32_throughput_flops

__all__ = ["BFP_SWEEP", "FP32_SWEEP", "bfp_series", "fp32_series", "run"]

BFP_SWEEP = (8, 16, 32, 64)
FP32_SWEEP = (16, 32, 64, 128)


def bfp_series(verify_cycles: bool = False) -> dict[str, list[float]]:
    """GOPS per unit: theoretical vs measured over the N_X sweep."""
    theo, meas = [], []
    for n_x in BFP_SWEEP:
        theo.append(bfp_throughput_ops(n_x) / 1e9)
        meas.append(measured_bfp_throughput_ops(n_x) / 1e9)
        if verify_cycles:
            import numpy as np

            arr = SystolicArray()
            rng = np.random.default_rng(n_x)
            arr.load_y_pair(
                rng.integers(-127, 128, (8, 8)), rng.integers(-127, 128, (8, 8))
            )
            res = arr.run_bfp8_stream(rng.integers(-127, 128, (n_x, 8, 8)))
            assert res.cycles == 8 * n_x + 15, "cycle model drift"
    return {"theoretical_GOPS": theo, "measured_GOPS": meas,
            "measured/theoretical": [m / t for m, t in zip(meas, theo)]}


def fp32_series() -> dict[str, list[float]]:
    """GFLOPS per unit: theoretical vs measured over the L sweep."""
    theo, meas = [], []
    for L in FP32_SWEEP:
        theo.append(fp32_throughput_flops(L) / 1e9)
        meas.append(measured_fp32_throughput_flops(L) / 1e9)
    return {"theoretical_GFLOPS": theo, "measured_GFLOPS": meas,
            "measured/theoretical": [m / t for m, t in zip(meas, theo)]}


def run(verify_cycles: bool = True) -> str:
    out = [header("Fig. 7 -- Measured vs theoretical throughput (one unit)")]
    out.append(render_series(
        "bfp8 MatMul (N_X sweep)", list(BFP_SWEEP), bfp_series(verify_cycles),
        x_label="N_X",
    ))
    out.append("")
    out.append(render_series(
        "fp32 multiply (L sweep)", list(FP32_SWEEP), fp32_series(),
        x_label="L_fp32",
    ))
    out.append(
        "\nSystem scale (15 units): bfp8 measured "
        f"{15 * measured_bfp_throughput_ops(64) / 1e9:.0f} GOPS "
        f"(paper reports 2052.06 GOPS; Eqn-9 theoretical ceiling "
        f"{15 * bfp_throughput_ops(64) / 1e9:.0f} GOPS -- see EXPERIMENTS.md); "
        f"fp32 measured {15 * measured_fp32_throughput_flops(128) / 1e9:.1f} "
        f"GFLOPS (paper Table IV implies 15.0; theoretical 33.88)."
    )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
