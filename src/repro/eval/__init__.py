"""Experiment drivers: one module per paper table/figure.

Run any of them directly, e.g. ``python -m repro.eval.fig7``, or call
:func:`run_all` for the complete reproduction report.
"""

from __future__ import annotations

from repro.eval import (
    accuracy,
    bitwidth,
    decoder,
    fig6,
    fig7,
    halfprec,
    sensitivity,
    table1,
    table2,
    table3,
    table4,
)

__all__ = ["run_all", "accuracy", "bitwidth", "decoder", "fig6", "fig7",
           "halfprec", "sensitivity", "table1", "table2", "table3", "table4"]


def run_all(*, include_accuracy: bool = False) -> str:
    """Generate every table/figure report (accuracy training is opt-in)."""
    parts = [
        table1.run(),
        table2.run(),
        fig6.run(),
        fig7.run(),
        table3.run(),
        table4.run(),
        bitwidth.run(include_model_sweep=include_accuracy),
        halfprec.run(),
    ]
    if include_accuracy:
        parts.append(accuracy.run())
        parts.append(sensitivity.run())
        parts.append(decoder.run())
    return "\n\n".join(parts)
