"""Fig. 6: resources of four PE-array designs, normalized to int8."""

from __future__ import annotations

from repro.eval.reporting import header, render_table
from repro.perf.resources import fig6_designs

__all__ = ["PAPER_FIG6_CLAIMS", "run", "normalized_utilization"]

# The quantitative claims the paper states about Fig. 6 (Section III-A and
# the abstract); the bars themselves are only published graphically.
PAPER_FIG6_CLAIMS = {
    "bfp8_ff_vs_int8": 1.19,
    "ours_pe_lut_vs_bfp8_pe": 2.94,
    "indiv_dsp_saving_pct": 20.0,
    "indiv_ff_saving_pct": 61.2,
    "indiv_lut_saving_pct": 43.6,
}


def normalized_utilization(
    *, include_fp16: bool = False
) -> dict[str, dict[str, float]]:
    designs = fig6_designs(include_fp16=include_fp16)
    base = designs["int8"]
    return {name: r.normalized_to(base) for name, r in designs.items()}


def run(*, include_fp16: bool = True) -> str:
    designs = fig6_designs(include_fp16=include_fp16)
    base = designs["int8"]
    rows = []
    for name, r in designs.items():
        n = r.normalized_to(base)
        rows.append(
            [name, round(r.lut, 0), n["lut"], round(r.ff, 0), n["ff"],
             int(r.dsp), n["dsp"]]
        )
    out = [header("Fig. 6 -- Resource utilization of PE-array designs "
                  "(normalized to int8)")]
    out.append(render_table(
        ["Design", "LUT", "LUT/int8", "FF", "FF/int8", "DSP", "DSP/int8"],
        rows, float_fmt="{:.3f}",
    ))
    ours, indiv, bfp8 = designs["ours"], designs["indiv"], designs["bfp8"]
    out.append("\nPaper claims vs model:")
    claims = [
        ("bfp8 FF vs int8", PAPER_FIG6_CLAIMS["bfp8_ff_vs_int8"],
         bfp8.ff / base.ff),
        ("multimode PE-array LUT vs bfp8-only PE-array",
         PAPER_FIG6_CLAIMS["ours_pe_lut_vs_bfp8_pe"], 1317.0 / 448.0),
        ("DSP saving vs individual (%)",
         PAPER_FIG6_CLAIMS["indiv_dsp_saving_pct"],
         100 * (1 - ours.dsp / indiv.dsp)),
        ("FF saving vs individual (%)",
         PAPER_FIG6_CLAIMS["indiv_ff_saving_pct"],
         100 * (1 - ours.ff / indiv.ff)),
        ("LUT saving vs individual (%)",
         PAPER_FIG6_CLAIMS["indiv_lut_saving_pct"],
         100 * (1 - ours.lut / indiv.lut)),
    ]
    out.append(render_table(
        ["Claim", "Paper", "Model"],
        [[c, p, m] for c, p, m in claims],
        float_fmt="{:.2f}",
    ))
    if include_fp16:
        from repro.perf.resources import fp16_dot_extension

        ext = fp16_dot_extension()
        fp16 = designs["ours+fp16"]
        out.append(
            "\nfp16 dot-product extension (not in the paper; TransDot-style "
            "dual-precision MAC): "
            f"+{ext.lut:.0f} LUT (+{100 * ext.lut / ours.lut:.1f}%), "
            f"+{ext.ff:.0f} FF (+{100 * ext.ff / ours.ff:.1f}%), "
            f"+{ext.dsp:.0f} DSP -- still "
            f"{100 * (1 - fp16.dsp / indiv.dsp):.1f}% fewer DSPs and "
            f"{100 * (1 - fp16.lut / indiv.lut):.1f}% fewer LUTs than the "
            "individual-units design."
        )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
