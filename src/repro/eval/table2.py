"""Table II: per-component hardware utilization of one processing unit."""

from __future__ import annotations

from repro.eval.reporting import header, render_table
from repro.perf.resources import (
    fp16_dot_extension,
    processing_unit_total,
    table2_breakdown,
)

__all__ = ["PAPER_TABLE2", "run"]

# Paper Table II (LUT, FF, BRAM, DSP); memory interface + controller LUTs are
# reported merged in the paper (total row closes at 7348).
PAPER_TABLE2 = {
    "PE Array": (1317, 1536, 0.0, 64),
    "Shifter & ACC": (768, 644, 0.0, 8),
    "Buffer & Layout Converter": (752, 764, 50.0, 0),
    "Exponent Unit": (269, 195, 0.0, 0),
    "Quantizer": (348, 524, 0.0, 0),
    "Misc.": (483, 1944, 3.0, 0),
    "Memory Interface + Controller": (3411, 4722, 4.5, 0),
    "Total": (7348, 10329, 57.5, 72),
}


def run() -> str:
    breakdown = table2_breakdown()
    rows = []
    for name, r in breakdown.items():
        rows.append([name, round(r.lut, 1), round(r.ff, 1), r.bram, r.dsp])
    total = processing_unit_total()
    rows.append(["Total (model)", round(total.lut, 1), round(total.ff, 1),
                 total.bram, total.dsp])
    rows.append(["Total (paper)", *PAPER_TABLE2["Total"]])
    out = [header("Table II -- Hardware utilization of one processing unit")]
    out.append(render_table(["Component", "LUT", "FF", "BRAM", "DSP"], rows,
                            float_fmt="{:.1f}"))
    buf = breakdown["Buffer & Layout Converter"]
    ctrl = breakdown["Controller"]
    out.append(
        "\nOverhead modules (paper Section III-A accounting: the buffer/"
        "converter row's LUTs and the converter+controller FFs): "
        f"{100 * buf.lut / total.lut:.2f}% LUT, "
        f"{100 * (buf.ff + ctrl.ff) / total.ff:.2f}% FF "
        "(paper: 10.23% LUT, 11.77% FF)"
    )
    ext = fp16_dot_extension()
    out.append(
        "\nOptional fp16 dot-product mode (extension, not in the paper): "
        f"+{ext.lut:.0f} LUT / +{ext.ff:.0f} FF / +{ext.dsp:.0f} DSP over "
        f"the PU above ({100 * ext.lut / total.lut:.2f}% LUT, "
        f"{100 * ext.ff / total.ff:.2f}% FF) -- the dual-precision MAC "
        "packs two fp16 products per DSP48E2, so DSP count is unchanged."
    )
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
