"""Decoder/LLM study: mixed precision on a LLaMA-family workload.

The paper's introduction frames the whole design around LLMs (OPT,
LLaMA-2) and the impossibility of retraining them; its programmability
argument cites the GLU-family activations those models introduced.  This
study closes that loop: a causal decoder with RMSNorm + SwiGLU (both
expressed as vector programs on the fp32 personality) is trained in fp32
on a deterministic additive grammar, then served without retraining under
the arithmetic regimes.

Headline (asserted in tests and benchmarks): bfp8-mixed serves the LM at
fp32 accuracy, while conventional int8-everything collapses — the decoder's
normalizer/gate stack is far more quantization-sensitive than the
encoder's, which is exactly why the paper keeps non-linear work in fp32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.reporting import header, render_table
from repro.models.backend import BACKENDS, get_backend
from repro.models.data import additive_lm_sequences
from repro.models.decoder import TinyLM
from repro.models.training import next_token_accuracy, train_lm

__all__ = ["DecoderConfig", "run_decoder_study", "run"]


@dataclass(frozen=True)
class DecoderConfig:
    n_samples: int = 800
    seq_len: int = 12
    vocab: int = 8
    dim: int = 32
    depth: int = 2
    n_heads: int = 4
    epochs: int = 15
    lr: float = 3e-3
    seed: int = 0


def run_decoder_study(cfg: DecoderConfig = DecoderConfig()):
    """Train the LM and evaluate next-token accuracy per regime."""
    data = additive_lm_sequences(
        n=cfg.n_samples, seq_len=cfg.seq_len, vocab=cfg.vocab, seed=cfg.seed
    )
    split = int(cfg.n_samples * 0.8)
    lm = TinyLM(vocab=cfg.vocab, seq_len=cfg.seq_len, dim=cfg.dim,
                depth=cfg.depth, n_heads=cfg.n_heads, seed=cfg.seed + 1)
    losses = train_lm(lm, data.tokens[:split], epochs=cfg.epochs, lr=cfg.lr,
                      seed=cfg.seed + 2)
    test = data.tokens[split:]
    rows = []
    for name in BACKENDS:
        acc = next_token_accuracy(lm, test, get_backend(name))
        rows.append({"backend": name, "next_token_accuracy": acc})
    # Greedy generation fidelity under the paper's regime.
    prompt = data.tokens[0, :4]
    gen_fp32 = lm.generate(prompt, cfg.seq_len - 4)
    gen_mixed = lm.generate(prompt, cfg.seq_len - 4, get_backend("bfp8-mixed"))
    return lm, losses, rows, bool(np.array_equal(gen_fp32, gen_mixed))


def run(cfg: DecoderConfig = DecoderConfig()) -> str:
    out = [header("Decoder/LLM study -- RMSNorm + SwiGLU causal model")]
    _, losses, rows, gen_match = run_decoder_study(cfg)
    out.append(f"training loss {losses[0]:.3f} -> {losses[-1]:.3f} "
               f"({cfg.epochs} epochs)\n")
    out.append(render_table(
        ["Regime", "Next-token accuracy"],
        [[r["backend"], f"{r['next_token_accuracy']:.4f}"] for r in rows],
    ))
    by = {r["backend"]: r["next_token_accuracy"] for r in rows}
    out.append(
        f"\nbfp8-mixed retains {100 * by['bfp8-mixed'] / by['fp32']:.1f}% of "
        f"fp32 accuracy; int8-all retains {100 * by['int8-all'] / by['fp32']:.1f}%."
    )
    out.append(f"Greedy generation identical to fp32 under bfp8-mixed: {gen_match}")
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(run())
