"""Multi-head self-attention with explicit backward (NumPy)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.backend import ComputeBackend, FP32Backend
from repro.models.layers import Linear, Module, Softmax

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard MHSA: fused QKV projection, scaled dot-product, output proj.

    The four matmuls (QKV, Q@K^T, P@V, output projection) go through the
    compute backend — on the modeled hardware these are the bfp8 workloads;
    the softmax goes through the backend's non-linear hook (fp32 workload).
    """

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rng: np.random.Generator | None = None,
        *,
        causal: bool = False,
    ) -> None:
        super().__init__()
        if dim % n_heads:
            raise ConfigurationError(f"dim {dim} not divisible by heads {n_heads}")
        self.dim, self.n_heads = dim, n_heads
        self.head_dim = dim // n_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.causal = causal
        rng = rng or np.random.default_rng(0)
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)
        self.attn_softmax = Softmax()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        b, n, d = x.shape
        h, hd = self.n_heads, self.head_dim
        qkv = self.qkv.forward(x, backend)  # (b, n, 3d)
        qkv = qkv.reshape(b, n, 3, h, hd).transpose(2, 0, 3, 1, 4)  # (3, b, h, n, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]

        # scores: per-head matmuls through the backend
        scores = self._bmm(backend, q, k.transpose(0, 1, 3, 2)) * self.scale
        if self.causal:
            # Future positions are masked before softmax; the mask itself is
            # control logic, not arithmetic (free on the host side).
            mask = np.triu(np.ones((n, n), dtype=bool), k=1)
            scores = np.where(mask, np.float32(-1e9), scores).astype(np.float32)
        probs = self.attn_softmax.forward(scores, backend)
        ctx = self._bmm(backend, probs, v)  # (b, h, n, hd)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(b, n, d)
        out = self.proj.forward(ctx, backend)
        self._cache = (q, k, v, probs)
        return out

    @staticmethod
    def _bmm(backend: ComputeBackend, a: np.ndarray, b_: np.ndarray) -> np.ndarray:
        """Batched matmul routed through the backend as ONE kernel call.

        Both operands are activation/KV-derived, so they bypass the
        prepared-operand cache; the batched entry point replaces the old
        per-head Python loop with a single fused emulation kernel.
        """
        lead = a.shape[:-2]
        a2 = a.reshape(-1, *a.shape[-2:])
        b2 = b_.reshape(-1, *b_.shape[-2:])
        out = backend.matmul_batched(a2, b2)
        return out.reshape(*lead, *out.shape[-2:])

    def forward_step(
        self,
        x: np.ndarray,
        kv_cache: dict,
        backend: ComputeBackend | None = None,
    ) -> np.ndarray:
        """Incremental decode: one new token attends over the KV cache.

        ``x`` has shape ``(b, 1, dim)``; ``kv_cache`` holds ``"k"``/``"v"``
        arrays of shape ``(b, h, t, hd)`` (empty arrays for ``t = 0``) and
        is updated in place.  Only causal attention supports stepping.
        """
        if not self.causal:
            raise ConfigurationError("forward_step requires causal attention")
        backend = backend or FP32Backend()
        b, n, d = x.shape
        if n != 1:
            raise ConfigurationError("forward_step consumes exactly one token")
        h, hd = self.n_heads, self.head_dim
        qkv = self.qkv.forward(x, backend)
        qkv = qkv.reshape(b, 1, 3, h, hd).transpose(2, 0, 3, 1, 4)
        q, k_new, v_new = qkv[0], qkv[1], qkv[2]  # (b, h, 1, hd)
        arena = kv_cache.get("arena")
        if arena is not None:
            # Preallocated KV arena: one in-place write, zero-copy views
            # (no per-token re-stack — see repro.runtime.plan.KvArena).
            arena.append(k_new, v_new)
            k, v = arena.views()
            kv_cache["k"], kv_cache["v"] = k, v
        elif kv_cache["k"].size == 0:
            kv_cache["k"], kv_cache["v"] = k_new, v_new
            k, v = k_new, v_new
        else:
            kv_cache["k"] = np.concatenate([kv_cache["k"], k_new], axis=2)
            kv_cache["v"] = np.concatenate([kv_cache["v"], v_new], axis=2)
            k, v = kv_cache["k"], kv_cache["v"]
        scores = self._bmm(backend, q, k.transpose(0, 1, 3, 2)) * self.scale
        probs = self.attn_softmax.forward(scores.astype(np.float32), backend)
        ctx = self._bmm(backend, probs, v).transpose(0, 2, 1, 3).reshape(b, 1, d)
        return self.proj.forward(ctx.astype(np.float32), backend)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "forward() must run before backward()"
        q, k, v, probs = self._cache
        b, h, n, hd = q.shape
        d = self.dim
        dctx = self.proj.backward(dout)  # (b, n, d)
        dctx = dctx.reshape(b, n, h, hd).transpose(0, 2, 1, 3)  # (b, h, n, hd)

        p64 = probs.astype(np.float64)
        dprobs = dctx.astype(np.float64) @ v.astype(np.float64).transpose(0, 1, 3, 2)
        dv = p64.transpose(0, 1, 3, 2) @ dctx.astype(np.float64)
        self.attn_softmax._y = probs
        dscores = self.attn_softmax.backward(dprobs.astype(np.float32)).astype(np.float64)
        dscores *= self.scale
        dq = dscores @ k.astype(np.float64)
        dk = dscores.transpose(0, 1, 3, 2) @ q.astype(np.float64)

        dqkv = np.stack([dq, dk, dv])  # (3, b, h, n, hd)
        dqkv = dqkv.transpose(1, 3, 0, 2, 4).reshape(b, n, 3 * d).astype(np.float32)
        return self.qkv.backward(dqkv)
