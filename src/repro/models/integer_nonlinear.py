"""Integer-only non-linear approximations (the I-BERT design point, ref [4]).

The paper's related work contrasts two ways to handle Transformer
non-linearities: keep them in high-precision float (the paper's choice) or
approximate them in integer arithmetic a la I-BERT (Kim et al., the
paper's ref [4]) — which recovers accuracy only with quantization-aware
retraining.  This module implements the I-BERT approximations from scratch
so the competing design point is an *implemented baseline*, not a citation:

* ``i_exp``: integer-only exponential via base-2 range reduction and the
  I-BERT second-order polynomial ``0.3585 (x + 1.353)^2 + 0.344`` evaluated
  in fixed point;
* ``i_softmax``: integer softmax built on ``i_exp``;
* ``i_gelu``: integer GELU via the I-BERT sigmoid-like erf polynomial;
* ``i_sqrt``: Newton integer square root (for integer LayerNorm).

All functions take fixed-point inputs ``(q, scale)`` with ``value = q *
scale`` and return the same representation; internal arithmetic uses only
integer add/mul/shift, as the hardware they target would.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["i_exp", "i_softmax", "i_gelu", "i_sqrt", "IBERT_OUTPUT_BITS"]

IBERT_OUTPUT_BITS = 30  # internal fixed-point width of the i-exp output

_LN2 = float(np.log(2.0))


def _i_poly(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """I-BERT's integer 2nd-order polynomial for exp on [-ln2, 0].

    ``L(x) = 0.3585 (x + 1.353)^2 + 0.344``; coefficients are folded into
    the fixed-point grid so only integer ops remain.
    """
    b_int = np.floor(1.353 / scale).astype(np.int64)
    c_int = np.floor(0.344 / (0.3585 * scale**2)).astype(np.int64)
    shifted = q + b_int
    out = shifted * shifted + c_int
    return out, 0.3585 * scale**2


def i_exp(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """Integer-only exp for non-positive fixed-point inputs."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    q = np.asarray(q, dtype=np.int64)
    # Coarse grids (scale > ln2) degenerate to a single-step reduction.
    ln2_int = np.int64(max(int(np.floor(_LN2 / scale)), 1))
    # Range reduction: x = -z*ln2 + r, r in (-ln2, 0].
    z = np.maximum((-q) // ln2_int, 0)
    r = q + z * ln2_int
    poly, poly_scale = _i_poly(r, scale)
    # exp(x) = 2^-z * L(r): arithmetic shift implements the 2^-z.
    z_c = np.minimum(z, 62)
    out = poly >> z_c
    return out, poly_scale


def i_softmax(q: np.ndarray, scale: float, *, out_bits: int = 15) -> tuple[np.ndarray, float]:
    """Integer softmax over the trailing axis (I-BERT Algorithm 2)."""
    q = np.asarray(q, dtype=np.int64)
    q = q - q.max(axis=-1, keepdims=True)
    e, e_scale = i_exp(q, scale)
    total = e.sum(axis=-1, keepdims=True)
    total = np.maximum(total, 1)
    # out = e / total in (0, 1], requantized to out_bits fraction bits.
    factor = np.int64(1) << out_bits
    out = (e * factor) // total
    return out, 1.0 / factor


def i_gelu(q: np.ndarray, scale: float) -> tuple[np.ndarray, float]:
    """Integer GELU via I-BERT's i-erf polynomial.

    ``gelu(x) ~ x * 0.5 (1 + erf(x / sqrt(2)))`` with
    ``erf(t) ~ sign(t) * L(min(|t|, -b))``, ``L(t) = a (t + b)^2 + c``,
    a = -0.2888, b = -1.769, c = 1.
    """
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    q = np.asarray(q, dtype=np.int64)
    a, b, c = -0.2888, -1.769, 1.0
    s_erf = scale / float(np.sqrt(2.0))
    b_int = np.int64(np.floor(b / s_erf))
    c_int = np.int64(np.floor(c / (a * s_erf**2)))
    t = np.minimum(np.abs(q), -b_int)
    lpoly = (t + b_int) ** 2 + c_int
    erf_q = np.sign(q) * lpoly
    erf_scale = a * s_erf**2
    # gelu = x * (erf + 1) / 2; fold the +1 into the erf grid.
    one_int = np.int64(np.floor(1.0 / erf_scale))
    out = q * (erf_q + one_int)
    return out, scale * erf_scale / 2.0


def i_sqrt(n: np.ndarray) -> np.ndarray:
    """Integer Newton square root: floor(sqrt(n)) elementwise."""
    n = np.asarray(n, dtype=np.int64)
    if (n < 0).any():
        raise ConfigurationError("i_sqrt of a negative value")
    x = n.copy()
    x[x == 0] = 0
    guess = np.maximum(n, 1)
    # Bit-length-based initial guess, then Newton iterations.
    bl = np.zeros_like(n)
    tmp = guess.copy()
    while (tmp > 0).any():
        bl = bl + (tmp > 0)
        tmp >>= 1
    est = np.int64(1) << ((bl + 1) // 2)
    for _ in range(20):
        nxt = (est + np.maximum(guess, 1) // np.maximum(est, 1)) >> 1
        done = nxt >= est
        est = np.where(done, est, nxt)
    out = np.where(n == 0, 0, est)
    # Final correction to floor(sqrt(n)).
    out = np.where(out * out > n, out - 1, out)
    out = np.where((out + 1) * (out + 1) <= n, out + 1, out)
    return out
