"""Decoder-style (LLaMA-family) Transformer substrate.

The paper's introduction motivates the design with large language models
(OPT, LLaMA-2 are its refs [2][10]) and argues a run-time *programmable*
non-linear unit is needed because "new non-linear functions are constantly
being introduced".  This module supplies that workload family from scratch:
RMSNorm (LLaMA's normalizer), causal self-attention, a SwiGLU MLP, and a
small trainable language model with greedy generation — all running through
the same arithmetic backends (bfp8 linear + fp32 non-linear) with zero
hardware change, the corresponding vector programs living in
``repro.runtime.vector_ops``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.attention import MultiHeadSelfAttention
from repro.models.backend import ComputeBackend, FP32Backend
from repro.models.layers import Embedding, Linear, Module

__all__ = ["RMSNorm", "SwiGLUMLP", "DecoderBlock", "TinyLM"]


class RMSNorm(Module):
    """Root-mean-square normalization: ``x / rms(x) * gamma`` (no mean/beta)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim, self.eps = dim, eps
        self.params["gamma"] = np.ones(dim, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        gamma = self.params["gamma"]

        def fn(v: np.ndarray) -> np.ndarray:
            ms = (v.astype(np.float64) ** 2).mean(-1, keepdims=True)
            inv = (1.0 / np.sqrt(ms + self.eps)).astype(np.float32)
            norm = v * inv
            self._cache = (v, inv, norm)
            return norm * gamma

        return backend.nonlinear("rmsnorm", fn, x.astype(np.float32))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x, inv, norm = self._cache
        gamma = self.params["gamma"]
        n = x.shape[-1]
        self.grads["gamma"] = self.grads.get("gamma", 0) + (
            (dout * norm).reshape(-1, n).sum(0).astype(np.float32)
        )
        dnorm = (dout * gamma).astype(np.float64)
        x64 = x.astype(np.float64)
        inv64 = inv.astype(np.float64)
        # d/dx of x * (mean(x^2)+eps)^(-1/2)
        dot = (dnorm * x64).mean(-1, keepdims=True)
        dx = dnorm * inv64 - x64 * (inv64**3) * dot
        return dx.astype(np.float32)


class SwiGLUMLP(Module):
    """LLaMA-style gated MLP: ``W2( silu(W_gate x) * (W_up x) )``."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.gate = Linear(dim, hidden, bias=False, rng=rng)
        self.up = Linear(dim, hidden, bias=False, rng=rng)
        self.down = Linear(hidden, dim, bias=False, rng=rng)
        self._cache: tuple | None = None

    @staticmethod
    def _silu(z: np.ndarray) -> np.ndarray:
        return z / (1.0 + np.exp(-z))

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        g = self.gate.forward(x, backend)
        u = self.up.forward(x, backend)

        def fn(gu: np.ndarray) -> np.ndarray:
            half = gu.shape[-1] // 2
            gg, uu = gu[..., :half], gu[..., half:]
            act = self._silu(gg.astype(np.float64)).astype(np.float32)
            self._cache = (gg, uu, act)
            return act * uu

        gated = backend.nonlinear("swiglu", fn, np.concatenate([g, u], axis=-1))
        return self.down.forward(gated, backend)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        gg, uu, act = self._cache
        dgated = self.down.backward(dout)
        du = dgated * act
        z = gg.astype(np.float64)
        sig = 1.0 / (1.0 + np.exp(-z))
        dsilu = sig * (1.0 + z * (1.0 - sig))
        dg = (dgated * uu).astype(np.float64) * dsilu
        dx = self.gate.backward(dg.astype(np.float32)) + self.up.backward(
            du.astype(np.float32)
        )
        return dx.astype(np.float32)


class DecoderBlock(Module):
    """Pre-RMSNorm causal block: x + Attn(RMS(x)); x + SwiGLU(RMS(x))."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        mlp_ratio: float = 8 / 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.norm1 = RMSNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads, rng=rng, causal=True)
        self.norm2 = RMSNorm(dim)
        hidden = int(dim * mlp_ratio)
        self.mlp = SwiGLUMLP(dim, hidden, rng=rng)

    def prepare(self, backend: ComputeBackend) -> None:
        # Warm under the same scope names forward() pushes, so prepare-time
        # weight quantization is attributed to the layer that owns it.
        with backend.scope("attn"):
            self.attn.prepare(backend)
        with backend.scope("mlp"):
            self.mlp.prepare(backend)

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        with backend.scope("attn"):
            x = backend.requantize(
                x + self.attn.forward(self.norm1.forward(x, backend), backend)
            )
        with backend.scope("mlp"):
            x = backend.requantize(
                x + self.mlp.forward(self.norm2.forward(x, backend), backend)
            )
        return x.astype(np.float32)

    def forward_step(
        self, x: np.ndarray, kv_cache: dict, backend: ComputeBackend | None = None
    ) -> np.ndarray:
        """Incremental decode through the block with a shared KV cache."""
        backend = backend or FP32Backend()
        with backend.scope("attn"):
            x = backend.requantize(
                x + self.attn.forward_step(self.norm1.forward(x, backend), kv_cache, backend)
            )
        with backend.scope("mlp"):
            x = backend.requantize(
                x + self.mlp.forward(self.norm2.forward(x, backend), backend)
            )
        return x.astype(np.float32)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        d = dout + self.norm2.backward(self.mlp.backward(dout))
        d = d + self.norm1.backward(self.attn.backward(d))
        return d.astype(np.float32)


class TinyLM(Module):
    """A small causal language model (next-token prediction).

    Token embedding + learned positions, ``depth`` decoder blocks, RMSNorm,
    and an untied linear head over the vocabulary.
    """

    def __init__(
        self,
        *,
        vocab: int = 16,
        seq_len: int = 16,
        dim: int = 32,
        depth: int = 2,
        n_heads: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab, self.seq_len, self.dim = vocab, seq_len, dim
        self.embed = Embedding(vocab, dim, rng=rng)
        self.params["pos_embed"] = rng.normal(0, 0.02, (1, seq_len, dim)).astype(
            np.float32
        )
        self.blocks = [DecoderBlock(dim, n_heads, rng=rng) for _ in range(depth)]
        self.norm = RMSNorm(dim)
        self.head = Linear(dim, vocab, bias=False, rng=rng)

    def prepare(self, backend: ComputeBackend) -> None:
        for i, blk in enumerate(self.blocks):
            with backend.scope(f"block{i}"):
                blk.prepare(backend)
        with backend.scope("head"):
            self.head.prepare(backend)

    def forward(self, tokens: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        """Logits for every position: shape ``(batch, seq, vocab)``."""
        backend = backend or FP32Backend()
        tokens = np.asarray(tokens)
        if tokens.shape[-1] > self.seq_len:
            raise ConfigurationError(
                f"sequence longer than context ({tokens.shape[-1]} > {self.seq_len})"
            )
        n = tokens.shape[-1]
        x = self.embed.forward(tokens) + self.params["pos_embed"][:, :n]
        x = x.astype(np.float32)
        for i, blk in enumerate(self.blocks):
            with backend.scope(f"block{i}"):
                x = blk.forward(x, backend)
        with backend.scope("final_norm"):
            x = self.norm.forward(x, backend)
        with backend.scope("head"):
            return self.head.forward(x, backend)

    def backward(self, dlogits: np.ndarray) -> None:
        d = self.head.backward(dlogits)
        d = self.norm.backward(d)
        for blk in reversed(self.blocks):
            d = blk.backward(d)
        n = d.shape[1]
        pos_grad = d.sum(0, keepdims=True).astype(np.float32)
        g = self.grads.get("pos_embed")
        if not isinstance(g, np.ndarray):
            g = np.zeros_like(self.params["pos_embed"])
        g[:, :n] += pos_grad
        self.grads["pos_embed"] = g
        self.embed.backward(d)

    def generate(
        self,
        prompt: np.ndarray,
        n_tokens: int,
        backend: ComputeBackend | None = None,
    ) -> np.ndarray:
        """Greedy decoding from a 1-D prompt (full-context recompute)."""
        seq = list(np.asarray(prompt).reshape(-1))
        for _ in range(n_tokens):
            ctx = np.array(seq[-self.seq_len :])[None, :]
            logits = self.forward(ctx, backend)
            seq.append(int(np.argmax(logits[0, -1])))
        return np.array(seq)

    def init_cache(self, *, capacity: int | None = None) -> list[dict]:
        """Fresh per-block KV caches for incremental decoding.

        Each entry is backed by a preallocated :class:`KvArena` (in-place
        appends with capacity doubling, capped at the context window)
        instead of per-token ``np.concatenate`` re-stacks; ``"k"``/``"v"``
        stay zero-copy views of the arena so existing consumers see the
        same arrays they always did.
        """
        from repro.runtime.plan import KvArena

        caches = []
        for blk in self.blocks:
            arena = KvArena(
                1, blk.attn.n_heads, blk.attn.head_dim,
                capacity=min(16, self.seq_len) if capacity is None else capacity,
                max_capacity=self.seq_len,
            )
            k, v = arena.row_kv(0)
            caches.append({"k": k, "v": v, "arena": arena, "row": 0})
        return caches

    def forward_step(
        self,
        token: int,
        position: int,
        caches: list[dict],
        backend: ComputeBackend | None = None,
        *,
        compiled: bool | None = None,
    ) -> np.ndarray:
        """One autoregressive step: logits for the next token.

        The KV-cache decode path — every linear layer is a single-row
        matmul (the N_X = 1 worst case of Eqn 9, see
        ``repro.runtime.scheduler.compile_decoder``).  A batch-of-one
        :meth:`forward_step_batch`, so it shares the arena-backed caches
        and the compiled-plan dispatch (``compiled`` as there).
        """
        return self.forward_step_batch(
            [int(token)], [position], [caches], backend, compiled=compiled
        )[0]

    def forward_step_batch(
        self,
        tokens: list[int],
        positions: list[int],
        caches_batch: list[list[dict]],
        backend: ComputeBackend | None = None,
        *,
        compiled: bool | None = None,
    ) -> np.ndarray:
        """One autoregressive step for a *batch* of independent sessions.

        This is the compute shape dynamic batching buys (see
        ``repro.serve``): sessions at the same position are stacked along
        the batch axis so every linear layer runs as ONE ``B``-row matmul
        — one weight pass through the array instead of ``B`` (check
        ``backend.stats()["matmuls"]``), the N_X amortization of
        ``compile_decoder(batch=B, phase="decode")``.  Sessions at
        different positions fall into separate groups (their KV tensors
        cannot stack); per-session attention still reads each session's
        own cache.  Each session's ``caches`` list is updated in place,
        and the returned logits have shape ``(B, vocab)`` in input order.
        Per-head attention matmuls likewise run as one batched 3-D kernel
        per group (``ComputeBackend.matmul_batched``) instead of a
        Python-level loop over heads and sessions.

        Equivalent to ``B`` :meth:`forward_step` calls under exact fp32;
        block-fp backends may differ in low mantissa bits because batched
        rows share 8x8 block exponents — exactly as on the hardware.

        When ``compiled`` is not explicitly ``False`` (and nothing wants
        per-op observation — see :func:`repro.runtime.plan.compiled_active`)
        the step executes through a traced :class:`~repro.runtime.plan.
        DecodePlan`: bit-identical logits, no per-layer Python dispatch.
        Untraceable models and shapes fall back to this eager body.
        """
        from repro.runtime import plan as _plan

        if backend is None:
            backend = FP32Backend()
            if compiled is None:
                # A throwaway default backend gains nothing from a plan
                # (the plan cache is keyed by backend identity).
                compiled = False
        if not (len(tokens) == len(positions) == len(caches_batch)):
            raise ConfigurationError("batch fields must have equal length")
        if any(p >= self.seq_len for p in positions):
            raise ConfigurationError("position beyond the context window")
        out = np.zeros((len(tokens), self.vocab), dtype=np.float32)
        groups: dict[int, list[int]] = {}
        for i, pos in enumerate(positions):
            groups.setdefault(pos, []).append(i)
        for pos, idxs in groups.items():
            b = len(idxs)
            # Bind each block's per-session KV to one shared arena (zero
            # copies in the steady state; a one-time stack on regroup).
            arenas = []
            for bi, blk in enumerate(self.blocks):
                arenas.append(_plan.bind_group_cache(
                    [caches_batch[i][bi] for i in idxs],
                    blk.attn.n_heads, blk.attn.head_dim,
                    max_capacity=self.seq_len,
                ))
            toks = np.array([tokens[i] for i in idxs]).reshape(b, 1)
            plan = None
            if _plan.compiled_active(backend, compiled):
                plan = _plan.resolve_plan(self, backend, b)
            if plan is not None and not plan.take_sample(pos, b):
                logits = plan.replay(toks, pos, arenas, backend)
            else:
                x = self.embed.forward(toks)
                x = (x + self.params["pos_embed"][:, pos : pos + 1]).astype(
                    np.float32
                )
                for bi, (blk, arena) in enumerate(zip(self.blocks, arenas)):
                    with backend.scope(f"block{bi}"):
                        x = blk.forward_step(x, {"arena": arena}, backend)
                with backend.scope("final_norm"):
                    x = self.norm.forward(x, backend)
                with backend.scope("head"):
                    logits = self.head.forward(x, backend)[:, 0]
            for j, i in enumerate(idxs):
                out[i] = logits[j]
                for bi in range(len(self.blocks)):
                    entry = caches_batch[i][bi]
                    entry["k"], entry["v"] = arenas[bi].row_kv(entry["row"])
        return out

    def generate_cached(
        self,
        prompt: np.ndarray,
        n_tokens: int,
        backend: ComputeBackend | None = None,
        *,
        compiled: bool | None = None,
    ) -> np.ndarray:
        """Greedy decoding with a KV cache (equivalent to :meth:`generate`
        while the sequence fits the context window; property-tested)."""
        prompt = np.asarray(prompt).reshape(-1)
        if backend is not None:
            # Warm the prepared-operand cache before the decode loop, the
            # way the hardware loads Y BRAM once before streaming tokens.
            self.prepare(backend)
        caches = self.init_cache()
        logits = None
        for pos, tok in enumerate(prompt):
            logits = self.forward_step(
                int(tok), pos, caches, backend, compiled=compiled
            )
        seq = list(prompt)
        for _ in range(n_tokens):
            nxt = int(np.argmax(logits))
            seq.append(nxt)
            if len(seq) >= self.seq_len:
                break
            logits = self.forward_step(
                nxt, len(seq) - 1, caches, backend, compiled=compiled
            )
        return np.array(seq)
