"""Layer-wise quantization sensitivity analysis (paper Section IV-A).

The paper's related-work discussion rests on the finding that "different
parts of DNN models show varying levels of vulnerability to quantization
errors" — linear layers are resilient at very low bitwidths while the
non-linear operations dominate accuracy loss.  This module measures that
directly on our models: it quantizes *one component class at a time*
(linear matmuls / softmax / GELU / LayerNorm / residual stream) and records
the output perturbation each class alone contributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.arith.bfp_matmul import bfp_matmul_emulate
from repro.formats.int8q import quantize_intn
from repro.models.backend import ComputeBackend
from repro.models.quantized import logit_deviation
from repro.models.vit import SequenceClassifier

__all__ = ["SelectiveBackend", "COMPONENT_CLASSES", "component_sensitivity"]

COMPONENT_CLASSES = ("linear", "softmax", "gelu", "layernorm", "residual")


class SelectiveBackend(ComputeBackend):
    """Quantize exactly one component class, leave the rest exact fp32.

    ``scheme`` is ``("bfp", man_bits)`` or ``("int", bits)``; quantization
    applies to the selected class only:

    * ``linear``: matmul operands through the scheme's grid;
    * ``softmax``/``gelu``/``layernorm``: that function's input and output
      tensors snapped to the grid;
    * ``residual``: the residual-stream tensors snapped to the grid.
    """

    def __init__(self, target: str, scheme: tuple[str, int]) -> None:
        if target not in COMPONENT_CLASSES:
            raise ValueError(f"unknown component class {target!r}")
        kind, bits = scheme
        if kind not in ("bfp", "int"):
            raise ValueError(f"unknown scheme kind {kind!r}")
        super().__init__(name=f"{kind}{bits}@{target}")
        self.target = target
        self.kind = kind
        self.bits = bits

    # -- grids ----------------------------------------------------------------
    def _snap(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "int":
            return (
                quantize_intn(x, self.bits).decode().reshape(x.shape).astype(np.float32)
            )
        from repro.formats.blocking import BfpMatrix

        flat = x.reshape(-1, x.shape[-1]) if x.ndim != 2 else x
        return (
            BfpMatrix.from_dense(flat, man_bits=self.bits)
            .to_dense()
            .reshape(x.shape)
            .astype(np.float32)
        )

    # -- hooks ----------------------------------------------------------------
    def _matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        if self.target != "linear":
            return super()._matmul(x, w)
        if self.kind == "bfp":
            return bfp_matmul_emulate(x, w, man_bits=self.bits).astype(np.float32)
        from repro.formats.int8q import int8_matmul

        return int8_matmul(
            quantize_intn(x, self.bits), quantize_intn(w, self.bits)
        ).astype(np.float32)

    def _nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        if kind != self.target:
            return fn(x).astype(np.float32)
        return self._snap(fn(self._snap(x)))

    def requantize(self, x: np.ndarray) -> np.ndarray:
        if self.target != "residual":
            return x.astype(np.float32)
        return self._snap(x)


@dataclass(frozen=True)
class SensitivityRow:
    component: str
    scheme: str
    logit_rmse: float
    agreement: float


def component_sensitivity(
    model: SequenceClassifier,
    tokens: np.ndarray,
    *,
    schemes: list[tuple[str, int]] | None = None,
) -> list[SensitivityRow]:
    """Perturbation caused by quantizing each component class alone."""
    schemes = schemes or [("bfp", 8), ("int", 8)]
    ref = model.forward(tokens)
    ref_pred = np.argmax(ref, axis=1)
    rows = []
    for kind, bits in schemes:
        for comp in COMPONENT_CLASSES:
            be = SelectiveBackend(comp, (kind, bits))
            logits = model.forward(tokens, be)
            rows.append(
                SensitivityRow(
                    component=comp,
                    scheme=f"{kind}{bits}",
                    logit_rmse=logit_deviation(ref, logits),
                    agreement=float(
                        (np.argmax(logits, axis=1) == ref_pred).mean()
                    ),
                )
            )
    return rows
