"""Synthetic sequence-classification datasets for the accuracy experiments.

The paper's accuracy claim — bfp8 linear + fp32 non-linear preserves a
pre-trained Transformer's accuracy without retraining, while conventional
int8-everything degrades it — is a property of the arithmetic, so any task
a Transformer genuinely has to *learn* (attention-dependent, not linearly
separable from token counts alone) suffices.  Three tasks of increasing
difficulty are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Dataset", "majority_task", "matching_pairs_task", "needle_task", "TASKS"]


@dataclass(frozen=True)
class Dataset:
    """Token sequences with integer class labels."""

    name: str
    tokens: np.ndarray  # (n, seq_len) int
    labels: np.ndarray  # (n,) int
    vocab: int
    n_classes: int

    def split(self, train_frac: float = 0.8) -> tuple["Dataset", "Dataset"]:
        n = self.tokens.shape[0]
        k = int(n * train_frac)
        mk = lambda sl, tag: Dataset(
            f"{self.name}-{tag}", self.tokens[sl], self.labels[sl],
            self.vocab, self.n_classes,
        )
        return mk(slice(0, k), "train"), mk(slice(k, n), "test")


def majority_task(
    n: int = 2048, seq_len: int = 16, vocab: int = 8, seed: int = 0
) -> Dataset:
    """Label = the most frequent token's parity (ties broken by value)."""
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, vocab, (n, seq_len))
    counts = np.zeros((n, vocab), dtype=np.int64)
    for v in range(vocab):
        counts[:, v] = (tokens == v).sum(axis=1)
    labels = (np.argmax(counts, axis=1) % 2).astype(np.int64)
    return Dataset("majority", tokens, labels, vocab, 2)


def matching_pairs_task(
    n: int = 2048, seq_len: int = 16, vocab: int = 16, seed: int = 0
) -> Dataset:
    """Label = whether the first token reappears later in the sequence.

    Requires content-based attention from position 0 to the rest.
    """
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, vocab, (n, seq_len))
    # Balance the classes by construction.
    for i in range(n):
        want_match = i % 2 == 0
        first = tokens[i, 0]
        rest = tokens[i, 1:]
        has = (rest == first).any()
        if want_match and not has:
            rest[rng.integers(0, seq_len - 1)] = first
        elif not want_match and has:
            repl = (first + 1 + rng.integers(0, vocab - 1)) % vocab
            rest[rest == first] = repl
    labels = (tokens[:, 1:] == tokens[:, :1]).any(axis=1).astype(np.int64)
    perm = rng.permutation(n)
    return Dataset("matching-pairs", tokens[perm], labels[perm], vocab, 2)


def needle_task(
    n: int = 2048, seq_len: int = 16, vocab: int = 16, seed: int = 0
) -> Dataset:
    """Label = token immediately after the (unique) marker token, mod 2."""
    rng = np.random.default_rng(seed)
    marker = vocab - 1
    tokens = rng.integers(0, vocab - 1, (n, seq_len))
    pos = rng.integers(0, seq_len - 1, n)
    tokens[np.arange(n), pos] = marker
    labels = (tokens[np.arange(n), pos + 1] % 2).astype(np.int64)
    return Dataset("needle", tokens, labels, vocab, 2)


def additive_lm_sequences(
    n: int = 1024, seq_len: int = 16, vocab: int = 16, seed: int = 0
) -> Dataset:
    """Language-model task: ``t[i] = (t[i-1] + t[i-2]) mod vocab``.

    Fully deterministic after the two seed tokens, but predicting it
    requires attending to *both* previous positions — a minimal test that a
    causal decoder has actually learned content-based attention.  The
    ``labels`` field stores the next-token target of the final position.
    """
    rng = np.random.default_rng(seed)
    tokens = np.zeros((n, seq_len), dtype=np.int64)
    tokens[:, 0] = rng.integers(0, vocab, n)
    tokens[:, 1] = rng.integers(0, vocab, n)
    for i in range(2, seq_len):
        tokens[:, i] = (tokens[:, i - 1] + tokens[:, i - 2]) % vocab
    labels = (tokens[:, -1] + tokens[:, -2]) % vocab
    return Dataset("additive-lm", tokens, labels, vocab, vocab)


TASKS = {
    "majority": majority_task,
    "matching-pairs": matching_pairs_task,
    "needle": needle_task,
    "additive-lm": additive_lm_sequences,
}
