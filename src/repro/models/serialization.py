"""Model weight serialization: save/load parameter trees as ``.npz``.

The deployment story starts from a *pre-trained* model; this gives the
library the corresponding practical surface — train once, save, reload in
a serving process, quantize on the fly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.models.layers import Module

__all__ = ["save_weights", "load_weights", "state_dict", "load_state_dict"]


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Flat name -> array mapping of every parameter (copies)."""
    return {k: v.copy() for k, v in model.named_parameters().items()}


def load_state_dict(model: Module, state: dict[str, np.ndarray], *,
                    strict: bool = True) -> None:
    """Copy arrays into the model's parameters, in place.

    ``strict`` requires the key sets and shapes to match exactly.
    """
    params = model.named_parameters()
    missing = set(params) - set(state)
    unexpected = set(state) - set(params)
    if strict and (missing or unexpected):
        raise ConfigurationError(
            f"state mismatch: missing={sorted(missing)[:5]} "
            f"unexpected={sorted(unexpected)[:5]}"
        )
    for name, target in params.items():
        if name not in state:
            continue
        src = np.asarray(state[name])
        if src.shape != target.shape:
            raise ConfigurationError(
                f"shape mismatch for {name!r}: {src.shape} vs {target.shape}"
            )
        target[...] = src.astype(target.dtype)


def save_weights(model: Module, path: str | Path) -> None:
    """Serialize all parameters to a compressed ``.npz`` archive."""
    np.savez_compressed(Path(path), **state_dict(model))


def load_weights(model: Module, path: str | Path, *, strict: bool = True) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``."""
    with np.load(Path(path)) as archive:
        load_state_dict(model, dict(archive.items()), strict=strict)
