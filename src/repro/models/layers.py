"""NumPy Transformer layers with explicit forward/backward passes.

Everything is built from scratch on NumPy: no autograd.  Each layer caches
what its backward pass needs; gradients accumulate into ``grads`` keyed like
``params``.  Forward passes take an optional
:class:`~repro.models.backend.ComputeBackend` so the same model definition
runs under fp32, bfp8-mixed, or int8 arithmetic regimes (backward is fp32
only — the paper's whole point is *no retraining*, so only inference runs
quantized).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.backend import ComputeBackend, FP32Backend

__all__ = [
    "Module",
    "Linear",
    "LayerNorm",
    "GELU",
    "Softmax",
    "Embedding",
    "gelu",
    "softmax",
]


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(x)
    return e / np.sum(e, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """tanh-form GELU (the approximation the hardware programs implement)."""
    c = np.sqrt(2.0 / np.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


def _gelu_grad(x: np.ndarray) -> np.ndarray:
    c = np.sqrt(2.0 / np.pi)
    u = c * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du = c * (1.0 + 3 * 0.044715 * x**2)
    return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du


class Module:
    """Minimal parameter container with gradient slots."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    def zero_grad(self) -> None:
        for k in self.params:
            self.grads[k] = np.zeros_like(self.params[k])
        for child in self.children():
            child.zero_grad()

    def children(self) -> list["Module"]:
        out = []
        for v in self.__dict__.values():
            if isinstance(v, Module):
                out.append(v)
            elif isinstance(v, (list, tuple)):
                out.extend(c for c in v if isinstance(c, Module))
        return out

    def named_parameters(self, prefix: str = "") -> dict[str, np.ndarray]:
        out = {f"{prefix}{k}": v for k, v in self.params.items()}
        for i, child in enumerate(self.children()):
            out.update(child.named_parameters(f"{prefix}{type(child).__name__.lower()}{i}."))
        return out

    def named_grads(self, prefix: str = "") -> dict[str, np.ndarray]:
        out = {f"{prefix}{k}": v for k, v in self.grads.items()}
        for i, child in enumerate(self.children()):
            out.update(child.named_grads(f"{prefix}{type(child).__name__.lower()}{i}."))
        return out

    def n_parameters(self) -> int:
        return sum(int(v.size) for v in self.named_parameters().values())

    def matmul_weights(self) -> list[np.ndarray]:
        """Weight matrices this module (and children) feed to matmul.

        Only these benefit from :meth:`ComputeBackend.prepare_weight`;
        biases, norms and embeddings never enter the systolic array.
        """
        out: list[np.ndarray] = []
        for child in self.children():
            out.extend(child.matmul_weights())
        return out

    def prepare(self, backend: ComputeBackend) -> None:
        """Warm the backend's prepared-operand cache with every matmul
        weight — the emulation analogue of loading Y BRAM before serving."""
        for w in self.matmul_weights():
            backend.prepare_weight(w)


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with backend-selected matmul."""

    def __init__(self, d_in: int, d_out: int, *, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = float(np.sqrt(2.0 / (d_in + d_out)))
        self.d_in, self.d_out = d_in, d_out
        self.params["w"] = rng.normal(0.0, scale, (d_in, d_out)).astype(np.float32)
        if bias:
            self.params["b"] = np.zeros(d_out, dtype=np.float32)
        self._x: np.ndarray | None = None

    def matmul_weights(self) -> list[np.ndarray]:
        return [self.params["w"]]

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        if x.shape[-1] != self.d_in:
            raise ConfigurationError(
                f"Linear expected trailing dim {self.d_in}, got {x.shape}"
            )
        backend = backend or FP32Backend()
        self._x = x
        flat = x.reshape(-1, self.d_in)
        y = backend.matmul(flat, backend.prepare_weight(self.params["w"]))
        if "b" in self.params:
            y = y + self.params["b"]
        return y.reshape(*x.shape[:-1], self.d_out).astype(np.float32)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "forward() must run before backward()"
        flat_x = self._x.reshape(-1, self.d_in).astype(np.float64)
        flat_d = dout.reshape(-1, self.d_out).astype(np.float64)
        self.grads["w"] = self.grads.get("w", 0) + (flat_x.T @ flat_d).astype(np.float32)
        if "b" in self.params:
            self.grads["b"] = self.grads.get("b", 0) + flat_d.sum(0).astype(np.float32)
        dx = flat_d @ self.params["w"].astype(np.float64).T
        return dx.reshape(self._x.shape).astype(np.float32)


class LayerNorm(Module):
    """LayerNorm over the trailing dimension with affine parameters."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim, self.eps = dim, eps
        self.params["gamma"] = np.ones(dim, dtype=np.float32)
        self.params["beta"] = np.zeros(dim, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        gamma, beta = self.params["gamma"], self.params["beta"]

        def fn(v: np.ndarray) -> np.ndarray:
            mu = v.mean(-1, keepdims=True)
            var = v.var(-1, keepdims=True)
            inv = 1.0 / np.sqrt(var + self.eps)
            norm = (v - mu) * inv
            self._cache = (v, mu, inv, norm)
            return norm * gamma + beta

        return backend.nonlinear("layernorm", fn, x.astype(np.float32))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        x, mu, inv, norm = self._cache
        gamma = self.params["gamma"]
        n = x.shape[-1]
        self.grads["gamma"] = self.grads.get("gamma", 0) + (dout * norm).reshape(
            -1, n
        ).sum(0).astype(np.float32)
        self.grads["beta"] = self.grads.get("beta", 0) + dout.reshape(
            -1, n
        ).sum(0).astype(np.float32)
        dnorm = dout * gamma
        dx = (
            dnorm
            - dnorm.mean(-1, keepdims=True)
            - norm * (dnorm * norm).mean(-1, keepdims=True)
        ) * inv
        return dx.astype(np.float32)


class GELU(Module):
    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        self._x = x
        return backend.nonlinear("gelu", gelu, x.astype(np.float32))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None
        return (dout * _gelu_grad(self._x.astype(np.float64))).astype(np.float32)


class Softmax(Module):
    """Softmax over the trailing axis (attention probabilities)."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        y = backend.nonlinear("softmax", softmax, x.astype(np.float32))
        self._y = y
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._y is not None
        y = self._y.astype(np.float64)
        d = dout.astype(np.float64)
        return (y * (d - (d * y).sum(-1, keepdims=True))).astype(np.float32)


class Embedding(Module):
    """Token embedding lookup."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.vocab, self.dim = vocab, dim
        self.params["w"] = rng.normal(0.0, 0.02, (vocab, dim)).astype(np.float32)
        self._idx: np.ndarray | None = None

    def forward(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if idx.size and (idx.min() < 0 or idx.max() >= self.vocab):
            raise ConfigurationError("token index out of vocabulary range")
        self._idx = idx
        return self.params["w"][idx]

    def backward(self, dout: np.ndarray) -> None:
        assert self._idx is not None
        g = self.grads.get("w")
        if not isinstance(g, np.ndarray):
            g = np.zeros_like(self.params["w"])
        np.add.at(g, self._idx.reshape(-1), dout.reshape(-1, self.dim))
        self.grads["w"] = g
