"""Analytic operation counts for ViT workloads (paper Table IV).

Linear work is counted in MACs (1 MAC = 2 ops under the paper's throughput
convention); non-linear work is counted in *elements* and converted to
FLOPs using the per-element instruction counts of the actual vector
programs in :mod:`repro.runtime.vector_ops` (1 FPU op = 2 FLOPs, matching
Eqn 8's convention).

The paper's own Table IV op counts (2465 M / 6.383 M / 145.3 M / 50.84 M)
are exposed as :data:`PAPER_TABLE4_OPS`; they are not reconcilable with an
analytic MAC count of DeiT-Small (see EXPERIMENTS.md), so the Table IV
driver reports both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.configs import ViTConfig
from repro.perf.latency import WorkloadPartition
from repro.runtime.instructions import OpCount
from repro.runtime.vector_ops import build_gelu, build_layernorm, build_softmax

__all__ = [
    "LinearOpCounts",
    "NonlinearElementCounts",
    "count_linear_macs",
    "count_nonlinear_elements",
    "nonlinear_flops_per_element",
    "table4_partitions",
    "PAPER_TABLE4_OPS",
]


@dataclass(frozen=True)
class LinearOpCounts:
    """MACs of each linear workload class (whole encoder)."""

    patch_embed: int
    qkv: int
    attn_scores: int
    attn_context: int
    attn_proj: int
    mlp: int
    head: int

    @property
    def encoder(self) -> int:
        """MACs of the 12-block encoder (paper counts blocks only)."""
        return self.qkv + self.attn_scores + self.attn_context + self.attn_proj + self.mlp

    @property
    def total(self) -> int:
        return self.encoder + self.patch_embed + self.head


@dataclass(frozen=True)
class NonlinearElementCounts:
    """Tensor element counts of each non-linear workload class (encoder)."""

    softmax: int
    gelu: int
    layernorm: int


def count_linear_macs(cfg: ViTConfig, batch: int = 1) -> LinearOpCounts:
    n, d, h, m = cfg.n_tokens, cfg.dim, cfg.n_heads, cfg.mlp_hidden
    L = cfg.depth
    per_block_qkv = n * d * 3 * d
    per_block_scores = n * n * d  # h heads x n^2 x head_dim
    per_block_context = n * n * d
    per_block_proj = n * d * d
    per_block_mlp = 2 * n * d * m
    patch = cfg.n_patches * (cfg.patch_size**2 * cfg.in_chans) * d
    head = d * cfg.n_classes
    return LinearOpCounts(
        patch_embed=batch * patch,
        qkv=batch * L * per_block_qkv,
        attn_scores=batch * L * per_block_scores,
        attn_context=batch * L * per_block_context,
        attn_proj=batch * L * per_block_proj,
        mlp=batch * L * per_block_mlp,
        head=batch * head,
    )


def count_nonlinear_elements(cfg: ViTConfig, batch: int = 1) -> NonlinearElementCounts:
    n, d, h, m = cfg.n_tokens, cfg.dim, cfg.n_heads, cfg.mlp_hidden
    L = cfg.depth
    return NonlinearElementCounts(
        softmax=batch * L * h * n * n,
        gelu=batch * L * n * m,
        layernorm=batch * L * 2 * n * d,
    )


def nonlinear_flops_per_element(exp_degree: int = 6) -> dict[str, OpCount]:
    """Per-element FPU/host op counts of the compiled vector programs."""
    return {
        "softmax": build_softmax(exp_degree).static_op_count(),
        "gelu": build_gelu(exp_degree).static_op_count(),
        "layernorm": build_layernorm().static_op_count(),
    }


# Paper Table IV, reported as-is ("OPs or FLOPs", all 12 blocks).
PAPER_TABLE4_OPS = {
    "bfp8 MatMul": 2465e6,
    "fp32 LayerNorm": 6.383e6,
    "fp32 SoftMax": 145.3e6,
    "fp32 GELU": 50.84e6,
}

# Paper Table IV latency column (ms) for reference.
PAPER_TABLE4_LATENCY_MS = {
    "bfp8 MatMul": 1.201,
    "fp32 LayerNorm": 0.425,
    "fp32 SoftMax": 9.686,
    "fp32 GELU": 3.389,
}


def table4_partitions(
    cfg: ViTConfig,
    *,
    batch: int = 1,
    exp_degree: int = 6,
    use_paper_counts: bool = False,
) -> list[WorkloadPartition]:
    """The Table IV workload partitions for a ViT config.

    With ``use_paper_counts=True`` the paper's reported op counts are used
    verbatim; otherwise counts are derived analytically (encoder blocks
    only, matching the paper's "counted from all 12 blocks" footnote).
    """
    if use_paper_counts:
        return [
            WorkloadPartition("bfp8 MatMul", PAPER_TABLE4_OPS["bfp8 MatMul"], "bfp8"),
            WorkloadPartition(
                "fp32 LayerNorm", PAPER_TABLE4_OPS["fp32 LayerNorm"], "fp32"
            ),
            WorkloadPartition("fp32 SoftMax", PAPER_TABLE4_OPS["fp32 SoftMax"], "fp32"),
            WorkloadPartition("fp32 GELU", PAPER_TABLE4_OPS["fp32 GELU"], "fp32"),
        ]
    lin = count_linear_macs(cfg, batch)
    nl = count_nonlinear_elements(cfg, batch)
    per_el = nonlinear_flops_per_element(exp_degree)
    return [
        # MAC = 2 ops; FPU op = 2 FLOPs (Eqns 7/8 conventions).
        WorkloadPartition("bfp8 MatMul", 2.0 * lin.encoder, "bfp8"),
        WorkloadPartition(
            "fp32 LayerNorm", 2.0 * nl.layernorm * per_el["layernorm"].fpu_total, "fp32"
        ),
        WorkloadPartition(
            "fp32 SoftMax", 2.0 * nl.softmax * per_el["softmax"].fpu_total, "fp32"
        ),
        WorkloadPartition(
            "fp32 GELU", 2.0 * nl.gelu * per_el["gelu"].fpu_total, "fp32"
        ),
    ]
