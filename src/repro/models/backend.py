"""Compute backends: the arithmetic regimes a Transformer can run under.

The paper's deployment story is *mixed precision*: linear layers in bfp8 on
the systolic array, non-linear layers in fp32 on the vector personality,
no retraining.  The comparison points are conventional int8 quantization
(which needs retraining to recover accuracy) and full fp32.

A backend supplies two primitives:

* ``matmul(x, w)`` — how linear layers multiply;
* ``nonlinear(kind, fn, x)`` — how a non-linear function (softmax / gelu /
  layernorm internals) is evaluated: exactly, or squeezed through a
  quantization grid first.

Since the format-registry refactor there is a single arithmetic engine:
:class:`PolicyBackend` resolves every operation through a
:class:`~repro.models.policy.PrecisionPolicy` — (layer scope path,
tensor role) -> a :class:`~repro.formats.registry.QuantFormat` — so one
model forward can run attention in bfp8, the MLP in minifloat fp8 and
the non-linear functions in exact fp32.  The historical one-class-per-
format backends survive as thin aliases that construct the equivalent
single-format policies, bit-identical to their pre-refactor behaviour:

``FP32Backend``        float32 everywhere (reference).
``BFP8MixedBackend``   the paper's regime: bfp8 linear + fp32 non-linear.
``BFP8AllBackend``     ablation: non-linear inputs/outputs also pass
                       through the bfp8 grid.
``INT8LinearBackend``  int8 per-tensor linear + fp32 non-linear.
``INT8AllBackend``     conventional int8 inference: non-linear tensors are
                       also snapped to the int8 grid (what an integer-only
                       accelerator without retraining does).
``IBERTBackend``       int8 linear + I-BERT integer non-linear programs.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cost.modes import ModeOptions, resolve_unit_mode
from repro.errors import RegistryError
from repro.formats.registry import BfpFormat, IBertFormat, QuantFormat, get_format
from repro.models.policy import (
    PolicyRule,
    PrecisionPolicy,
    get_policy,
)
from repro.obs.numerics import get_monitor
from repro.obs.profile import Profiler
from repro.perf.prepared import PreparedTensor

__all__ = [
    "ComputeBackend",
    "PolicyBackend",
    "FP32Backend",
    "BFP8MixedBackend",
    "BFP8AllBackend",
    "INT8LinearBackend",
    "INT8AllBackend",
    "IBERTBackend",
    "BACKENDS",
    "register_backend",
    "get_backend",
]


class _ScopeGuard:
    """Zero-overhead scope exit for the unobserved fast path."""

    __slots__ = ("_scopes",)

    def __init__(self, scopes: list) -> None:
        self._scopes = scopes

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        self._scopes.pop()
        return False


@dataclass
class ComputeBackend:
    """Base backend: exact float32 arithmetic, with op statistics.

    ``matmul_count`` counts weight passes (streams of Y through the
    array) and ``matmul_rows`` the activation rows they served — their
    ratio is the amortization a batched decode step achieves: B sessions
    stepped together do one weight pass per linear layer instead of B.

    Attaching a :class:`~repro.obs.profile.Profiler` makes every matmul
    and non-linear evaluation land in the profiler's current scope with
    its hardware cycle cost; models push scopes via :meth:`scope`.  The
    scope stack is always maintained (it is also the layer path a
    :class:`PolicyBackend` resolves precision against).
    ``matmul_precision``/``nonlinear_precision`` label the attribution.
    """

    name: str = "fp32"
    matmul_count: int = 0
    matmul_macs: int = 0
    matmul_rows: int = 0
    profiler: Profiler | None = field(default=None, repr=False, compare=False)
    matmul_precision: str = "fp32"
    nonlinear_precision: str = "fp32"
    _scopes: list[str] = field(
        default_factory=list, repr=False, compare=False
    )

    def matmul(
        self, x: np.ndarray, w: "np.ndarray | PreparedTensor"
    ) -> np.ndarray:
        self.matmul_count += 1
        self.matmul_macs += x.shape[0] * x.shape[1] * w.shape[1]
        self.matmul_rows += x.shape[0]
        if self.profiler is not None:
            self.profiler.record_matmul(
                x.shape[0], x.shape[1], w.shape[1],
                precision=self.matmul_precision,
            )
        return self._matmul(x, w)

    def matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Stack of independent matmuls: ``(B, m, k) @ (B, k, n)``.

        One kernel invocation for the whole stack (per-head attention,
        batched decode steps) instead of ``B`` Python-level calls; op
        statistics and profiler attribution count the ``B`` logical
        weight passes exactly as ``B`` separate :meth:`matmul` calls
        would, so amortization accounting is unchanged.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        self._check_batched(a, b)
        n_slices, m, k = a.shape
        n = b.shape[2]
        self.matmul_count += n_slices
        self.matmul_macs += n_slices * m * k * n
        self.matmul_rows += n_slices * m
        if self.profiler is not None:
            for _ in range(n_slices):
                self.profiler.record_matmul(
                    m, k, n, precision=self.matmul_precision
                )
        return self._matmul_batched(a, b)

    @staticmethod
    def _check_batched(a: np.ndarray, b: np.ndarray) -> None:
        if (
            a.ndim != 3 or b.ndim != 3
            or a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]
        ):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"bad batched matmul shapes: {a.shape} @ {b.shape}"
            )

    def prepare_weight(
        self, w: "np.ndarray | PreparedTensor"
    ) -> "np.ndarray | PreparedTensor":
        """Quantize-once handle for a weight matrix (Y-stationary residency).

        Quantizing backends return a cached :class:`PreparedTensor`
        (quantizing on first sight, reusing afterwards); the exact-fp32
        base needs no preparation and returns the array unchanged.
        Activation and KV-derived tensors must NOT pass through here —
        they change every call and would churn the cache.
        """
        return w

    def stats(self) -> dict[str, int]:
        return {
            "matmuls": self.matmul_count,
            "macs": self.matmul_macs,
            "rows": self.matmul_rows,
        }

    def reset_stats(self) -> None:
        self.matmul_count = self.matmul_macs = self.matmul_rows = 0

    def scope(self, name: str):
        """Profiling/policy scope for a model component.

        The same scope name feeds the cycle profiler, the value-domain
        numerics monitor and the policy layer path, so cycle attribution,
        quantization-health attribution and per-layer precision all share
        one layer taxonomy.

        The unobserved path (no profiler, monitor disabled) returns a
        slotted guard — a plain list append/pop with no generator frame
        or ExitStack (this runs per layer per token in decode, and used
        to be the monitor's disabled-path residue on the hot loop)."""
        if self.profiler is None and not get_monitor().enabled:
            self._scopes.append(name)
            return _ScopeGuard(self._scopes)
        return self._observed_scope(name)

    @contextmanager
    def _observed_scope(self, name: str):
        mon = get_monitor()
        self._scopes.append(name)
        try:
            with ExitStack() as stack:
                if self.profiler is not None:
                    stack.enter_context(self.profiler.scope(name))
                if mon.enabled:
                    stack.enter_context(mon.scope(name))
                yield
        finally:
            self._scopes.pop()

    @property
    def layer_path(self) -> str:
        """Dotted scope path of the component currently executing."""
        return ".".join(self._scopes)

    def _matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return (x.astype(np.float32) @ w.astype(np.float32)).astype(np.float32)

    def _matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-slice fallback so subclasses overriding only ``_matmul``
        (e.g. the sensitivity backend) keep their exact semantics."""
        return np.stack([self._matmul(a[i], b[i]) for i in range(a.shape[0])])

    def _record_quantize(self, elements: int) -> None:
        """Attribute quantization work the emulation actually performed."""
        if self.profiler is not None:
            self.profiler.record_quantize(
                int(elements), precision=self.matmul_precision
            )

    def nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        """Evaluate a non-linear function under this regime."""
        if self.profiler is not None:
            self.profiler.record_nonlinear(
                kind, int(x.size), precision=self.nonlinear_precision
            )
        return self._nonlinear(kind, fn, x)

    def _nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        """Regime-specific non-linear evaluation (override point)."""
        return fn(x).astype(np.float32)

    def requantize(self, x: np.ndarray) -> np.ndarray:
        """Snap an intermediate tensor (e.g. the residual stream) to the
        regime's storage grid.  Exact-fp32 regimes return it unchanged."""
        return x.astype(np.float32)


class PolicyBackend(ComputeBackend):
    """The arithmetic engine: a policy decides each operation's format.

    Every matmul / batched matmul / non-linear evaluation / residual
    requantization resolves ``(layer_path, role)`` through the
    :class:`~repro.models.policy.PrecisionPolicy` into a registry
    :class:`~repro.formats.registry.QuantFormat`, whose kernel then runs
    — with profiler attribution under the format's precision label and
    its array-vs-vector cost mapping, and numerics-monitor taps keyed the
    same way.  ``formats`` optionally overrides name -> format instances
    (how the legacy aliases inject ``exact_accumulate`` bfp variants
    without registering new global names).
    """

    def __init__(
        self,
        policy: PrecisionPolicy,
        *,
        name: str | None = None,
        profiler: Profiler | None = None,
        formats: dict[str, QuantFormat] | None = None,
        modes: "ModeOptions | None" = None,
    ) -> None:
        super().__init__(name=name or policy.name, profiler=profiler)
        self.policy = policy
        self.modes = modes
        self._formats: dict[str, QuantFormat] = dict(formats or {})
        self._fmt_cache: dict[tuple[str, str], QuantFormat] = {}
        self._mode_cache: dict[str, str | bool] = {}
        # Legacy attribution labels, resolved at the model root — purely
        # informational for policy backends (per-call labels come from
        # the resolved format).
        self.matmul_precision = self._fmt_at("", "linear").precision
        self.nonlinear_precision = self._fmt_at("", "nonlinear").precision

    def _format(self, fmt_name: str) -> QuantFormat:
        fmt = self._formats.get(fmt_name)
        return fmt if fmt is not None else get_format(fmt_name)

    def _fmt_at(self, layer: str, role: str) -> QuantFormat:
        key = (layer, role)
        fmt = self._fmt_cache.get(key)
        if fmt is None:
            fmt = self._format(self.policy.resolve_name(layer, role))
            self._fmt_cache[key] = fmt
        return fmt

    def _fmt(self, role: str) -> QuantFormat:
        return self._fmt_at(self.layer_path, role)

    def _unit_mode(self, fmt: QuantFormat) -> str | bool:
        """Profiler costing handle: the executing array mode's registry
        name, or ``False`` for the fp32 vector fallback."""
        cached = self._mode_cache.get(fmt.name)
        if cached is None:
            mode = resolve_unit_mode(fmt.name, self.modes)
            cached = mode.name if mode.kind == "array" else False
            self._mode_cache[fmt.name] = cached
        return cached

    def _quantize_recorder(self, fmt: QuantFormat):
        if self.profiler is None:
            return None
        profiler = self.profiler
        return lambda n: profiler.record_quantize(
            int(n), precision=fmt.precision
        )

    # -- primitives ----------------------------------------------------------
    def matmul(
        self, x: np.ndarray, w: "np.ndarray | PreparedTensor"
    ) -> np.ndarray:
        fmt = self._fmt("linear")
        self.matmul_count += 1
        self.matmul_macs += x.shape[0] * x.shape[1] * w.shape[1]
        self.matmul_rows += x.shape[0]
        if self.profiler is not None:
            self.profiler.record_matmul(
                x.shape[0], x.shape[1], w.shape[1],
                precision=fmt.precision, array=self._unit_mode(fmt),
            )
        return fmt.matmul(x, w, record=self._quantize_recorder(fmt))

    def matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        b = np.asarray(b)
        self._check_batched(a, b)
        fmt = self._fmt("attention")
        n_slices, m, k = a.shape
        n = b.shape[2]
        self.matmul_count += n_slices
        self.matmul_macs += n_slices * m * k * n
        self.matmul_rows += n_slices * m
        if self.profiler is not None:
            for _ in range(n_slices):
                self.profiler.record_matmul(
                    m, k, n, precision=fmt.precision,
                    array=self._unit_mode(fmt),
                )
        return fmt.matmul_batched(a, b, record=self._quantize_recorder(fmt))

    def prepare_weight(
        self, w: "np.ndarray | PreparedTensor"
    ) -> "np.ndarray | PreparedTensor":
        fmt = self._fmt("linear")
        return fmt.prepare_weight(w, record=self._quantize_recorder(fmt))

    def nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        fmt = self._fmt("nonlinear")
        if self.profiler is not None:
            self.profiler.record_nonlinear(
                kind, int(x.size), precision=fmt.precision
            )
        return fmt.nonlinear(kind, fn, x)

    def requantize(self, x: np.ndarray) -> np.ndarray:
        return self._fmt("residual").requantize(x)


# ---------------------------------------------------------------------------
# Legacy single-format aliases (bit-identical to the pre-registry classes)
# ---------------------------------------------------------------------------


class FP32Backend(PolicyBackend):
    def __init__(self) -> None:
        super().__init__(get_policy("fp32"), name="fp32")


class BFP8MixedBackend(PolicyBackend):
    """The paper's regime: block-fp MatMul + exact fp32 non-linear.

    ``man_bits`` selects the block-fp mantissa width (8 = the paper's bfp8;
    lower widths feed the bitwidth-sweep experiment).  ``exact_accumulate``
    replaces the hardware's truncating cross-block alignment with exact
    accumulation (ablation knob).
    """

    def __init__(self, *, exact_accumulate: bool = False, man_bits: int = 8) -> None:
        fmt = BfpFormat(man_bits=man_bits, exact_accumulate=exact_accumulate)
        name = "bfp8-mixed" if man_bits == 8 else f"bfp{man_bits}-mixed"
        policy = PrecisionPolicy(
            name=name,
            rules=(
                PolicyRule("*", "linear", fmt.name),
                PolicyRule("*", "attention", fmt.name),
            ),
            default="fp32",
        )
        super().__init__(policy, name=name, formats={fmt.name: fmt})
        self.exact_accumulate = exact_accumulate
        self.man_bits = man_bits


class BFP8AllBackend(BFP8MixedBackend):
    """Ablation: non-linear tensors also snap to the block-fp grid."""

    def __init__(self, *, man_bits: int = 8) -> None:
        fmt = BfpFormat(man_bits=man_bits)
        name = "bfp8-all" if man_bits == 8 else f"bfp{man_bits}-all"
        policy = PrecisionPolicy(name=name, rules=(), default=fmt.name)
        PolicyBackend.__init__(
            self, policy, name=name, formats={fmt.name: fmt}
        )
        self.exact_accumulate = False
        self.man_bits = man_bits


class INT8LinearBackend(PolicyBackend):
    """Per-tensor integer linear layers, exact fp32 non-linear."""

    def __init__(self, *, bits: int = 8) -> None:
        name = "int8-linear" if bits == 8 else f"int{bits}-linear"
        policy = PrecisionPolicy(
            name=name,
            rules=(
                PolicyRule("*", "linear", f"int{bits}"),
                PolicyRule("*", "attention", f"int{bits}"),
            ),
            default="fp32",
        )
        super().__init__(policy, name=name)
        self.bits = bits


class INT8AllBackend(INT8LinearBackend):
    """Conventional integer inference: non-linear tensors quantized too.

    This is the regime that, without quantization-aware retraining, loses
    accuracy on Transformers (paper Section I / IV-A): activations with
    outliers force a coarse per-tensor grid, and softmax inputs span a huge
    dynamic range.
    """

    def __init__(self, *, bits: int = 8) -> None:
        name = "int8-all" if bits == 8 else f"int{bits}-all"
        policy = PrecisionPolicy(name=name, rules=(), default=f"int{bits}")
        PolicyBackend.__init__(self, policy, name=name)
        self.bits = bits


class IBERTBackend(INT8LinearBackend):
    """Integer-only inference with I-BERT non-linear approximations.

    The competing design point of the paper's related work (ref [4]):
    int8 linear layers plus *integer-arithmetic* softmax/GELU/LayerNorm
    (second-order polynomial exp/erf, Newton integer sqrt) instead of the
    fp32 vector personality.  Published results require quantization-aware
    retraining to reach parity; here it is evaluated post-training, like
    every other regime.
    """

    def __init__(self, *, bits: int = 8, act_bits: int = 8) -> None:
        fmt = IBertFormat(bits=bits, act_bits=act_bits)
        policy = PrecisionPolicy(
            name="ibert",
            rules=(
                PolicyRule("*", "linear", f"int{bits}"),
                PolicyRule("*", "attention", f"int{bits}"),
            ),
            default="ibert",
        )
        PolicyBackend.__init__(
            self, policy, name="ibert", formats={"ibert": fmt}
        )
        self.bits = bits
        self.act_bits = act_bits


BACKENDS: dict[str, Callable[[], ComputeBackend]] = {}


def register_backend(name: str, factory: Callable[[], ComputeBackend]) -> None:
    """Register a backend factory; duplicate names raise (no silent
    overwrite — resolution must not depend on import order)."""
    if name in BACKENDS:
        raise RegistryError(f"backend {name!r} is already registered")
    BACKENDS[name] = factory


for _name, _factory in (
    ("fp32", FP32Backend),
    ("bfp8-mixed", BFP8MixedBackend),
    ("bfp8-all", BFP8AllBackend),
    ("int8-linear", INT8LinearBackend),
    ("int8-all", INT8AllBackend),
    ("ibert", IBERTBackend),
):
    register_backend(_name, _factory)


def get_backend(name: str) -> ComputeBackend:
    try:
        return BACKENDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
