"""Compute backends: the arithmetic regimes a Transformer can run under.

The paper's deployment story is *mixed precision*: linear layers in bfp8 on
the systolic array, non-linear layers in fp32 on the vector personality,
no retraining.  The comparison points are conventional int8 quantization
(which needs retraining to recover accuracy) and full fp32.

A backend supplies two primitives:

* ``matmul(x, w)`` — how linear layers multiply;
* ``nonlinear(kind, fn, x)`` — how a non-linear function (softmax / gelu /
  layernorm internals) is evaluated: exactly, or squeezed through a
  quantization grid first.

Backends
--------
``FP32Backend``        float32 everywhere (reference).
``BFP8MixedBackend``   the paper's regime: bfp8 linear + fp32 non-linear.
``BFP8AllBackend``     ablation: non-linear inputs/outputs also pass
                       through the bfp8 grid.
``INT8LinearBackend``  int8 per-tensor linear + fp32 non-linear.
``INT8AllBackend``     conventional int8 inference: non-linear tensors are
                       also snapped to the int8 grid (what an integer-only
                       accelerator without retraining does).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.arith.bfp_matmul import (
    activation_blocks,
    bfp_batched_tiles,
    bfp_matmul_from_tiles,
    bfp_matmul_prepared,
)
from repro.formats.blocking import BfpMatrix
from repro.formats.int8q import (
    int8_matmul,
    intn_matmul_quantized,
    quantize_intn,
    quantize_intn_sliced,
)
from repro.obs.numerics import get_monitor
from repro.obs.profile import Profiler
from repro.perf.prepared import PreparedTensor, get_cache

__all__ = [
    "ComputeBackend",
    "FP32Backend",
    "BFP8MixedBackend",
    "BFP8AllBackend",
    "INT8LinearBackend",
    "INT8AllBackend",
    "IBERTBackend",
    "BACKENDS",
    "get_backend",
]


@dataclass
class ComputeBackend:
    """Base backend: exact float32 arithmetic, with op statistics.

    ``matmul_count`` counts weight passes (streams of Y through the
    array) and ``matmul_rows`` the activation rows they served — their
    ratio is the amortization a batched decode step achieves: B sessions
    stepped together do one weight pass per linear layer instead of B.

    Attaching a :class:`~repro.obs.profile.Profiler` makes every matmul
    and non-linear evaluation land in the profiler's current scope with
    its hardware cycle cost; models push scopes via :meth:`scope` (a
    no-op ``nullcontext`` when no profiler is attached).
    ``matmul_precision``/``nonlinear_precision`` label the attribution.
    """

    name: str = "fp32"
    matmul_count: int = 0
    matmul_macs: int = 0
    matmul_rows: int = 0
    profiler: Profiler | None = field(default=None, repr=False, compare=False)
    matmul_precision: str = "fp32"
    nonlinear_precision: str = "fp32"

    def matmul(
        self, x: np.ndarray, w: "np.ndarray | PreparedTensor"
    ) -> np.ndarray:
        self.matmul_count += 1
        self.matmul_macs += x.shape[0] * x.shape[1] * w.shape[1]
        self.matmul_rows += x.shape[0]
        if self.profiler is not None:
            self.profiler.record_matmul(
                x.shape[0], x.shape[1], w.shape[1],
                precision=self.matmul_precision,
            )
        return self._matmul(x, w)

    def matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Stack of independent matmuls: ``(B, m, k) @ (B, k, n)``.

        One kernel invocation for the whole stack (per-head attention,
        batched decode steps) instead of ``B`` Python-level calls; op
        statistics and profiler attribution count the ``B`` logical
        weight passes exactly as ``B`` separate :meth:`matmul` calls
        would, so amortization accounting is unchanged.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if (
            a.ndim != 3 or b.ndim != 3
            or a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]
        ):
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"bad batched matmul shapes: {a.shape} @ {b.shape}"
            )
        n_slices, m, k = a.shape
        n = b.shape[2]
        self.matmul_count += n_slices
        self.matmul_macs += n_slices * m * k * n
        self.matmul_rows += n_slices * m
        if self.profiler is not None:
            for _ in range(n_slices):
                self.profiler.record_matmul(
                    m, k, n, precision=self.matmul_precision
                )
        return self._matmul_batched(a, b)

    def prepare_weight(
        self, w: "np.ndarray | PreparedTensor"
    ) -> "np.ndarray | PreparedTensor":
        """Quantize-once handle for a weight matrix (Y-stationary residency).

        Quantizing backends return a cached :class:`PreparedTensor`
        (quantizing on first sight, reusing afterwards); the exact-fp32
        base needs no preparation and returns the array unchanged.
        Activation and KV-derived tensors must NOT pass through here —
        they change every call and would churn the cache.
        """
        return w

    def stats(self) -> dict[str, int]:
        return {
            "matmuls": self.matmul_count,
            "macs": self.matmul_macs,
            "rows": self.matmul_rows,
        }

    def reset_stats(self) -> None:
        self.matmul_count = self.matmul_macs = self.matmul_rows = 0

    def scope(self, name: str):
        """Profiling scope for a model component (no-op when unprofiled).

        The same scope name feeds the cycle profiler and the value-domain
        numerics monitor, so cycle and quantization-health attribution
        share one layer taxonomy."""
        mon = get_monitor()
        if self.profiler is not None and mon.enabled:
            return _dual_scope(self.profiler, mon, name)
        if mon.enabled:
            return mon.scope(name)
        if self.profiler is not None:
            return self.profiler.scope(name)
        return nullcontext()

    def _matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return (x.astype(np.float32) @ w.astype(np.float32)).astype(np.float32)

    def _matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Per-slice fallback so subclasses overriding only ``_matmul``
        (e.g. the sensitivity backend) keep their exact semantics."""
        return np.stack([self._matmul(a[i], b[i]) for i in range(a.shape[0])])

    def _record_quantize(self, elements: int) -> None:
        """Attribute quantization work the emulation actually performed."""
        if self.profiler is not None:
            self.profiler.record_quantize(
                int(elements), precision=self.matmul_precision
            )

    def nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        """Evaluate a non-linear function under this regime."""
        if self.profiler is not None:
            self.profiler.record_nonlinear(
                kind, int(x.size), precision=self.nonlinear_precision
            )
        return self._nonlinear(kind, fn, x)

    def _nonlinear(
        self, kind: str, fn: Callable[[np.ndarray], np.ndarray], x: np.ndarray
    ) -> np.ndarray:
        """Regime-specific non-linear evaluation (override point)."""
        return fn(x).astype(np.float32)

    def requantize(self, x: np.ndarray) -> np.ndarray:
        """Snap an intermediate tensor (e.g. the residual stream) to the
        regime's storage grid.  Exact-fp32 regimes return it unchanged."""
        return x.astype(np.float32)


class FP32Backend(ComputeBackend):
    def __init__(self) -> None:
        super().__init__(name="fp32")

    def _matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float32)


class BFP8MixedBackend(ComputeBackend):
    """The paper's regime: block-fp MatMul + exact fp32 non-linear.

    ``man_bits`` selects the block-fp mantissa width (8 = the paper's bfp8;
    lower widths feed the bitwidth-sweep experiment).  ``exact_accumulate``
    replaces the hardware's truncating cross-block alignment with exact
    accumulation (ablation knob).
    """

    def __init__(self, *, exact_accumulate: bool = False, man_bits: int = 8) -> None:
        name = "bfp8-mixed" if man_bits == 8 else f"bfp{man_bits}-mixed"
        super().__init__(name=name, matmul_precision=f"bfp{man_bits}")
        self.exact_accumulate = exact_accumulate
        self.man_bits = man_bits

    def prepare_weight(
        self, w: "np.ndarray | PreparedTensor"
    ) -> "np.ndarray | PreparedTensor":
        if isinstance(w, PreparedTensor):
            return w
        prepared, hit = get_cache().prepare_bfp(w, man_bits=self.man_bits)
        if not hit:
            self._record_quantize(int(np.prod(prepared.shape)))
        return prepared

    def _weight_blocks(self, w: "np.ndarray | PreparedTensor") -> BfpMatrix:
        if isinstance(w, PreparedTensor):
            return w.payload
        self._record_quantize(np.asarray(w).size)
        bm = BfpMatrix.from_dense(
            np.asarray(w, dtype=np.float64), man_bits=self.man_bits
        )
        mon = get_monitor()
        if mon.enabled:
            mon.observe_bfp("weight", w, bm, man_bits=self.man_bits)
        return bm

    def _matmul(
        self, x: np.ndarray, w: "np.ndarray | PreparedTensor"
    ) -> np.ndarray:
        wm = self._weight_blocks(w)
        self._record_quantize(np.asarray(x).size)
        am = activation_blocks(x, man_bits=self.man_bits)
        mon = get_monitor()
        if mon.enabled:
            mon.observe_bfp("activation", x, am, man_bits=self.man_bits)
        return bfp_matmul_prepared(
            am, wm, exact_accumulate=self.exact_accumulate
        ).astype(np.float32)

    def _matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._record_quantize(a.size + b.size)
        tiles = bfp_batched_tiles(a, b, man_bits=self.man_bits)
        mon = get_monitor()
        if mon.enabled:
            # Batched matmuls are the attention kernels: the left operand
            # streams from the residual path (activation role), the right
            # is KV-cache-derived (K^T, V).
            a_man, a_exp, b_man, b_exp = tiles[:4]
            mon.observe_bfp_tiles(
                "activation", a, a_man, a_exp, man_bits=self.man_bits
            )
            mon.observe_bfp_tiles("kv", b, b_man, b_exp, man_bits=self.man_bits)
        return bfp_matmul_from_tiles(
            *tiles, exact_accumulate=self.exact_accumulate
        ).astype(np.float32)


class BFP8AllBackend(BFP8MixedBackend):
    """Ablation: non-linear tensors also snap to the block-fp grid."""

    def __init__(self, *, man_bits: int = 8) -> None:
        super().__init__(man_bits=man_bits)
        self.name = "bfp8-all" if man_bits == 8 else f"bfp{man_bits}-all"
        self.nonlinear_precision = f"bfp{man_bits}"

    def _snap(self, x):
        return (
            BfpMatrix.from_dense(_as2d(x), man_bits=self.man_bits)
            .to_dense()
            .reshape(x.shape)
            .astype(np.float32)
        )

    def _nonlinear(self, kind, fn, x):
        return self._snap(fn(self._snap(x)))

    def requantize(self, x):
        return self._snap(x)


class INT8LinearBackend(ComputeBackend):
    """Per-tensor integer linear layers, exact fp32 non-linear."""

    def __init__(self, *, bits: int = 8) -> None:
        super().__init__(name="int8-linear" if bits == 8 else f"int{bits}-linear",
                         matmul_precision=f"int{bits}")
        self.bits = bits

    def prepare_weight(
        self, w: "np.ndarray | PreparedTensor"
    ) -> "np.ndarray | PreparedTensor":
        if isinstance(w, PreparedTensor):
            return w
        prepared, hit = get_cache().prepare_int(w, bits=self.bits)
        if not hit:
            self._record_quantize(int(np.prod(prepared.shape)))
        return prepared

    def _matmul(
        self, x: np.ndarray, w: "np.ndarray | PreparedTensor"
    ) -> np.ndarray:
        mon = get_monitor()
        if isinstance(w, PreparedTensor):
            wq = w.payload
            self._record_quantize(np.asarray(x).size)
        else:
            self._record_quantize(np.asarray(x).size + np.asarray(w).size)
            wq = quantize_intn(w, self.bits)
            if mon.enabled:
                mon.observe_int("weight", w, wq, bits=self.bits)
        xq = quantize_intn(x, self.bits)
        if mon.enabled:
            mon.observe_int("activation", x, xq, bits=self.bits)
        return int8_matmul(xq, wq).astype(np.float32)

    def _matmul_batched(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._record_quantize(a.size + b.size)
        qa, sa = quantize_intn_sliced(a, self.bits)
        qb, sb = quantize_intn_sliced(b, self.bits)
        mon = get_monitor()
        if mon.enabled:
            mon.observe_int_sliced("activation", a, qa, sa, bits=self.bits)
            mon.observe_int_sliced("kv", b, qb, sb, bits=self.bits)
        return intn_matmul_quantized(qa, sa, qb, sb).astype(np.float32)


class INT8AllBackend(INT8LinearBackend):
    """Conventional integer inference: non-linear tensors quantized too.

    This is the regime that, without quantization-aware retraining, loses
    accuracy on Transformers (paper Section I / IV-A): activations with
    outliers force a coarse per-tensor grid, and softmax inputs span a huge
    dynamic range.
    """

    def __init__(self, *, bits: int = 8) -> None:
        super().__init__(bits=bits)
        self.name = "int8-all" if bits == 8 else f"int{bits}-all"
        self.nonlinear_precision = f"int{bits}"

    def _snap(self, x):
        return quantize_intn(x, self.bits).decode().reshape(x.shape).astype(np.float32)

    def _nonlinear(self, kind, fn, x):
        return self._snap(fn(self._snap(x)))

    def requantize(self, x):
        return self._snap(x)


class IBERTBackend(INT8LinearBackend):
    """Integer-only inference with I-BERT non-linear approximations.

    The competing design point of the paper's related work (ref [4]):
    int8 linear layers plus *integer-arithmetic* softmax/GELU/LayerNorm
    (second-order polynomial exp/erf, Newton integer sqrt) instead of the
    fp32 vector personality.  Published results require quantization-aware
    retraining to reach parity; here it is evaluated post-training, like
    every other regime.
    """

    def __init__(self, *, bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(bits=bits)
        self.name = "ibert"
        self.act_bits = act_bits
        self.nonlinear_precision = f"int{act_bits}"

    def _nonlinear(self, kind, fn, x):
        from repro.models.integer_nonlinear import i_gelu, i_softmax, i_sqrt

        xq = quantize_intn(x, self.act_bits)
        q = xq.values.astype(np.int64).reshape(x.shape)
        scale = xq.scale
        if kind == "softmax":
            out_q, out_scale = i_softmax(q, scale)
            return (out_q * out_scale).astype(np.float32)
        if kind == "gelu":
            out_q, out_scale = i_gelu(q, scale)
            return (out_q * out_scale).astype(np.float32)
        if kind in ("layernorm", "rmsnorm"):
            # Integer mean/variance with the Newton integer sqrt.  The
            # integer-normalized tensor (zero mean, unit variance on a 2^7
            # fixed-point grid) is handed back to the layer's own function,
            # which re-normalizes (a near-no-op) and applies gamma/beta —
            # so only the integer normalization's quantization error enters.
            n = q.shape[-1]
            mean = q.sum(-1, keepdims=True) // n if kind == "layernorm" else 0
            c = q - mean
            var = np.maximum((c * c).sum(-1, keepdims=True) // n, 1)
            std = np.maximum(i_sqrt(var), 1)
            norm = (c << 7) // std
            return fn((norm.astype(np.float32) / (1 << 7))).astype(np.float32)
        # Unknown non-linearity (e.g. swiglu): integer pipelines have no
        # program for it; fall back to quantize-evaluate-quantize.
        y = fn((q * scale).astype(np.float32))
        yq = quantize_intn(y, self.act_bits)
        return yq.decode().reshape(y.shape).astype(np.float32)

    def requantize(self, x):
        return quantize_intn(x, self.act_bits).decode().reshape(x.shape).astype(
            np.float32
        )


def _as2d(x: np.ndarray) -> np.ndarray:
    return x.reshape(-1, x.shape[-1]) if x.ndim != 2 else x


@contextmanager
def _dual_scope(profiler, monitor, name: str):
    """Push one scope name onto both the profiler and the monitor."""
    with profiler.scope(name), monitor.scope(name):
        yield


BACKENDS: dict[str, Callable[[], ComputeBackend]] = {
    "fp32": FP32Backend,
    "bfp8-mixed": BFP8MixedBackend,
    "bfp8-all": BFP8AllBackend,
    "int8-linear": INT8LinearBackend,
    "int8-all": INT8AllBackend,
    "ibert": IBERTBackend,
}


def get_backend(name: str) -> ComputeBackend:
    try:
        return BACKENDS[name]()
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
