"""Minimal trainer: softmax cross-entropy + Adam, for the accuracy study.

Training always runs in fp32 — the entire point of the paper's deployment
story is that a model trained once in fp32 can be served in bfp8/fp32 mixed
precision *without* quantization-aware retraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.data import Dataset
from repro.models.vit import SequenceClassifier

__all__ = [
    "cross_entropy",
    "Adam",
    "TrainResult",
    "train_classifier",
    "accuracy",
    "lm_cross_entropy",
    "train_lm",
    "next_token_accuracy",
]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean CE loss and the gradient w.r.t. logits."""
    z = logits.astype(np.float64)
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    p = e / e.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = float(-np.log(p[np.arange(n), labels] + 1e-12).mean())
    d = p.copy()
    d[np.arange(n), labels] -= 1.0
    return loss, (d / n).astype(np.float32)


@dataclass
class Adam:
    lr: float = 3e-3
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    _m: dict = field(default_factory=dict)
    _v: dict = field(default_factory=dict)
    _t: int = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        for k, p in params.items():
            g = grads.get(k)
            if g is None or not isinstance(g, np.ndarray):
                continue
            m = self._m.setdefault(k, np.zeros_like(p))
            v = self._v.setdefault(k, np.zeros_like(p))
            m[:] = self.beta1 * m + (1 - self.beta1) * g
            v[:] = self.beta2 * v + (1 - self.beta2) * g * g
            mh = m / (1 - self.beta1**self._t)
            vh = v / (1 - self.beta2**self._t)
            p -= (self.lr * mh / (np.sqrt(vh) + self.eps)).astype(p.dtype)


@dataclass
class TrainResult:
    model: SequenceClassifier
    losses: list[float]
    train_accuracy: float
    test_accuracy: float


def accuracy(model: SequenceClassifier, data: Dataset, backend=None) -> float:
    logits = model.forward(data.tokens, backend)
    return float((np.argmax(logits, axis=1) == data.labels).mean())


def lm_cross_entropy(
    logits: np.ndarray, tokens: np.ndarray
) -> tuple[float, np.ndarray]:
    """Next-token CE over all positions: logits ``(b, n, v)``, tokens ``(b, n)``.

    Position ``i`` predicts token ``i+1``; the last position has no target.
    Returns the mean loss and the gradient w.r.t. logits.
    """
    b, n, v = logits.shape
    preds = logits[:, :-1].reshape(-1, v)
    targets = np.asarray(tokens)[:, 1:].reshape(-1)
    loss, d = cross_entropy(preds, targets)
    dlogits = np.zeros_like(logits)
    dlogits[:, :-1] = d.reshape(b, n - 1, v)
    return loss, dlogits.astype(np.float32)


def next_token_accuracy(model, tokens: np.ndarray, backend=None) -> float:
    """Fraction of positions whose next token is predicted correctly."""
    logits = model.forward(tokens, backend)
    preds = np.argmax(logits[:, :-1], axis=-1)
    return float((preds == np.asarray(tokens)[:, 1:]).mean())


def train_lm(
    model,
    tokens: np.ndarray,
    *,
    epochs: int = 10,
    batch_size: int = 64,
    lr: float = 3e-3,
    seed: int = 0,
) -> list[float]:
    """Train a :class:`~repro.models.decoder.TinyLM` on token sequences."""
    rng = np.random.default_rng(seed)
    opt = Adam(lr=lr)
    losses: list[float] = []
    n = tokens.shape[0]
    for _ in range(epochs):
        order = rng.permutation(n)
        total, batches = 0.0, 0
        for s in range(0, n, batch_size):
            idx = order[s : s + batch_size]
            model.zero_grad()
            logits = model.forward(tokens[idx])
            loss, dlogits = lm_cross_entropy(logits, tokens[idx])
            model.backward(dlogits)
            opt.step(model.named_parameters(), model.named_grads())
            total += loss
            batches += 1
        losses.append(total / batches)
    return losses


def _named_leaf_modules(model) -> list:
    mods = [model]
    i = 0
    while i < len(mods):
        mods.extend(mods[i].children())
        i += 1
    return mods


def train_classifier(
    model: SequenceClassifier,
    train: Dataset,
    test: Dataset,
    *,
    epochs: int = 30,
    batch_size: int = 64,
    lr: float = 3e-3,
    seed: int = 0,
    verbose: bool = False,
) -> TrainResult:
    """Full-batch-shuffled minibatch Adam training."""
    rng = np.random.default_rng(seed)
    opt = Adam(lr=lr)
    losses: list[float] = []
    n = train.tokens.shape[0]
    for epoch in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        batches = 0
        for s in range(0, n, batch_size):
            idx = order[s : s + batch_size]
            model.zero_grad()
            logits = model.forward(train.tokens[idx])
            loss, dlogits = cross_entropy(logits, train.labels[idx])
            model.backward(dlogits)
            opt.step(model.named_parameters(), model.named_grads())
            epoch_loss += loss
            batches += 1
        losses.append(epoch_loss / batches)
        if verbose:  # pragma: no cover - logging only
            print(f"epoch {epoch:3d} loss {losses[-1]:.4f}")
    return TrainResult(
        model=model,
        losses=losses,
        train_accuracy=accuracy(model, train),
        test_accuracy=accuracy(model, test),
    )
