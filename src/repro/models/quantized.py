"""Mixed-precision inference evaluation (the paper's accuracy story).

Runs a trained model under every arithmetic regime in
:mod:`repro.models.backend` and reports accuracy plus output deviation from
the fp32 reference.  The expected ordering — the reason the paper argues
for bfp8 + fp32 mixed precision without retraining — is::

    fp32  ~=  bfp8-mixed  >  int8-linear  >=  bfp8-all  >  int8-all

i.e. bfp8 linear layers are accuracy-transparent, while pushing non-linear
tensors (softmax in particular) through a conventional per-tensor int8 grid
costs real accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.backend import BACKENDS, get_backend
from repro.models.data import Dataset
from repro.models.vit import SequenceClassifier

__all__ = ["RegimeResult", "evaluate_regimes", "logit_deviation"]


@dataclass(frozen=True)
class RegimeResult:
    backend: str
    accuracy: float
    logit_rmse: float  # vs the fp32 reference logits
    agreement: float  # fraction of predictions equal to fp32's


def logit_deviation(ref: np.ndarray, other: np.ndarray) -> float:
    return float(np.sqrt(np.mean((ref.astype(np.float64) - other.astype(np.float64)) ** 2)))


def evaluate_regimes(
    model: SequenceClassifier,
    data: Dataset,
    *,
    backends: list[str] | None = None,
    factories: dict[str, object] | None = None,
    batch_size: int = 256,
) -> list[RegimeResult]:
    """Evaluate ``model`` on ``data`` under each arithmetic regime.

    ``backends`` selects regimes by registry name; ``factories`` maps extra
    regime names to zero-argument backend factories (used by the bitwidth
    sweep to evaluate e.g. ``bfp4-mixed``).
    """
    names = backends or list(BACKENDS)
    factories = factories or {}
    ref_logits = _forward_batched(model, data.tokens, "fp32", factories, batch_size)
    ref_pred = np.argmax(ref_logits, axis=1)
    results = []
    for name in [*names, *[n for n in factories if n not in names]]:
        logits = (
            ref_logits
            if name == "fp32"
            else _forward_batched(model, data.tokens, name, factories, batch_size)
        )
        pred = np.argmax(logits, axis=1)
        results.append(
            RegimeResult(
                backend=name,
                accuracy=float((pred == data.labels).mean()),
                logit_rmse=logit_deviation(ref_logits, logits),
                agreement=float((pred == ref_pred).mean()),
            )
        )
    return results


def _forward_batched(
    model: SequenceClassifier,
    tokens: np.ndarray,
    backend_name: str,
    factories: dict[str, object],
    batch_size: int,
) -> np.ndarray:
    outs = []
    factory = factories.get(backend_name)
    warm = factory() if factory is not None else get_backend(backend_name)
    # Quantize every matmul weight once up front; the per-batch backends
    # below (fresh instances for clean op statistics) hit the shared
    # prepared-operand cache instead of requantizing per batch.
    model.prepare(warm)
    for s in range(0, tokens.shape[0], batch_size):
        backend = factory() if factory is not None else get_backend(backend_name)
        outs.append(model.forward(tokens[s : s + batch_size], backend))
    return np.concatenate(outs, axis=0)
