"""Per-layer precision policies: (layer, tensor role) -> quantization format.

The paper's deployment regime — bfp8 linear layers on the systolic array,
fp32 non-linear functions on the vector personality — is one point in a
wider design space where precision is a *per-layer, per-tensor-role*
decision (Aggarwal et al., "Shedding the Bits"; Wang et al., "TransDot").
A :class:`PrecisionPolicy` expresses such a point declaratively: an
ordered list of :class:`PolicyRule` entries matched first-to-last against
the model's scope path (``block0.attn``, ``block3.mlp``, ``head``, ...)
and the tensor role of the operation, each naming a format from the
:mod:`repro.formats.registry`.

Roles
-----
``linear``      weight matmuls of Linear layers (qkv/proj/fc/head)
``attention``   batched score/context matmuls against KV-derived tensors
``nonlinear``   softmax / GELU / LayerNorm / RMSNorm evaluations
``residual``    requantization of the residual stream between sublayers

Policies are frozen (hashable — they key ``lru_cache``'d cost lookups)
and serializable: :meth:`PrecisionPolicy.to_json` /
:meth:`PrecisionPolicy.from_json` round-trip through the ``--policy``
CLI flag.  Named presets in :data:`POLICY_PRESETS` reproduce every legacy
``BACKENDS`` regime exactly, plus the mixed bfp8/fp8 demonstration policy
the CI smoke job runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase
from functools import lru_cache
from pathlib import Path
from typing import Callable

from repro.errors import ConfigurationError, RegistryError
from repro.formats.registry import QuantFormat, get_format

__all__ = [
    "ROLES",
    "PolicyRule",
    "PrecisionPolicy",
    "POLICY_PRESETS",
    "register_policy_preset",
    "get_policy",
    "load_policy",
]

#: Tensor roles a policy can discriminate on.
ROLES = ("linear", "attention", "nonlinear", "residual")


@dataclass(frozen=True)
class PolicyRule:
    """One resolution rule: glob over the layer path x role -> format name.

    ``layer`` is an ``fnmatch`` pattern over the backend's dotted scope
    path (``block*.attn``, ``head``, ``*``); ``role`` is one of
    :data:`ROLES` or ``"*"``.  Rules are matched in order; the first hit
    wins.

    A pattern also matches any dot-boundary *suffix* of the scope path:
    ``block*.mlp`` hits ``prefill.block0.mlp`` as well as ``block0.mlp``.
    Callers (the profile CLI, tests) push wrapper scopes around the model
    — suffix matching keeps per-layer rules working under them.
    """

    layer: str = "*"
    role: str = "*"
    format: str = "bfp8"

    def __post_init__(self) -> None:
        if self.role != "*" and self.role not in ROLES:
            raise ConfigurationError(
                f"unknown tensor role {self.role!r}; expected one of "
                f"{ROLES} or '*'"
            )

    def matches(self, layer: str, role: str) -> bool:
        if self.role != "*" and self.role != role:
            return False
        return fnmatchcase(layer, self.layer) or fnmatchcase(
            layer, "*." + self.layer
        )


@dataclass(frozen=True)
class PrecisionPolicy:
    """An ordered, serializable mapping (layer path, role) -> format.

    ``default`` is the wildcard fallback; with ``default=None`` an
    unmatched (layer, role) raises — the strict mode for policies that
    must enumerate a model exhaustively.
    """

    name: str = "policy"
    rules: tuple[PolicyRule, ...] = ()
    default: str | None = "fp32"

    def __post_init__(self) -> None:
        # Validate eagerly: a typo'd format name should fail at policy
        # construction/load time, not at the first matmul it resolves.
        for rule in self.rules:
            get_format(rule.format)
        if self.default is not None:
            get_format(self.default)

    # -- resolution ----------------------------------------------------------
    def resolve_name(self, layer: str, role: str) -> str:
        """Format name for one (layer path, role); first matching rule wins."""
        if role not in ROLES:
            raise ConfigurationError(
                f"unknown tensor role {role!r}; expected one of {ROLES}"
            )
        return _resolve_name_cached(self, layer, role)

    def resolve(self, layer: str, role: str) -> QuantFormat:
        """Registry format for one (layer path, role)."""
        return get_format(self.resolve_name(layer, role))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "default": self.default,
            "rules": [
                {"layer": r.layer, "role": r.role, "format": r.format}
                for r in self.rules
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    @classmethod
    def from_dict(cls, doc: dict) -> "PrecisionPolicy":
        if not isinstance(doc, dict):
            raise ConfigurationError(f"policy document must be a dict, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "default", "rules"}
        if unknown:
            raise ConfigurationError(f"unknown policy keys: {sorted(unknown)}")
        rules = []
        for i, r in enumerate(doc.get("rules", [])):
            extra = set(r) - {"layer", "role", "format"}
            if extra:
                raise ConfigurationError(
                    f"rule {i}: unknown keys {sorted(extra)}"
                )
            rules.append(PolicyRule(
                layer=r.get("layer", "*"),
                role=r.get("role", "*"),
                format=r["format"],
            ))
        return cls(
            name=doc.get("name", "policy"),
            rules=tuple(rules),
            default=doc.get("default", "fp32"),
        )

    @classmethod
    def from_json(cls, text: str) -> "PrecisionPolicy":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "PrecisionPolicy":
        return cls.from_json(Path(path).read_text())


@lru_cache(maxsize=4096)
def _resolve_name_cached(policy: PrecisionPolicy, layer: str, role: str) -> str:
    for rule in policy.rules:
        if rule.matches(layer, role):
            return rule.format
    if policy.default is None:
        raise ConfigurationError(
            f"policy {policy.name!r} has no rule for layer {layer!r} "
            f"role {role!r} and no default format"
        )
    return policy.default


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------


def _uniform(name: str, fmt: str) -> PrecisionPolicy:
    """Every role, every layer in one format."""
    return PrecisionPolicy(name=name, rules=(), default=fmt)


def _linear_only(name: str, fmt: str) -> PrecisionPolicy:
    """Quantize only the array-mapped algebra; everything else exact fp32
    (the paper's mixed regime for ``fmt="bfp8"``)."""
    return PrecisionPolicy(
        name=name,
        rules=(
            PolicyRule("*", "linear", fmt),
            PolicyRule("*", "attention", fmt),
        ),
        default="fp32",
    )


def _ibert(name: str = "ibert") -> PrecisionPolicy:
    """int8 linear algebra + I-BERT integer non-linear programs."""
    return PrecisionPolicy(
        name=name,
        rules=(
            PolicyRule("*", "linear", "int8"),
            PolicyRule("*", "attention", "int8"),
        ),
        default="ibert",
    )


def _mixed_fp8(name: str = "mixed-fp8") -> PrecisionPolicy:
    """The per-layer demonstration policy: attention stack in bfp8, MLP
    linear layers in minifloat fp8-e4m3, non-linear functions exact fp32.

    This is the policy the acceptance criterion and the CI policy-smoke
    job run end-to-end (``serve-sim --policy`` / ``profile --policy``).
    """
    return PrecisionPolicy(
        name=name,
        rules=(
            PolicyRule("*", "attention", "bfp8"),
            PolicyRule("block*.attn", "linear", "bfp8"),
            PolicyRule("block*.mlp", "linear", "fp8-e4m3"),
            PolicyRule("*", "nonlinear", "fp32"),
            PolicyRule("*", "residual", "fp32"),
        ),
        default="bfp8",
    )


POLICY_PRESETS: dict[str, Callable[[], PrecisionPolicy]] = {}


def register_policy_preset(
    name: str, factory: Callable[[], PrecisionPolicy]
) -> None:
    """Add a named preset; duplicate names raise (no silent overwrite)."""
    if name in POLICY_PRESETS:
        raise RegistryError(f"policy preset {name!r} is already registered")
    POLICY_PRESETS[name] = factory


for _name, _factory in (
    ("fp32", lambda: _uniform("fp32", "fp32")),
    ("bfp8-mixed", lambda: _linear_only("bfp8-mixed", "bfp8")),
    ("bfp8-all", lambda: _uniform("bfp8-all", "bfp8")),
    ("int8-linear", lambda: _linear_only("int8-linear", "int8")),
    ("int8-all", lambda: _uniform("int8-all", "int8")),
    # fp16 linear algebra, exact fp32 elsewhere.  Without a unit-mode
    # override fp16 pays the fp32 vector cliff; with
    # ``--array-mode fp16`` it maps onto the fp16 dot-product array
    # personality (repro.cost.modes) instead.
    ("fp16-linear", lambda: _linear_only("fp16-linear", "fp16")),
    ("ibert", _ibert),
    ("mixed-fp8", _mixed_fp8),
):
    register_policy_preset(_name, _factory)


def get_policy(name: str) -> PrecisionPolicy:
    """Construct a preset policy by name."""
    try:
        return POLICY_PRESETS[name]()
    except KeyError:
        raise RegistryError(
            f"unknown policy preset {name!r}; available: "
            f"{sorted(POLICY_PRESETS)}"
        ) from None


def load_policy(spec: str | Path) -> PrecisionPolicy:
    """Resolve a CLI ``--policy`` argument: preset name or JSON file path."""
    if isinstance(spec, str) and spec in POLICY_PRESETS:
        return get_policy(spec)
    path = Path(spec)
    if path.exists():
        return PrecisionPolicy.load(path)
    raise ConfigurationError(
        f"--policy {spec!r} is neither a preset ({sorted(POLICY_PRESETS)}) "
        "nor an existing JSON file"
    )
