"""Transformer encoders: the ViT/DeiT vision model and a sequence classifier.

:class:`VisionTransformer` mirrors the DeiT architecture (patch embedding,
class token, learned positional embedding, pre-norm encoder blocks, linear
head) and is the workload of Table IV.  :class:`SequenceClassifier` is a
compact text-style Transformer used for the trainable accuracy experiments
(the paper's accuracy claim is about arithmetic, not about ImageNet
specifics — see DESIGN.md substitutions).

Every :class:`~repro.models.layers.Linear` routes its weight through
``backend.prepare_weight`` — under the quantizing backends the weight is
block-/int-quantized once into the shared prepared-operand cache
(:mod:`repro.perf.prepared`) and reused across forwards, matching the
Y-stationary weight residency of the modeled hardware.  Call
:meth:`Module.prepare` to warm the cache explicitly before timing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.models.attention import MultiHeadSelfAttention
from repro.models.backend import ComputeBackend, FP32Backend
from repro.models.layers import GELU, Embedding, LayerNorm, Linear, Module

__all__ = ["MLP", "TransformerBlock", "PatchEmbed", "VisionTransformer",
           "SequenceClassifier"]


class MLP(Module):
    """The Transformer feed-forward block: Linear -> GELU -> Linear."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden, dim, rng=rng)

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        return self.fc2.forward(
            self.act.forward(self.fc1.forward(x, backend), backend), backend
        )

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.fc1.backward(self.act.backward(self.fc2.backward(dout)))


class TransformerBlock(Module):
    """Pre-norm encoder block: x + MHSA(LN(x)); x + MLP(LN(x))."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        mlp_ratio: float = 4.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.ln1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads, rng=rng)
        self.ln2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng=rng)

    def prepare(self, backend: ComputeBackend) -> None:
        # Warm under the same scope names forward() pushes, so prepare-time
        # weight quantization resolves the same per-layer policy format.
        with backend.scope("attn"):
            self.attn.prepare(backend)
        with backend.scope("mlp"):
            self.mlp.prepare(backend)

    def forward(self, x: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        # The residual stream lives in the regime's storage format: a real
        # integer pipeline keeps these tensors quantized too.
        with backend.scope("attn"):
            x = backend.requantize(
                x + self.attn.forward(self.ln1.forward(x, backend), backend)
            )
        with backend.scope("mlp"):
            x = backend.requantize(
                x + self.mlp.forward(self.ln2.forward(x, backend), backend)
            )
        return x.astype(np.float32)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        d = dout + self.ln2.backward(self.mlp.backward(dout))
        d = d + self.ln1.backward(self.attn.backward(d))
        return d.astype(np.float32)


class PatchEmbed(Module):
    """Non-overlapping patch embedding (a conv expressed as a matmul)."""

    def __init__(
        self,
        image_size: int = 224,
        patch_size: int = 16,
        in_chans: int = 3,
        dim: int = 384,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if image_size % patch_size:
            raise ConfigurationError("image size must be divisible by patch size")
        self.image_size, self.patch_size = image_size, patch_size
        self.in_chans, self.dim = in_chans, dim
        self.n_patches = (image_size // patch_size) ** 2
        self.proj = Linear(patch_size * patch_size * in_chans, dim, rng=rng)

    def forward(self, images: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        b, c, h, w = images.shape
        p = self.patch_size
        if (c, h, w) != (self.in_chans, self.image_size, self.image_size):
            raise ConfigurationError(f"unexpected image shape {images.shape}")
        x = images.reshape(b, c, h // p, p, w // p, p)
        x = x.transpose(0, 2, 4, 1, 3, 5).reshape(b, self.n_patches, c * p * p)
        return self.proj.forward(x.astype(np.float32), backend)


class VisionTransformer(Module):
    """DeiT-style ViT encoder with class token and linear head."""

    def __init__(
        self,
        *,
        image_size: int = 224,
        patch_size: int = 16,
        in_chans: int = 3,
        dim: int = 384,
        depth: int = 12,
        n_heads: int = 6,
        mlp_ratio: float = 4.0,
        n_classes: int = 1000,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.patch_embed = PatchEmbed(image_size, patch_size, in_chans, dim, rng=rng)
        self.dim, self.depth, self.n_heads = dim, depth, n_heads
        self.n_tokens = self.patch_embed.n_patches + 1
        self.params["cls_token"] = rng.normal(0, 0.02, (1, 1, dim)).astype(np.float32)
        self.params["pos_embed"] = rng.normal(
            0, 0.02, (1, self.n_tokens, dim)
        ).astype(np.float32)
        self.blocks = [
            TransformerBlock(dim, n_heads, mlp_ratio, rng=rng) for _ in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, rng=rng)

    def prepare(self, backend: ComputeBackend) -> None:
        with backend.scope("patch_embed"):
            self.patch_embed.prepare(backend)
        for i, blk in enumerate(self.blocks):
            with backend.scope(f"block{i}"):
                blk.prepare(backend)
        with backend.scope("head"):
            self.head.prepare(backend)

    def forward(self, images: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        with backend.scope("patch_embed"):
            x = self.patch_embed.forward(images, backend)
        b = x.shape[0]
        cls = np.broadcast_to(self.params["cls_token"], (b, 1, self.dim))
        x = np.concatenate([cls, x], axis=1) + self.params["pos_embed"]
        x = x.astype(np.float32)
        for i, blk in enumerate(self.blocks):
            with backend.scope(f"block{i}"):
                x = blk.forward(x, backend)
        with backend.scope("final_norm"):
            x = self.norm.forward(x, backend)
        with backend.scope("head"):
            return self.head.forward(x[:, 0], backend)


class SequenceClassifier(Module):
    """Small trainable Transformer for token-sequence classification.

    Mean-pooled encoder output into a linear head.  Supports full backward
    for the synthetic-task accuracy experiments.
    """

    def __init__(
        self,
        *,
        vocab: int = 32,
        seq_len: int = 16,
        dim: int = 32,
        depth: int = 2,
        n_heads: int = 4,
        mlp_ratio: float = 4.0,
        n_classes: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.seq_len, self.dim = seq_len, dim
        self.embed = Embedding(vocab, dim, rng=rng)
        self.params["pos_embed"] = rng.normal(0, 0.02, (1, seq_len, dim)).astype(
            np.float32
        )
        self.blocks = [
            TransformerBlock(dim, n_heads, mlp_ratio, rng=rng) for _ in range(depth)
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, n_classes, rng=rng)
        self._n: int | None = None

    def forward(self, tokens: np.ndarray, backend: ComputeBackend | None = None) -> np.ndarray:
        backend = backend or FP32Backend()
        if tokens.shape[-1] != self.seq_len:
            raise ConfigurationError(
                f"expected sequences of length {self.seq_len}, got {tokens.shape}"
            )
        x = self.embed.forward(tokens) + self.params["pos_embed"]
        x = x.astype(np.float32)
        for i, blk in enumerate(self.blocks):
            with backend.scope(f"block{i}"):
                x = blk.forward(x, backend)
        with backend.scope("final_norm"):
            x = self.norm.forward(x, backend)
        self._n = x.shape[1]
        pooled = x.mean(axis=1)
        with backend.scope("head"):
            return self.head.forward(pooled, backend)

    def backward(self, dlogits: np.ndarray) -> None:
        assert self._n is not None
        dpooled = self.head.backward(dlogits)
        d = np.repeat(dpooled[:, None, :], self._n, axis=1) / self._n
        d = self.norm.backward(d.astype(np.float32))
        for blk in reversed(self.blocks):
            d = blk.backward(d)
        self.grads["pos_embed"] = self.grads.get("pos_embed", 0) + d.sum(
            0, keepdims=True
        ).astype(np.float32)
        self.embed.backward(d)
