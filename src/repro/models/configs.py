"""DeiT model configurations (Touvron et al.) used by the paper's case study."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ViTConfig", "DEIT_TINY", "DEIT_SMALL", "DEIT_BASE", "CONFIGS"]


@dataclass(frozen=True)
class ViTConfig:
    name: str
    image_size: int = 224
    patch_size: int = 16
    in_chans: int = 3
    dim: int = 384
    depth: int = 12
    n_heads: int = 6
    mlp_ratio: float = 4.0
    n_classes: int = 1000

    @property
    def n_patches(self) -> int:
        return (self.image_size // self.patch_size) ** 2

    @property
    def n_tokens(self) -> int:
        return self.n_patches + 1

    @property
    def head_dim(self) -> int:
        return self.dim // self.n_heads

    @property
    def mlp_hidden(self) -> int:
        return int(self.dim * self.mlp_ratio)


DEIT_TINY = ViTConfig("deit-tiny", dim=192, depth=12, n_heads=3)
DEIT_SMALL = ViTConfig("deit-small", dim=384, depth=12, n_heads=6)
DEIT_BASE = ViTConfig("deit-base", dim=768, depth=12, n_heads=12)

CONFIGS = {c.name: c for c in (DEIT_TINY, DEIT_SMALL, DEIT_BASE)}
