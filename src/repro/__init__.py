"""repro — reproduction of "A Case for Low Bitwidth Floating Point
Arithmetic on FPGA for Transformer Based DNN Inference" (Wu, Song, Zhao,
So; IPDPS-W 2024).

The package implements, in Python:

* the **bfp8 number format** (8x8 blocks, shared 8-bit exponent) and the
  **fp32 slicing arithmetic** that lets fp32 multiply/add run on an int8
  systolic array (``repro.formats``, ``repro.arith``);
* a **register-accurate model of the multi-mode processing unit** — DSP48E2
  slices, PE array, buffers with the dual-format BRAM layout, exponent
  unit, shifters/accumulators, quantizer, controller (``repro.hw``);
* **performance and resource models** reproducing the paper's Table II,
  Table III, Fig. 6 and Fig. 7 (``repro.perf``);
* a **programming model** that compiles Softmax/GELU/LayerNorm to fp32
  mul/add streams with host-side division (``repro.runtime``);
* a **from-scratch NumPy Transformer** (DeiT-style ViT and a trainable
  sequence classifier) with pluggable arithmetic backends for the
  mixed-precision accuracy experiments (``repro.models``);
* **experiment drivers** regenerating every table and figure
  (``repro.eval``, mirrored by ``benchmarks/``).

Quick start::

    import numpy as np
    from repro import MultiModePU, BfpMatrix

    pu = MultiModePU()
    a = np.random.default_rng(0).normal(size=(64, 96))
    b = np.random.default_rng(1).normal(size=(96, 32))
    c = pu.matmul(BfpMatrix.from_dense(a), BfpMatrix.from_dense(b))
    print(np.abs(c.to_dense() - a @ b).max())      # bfp8 quantization error
    print(pu.stats.bfp_throughput_ops(300e6) / 1e9, "GOPS achieved")
"""

from repro.arith import (
    aligned_add,
    bfp_matmul,
    bfp_matmul_dense,
    bfp_matmul_emulate,
    sliced_multiply,
)
from repro.formats import (
    BfpBlock,
    BfpMatrix,
    Int8Tensor,
    quantize_block,
    quantize_int8,
)
from repro.hw import MultiModePU, PUStats, SystolicArray
from repro.models import (
    DEIT_SMALL,
    PolicyBackend,
    PrecisionPolicy,
    SequenceClassifier,
    VisionTransformer,
    evaluate_regimes,
    get_backend,
    get_policy,
    load_policy,
    train_classifier,
)
from repro.perf import ClockConfig, MemoryModel, fig6_designs, table2_breakdown
from repro.runtime import VectorExecutor, build_gelu, build_layernorm, build_softmax, plan_matmul

__version__ = "1.0.0"

__all__ = [
    "BfpBlock",
    "BfpMatrix",
    "ClockConfig",
    "DEIT_SMALL",
    "Int8Tensor",
    "MemoryModel",
    "MultiModePU",
    "PUStats",
    "PolicyBackend",
    "PrecisionPolicy",
    "SequenceClassifier",
    "SystolicArray",
    "VectorExecutor",
    "VisionTransformer",
    "__version__",
    "aligned_add",
    "bfp_matmul",
    "bfp_matmul_dense",
    "bfp_matmul_emulate",
    "build_gelu",
    "build_layernorm",
    "build_softmax",
    "evaluate_regimes",
    "fig6_designs",
    "get_backend",
    "get_policy",
    "load_policy",
    "plan_matmul",
    "quantize_block",
    "quantize_int8",
    "sliced_multiply",
    "table2_breakdown",
    "train_classifier",
]
