"""Integer right-shift rounding helpers used across the arithmetic models.

The hardware truncates on alignment shifts (paper Eqns 3 and 6 drop the
shifted-out bits) and the output quantizer rounds to nearest.  All helpers
below operate on signed int64 NumPy arrays and a per-element or scalar
non-negative shift amount.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = ["shift_right", "RoundingMode"]

RoundingMode = Literal["truncate", "nearest_even", "nearest_away", "stochastic"]


def _floor_shift(x: np.ndarray, n: np.ndarray) -> np.ndarray:
    # NumPy's >> on signed ints is an arithmetic shift == floor division.
    return x >> n


def shift_right(
    x: np.ndarray,
    n: np.ndarray | int,
    mode: RoundingMode = "truncate",
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Shift ``x`` right by ``n`` bits under the given rounding mode.

    ``truncate`` is an arithmetic shift (round toward -inf), matching what a
    plain barrel shifter does to a two's-complement value.  ``nearest_even``
    is IEEE round-to-nearest-even on the discarded bits.  ``nearest_away``
    rounds halfway cases away from zero.  ``stochastic`` rounds up with
    probability equal to the discarded fraction (requires ``rng``).

    Shift amounts >= 64 are saturated to the sign (truncate) or to zero
    (other modes round the vanishing fraction).
    """
    x = np.asarray(x, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    if n.size and n.min() < 0:
        raise ValueError("negative shift amount")
    n_eff = np.minimum(n, 63)
    big = n >= 63

    if mode == "truncate":
        out = _floor_shift(x, n_eff)
        return np.where(big, np.where(x < 0, np.int64(-1), np.int64(0)), out)

    if mode == "nearest_even":
        floor = _floor_shift(x, n_eff)
        rem = x - (floor << n_eff)
        half = np.where(n_eff > 0, np.int64(1) << (n_eff - 1), np.int64(0))
        round_up = (rem > half) | ((rem == half) & ((floor & 1) == 1))
        out = floor + np.where((n_eff > 0) & round_up, 1, 0)
        return np.where(big, np.int64(0), out)

    if mode == "nearest_away":
        floor = _floor_shift(x, n_eff)
        rem = x - (floor << n_eff)
        half = np.where(n_eff > 0, np.int64(1) << (n_eff - 1), np.int64(0))
        # away-from-zero on ties: for negative x, floor-based remainder makes
        # the tie fall toward -inf already, so only bump when strictly above
        # half or (exactly half and the value is non-negative).
        round_up = (rem > half) | ((rem == half) & (x >= 0))
        out = floor + np.where((n_eff > 0) & round_up, 1, 0)
        return np.where(big, np.int64(0), out)

    if mode == "stochastic":
        if rng is None:
            raise ValueError("stochastic rounding requires an rng")
        floor = _floor_shift(x, n_eff)
        rem = (x - (floor << n_eff)).astype(np.float64)
        scale = np.ldexp(1.0, -n_eff.astype(np.int32))
        p = rem * scale
        draw = rng.random(size=np.broadcast_shapes(x.shape, n_eff.shape))
        out = floor + (draw < p).astype(np.int64)
        return np.where(big, np.int64(0), out)

    raise ValueError(f"unknown rounding mode: {mode!r}")
