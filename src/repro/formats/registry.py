"""Quantization-format registry: one protocol for every arithmetic regime.

Historically each number format lived in its own ``ComputeBackend``
subclass, with format knowledge duplicated as string labels across
``formats/``, ``arith/``, the numerics monitor and the cost model.  This
module centralizes it: a :class:`QuantFormat` bundles everything one
format needs —

* **kernels** — :meth:`~QuantFormat.matmul` /
  :meth:`~QuantFormat.matmul_batched` (quantize operands, run the
  format's matmul emulation, tap the numerics monitor) and
  :meth:`~QuantFormat.nonlinear` / :meth:`~QuantFormat.requantize`
  (value-domain grid behaviour of non-linear functions and the residual
  stream);
* **prepared-weight builder** — :meth:`~QuantFormat.prepare_weight`
  routes a weight matrix through the shared
  :class:`~repro.perf.prepared.PreparedOperandCache` keyed by this
  format's id (quantize-once Y-stationary residency);
* **cost-model hooks** — ``precision`` labels profiler attribution and
  compiled-stage modes; ``array_mode`` names the
  :mod:`repro.cost.modes` unit mode the format's matmuls execute under
  (``"bfp8_mac"`` for bfp/int/single-slice floats, ``None`` for the
  fp32 vector personality fallback);
* **numerics-observer taps** — every quantization event lands in the
  process :class:`~repro.obs.numerics.NumericsMonitor` under the
  format's precision label and a tensor role.

Formats are looked up by name through :func:`get_format`; registration is
guarded against duplicates with :class:`~repro.errors.RegistryError`.
Parametric families (``bfp4``, ``int6``, ...) materialize on first lookup.
The registered set covers the paper's regimes (fp32, bfp8, int8, the
I-BERT integer non-linear package), the 16-bit vector-extension formats
(bf16, fp16) and the minifloat fp8 pair (e4m3/e5m2) — the
proof-of-extensibility members that none of the legacy backends had.
"""

from __future__ import annotations

import re
import warnings
from typing import Callable

import numpy as np

from repro.errors import RegistryError
from repro.obs.numerics import get_monitor

__all__ = [
    "QuantFormat",
    "FP32Format",
    "BfpFormat",
    "IntFormat",
    "MiniFloatFormat",
    "IBertFormat",
    "register_format",
    "get_format",
    "available_formats",
]

Recorder = Callable[[int], None]

_warned_uses_array = False


def _warn_uses_array() -> None:
    """One-time deprecation pointer from ``uses_array`` to the registry."""
    global _warned_uses_array
    if _warned_uses_array:
        return
    _warned_uses_array = True
    warnings.warn(
        "QuantFormat.uses_array is deprecated: formats now carry "
        "array_mode (a repro.cost.modes unit-mode name, or None for the "
        "fp32 vector fallback); resolve the executing mode via "
        "repro.cost.modes.resolve_unit_mode(format_name).",
        DeprecationWarning,
        stacklevel=3,
    )


def _as2d(x: np.ndarray) -> np.ndarray:
    return x.reshape(-1, x.shape[-1]) if x.ndim != 2 else x


def _record(record: Recorder | None, elements: int) -> None:
    if record is not None:
        record(int(elements))


class QuantFormat:
    """One arithmetic regime's kernels, taps and cost-model identity.

    Subclasses override the private ``_*`` hooks; the public methods share
    the operand bookkeeping.  ``record`` callbacks (when given) receive the
    element count of quantization work the emulation actually performed —
    the backend routes them into the profiler's ``quantize`` bucket.
    """

    #: registry key and policy-file spelling of this format
    name: str = "fp32"
    #: profiler / numerics-monitor / compiled-stage attribution label
    precision: str = "fp32"
    #: Name of the :mod:`repro.cost.modes` unit mode this format's
    #: matmuls execute under by default (``"bfp8_mac"`` = the Eqn-9
    #: stream schedule); ``None`` routes them through the fp32 vector
    #: personality.
    array_mode: str | None = None

    @property
    def uses_array(self) -> bool:
        """Deprecated boolean view of :attr:`array_mode`.

        The mode space outgrew a boolean when the trans-precision unit
        modes landed; resolve the executing mode through
        :func:`repro.cost.modes.resolve_unit_mode` instead.
        """
        _warn_uses_array()
        return self.array_mode is not None

    # -- value domain --------------------------------------------------------
    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Encode ``x`` on this format's grid (format-specific payload)."""
        return np.asarray(x, dtype=np.float32)

    def dequantize(self, payload, shape: tuple[int, ...]) -> np.ndarray:
        """Decode a :meth:`quantize` payload back to dense float32."""
        return np.asarray(payload, dtype=np.float32).reshape(shape)

    def snap(self, x: np.ndarray) -> np.ndarray:
        """Round-trip ``x`` through the grid (quantize + dequantize)."""
        return self.dequantize(self.quantize(x), np.asarray(x).shape)

    # -- kernels -------------------------------------------------------------
    def matmul(
        self, x: np.ndarray, w, record: Recorder | None = None
    ) -> np.ndarray:
        """``(m,k) @ (k,n)`` under this regime (``w`` may be prepared)."""
        return (
            np.asarray(x).astype(np.float32) @ np.asarray(w).astype(np.float32)
        ).astype(np.float32)

    def matmul_batched(
        self, a: np.ndarray, b: np.ndarray, record: Recorder | None = None
    ) -> np.ndarray:
        """Stack of independent matmuls ``(B,m,k) @ (B,k,n)``."""
        return (a.astype(np.float32) @ b.astype(np.float32)).astype(np.float32)

    def nonlinear(self, kind: str, fn, x: np.ndarray) -> np.ndarray:
        """Evaluate a non-linear function under this regime's grid."""
        return fn(x).astype(np.float32)

    def requantize(self, x: np.ndarray) -> np.ndarray:
        """Snap an intermediate tensor to the regime's storage grid."""
        return x.astype(np.float32)

    # -- prepared weights ----------------------------------------------------
    def prepare_weight(self, w, record: Recorder | None = None):
        """Quantize-once cached handle for a weight matrix (or ``w`` as-is
        for formats that need no preparation)."""
        return w

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class FP32Format(QuantFormat):
    """Exact float32: the reference regime (no array mapping)."""


class BfpFormat(QuantFormat):
    """Block floating point: 8x8 blocks, shared exponent, ``man_bits``
    mantissas — the paper's systolic-array number format.

    ``exact_accumulate`` replaces the hardware's truncating cross-block
    alignment with exact accumulation (ablation knob; such instances are
    constructed directly, not through the registry).
    """

    array_mode = "bfp8_mac"

    def __init__(self, man_bits: int = 8, *, exact_accumulate: bool = False) -> None:
        self.man_bits = int(man_bits)
        self.exact_accumulate = bool(exact_accumulate)
        self.name = f"bfp{self.man_bits}"
        self.precision = f"bfp{self.man_bits}"

    def quantize(self, x: np.ndarray):
        from repro.formats.blocking import BfpMatrix

        return BfpMatrix.from_dense(_as2d(np.asarray(x)), man_bits=self.man_bits)

    def dequantize(self, payload, shape: tuple[int, ...]) -> np.ndarray:
        return payload.to_dense().reshape(shape).astype(np.float32)

    def prepare_weight(self, w, record: Recorder | None = None):
        from repro.perf.prepared import PreparedTensor, get_cache

        if isinstance(w, PreparedTensor):
            return w
        prepared, hit = get_cache().prepare_bfp(w, man_bits=self.man_bits)
        if not hit:
            _record(record, int(np.prod(prepared.shape)))
        return prepared

    def _weight_blocks(self, w, record: Recorder | None):
        from repro.formats.blocking import BfpMatrix
        from repro.perf.prepared import PreparedTensor

        if isinstance(w, PreparedTensor):
            return w.payload
        _record(record, np.asarray(w).size)
        bm = BfpMatrix.from_dense(
            np.asarray(w, dtype=np.float64), man_bits=self.man_bits
        )
        mon = get_monitor()
        if mon.enabled:
            mon.observe_bfp("weight", w, bm, man_bits=self.man_bits)
        return bm

    def matmul(self, x, w, record: Recorder | None = None) -> np.ndarray:
        from repro.arith.bfp_matmul import activation_blocks, bfp_matmul_prepared

        wm = self._weight_blocks(w, record)
        _record(record, np.asarray(x).size)
        am = activation_blocks(x, man_bits=self.man_bits)
        mon = get_monitor()
        if mon.enabled:
            mon.observe_bfp("activation", x, am, man_bits=self.man_bits)
        return bfp_matmul_prepared(
            am, wm, exact_accumulate=self.exact_accumulate
        ).astype(np.float32)

    def matmul_batched(self, a, b, record: Recorder | None = None) -> np.ndarray:
        from repro.arith.bfp_matmul import bfp_batched_tiles, bfp_matmul_from_tiles

        _record(record, a.size + b.size)
        tiles = bfp_batched_tiles(a, b, man_bits=self.man_bits)
        mon = get_monitor()
        if mon.enabled:
            # Batched matmuls are the attention kernels: the left operand
            # streams from the residual path (activation role), the right
            # is KV-cache-derived (K^T, V).
            a_man, a_exp, b_man, b_exp = tiles[:4]
            mon.observe_bfp_tiles(
                "activation", a, a_man, a_exp, man_bits=self.man_bits
            )
            mon.observe_bfp_tiles("kv", b, b_man, b_exp, man_bits=self.man_bits)
        return bfp_matmul_from_tiles(
            *tiles, exact_accumulate=self.exact_accumulate
        ).astype(np.float32)

    def nonlinear(self, kind, fn, x) -> np.ndarray:
        return self.snap(fn(self.snap(x)))

    def requantize(self, x) -> np.ndarray:
        return self.snap(x)


class IntFormat(QuantFormat):
    """Per-tensor integer quantization (the conventional-int8 comparison)."""

    array_mode = "bfp8_mac"

    def __init__(self, bits: int = 8) -> None:
        self.bits = int(bits)
        self.name = f"int{self.bits}"
        self.precision = f"int{self.bits}"

    def quantize(self, x: np.ndarray):
        from repro.formats.int8q import quantize_intn

        return quantize_intn(x, self.bits)

    def dequantize(self, payload, shape: tuple[int, ...]) -> np.ndarray:
        return payload.decode().reshape(shape).astype(np.float32)

    def prepare_weight(self, w, record: Recorder | None = None):
        from repro.perf.prepared import PreparedTensor, get_cache

        if isinstance(w, PreparedTensor):
            return w
        prepared, hit = get_cache().prepare_int(w, bits=self.bits)
        if not hit:
            _record(record, int(np.prod(prepared.shape)))
        return prepared

    def matmul(self, x, w, record: Recorder | None = None) -> np.ndarray:
        from repro.formats.int8q import int8_matmul, quantize_intn
        from repro.perf.prepared import PreparedTensor

        mon = get_monitor()
        if isinstance(w, PreparedTensor):
            wq = w.payload
            _record(record, np.asarray(x).size)
        else:
            _record(record, np.asarray(x).size + np.asarray(w).size)
            wq = quantize_intn(w, self.bits)
            if mon.enabled:
                mon.observe_int("weight", w, wq, bits=self.bits)
        xq = quantize_intn(x, self.bits)
        if mon.enabled:
            mon.observe_int("activation", x, xq, bits=self.bits)
        return int8_matmul(xq, wq).astype(np.float32)

    def matmul_batched(self, a, b, record: Recorder | None = None) -> np.ndarray:
        from repro.formats.int8q import intn_matmul_quantized, quantize_intn_sliced

        _record(record, a.size + b.size)
        qa, sa = quantize_intn_sliced(a, self.bits)
        qb, sb = quantize_intn_sliced(b, self.bits)
        mon = get_monitor()
        if mon.enabled:
            mon.observe_int_sliced("activation", a, qa, sa, bits=self.bits)
            mon.observe_int_sliced("kv", b, qb, sb, bits=self.bits)
        return intn_matmul_quantized(qa, sa, qb, sb).astype(np.float32)

    def nonlinear(self, kind, fn, x) -> np.ndarray:
        return self.snap(fn(self.snap(x)))

    def requantize(self, x) -> np.ndarray:
        return self.snap(x)


class MiniFloatFormat(QuantFormat):
    """A narrow float format (bf16/fp16/fp8) on the shared half-prec grid.

    Operands are rounded to the grid (RNE, saturate, flush-to-zero — see
    :func:`repro.formats.halfprec.quantize_half`) and accumulated exactly
    in float32, the standard emulation of a wide-accumulator FPU.
    Single-slice formats (8-bit mantissa path or narrower: bf16, both
    fp8s) map onto the systolic array like a bfp8 stream; multi-slice
    fp16 falls back to the vector personality.
    """

    def __init__(self, fmt) -> None:
        self.fmt = fmt
        self.name = fmt.name
        self.precision = fmt.name
        # Single-slice minifloats ride the bfp8 MAC array; multi-slice
        # fp16 has no default array mapping (route it onto ``fp16_dot``
        # through a ModeOptions override to avoid the vector cliff).
        self.array_mode = "bfp8_mac" if fmt.n_slices == 1 else None

    def quantize(self, x: np.ndarray) -> np.ndarray:
        from repro.formats.halfprec import quantize_half

        return quantize_half(np.asarray(x, dtype=np.float32), self.fmt)

    def dequantize(self, payload, shape: tuple[int, ...]) -> np.ndarray:
        return np.asarray(payload, dtype=np.float32).reshape(shape)

    def prepare_weight(self, w, record: Recorder | None = None):
        from repro.perf.prepared import PreparedTensor, get_cache

        if isinstance(w, PreparedTensor):
            return w
        prepared, hit = get_cache().prepare_half(w, fmt=self.fmt)
        if not hit:
            _record(record, int(np.prod(prepared.shape)))
        return prepared

    def matmul(self, x, w, record: Recorder | None = None) -> np.ndarray:
        from repro.formats.halfprec import quantize_half
        from repro.perf.prepared import PreparedTensor

        if isinstance(w, PreparedTensor):
            wq = w.payload
            _record(record, np.asarray(x).size)
        else:
            _record(record, np.asarray(x).size + np.asarray(w).size)
            wq = quantize_half(
                np.asarray(w, dtype=np.float32), self.fmt, role="weight"
            )
        xq = quantize_half(
            np.asarray(x, dtype=np.float32), self.fmt, role="activation"
        )
        return (xq @ wq).astype(np.float32)

    def matmul_batched(self, a, b, record: Recorder | None = None) -> np.ndarray:
        from repro.formats.halfprec import quantize_half

        _record(record, a.size + b.size)
        qa = quantize_half(
            np.asarray(a, dtype=np.float32), self.fmt, role="activation"
        )
        qb = quantize_half(np.asarray(b, dtype=np.float32), self.fmt, role="kv")
        return (qa @ qb).astype(np.float32)

    def nonlinear(self, kind, fn, x) -> np.ndarray:
        return self.quantize(fn(self.quantize(x)))

    def requantize(self, x) -> np.ndarray:
        return self.quantize(x)


class IBertFormat(IntFormat):
    """The I-BERT integer non-linear package (ref [4] of the paper).

    Linear algebra is plain ``int{bits}``; softmax/GELU/LayerNorm run as
    *integer-arithmetic* programs (second-order polynomial exp/erf,
    Newton integer sqrt) on an ``int{act_bits}`` activation grid instead
    of the fp32 vector personality.
    """

    def __init__(self, bits: int = 8, act_bits: int = 8) -> None:
        super().__init__(bits=bits)
        self.act_bits = int(act_bits)
        self.name = "ibert"
        self.precision = f"int{self.act_bits}"

    def nonlinear(self, kind, fn, x) -> np.ndarray:
        from repro.formats.int8q import quantize_intn
        from repro.models.integer_nonlinear import i_gelu, i_softmax, i_sqrt

        xq = quantize_intn(x, self.act_bits)
        q = xq.values.astype(np.int64).reshape(x.shape)
        scale = xq.scale
        if kind == "softmax":
            out_q, out_scale = i_softmax(q, scale)
            return (out_q * out_scale).astype(np.float32)
        if kind == "gelu":
            out_q, out_scale = i_gelu(q, scale)
            return (out_q * out_scale).astype(np.float32)
        if kind in ("layernorm", "rmsnorm"):
            # Integer mean/variance with the Newton integer sqrt.  The
            # integer-normalized tensor (zero mean, unit variance on a 2^7
            # fixed-point grid) is handed back to the layer's own function,
            # which re-normalizes (a near-no-op) and applies gamma/beta —
            # so only the integer normalization's quantization error enters.
            n = q.shape[-1]
            mean = q.sum(-1, keepdims=True) // n if kind == "layernorm" else 0
            c = q - mean
            var = np.maximum((c * c).sum(-1, keepdims=True) // n, 1)
            std = np.maximum(i_sqrt(var), 1)
            norm = (c << 7) // std
            return fn((norm.astype(np.float32) / (1 << 7))).astype(np.float32)
        # Unknown non-linearity (e.g. swiglu): integer pipelines have no
        # program for it; fall back to quantize-evaluate-quantize.
        y = fn((q * scale).astype(np.float32))
        yq = quantize_intn(y, self.act_bits)
        return yq.decode().reshape(y.shape).astype(np.float32)

    def requantize(self, x) -> np.ndarray:
        from repro.formats.int8q import quantize_intn

        return (
            quantize_intn(x, self.act_bits).decode().reshape(x.shape)
            .astype(np.float32)
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, QuantFormat] = {}

_PARAMETRIC = (
    (re.compile(r"bfp(\d+)"), lambda n: BfpFormat(man_bits=n)),
    (re.compile(r"int(\d+)"), lambda n: IntFormat(bits=n)),
)


def register_format(fmt: QuantFormat, *, replace: bool = False) -> QuantFormat:
    """Register a format under its ``name``; duplicate names raise."""
    if not replace and fmt.name in _REGISTRY:
        raise RegistryError(
            f"format {fmt.name!r} is already registered; pass replace=True "
            "to override deliberately"
        )
    _REGISTRY[fmt.name] = fmt
    return fmt


def get_format(name: str) -> QuantFormat:
    """Look up a format by name (``bfpN``/``intN`` materialize on demand)."""
    fmt = _REGISTRY.get(name)
    if fmt is not None:
        return fmt
    for pattern, make in _PARAMETRIC:
        m = pattern.fullmatch(name)
        if m:
            return register_format(make(int(m.group(1))))
    raise RegistryError(
        f"unknown quantization format {name!r}; "
        f"available: {sorted(_REGISTRY)} (plus parametric bfpN / intN)"
    )


def available_formats() -> list[str]:
    """Names currently registered (sorted; parametric families excluded
    until first use)."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    from repro.formats.halfprec import BF16, FP16
    from repro.formats.minifloat import E4M3, E5M2

    register_format(FP32Format())
    register_format(BfpFormat(man_bits=8))
    register_format(IntFormat(bits=8))
    register_format(IBertFormat())
    for half in (BF16, FP16, E4M3, E5M2):
        register_format(MiniFloatFormat(half))


_register_builtins()
