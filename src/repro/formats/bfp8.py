"""8-bit block floating point (bfp8), the paper's linear-layer format.

A bfp8 block (paper Fig. 1, Eqn 1) holds an ``8 x 8`` tile of values that
share a single 8-bit two's-complement exponent; each element keeps its own
8-bit two's-complement mantissa::

    val[i, j] = man[i, j] * 2**expb

Quantization policy (normative, see DESIGN.md Section 5):

* mantissas are clamped to ``[-127, 127]`` — never -128.  This is what makes
  the combined-MAC packing of two 8-bit products into one DSP48E2 safe for
  8-row accumulation (8 * 127**2 < 2**17).
* the shared exponent is chosen so the largest-magnitude element uses 7
  magnitude bits: ``expb = floor(log2(max|x|)) - 6``, bumped by one if
  rounding would overflow 127.
* an all-zero block takes the minimum exponent with all-zero mantissas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.rounding import RoundingMode, shift_right

__all__ = [
    "BLOCK_ROWS",
    "BLOCK_COLS",
    "MAN_MIN",
    "MAN_MAX",
    "EXP_MIN",
    "EXP_MAX",
    "BfpBlock",
    "quantize_block",
    "choose_shared_exponent",
    "quantize_tiles",
    "dequantize_tiles",
]

BLOCK_ROWS = 8
BLOCK_COLS = 8
MAN_MIN = -127
MAN_MAX = 127
EXP_MIN = -128
EXP_MAX = 127

# The largest element of a block occupies man_bits-1 magnitude bits; for the
# default bfp8 that is 7 bits (value ~2**6..2**7).
_TARGET_MSB = 6


def _man_limits(man_bits: int) -> tuple[int, int]:
    """(man_max, target_msb) for a given mantissa width (2..8 bits).

    The magnitude is clamped to ``2**(man_bits-1) - 1`` (never the most
    negative code, preserving the combined-MAC packing guarantee), and the
    shared exponent targets ``man_bits - 2`` magnitude bits for the peak.
    """
    if not (2 <= man_bits <= 8):
        raise ConfigurationError(f"mantissa width {man_bits} outside 2..8")
    return (1 << (man_bits - 1)) - 1, man_bits - 2


@dataclass(frozen=True)
class BfpBlock:
    """One quantized bfp8 block: int8 mantissas plus a shared exponent."""

    mantissas: np.ndarray  # shape (rows, cols), int8-valued
    exponent: int

    def __post_init__(self) -> None:
        man = np.asarray(self.mantissas)
        if man.ndim != 2:
            raise ConfigurationError("BfpBlock mantissas must be 2-D")
        if man.size and (man.min() < MAN_MIN or man.max() > MAN_MAX):
            raise ConfigurationError(
                f"mantissas outside [{MAN_MIN}, {MAN_MAX}]"
            )
        if not (EXP_MIN <= int(self.exponent) <= EXP_MAX):
            raise ConfigurationError(
                f"shared exponent {self.exponent} outside 8-bit range"
            )
        object.__setattr__(self, "mantissas", man.astype(np.int8))
        object.__setattr__(self, "exponent", int(self.exponent))

    @property
    def shape(self) -> tuple[int, int]:
        return self.mantissas.shape  # type: ignore[return-value]

    def decode(self) -> np.ndarray:
        """Dequantize to float64 (``man * 2**expb``)."""
        return self.mantissas.astype(np.float64) * np.ldexp(1.0, self.exponent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BfpBlock(shape={self.shape}, exponent={self.exponent}, "
            f"max|man|={int(np.abs(self.mantissas).max()) if self.mantissas.size else 0})"
        )


def choose_shared_exponent(x: np.ndarray, *, man_bits: int = 8) -> int:
    """Shared exponent for a block of real values (before overflow bump)."""
    _, target_msb = _man_limits(man_bits)
    x = np.asarray(x, dtype=np.float64)
    amax = float(np.abs(x).max()) if x.size else 0.0
    if amax == 0.0 or not np.isfinite(amax):
        return EXP_MIN
    _, e = np.frexp(amax)  # amax = m * 2**e with m in [0.5, 1)
    expb = int(e) - 1 - target_msb
    return int(np.clip(expb, EXP_MIN, EXP_MAX))


def quantize_block(
    x: np.ndarray, *, rounding: RoundingMode = "nearest_even", man_bits: int = 8
) -> BfpBlock:
    """Quantize one real-valued tile into a :class:`BfpBlock`.

    ``man_bits`` selects the block-fp bitwidth (bfp8 by default; bfp4/bfp6
    for the bitwidth-sweep experiments).  Raises on NaN/Inf input — the
    quantizer sits after fp32 hardware that, in this model, refuses special
    values.
    """
    man_max, _ = _man_limits(man_bits)
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigurationError("quantize_block expects a 2-D tile")
    if x.size and not np.isfinite(x).all():
        raise ConfigurationError("NaN/Inf in block quantizer input")
    expb = choose_shared_exponent(x, man_bits=man_bits)
    man = _round_to_int(x, expb, rounding)
    if man.size and int(np.abs(man).max()) > man_max:
        expb = min(expb + 1, EXP_MAX)
        man = _round_to_int(x, expb, rounding)
    man = np.clip(man, -man_max, man_max)
    return BfpBlock(man.astype(np.int8), expb)


def _round_to_int(
    x: np.ndarray, expb: int, rounding: RoundingMode
) -> np.ndarray:
    scaled = np.ldexp(x, -expb)
    if rounding == "truncate":
        return np.floor(scaled).astype(np.int64)
    if rounding == "nearest_even":
        return np.rint(scaled).astype(np.int64)
    if rounding == "nearest_away":
        return np.trunc(scaled + np.copysign(0.5, scaled)).astype(np.int64)
    raise ConfigurationError(f"unsupported block rounding mode: {rounding!r}")


# ---------------------------------------------------------------------------
# Vectorized multi-tile quantization (used by the model-emulation fast path).
# ---------------------------------------------------------------------------

def quantize_tiles(
    tiles: np.ndarray,
    *,
    rounding: RoundingMode = "nearest_even",
    man_bits: int = 8,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a batch of tiles at once.

    ``tiles`` has shape ``(..., r, c)``; returns ``(mantissas, exponents)``
    with shapes ``(..., r, c)`` (int8-valued int16) and ``(...,)`` (int16).
    Semantics are element-for-element identical to :func:`quantize_block`
    (a property test enforces this).
    """
    man_max, target_msb = _man_limits(man_bits)
    tiles = np.asarray(tiles, dtype=np.float64)
    if tiles.ndim < 2:
        raise ConfigurationError("quantize_tiles expects shape (..., r, c)")
    if tiles.size and not np.isfinite(tiles).all():
        raise ConfigurationError("NaN/Inf in block quantizer input")
    amax = np.abs(tiles).max(axis=(-2, -1))
    zero = amax == 0.0
    _, e = np.frexp(np.where(zero, 1.0, amax))
    expb = np.clip(e - 1 - target_msb, EXP_MIN, EXP_MAX).astype(np.int16)
    expb = np.where(zero, np.int16(EXP_MIN), expb)

    man = _round_batch(tiles, expb, rounding)
    over = np.abs(man).max(axis=(-2, -1)) > man_max
    if over.any():
        expb = np.where(over, np.minimum(expb + 1, EXP_MAX), expb).astype(np.int16)
        man = _round_batch(tiles, expb, rounding)
    man = np.clip(man, -man_max, man_max).astype(np.int16)
    return man, expb


def _round_batch(
    tiles: np.ndarray, expb: np.ndarray, rounding: RoundingMode
) -> np.ndarray:
    scaled = np.ldexp(tiles, -expb[..., None, None].astype(np.int32))
    if rounding == "truncate":
        return np.floor(scaled).astype(np.int64)
    if rounding == "nearest_even":
        return np.rint(scaled).astype(np.int64)
    if rounding == "nearest_away":
        return np.trunc(scaled + np.copysign(0.5, scaled)).astype(np.int64)
    raise ConfigurationError(f"unsupported block rounding mode: {rounding!r}")


def dequantize_tiles(mantissas: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_tiles` (up to quantization error)."""
    man = np.asarray(mantissas, dtype=np.float64)
    exp = np.asarray(exponents, dtype=np.int32)
    return np.ldexp(man, exp[..., None, None])


def align_add_mantissas(
    man_x: np.ndarray,
    exp_x: int,
    man_y: np.ndarray,
    exp_y: int,
    *,
    width: int = 48,
) -> tuple[np.ndarray, int]:
    """Add two mantissa tiles under bfp semantics (paper Eqn 3).

    The tile with the smaller exponent is shifted right (truncating) before
    an integer add; the result keeps the larger exponent.  ``width`` bounds
    the adder: results are asserted to fit (the modeled PSU path is 48-bit).
    """
    man_x = np.asarray(man_x, dtype=np.int64)
    man_y = np.asarray(man_y, dtype=np.int64)
    if exp_x >= exp_y:
        hi, lo, d, exp = man_x, man_y, exp_x - exp_y, exp_x
    else:
        hi, lo, d, exp = man_y, man_x, exp_y - exp_x, exp_y
    out = hi + shift_right(lo, d, "truncate")
    limit = np.int64(1) << (width - 1)
    if out.size and (out.min() < -limit or out.max() >= limit):
        from repro.errors import HardwareContractError

        raise HardwareContractError(
            f"aligned add overflows the {width}-bit accumulator"
        )
    return out, exp
