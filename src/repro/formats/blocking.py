"""Tiling of dense matrices into 8x8 bfp8 blocks.

The hardware operates on fixed ``8 x 8`` blocks (paper Section II-B).  A
:class:`BfpMatrix` stores an arbitrary ``(M, N)`` real matrix as a grid of
quantized blocks, zero-padding the ragged edge.  It is the unit of exchange
between the model-emulation layer (``repro.models``) and the hardware
simulator (``repro.hw``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.bfp8 import (
    BLOCK_COLS,
    BLOCK_ROWS,
    BfpBlock,
    dequantize_tiles,
    quantize_tiles,
)
from repro.formats.rounding import RoundingMode

__all__ = ["BfpMatrix", "pad_to_blocks", "iter_block_index"]


def pad_to_blocks(
    x: np.ndarray, rows: int = BLOCK_ROWS, cols: int = BLOCK_COLS
) -> np.ndarray:
    """Zero-pad a 2-D array so both dimensions are multiples of the block."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigurationError("pad_to_blocks expects a 2-D array")
    m, n = x.shape
    pm = (-m) % rows
    pn = (-n) % cols
    if pm == 0 and pn == 0:
        return x
    return np.pad(x, ((0, pm), (0, pn)))


def iter_block_index(n_block_rows: int, n_block_cols: int):
    """Row-major iteration over block coordinates."""
    for bi in range(n_block_rows):
        for bj in range(n_block_cols):
            yield bi, bj


@dataclass(frozen=True)
class BfpMatrix:
    """A dense matrix stored as a grid of bfp8 blocks.

    Attributes
    ----------
    mantissas:
        ``(Rb, Cb, rows, cols)`` int16 array of int8-valued mantissas.
    exponents:
        ``(Rb, Cb)`` int16 array of shared exponents.
    shape:
        the original (unpadded) matrix shape.
    """

    mantissas: np.ndarray
    exponents: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        man = np.asarray(self.mantissas, dtype=np.int16)
        exp = np.asarray(self.exponents, dtype=np.int16)
        if man.ndim != 4:
            raise ConfigurationError("mantissas must be (Rb, Cb, rows, cols)")
        if exp.shape != man.shape[:2]:
            raise ConfigurationError("exponent grid does not match block grid")
        object.__setattr__(self, "mantissas", man)
        object.__setattr__(self, "exponents", exp)
        object.__setattr__(self, "shape", (int(self.shape[0]), int(self.shape[1])))

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        x: np.ndarray,
        *,
        rows: int = BLOCK_ROWS,
        cols: int = BLOCK_COLS,
        rounding: RoundingMode = "nearest_even",
        man_bits: int = 8,
    ) -> "BfpMatrix":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigurationError("from_dense expects a 2-D array")
        padded = pad_to_blocks(x, rows, cols)
        pm, pn = padded.shape
        tiles = padded.reshape(pm // rows, rows, pn // cols, cols).swapaxes(1, 2)
        man, exp = quantize_tiles(tiles, rounding=rounding, man_bits=man_bits)
        return cls(man, exp, x.shape)

    # -- views --------------------------------------------------------------
    @property
    def block_grid(self) -> tuple[int, int]:
        return self.mantissas.shape[0], self.mantissas.shape[1]

    @property
    def block_shape(self) -> tuple[int, int]:
        return self.mantissas.shape[2], self.mantissas.shape[3]

    def block(self, bi: int, bj: int) -> BfpBlock:
        return BfpBlock(
            self.mantissas[bi, bj].astype(np.int8), int(self.exponents[bi, bj])
        )

    def to_dense(self) -> np.ndarray:
        """Dequantize back to a dense float64 array of the original shape."""
        rb, cb = self.block_grid
        r, c = self.block_shape
        vals = dequantize_tiles(self.mantissas, self.exponents)
        dense = vals.swapaxes(1, 2).reshape(rb * r, cb * c)
        return dense[: self.shape[0], : self.shape[1]]

    def quantization_error(self, reference: np.ndarray) -> float:
        """Max absolute error of this encoding against a reference matrix."""
        ref = np.asarray(reference, dtype=np.float64)
        if ref.shape != self.shape:
            raise ConfigurationError("reference shape mismatch")
        return float(np.abs(self.to_dense() - ref).max()) if ref.size else 0.0
