"""Quantization-quality metrics: SQNR of block-fp vs per-tensor integer.

The structural reason the paper's block floating point preserves Transformer
accuracy where per-tensor integer quantization does not is *outlier
containment*: one large activation only coarsens the shared exponent of its
own 8x8 block, while a per-tensor integer scale is poisoned globally.
These helpers quantify that with signal-to-quantization-noise ratios over
controlled distributions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "sqnr_db",
    "bfp_sqnr_db",
    "intn_sqnr_db",
    "DISTRIBUTIONS",
    "sample_distribution",
]


def sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB."""
    ref = np.asarray(reference, dtype=np.float64)
    err = ref - np.asarray(quantized, dtype=np.float64)
    signal = float((ref**2).mean())
    noise = float((err**2).mean())
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal / noise)


def bfp_sqnr_db(x: np.ndarray, man_bits: int = 8) -> float:
    """SQNR of block-fp quantization (8x8 blocks, shared exponent).

    Quantization goes through the shared prepared-operand cache
    (:mod:`repro.perf.prepared`), so sweeps that re-measure the same
    tensor — per distribution x width, or alongside a backend that has
    already prepared it — block-quantize it once per width.
    """
    from repro.perf.prepared import get_cache

    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ConfigurationError("expected a 2-D tensor")
    prepared, _ = get_cache().prepare_bfp(x, man_bits=man_bits)
    q = prepared.payload.to_dense()
    return sqnr_db(x, q)


def intn_sqnr_db(x: np.ndarray, bits: int = 8) -> float:
    """SQNR of per-tensor symmetric integer quantization (memoized via
    the prepared-operand cache, like :func:`bfp_sqnr_db`)."""
    from repro.perf.prepared import get_cache

    x = np.asarray(x, dtype=np.float64)
    prepared, _ = get_cache().prepare_int(x, bits=bits)
    q = prepared.payload.decode().reshape(x.shape)
    return sqnr_db(x, q)


def sample_distribution(
    name: str, shape: tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Test distributions for the format comparison.

    * ``gaussian``: benign, uniform-scale activations;
    * ``heavy-tailed``: Student-t(3) — moderate natural outliers;
    * ``outlier``: Gaussian bulk with ~0.1% of entries scaled 100x, the
      activation-outlier pattern documented for trained Transformers
      (Bondarenko et al., paper reference [6]).
    """
    if name == "gaussian":
        return rng.normal(size=shape)
    if name == "heavy-tailed":
        return rng.standard_t(3, size=shape)
    if name == "outlier":
        x = rng.normal(size=shape)
        mask = rng.random(size=shape) < 1e-3
        x[mask] *= 100.0
        return x
    raise ConfigurationError(f"unknown distribution {name!r}")


DISTRIBUTIONS = ("gaussian", "heavy-tailed", "outlier")
