"""Half-precision formats (bf16 / fp16) for the vector-unit extension study.

The paper's conclusion plans to "delve deeper into high-precision
floating-point optimization within the mixed-precision unit, as the fp32
format is often overly precise for many machine learning systems".  This
module supplies the two standard 16-bit formats in the same
sign/exponent/mantissa decomposition the fp32 path uses, so the sliced
multiplier generalizes to them:

* **bf16** — 8-bit exponent (fp32-compatible), 8-bit magnitude mantissa
  (7 stored + implicit): exactly *one* 8-bit slice, i.e. a single partial
  product per multiply;
* **fp16** — 5-bit exponent (bias 15), 11-bit magnitude mantissa
  (10 stored + implicit): two slices, four partial products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.formats import fp32bits
from repro.obs.numerics import get_monitor

__all__ = ["HalfFormat", "BF16", "FP16", "HALF_FORMATS", "quantize_half",
           "decompose_half", "compose_half"]


@dataclass(frozen=True)
class HalfFormat:
    """A reduced-precision float format processable by the sliced datapath."""

    name: str
    exp_bits: int
    man_bits: int  # magnitude mantissa width, implicit bit included

    @property
    def bias(self) -> int:
        return (1 << (self.exp_bits - 1)) - 1

    @property
    def exp_max(self) -> int:
        return (1 << self.exp_bits) - 1  # special-value code

    @property
    def min_normal(self) -> float:
        """Smallest normal magnitude; products below it flush to zero
        (the datapath keeps no subnormals, like the fp32 path)."""
        return float(2.0 ** (1 - self.bias))

    @property
    def max_finite(self) -> float:
        """Largest representable magnitude (saturation value)."""
        return float(
            ((1 << self.man_bits) - 1)
            * 2.0 ** (self.exp_max - 1 - self.bias - (self.man_bits - 1))
        )

    @property
    def n_slices(self) -> int:
        return -(-self.man_bits // 8)

    @property
    def n_partial_products(self) -> int:
        return self.n_slices**2


BF16 = HalfFormat("bf16", exp_bits=8, man_bits=8)
FP16 = HalfFormat("fp16", exp_bits=5, man_bits=11)
HALF_FORMATS = {"bf16": BF16, "fp16": FP16}


def quantize_half(
    x: np.ndarray, fmt: HalfFormat, *, role: str = "tensor"
) -> np.ndarray:
    """Round float32 values to the half format's grid (RNE), as float32.

    Overflow saturates to the format's largest finite value; underflow
    flushes to zero (consistent with the fp32 path's no-denormal policy).
    ``role`` labels the numerics-monitor tap (weight/activation/kv/tensor).
    """
    x = np.asarray(x, dtype=np.float32)
    sign, exp, man = fp32bits.decompose(x)
    exp64 = exp.astype(np.int64)
    # Round the 24-bit magnitude to man_bits (RNE on the dropped bits).
    drop = fp32bits.MAN_BITS - fmt.man_bits
    from repro.formats.rounding import shift_right

    man_r = shift_right(man, drop, "nearest_even")
    carry = man_r >= (1 << fmt.man_bits)
    man_r = np.where(carry, man_r >> 1, man_r)
    exp64 = exp64 + carry
    # Re-express in the half format's exponent range.
    e_half = exp64 - fp32bits.EXP_BIAS + fmt.bias
    underflow = (man_r > 0) & (e_half < 1)
    overflow = (man_r > 0) & (e_half >= fmt.exp_max)
    man_r = np.where(underflow, 0, man_r)
    e_half = np.clip(e_half, 1, fmt.exp_max - 1)
    man_r = np.where(overflow, (1 << fmt.man_bits) - 1, man_r)
    # Back to a float32 value: man_r * 2**(e_half - bias - (man_bits - 1)).
    mag = man_r.astype(np.float64) * np.exp2(
        (e_half - fmt.bias - (fmt.man_bits - 1)).astype(np.float64)
    )
    out = np.where(sign.astype(bool), -mag, mag)
    out = np.where(man_r == 0, np.where(sign.astype(bool), -0.0, 0.0), out)
    out = out.astype(np.float32)
    mon = get_monitor()
    if mon.enabled:
        mon.observe_half(
            fmt.name,
            man_bits=fmt.man_bits,
            overflow=int(overflow.sum()),
            underflow=int(underflow.sum()),
            source=x,
            quantized=out,
            role=role,
        )
    return out


def decompose_half(
    x: np.ndarray, fmt: HalfFormat
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split half-format values (held as float32 on the grid) into fields.

    Returns ``(sign, biased_exp, man)`` in the *half* format's convention:
    normal values satisfy
    ``value == (-1)**sign * man * 2**(exp - bias - (man_bits - 1))``.
    Values off the grid raise (they should come from :func:`quantize_half`).
    """
    x = np.asarray(x, dtype=np.float32)
    snapped = quantize_half(x, fmt)
    if not np.array_equal(
        snapped.view(np.uint32) & np.uint32(0x7FFFFFFF),
        x.view(np.uint32) & np.uint32(0x7FFFFFFF),
    ):
        raise ConfigurationError(f"values are not on the {fmt.name} grid")
    sign, exp32, man32 = fp32bits.decompose(x)
    exp = exp32.astype(np.int64) - fp32bits.EXP_BIAS + fmt.bias
    man = man32 >> (fp32bits.MAN_BITS - fmt.man_bits)
    zero = man32 == 0
    return sign, np.where(zero, 0, exp), np.where(zero, 0, man)


def compose_half(
    sign: np.ndarray, exp: np.ndarray, man: np.ndarray, fmt: HalfFormat
) -> np.ndarray:
    """Reassemble half-format fields into float32 values."""
    man = np.asarray(man, dtype=np.int64)
    exp = np.asarray(exp, dtype=np.int64)
    if man.size and (man.min() < 0 or man.max() >= (1 << fmt.man_bits)):
        raise ConfigurationError(f"mantissa outside {fmt.man_bits} bits")
    mag = man.astype(np.float64) * np.exp2(
        (exp - fmt.bias - (fmt.man_bits - 1)).astype(np.float64)
    )
    out = np.where(np.asarray(sign).astype(bool), -mag, mag)
    return np.where(man == 0, 0.0, out).astype(np.float32)
