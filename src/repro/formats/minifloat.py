"""Minifloat fp8 formats (e4m3 / e5m2) for the per-layer precision study.

Related FPGA work treats precision as a *per-layer* decision over a family
of narrow float formats (Aggarwal et al., "Shedding the Bits"; Wang et
al., "TransDot").  This module extends the sliced-datapath format family
of :mod:`repro.formats.halfprec` down to 8 bits, giving the format
registry a proof-of-extensibility member that is *not* one of the paper's
original regimes:

* **fp8-e4m3** — 4-bit exponent (bias 7), 4-bit magnitude mantissa
  (3 stored + implicit);
* **fp8-e5m2** — 5-bit exponent (bias 15), 3-bit magnitude mantissa
  (2 stored + implicit).

Both are a *single* 8-bit slice (one partial product per multiply), so a
minifloat matmul maps onto the int8 systolic array exactly like a bfp8
stream — the cost model charges it array cycles, not vector-unit cycles.

Semantics follow the shared :func:`~repro.formats.halfprec.quantize_half`
grid: round-to-nearest-even, overflow **saturates** to the largest finite
value, underflow **flushes to zero** (no subnormals — the datapath keeps
none, matching the fp32 path).  The top exponent code is reserved for
special values and never used for finite data, so the dynamic ranges here
are max |x| = 240 for e4m3 and 57344 for e5m2.  This deviates from the
OCP-fp8 convention (where e4m3 spends the top code on finite values up to
448): a deliberate simplification that keeps one quantizer for every
float format in the registry, documented in DESIGN.md §12.
"""

from __future__ import annotations

from repro.formats.halfprec import HalfFormat, quantize_half

__all__ = ["E4M3", "E5M2", "MINIFLOAT_FORMATS", "quantize_minifloat"]

E4M3 = HalfFormat("fp8-e4m3", exp_bits=4, man_bits=4)
E5M2 = HalfFormat("fp8-e5m2", exp_bits=5, man_bits=3)

MINIFLOAT_FORMATS = {"fp8-e4m3": E4M3, "fp8-e5m2": E5M2}

# The fp8 grids reuse the half-precision quantizer unchanged; the alias
# exists so call sites read as what they are.
quantize_minifloat = quantize_half
