"""Per-tensor symmetric int8 quantization — the paper's comparison baseline.

Conventional int8 accelerators quantize each tensor with one power-free real
scale: ``q = clip(round(x / scale), -127, 127)``.  Transformers quantized
this way need retraining to recover accuracy (paper Section I); we implement
it to reproduce that accuracy gap and as the int8 PE-array design point in
Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Int8Tensor",
    "quantize_int8",
    "quantize_intn",
    "quantize_intn_sliced",
    "int8_matmul",
    "intn_matmul_batched",
    "intn_matmul_quantized",
]

QMAX = 127


@dataclass(frozen=True)
class Int8Tensor:
    """An int8-quantized tensor with its (positive) per-tensor scale."""

    values: np.ndarray  # int8
    scale: float

    def __post_init__(self) -> None:
        v = np.asarray(self.values)
        if v.size and (v.min() < -QMAX or v.max() > QMAX):
            raise ConfigurationError("int8 values outside [-127, 127]")
        if not (self.scale > 0.0 and np.isfinite(self.scale)):
            raise ConfigurationError("scale must be positive and finite")
        object.__setattr__(self, "values", v.astype(np.int8))
        object.__setattr__(self, "scale", float(self.scale))

    def decode(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale


def quantize_intn(
    x: np.ndarray, bits: int = 8, *, percentile: float | None = None
) -> Int8Tensor:
    """Quantize a real tensor symmetrically to ``bits``-wide signed integers.

    ``percentile`` optionally clips the calibration range to that percentile
    of ``|x|`` (a common post-training calibration trick); ``None`` uses the
    exact maximum.  Values are stored int8 (``bits <= 8``).
    """
    if not (2 <= bits <= 8):
        raise ConfigurationError(f"integer bitwidth {bits} outside 2..8")
    qmax = (1 << (bits - 1)) - 1
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return Int8Tensor(np.zeros(x.shape, dtype=np.int8), 1.0)
    if not np.isfinite(x).all():
        raise ConfigurationError("NaN/Inf in int quantizer input")
    mag = np.abs(x)
    if percentile is not None:
        amax = float(np.percentile(mag, percentile))
        # Percentile calibration deliberately clips the tail beyond amax;
        # make that loss observable instead of silent.
        from repro.obs.metrics import get_registry

        reg = get_registry()
        if reg.enabled:
            clipped = int((mag > amax).sum())
            reg.counter("quantize.clipped_elements").inc(clipped)
            reg.counter("quantize.calibrated_elements").inc(x.size)
            reg.histogram("quantize.clipped_fraction").observe(clipped / x.size)
    else:
        amax = float(mag.max())
    scale = amax / qmax
    if scale == 0.0:
        # amax is zero, or so deep in the subnormals that amax/qmax
        # underflows to 0.0 — either way the tensor quantizes to all zeros.
        return Int8Tensor(np.zeros(x.shape, dtype=np.int8), 1.0)
    q = np.clip(np.rint(x / scale), -qmax, qmax).astype(np.int8)
    return Int8Tensor(q, scale)


def quantize_int8(
    x: np.ndarray, *, percentile: float | None = None
) -> Int8Tensor:
    """Quantize a real tensor symmetrically to int8 (see quantize_intn)."""
    return quantize_intn(x, 8, percentile=percentile)


def quantize_intn_sliced(
    x: np.ndarray, bits: int = 8
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize every 2-D slice of a ``(B, m, n)`` stack independently.

    Returns ``(values, scales)`` with ``values`` int8 of the input shape
    and ``scales`` of shape ``(B,)``.  Each slice is quantized exactly as
    :func:`quantize_intn` would quantize it alone — per-slice calibration
    range, the same zero/underflow handling — so a batched matmul built on
    this is bit-identical to a loop of per-slice matmuls.
    """
    if not (2 <= bits <= 8):
        raise ConfigurationError(f"integer bitwidth {bits} outside 2..8")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ConfigurationError("quantize_intn_sliced expects a (B, m, n) stack")
    if x.size == 0:
        return np.zeros(x.shape, dtype=np.int8), np.ones(x.shape[0])
    if not np.isfinite(x).all():
        raise ConfigurationError("NaN/Inf in int quantizer input")
    qmax = (1 << (bits - 1)) - 1
    amax = np.abs(x).max(axis=(1, 2))
    scale = amax / qmax
    # Zero slices (or subnormal-deep amax underflowing to 0.0) quantize to
    # all zeros with a unit scale, matching quantize_intn.
    safe = np.where(scale == 0.0, 1.0, scale)
    q = np.clip(np.rint(x / safe[:, None, None]), -qmax, qmax).astype(np.int8)
    q[scale == 0.0] = 0
    return q, np.where(scale == 0.0, 1.0, scale)


def intn_matmul_batched(a: np.ndarray, b: np.ndarray, bits: int = 8) -> np.ndarray:
    """Batched integer matmul: ``(B, m, k) @ (B, k, n) -> (B, m, n)``.

    One fused kernel over the batch; each slice is quantized with its own
    per-slice scale and accumulated exactly, so the result is bit-identical
    to looping :func:`int8_matmul` over per-slice :func:`quantize_intn`
    calls.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 3 or b.ndim != 3 or a.shape[0] != b.shape[0] or a.shape[2] != b.shape[1]:
        raise ConfigurationError(f"bad batched matmul shapes: {a.shape} @ {b.shape}")
    qa, sa = quantize_intn_sliced(a, bits)
    qb, sb = quantize_intn_sliced(b, bits)
    return intn_matmul_quantized(qa, sa, qb, sb)


def intn_matmul_quantized(
    qa: np.ndarray, sa: np.ndarray, qb: np.ndarray, sb: np.ndarray
) -> np.ndarray:
    """Finish a batched integer matmul from already-quantized slices.

    The split from :func:`intn_matmul_batched` lets callers that inspect
    the quantized codes (the numerics monitor) reuse them for the compute
    instead of quantizing twice.
    """
    acc = qa.astype(np.int64) @ qb.astype(np.int64)
    return acc.astype(np.float64) * (np.asarray(sa) * np.asarray(sb))[:, None, None]


def int8_matmul(a: Int8Tensor, b: Int8Tensor) -> np.ndarray:
    """Integer matmul with exact int32-style accumulation, dequantized.

    Models a conventional int8 accelerator: products accumulate exactly in a
    wide register, and the result is rescaled by the product of the two
    scales.
    """
    av = a.values.astype(np.int64)
    bv = b.values.astype(np.int64)
    acc = av @ bv
    return acc.astype(np.float64) * (a.scale * b.scale)
