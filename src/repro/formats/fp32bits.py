"""Bit-level views of IEEE-754 single precision (fp32) values.

The paper's fp32 datapath (Section II-A, Eqns 4-6) works on a
*signed-magnitude* representation: the sign bit is "fused to the mantissa",
the exponent is kept as a plain (biased) integer, and the 24-bit magnitude
mantissa (implicit leading one made explicit) is cut into three 8-bit slices
``man(i) = man[8i+7 : 8i]`` that feed the int8 multipliers of the systolic
array.

This module provides vectorized NumPy conversions between ``float32`` arrays
and that representation.  All functions are pure and operate on arrays of any
shape.

Conventions
-----------
* ``sign``: 0 for non-negative, 1 for negative (uint8).
* ``exp``:  the *biased* IEEE exponent field (0..255) as int32.  Normal
  numbers have ``1 <= exp <= 254``; a value of 0 here always denotes a true
  zero because denormals are flushed (the modeled hardware has no denormal
  path).
* ``man``:  24-bit magnitude mantissa including the implicit leading one
  (so ``2**23 <= man < 2**24`` for normal numbers, and 0 for zero), int64.
* ``special_values``: ``"raise"`` (default) raises
  :class:`~repro.errors.SpecialValueError` on NaN/Inf inputs; ``"propagate"``
  lets them through as their raw fields (exp == 255).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import SpecialValueError

__all__ = [
    "EXP_BIAS",
    "EXP_SPECIAL",
    "MAN_BITS",
    "SLICE_BITS",
    "N_SLICES",
    "decompose",
    "compose",
    "signed_mantissa",
    "mantissa_slices",
    "slices_to_mantissa",
    "flush_denormals",
    "is_special",
]

EXP_BIAS = 127
EXP_SPECIAL = 255
MAN_BITS = 24  # magnitude mantissa width, implicit bit included
SLICE_BITS = 8
N_SLICES = MAN_BITS // SLICE_BITS  # = 3 (paper Eqn 5)

SpecialPolicy = Literal["raise", "propagate"]

_SIGN_MASK = np.uint32(0x8000_0000)
_EXP_MASK = np.uint32(0x7F80_0000)
_FRAC_MASK = np.uint32(0x007F_FFFF)
_IMPLICIT_ONE = np.int64(1) << 23


def _as_bits(x: np.ndarray) -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=np.float32)
    return x.view(np.uint32)


def is_special(x: np.ndarray) -> np.ndarray:
    """Boolean mask of NaN/Inf elements of a float32 array."""
    bits = _as_bits(np.asarray(x))
    return (bits & _EXP_MASK) == _EXP_MASK


def flush_denormals(x: np.ndarray) -> np.ndarray:
    """Return a copy of ``x`` with denormal values replaced by (signed) zero.

    The modeled datapath treats exponent field 0 as exact zero; this mirrors
    the common FPGA float pipeline choice of flush-to-zero.
    """
    x = np.asarray(x, dtype=np.float32)
    bits = _as_bits(x)
    denormal = ((bits & _EXP_MASK) == 0) & ((bits & _FRAC_MASK) != 0)
    if not denormal.any():
        return x.copy()
    out = bits.copy()
    out[denormal] &= _SIGN_MASK
    return out.view(np.float32).reshape(x.shape)


def _check_special(x: np.ndarray, policy: SpecialPolicy) -> None:
    if policy == "propagate":
        return
    if policy != "raise":
        raise ValueError(f"unknown special_values policy: {policy!r}")
    mask = np.atleast_1d(is_special(x))
    if mask.any():
        bad = np.atleast_1d(np.asarray(x, dtype=np.float32))[mask]
        raise SpecialValueError(
            f"{mask.sum()} NaN/Inf value(s) reached the fp32 datapath "
            f"(first: {bad.flat[0]!r}); the modeled hardware has no "
            f"special-value logic. Use special_values='propagate' to bypass."
        )


def decompose(
    x: np.ndarray, *, special_values: SpecialPolicy = "raise"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split float32 values into ``(sign, biased_exp, man24)``.

    Denormals are flushed to zero.  Zero decomposes to ``(sign, 0, 0)``.
    Normal values satisfy ``value == (-1)**sign * man * 2**(exp - 127 - 23)``.
    """
    x = flush_denormals(np.asarray(x, dtype=np.float32))
    _check_special(x, special_values)
    bits = _as_bits(x)
    sign = ((bits & _SIGN_MASK) >> 31).astype(np.uint8)
    exp = ((bits & _EXP_MASK) >> 23).astype(np.int32)
    man = (bits & _FRAC_MASK).astype(np.int64)
    normal = exp > 0
    man = np.where(normal, man | _IMPLICIT_ONE, 0)
    return sign.reshape(x.shape), exp.reshape(x.shape), man.reshape(x.shape)


def compose(
    sign: np.ndarray,
    exp: np.ndarray,
    man: np.ndarray,
    *,
    strict: bool = True,
) -> np.ndarray:
    """Reassemble float32 values from ``(sign, biased_exp, man24)``.

    ``man`` must be a normalized 24-bit magnitude (``2**23 <= man < 2**24``)
    wherever the value is nonzero; zero is encoded as ``man == 0`` (any exp).
    Exponents outside 1..254 saturate: underflow flushes to zero, overflow
    raises when ``strict`` else becomes +/-Inf.
    """
    sign = np.asarray(sign, dtype=np.uint32)
    exp = np.asarray(exp, dtype=np.int64)
    man = np.asarray(man, dtype=np.int64)
    if man.size and (man.min() < 0 or man.max() >= (1 << MAN_BITS)):
        raise ValueError("mantissa out of 24-bit magnitude range")
    nonzero = man != 0
    if strict:
        bad = nonzero & (man < _IMPLICIT_ONE)
        if bad.any():
            raise ValueError("non-normalized mantissa passed to compose()")
        if (nonzero & (exp >= EXP_SPECIAL)).any():
            raise OverflowError("exponent overflow in compose()")
    underflow = nonzero & (exp < 1)
    overflow = nonzero & (exp >= EXP_SPECIAL)
    exp_c = np.clip(exp, 1, EXP_SPECIAL - 1)
    frac = (man & int(_FRAC_MASK)).astype(np.uint32)
    bits = (sign << np.uint32(31)) | (exp_c.astype(np.uint32) << np.uint32(23)) | frac
    bits = np.where(nonzero & ~underflow, bits, sign << np.uint32(31))
    if overflow.any():
        inf_bits = (sign << np.uint32(31)) | (np.uint32(EXP_SPECIAL) << np.uint32(23))
        bits = np.where(overflow, inf_bits, bits)
    return bits.astype(np.uint32).view(np.float32).reshape(np.shape(man))


def signed_mantissa(sign: np.ndarray, man: np.ndarray) -> np.ndarray:
    """Fuse the sign bit into the mantissa: ``(-1)**sign * man`` (int64).

    This is the paper's "signed magnitude" fusion (Section II-A): downstream
    adders operate on this signed integer directly.
    """
    sign = np.asarray(sign)
    man = np.asarray(man, dtype=np.int64)
    return np.where(sign.astype(bool), -man, man)


def mantissa_slices(man: np.ndarray) -> np.ndarray:
    """Cut 24-bit magnitudes into 3 unsigned 8-bit slices (Eqn 5).

    Returns an int64 array of shape ``man.shape + (3,)`` with slice ``i``
    holding bits ``[8i+7 : 8i]`` — index 0 is the least significant slice.
    """
    man = np.asarray(man, dtype=np.int64)
    if man.size and (man.min() < 0 or man.max() >= (1 << MAN_BITS)):
        raise ValueError("mantissa out of 24-bit magnitude range")
    shifts = np.arange(N_SLICES, dtype=np.int64) * SLICE_BITS
    return (man[..., None] >> shifts) & 0xFF


def slices_to_mantissa(slices: np.ndarray) -> np.ndarray:
    """Inverse of :func:`mantissa_slices`."""
    slices = np.asarray(slices, dtype=np.int64)
    if slices.shape[-1] != N_SLICES:
        raise ValueError(f"expected trailing dimension {N_SLICES}")
    if slices.size and (slices.min() < 0 or slices.max() > 0xFF):
        raise ValueError("slice value out of 8-bit range")
    shifts = np.arange(N_SLICES, dtype=np.int64) * SLICE_BITS
    return (slices << shifts).sum(axis=-1)
