"""Analytical throughput model: paper Eqns 7-10 and system-level figures.

Conventions (matching the paper's reporting):

* bfp8 throughput is counted in OPS with one MAC = 2 ops (Eqn 7's second
  factor of 2) and the combined-MAC optimization contributing the first
  factor of 2;
* fp32 throughput is counted in FLOPS with each vector operation counted as
  a multiply-accumulate-equivalent 2 FLOPs — this is the convention under
  which the paper's "33.88 GFLOPS" headline is consistent with Eqns 8/10
  for 15 units at L = 128:  ``15 * 4 * 2 * 300e6 * 128/136 = 33.88e9``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = [
    "ClockConfig",
    "DEFAULT_CLOCK",
    "bfp_peak_ops",
    "bfp_efficiency",
    "batched_bfp_efficiency",
    "bfp_throughput_ops",
    "fp32_peak_flops",
    "fp32_efficiency",
    "fp32_throughput_flops",
    "system_bfp_throughput_ops",
    "system_fp32_throughput_flops",
    "paper_headline_bfp_tops",
    "paper_headline_fp32_gflops",
]


@dataclass(frozen=True)
class ClockConfig:
    freq_hz: float = 300e6
    rows: int = 8
    cols: int = 8
    fp32_lanes: int = 4
    n_units: int = 15


DEFAULT_CLOCK = ClockConfig()


def bfp_peak_ops(cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """Eqn 7: ``rows * cols * 2 * 2 * freq`` (ops/s, one unit)."""
    return cfg.rows * cfg.cols * 2 * 2 * cfg.freq_hz


def bfp_efficiency(n_x: int, rows: int = 8) -> float:
    """Eqn 9 utilization factor: ``8 N_X / (8 N_X + 15)``."""
    if n_x <= 0:
        raise ValueError("N_X must be positive")
    stream = rows * n_x
    return stream / (stream + 15)


def batched_bfp_efficiency(batch_rows: int, rows: int = 8) -> float:
    """Eqn-9 utilization of a *coalesced* batch of matmul rows.

    ``batch_rows`` independent single-row requests (KV-cache decode steps)
    merged into one stream occupy ``N_X = ceil(batch_rows / rows)`` X
    blocks; the array always processes full ``rows``-row blocks, so the
    useful fraction of the block is ``batch_rows / (N_X * rows)``.  A
    batch of 1 achieves 8/23 * 1/8 ~ 4.3% of peak; a batch of 8 rides the
    same stream at 8/23 ~ 35% — the Eqn-9 view of why dynamic batching
    pays on the decode path.
    """
    if batch_rows <= 0:
        raise ValueError("batch_rows must be positive")
    n_x = ceil(batch_rows / rows)
    return bfp_efficiency(n_x, rows) * (batch_rows / (n_x * rows))


def bfp_throughput_ops(n_x: int, cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """Eqn 9: achieved bfp8 OPS for a stream of ``n_x`` X blocks (one unit)."""
    return bfp_peak_ops(cfg) * bfp_efficiency(n_x, cfg.rows)


def fp32_peak_flops(cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """Eqn 8 with the paper's 2-FLOPs-per-op count: ``lanes * 2 * freq``."""
    return cfg.fp32_lanes * 2 * cfg.freq_hz


def fp32_efficiency(length: int) -> float:
    """Eqn 10 utilization factor: ``L / (L + 8)``."""
    if length <= 0:
        raise ValueError("stream length must be positive")
    return length / (length + 8)


def fp32_throughput_flops(length: int, cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """Eqn 10: achieved fp32 FLOPS for stream length ``L`` (one unit)."""
    return fp32_peak_flops(cfg) * fp32_efficiency(length)


def system_bfp_throughput_ops(
    n_x: int = 64, cfg: ClockConfig = DEFAULT_CLOCK
) -> float:
    """All units running independent bfp8 streams."""
    return cfg.n_units * bfp_throughput_ops(n_x, cfg)


def system_fp32_throughput_flops(
    length: int = 128, cfg: ClockConfig = DEFAULT_CLOCK
) -> float:
    """All units running independent fp32 streams (the 33.88 GFLOPS figure)."""
    return cfg.n_units * fp32_throughput_flops(length, cfg)


def paper_headline_fp32_gflops(cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """The paper's theoretical fp32 number: 15 units at L = 128."""
    return system_fp32_throughput_flops(128, cfg) / 1e9


def half_peak_flops(fmt_name: str, cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """Extension: peak FLOPS of the vector unit in a 16-bit float format.

    16-bit operands double the buffer lane count to 8, and bf16's
    single-slice mantissa (or fp16's four retained partial products) fits
    the 8-row column with capacity to spare, so the lane count is
    bandwidth-bound at 8 — 2x the fp32 peak (paper Section V direction).
    """
    from repro.arith.fp_sliced_half import half_lane_count
    from repro.formats.halfprec import HALF_FORMATS

    fmt = HALF_FORMATS[fmt_name]
    lanes = half_lane_count(fmt, cfg.cols)
    return lanes * 2 * cfg.freq_hz


def half_throughput_flops(
    fmt_name: str, length: int, cfg: ClockConfig = DEFAULT_CLOCK
) -> float:
    """Eqn-10-style achieved FLOPS for a half-precision stream."""
    return half_peak_flops(fmt_name, cfg) * fp32_efficiency(length)


def paper_headline_bfp_tops() -> float:
    """The paper's measured system bfp8 figure (2.052 TOPS).

    Note (EXPERIMENTS.md): this *measured* number exceeds 15 units' Eqn-9
    throughput at 300 MHz (1.12 TOPS); the paper does not reconcile the two.
    We expose the reported constant for Table III/IV reproduction and the
    Eqn-9 value via :func:`system_bfp_throughput_ops`.
    """
    return 2.05206e12 / 1e12
