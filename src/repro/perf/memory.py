"""HBM/AXI memory model for the "measured" side of Fig. 7.

Each processing unit owns two 256-bit AXI channels into HBM (paper
Section III footnote).  A transfer is modeled as a sequence of bursts:
each burst pays a fixed issue latency and then streams one 32-byte beat per
cycle.  The two workload classes differ only in their achievable burst
length — the paper attributes the fp32 mode's gap to theory precisely to
its "more random memory access" (short bursts, no compiler-level burst
optimization yet):

* bfp8 MatMul streams contiguous tiles -> long bursts (up to 64 beats);
* fp32 vector streams gather scattered operands -> short bursts.

The constants are calibrated (see EXPERIMENTS.md) so that the modeled
system matches the two throughput anchors implied by the paper: bfp8
approaching its theoretical curve at N_X = 64, and fp32 landing at ~44% of
theory at L = 128 (the 15 GFLOPS effective rate implied by Table IV's
latency column).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["AxiChannel", "MemoryModel", "DEFAULT_MEMORY"]

BEAT_BYTES = 32  # 256-bit data bus


@dataclass(frozen=True)
class AxiChannel:
    """One 256-bit AXI channel with burst issue overhead."""

    burst_beats: int
    issue_latency: int

    def transfer_cycles(self, n_bytes: int) -> int:
        """Cycles to move ``n_bytes`` through this channel."""
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        if n_bytes == 0:
            return 0
        beats = ceil(n_bytes / BEAT_BYTES)
        bursts = ceil(beats / self.burst_beats)
        return bursts * self.issue_latency + beats


@dataclass(frozen=True)
class MemoryModel:
    """Per-unit memory system: one read + one write channel.

    ``bfp_burst``/``fp32_burst`` are the achievable burst lengths per
    workload class; ``issue_latency`` the HBM/AXI round-trip charged per
    burst.
    """

    issue_latency: int = 16
    bfp_burst_beats: int = 64
    fp32_burst_beats: int = 16

    def read_channel(self, mode: str) -> AxiChannel:
        return AxiChannel(self._burst(mode), self.issue_latency)

    def write_channel(self, mode: str) -> AxiChannel:
        return AxiChannel(self._burst(mode), self.issue_latency)

    def _burst(self, mode: str) -> int:
        if mode == "bfp8":
            return self.bfp_burst_beats
        if mode == "fp32":
            return self.fp32_burst_beats
        raise ValueError(f"unknown workload mode {mode!r}")

    # -- workload byte accounting -------------------------------------------
    @staticmethod
    def bfp_stream_bytes(n_x: int, rows: int = 8, cols: int = 8) -> tuple[int, int]:
        """(read, write) bytes of one bfp8 stream of ``n_x`` X blocks.

        Reads: X mantissas + exponents, plus the two resident Y blocks.
        Writes: the requantized output blocks for both Y fields.
        """
        x_bytes = n_x * (rows * cols + 1)
        y_bytes = 2 * (rows * cols + 1)
        out_bytes = 2 * n_x * (rows * cols + 1)
        return x_bytes + y_bytes, out_bytes

    @staticmethod
    def fp32_stream_bytes(length: int, lanes: int = 4) -> tuple[int, int]:
        """(read, write) bytes of one fp32 stream of per-lane length ``L``."""
        words = lanes * length
        return 2 * words * 4, words * 4

    # -- combined compute + memory timing -------------------------------------
    def stream_total_cycles(
        self, mode: str, compute_cycles: int, read_bytes: int, write_bytes: int
    ) -> int:
        """End-to-end cycles of one double-buffered stream.

        The read prefetch of the *first* burst serializes with compute
        (pipeline lead-in); steady-state reads overlap compute on the read
        channel; the write-back of the final outputs drains after compute
        (one burst's worth serialized, the rest overlapped).
        """
        rd = self.read_channel(mode)
        wr = self.write_channel(mode)
        read_cycles = rd.transfer_cycles(read_bytes)
        write_cycles = wr.transfer_cycles(write_bytes)
        lead_in = rd.issue_latency + min(rd.burst_beats, ceil(read_bytes / BEAT_BYTES))
        drain = wr.issue_latency + min(wr.burst_beats, ceil(write_bytes / BEAT_BYTES))
        body = max(compute_cycles, read_cycles - lead_in, write_cycles - drain)
        return lead_in + body + drain


DEFAULT_MEMORY = MemoryModel()
