"""Prepared-operand cache: quantize an operand once, reuse it every matmul.

The modeled accelerator is Y-stationary (paper Section III): a weight
matrix is quantized to block floating point *once* and kept resident in
the processing units' Y BRAM buffers; every stream of activations reuses
the resident blocks.  The functional emulation, by contrast, used to
re-run block quantization on **both** operands of every matmul — so a
KV-cache decode step paid O(d^2) weight-quantization work for O(d)
useful row work, exactly the cost the hardware never pays.

:class:`PreparedOperandCache` closes that gap.  It memoizes the quantized
form of an operand — a :class:`~repro.arith.bfp_matmul.BfpWeight` (block
encoding plus its matmul-ready flat layout) for the block-fp formats, an
:class:`~repro.formats.int8q.Int8Tensor` for the integer formats, a
grid-snapped float32 array for the half/minifloat formats — keyed by the
full format id from the format registry (``bfp8``, ``int6``,
``fp8-e4m3``, ...) plus any residual parameters (rounding mode), crossed
with a content fingerprint of the source array.  The fingerprint makes in-place mutation safe: updating
a weight changes its digest, so the next lookup re-quantizes instead of
serving stale data (an array-identity memo skips re-hashing only while
the same array object provably cannot have changed).  Cached payload
arrays are marked read-only so a consumer cannot corrupt the cache
through a served reference.

Hits, misses, evictions and resident bytes are published to the process
:class:`~repro.obs.metrics.MetricsRegistry` under ``prepared.cache.*``;
the compute backends additionally attribute quantization work they
actually perform to a ``quantize`` bucket in the attached
:class:`~repro.obs.profile.Profiler`.

A cache built with ``capacity=0`` never stores anything — every lookup
is a miss that quantizes fresh.  That is the uncached baseline the
kernel microbenchmarks compare against (``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

import hashlib
import weakref
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.numerics import get_monitor

if TYPE_CHECKING:  # pragma: no cover
    from repro.arith.bfp_matmul import BfpWeight
    from repro.formats.int8q import Int8Tensor

__all__ = [
    "PreparedTensor",
    "PreparedOperandCache",
    "content_fingerprint",
    "get_cache",
    "set_cache",
]

_METRIC_PREFIX = "prepared.cache"


def _raw_bytes(arr: np.ndarray) -> memoryview:
    a = np.ascontiguousarray(arr)
    return memoryview(a).cast("B")


def content_fingerprint(arr: np.ndarray) -> str:
    """Digest of an array's dtype, shape and raw bytes (blake2b-128).

    O(n) in the array size, but a single streaming pass — 1-2 orders of
    magnitude cheaper than block quantization, which is what a cache hit
    replaces.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(_raw_bytes(arr))
    return h.hexdigest()


def _checksum(arr: np.ndarray) -> int:
    """Fast CRC32 over the array bytes — the identity memo's revalidator.

    Several times cheaper than the blake2b digest; it still reads every
    byte, so any in-place edit of a memoized array is caught (CRC32
    guarantees detection of contiguous edits, which is what weight
    updates and the invalidation tests perform)."""
    return zlib.crc32(_raw_bytes(arr))


@dataclass(frozen=True)
class PreparedTensor:
    """A quantized operand ready for repeated matmul use.

    ``payload`` is the format-specific quantized form (``BfpWeight``,
    ``Int8Tensor``, grid-snapped float32 array) with its arrays frozen
    read-only; ``shape`` is the source matrix shape, so a prepared weight
    can stand in for the dense array wherever only the shape is consulted
    (op statistics, profiler).
    """

    fmt: str  # registry format id: "bfp8" | "int8" | "fp8-e4m3" | ...
    params: tuple
    payload: object
    shape: tuple[int, ...]
    fingerprint: str
    nbytes: int


def _freeze(*arrays: np.ndarray) -> None:
    for a in arrays:
        try:
            a.flags.writeable = False
        except ValueError:  # a view whose base we do not own
            pass


class PreparedOperandCache:
    """LRU cache of prepared (quantized) operands.

    Entries are keyed by ``(format_id, params, fingerprint)`` so arrays
    with identical content share one prepared form regardless of object
    identity — and two formats (or two widths of one family) never serve
    each other's payloads.  An identity memo (``id`` -> weak ref + checksum + digest)
    lets lookups of an unchanged array skip the blake2b content hash: a
    read-only array is trusted outright, a writable one is revalidated
    with a fast CRC32 over its bytes — every byte is still read on every
    lookup, which is what detects in-place mutation.
    """

    def __init__(self, *, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, PreparedTensor] = OrderedDict()
        self._ids: dict[int, tuple[weakref.ref, int, str]] = {}
        self._bytes = 0
        #: bumped by clear(); consumers that hold prepared handles across
        #: calls (compiled decode plans) key their validity on it.
        self.generation = 0

    # -- internals -----------------------------------------------------------
    def _fingerprint(self, arr: np.ndarray) -> str:
        memo = self._ids.get(id(arr))
        if memo is not None:
            ref, crc, digest = memo
            if ref() is arr:
                if not arr.flags.writeable or _checksum(arr) == crc:
                    return digest
        digest = content_fingerprint(arr)
        if len(self._ids) > 4 * self.capacity + 1024:
            self._ids = {
                k: v for k, v in self._ids.items() if v[0]() is not None
            }
        try:
            self._ids[id(arr)] = (weakref.ref(arr), _checksum(arr), digest)
        except TypeError:  # pragma: no cover - non-weakrefable subclass
            pass
        return digest

    def _publish(self) -> None:
        reg = get_registry()
        reg.gauge(f"{_METRIC_PREFIX}.bytes").set(float(self._bytes))
        reg.gauge(f"{_METRIC_PREFIX}.entries").set(float(len(self._entries)))

    def _evict_to_capacity(self) -> None:
        reg = get_registry()
        while len(self._entries) > self.capacity:
            _, old = self._entries.popitem(last=False)
            self._bytes -= old.nbytes
            reg.counter(f"{_METRIC_PREFIX}.evictions").inc()

    def prepare(
        self,
        arr: np.ndarray,
        fmt: str,
        params: tuple,
        build: Callable[[np.ndarray], tuple[object, int]],
    ) -> tuple[PreparedTensor, bool]:
        """Look up or build the prepared form of ``arr``.

        ``build`` maps the dense array to ``(payload, payload_nbytes)``;
        it only runs on a miss.  Returns ``(prepared, hit)``.
        """
        arr = np.asarray(arr)
        reg = get_registry()
        digest = self._fingerprint(arr)
        key = (fmt, params, digest)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            reg.counter(f"{_METRIC_PREFIX}.hits").inc()
            return cached, True
        reg.counter(f"{_METRIC_PREFIX}.misses").inc()
        payload, nbytes = build(arr)
        prepared = PreparedTensor(
            fmt=fmt,
            params=params,
            payload=payload,
            shape=tuple(arr.shape),
            fingerprint=digest,
            nbytes=int(nbytes),
        )
        if self.capacity > 0:
            self._entries[key] = prepared
            self._bytes += prepared.nbytes
            self._evict_to_capacity()
        self._publish()
        return prepared, False

    # -- format-specific entry points ---------------------------------------
    def prepare_bfp(
        self,
        arr: np.ndarray,
        *,
        man_bits: int = 8,
        rounding: str = "nearest_even",
    ) -> tuple[PreparedTensor, bool]:
        """Prepared :class:`BfpWeight` encoding of a dense matrix.

        The payload carries both the :class:`BfpMatrix` blocks and their
        matmul-ready flat layout, so a cache hit skips the per-call
        re-layout as well as the quantization."""
        from repro.arith.bfp_matmul import BfpWeight
        from repro.formats.blocking import BfpMatrix

        def build(a: np.ndarray) -> tuple["BfpWeight", int]:
            bm = BfpMatrix.from_dense(
                np.asarray(a, dtype=np.float64), man_bits=man_bits,
                rounding=rounding,
            )
            mon = get_monitor()
            if mon.enabled:
                # Build runs only on a miss — weights are observed exactly
                # once per residency, matching quantize-once semantics.
                mon.observe_bfp("weight", a, bm, man_bits=man_bits)
            bw = BfpWeight.from_matrix(bm)
            _freeze(bm.mantissas, bm.exponents, bw.man64, bw.exp64)
            nbytes = (
                bm.mantissas.nbytes + bm.exponents.nbytes
                + bw.man64.nbytes + bw.exp64.nbytes
            )
            return bw, nbytes

        return self.prepare(arr, f"bfp{man_bits}", (rounding,), build)

    def prepare_int(
        self, arr: np.ndarray, *, bits: int = 8
    ) -> tuple[PreparedTensor, bool]:
        """Prepared :class:`Int8Tensor` encoding of a dense tensor."""
        from repro.formats.int8q import quantize_intn

        def build(a: np.ndarray) -> tuple["Int8Tensor", int]:
            q = quantize_intn(np.asarray(a, dtype=np.float64), bits)
            mon = get_monitor()
            if mon.enabled:
                mon.observe_int("weight", a, q, bits=bits)
            _freeze(q.values)
            return q, q.values.nbytes + 8  # values + the float scale

        return self.prepare(arr, f"int{bits}", (), build)

    def prepare_half(self, arr: np.ndarray, *, fmt) -> tuple[PreparedTensor, bool]:
        """Prepared half/minifloat encoding: the grid-snapped float32 array.

        ``fmt`` is a :class:`~repro.formats.halfprec.HalfFormat`; the
        stored payload carries one byte per mantissa/exponent/sign field
        pair in the modeled hardware, but the emulation keeps the decoded
        float32 values (4 bytes each) since that is what the matmul
        kernel consumes."""
        from repro.formats.halfprec import quantize_half

        def build(a: np.ndarray) -> tuple[np.ndarray, int]:
            # Build runs only on a miss — the observe tap inside
            # quantize_half fires exactly once per weight residency.
            q = quantize_half(np.asarray(a, dtype=np.float32), fmt, role="weight")
            _freeze(q)
            return q, q.nbytes

        return self.prepare(arr, fmt.name, (fmt.exp_bits, fmt.man_bits), build)

    # -- bookkeeping ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._entries.clear()
        self._ids.clear()
        self._bytes = 0
        self.generation += 1
        self._publish()


_default_cache = PreparedOperandCache()


def get_cache() -> PreparedOperandCache:
    """The process-wide prepared-operand cache the backends share."""
    return _default_cache


def set_cache(cache: PreparedOperandCache) -> PreparedOperandCache:
    """Swap the process-wide cache; returns the previous one.

    Installing ``PreparedOperandCache(capacity=0)`` disables reuse — the
    uncached baseline for benchmarking and for differential tests."""
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous
