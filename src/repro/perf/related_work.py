"""Table III dataset: prior mixed-precision FPGA accelerators.

The comparison rows are literature values transcribed from the paper's
Table III; "Ours" is computed from this reproduction's models (resource
totals scaled to the 15-unit system plus shell, the reported system
throughput, and the derived GOPS/DSP efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.resources import processing_unit_total
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["AcceleratorEntry", "RELATED_WORK", "ours_entry", "table3_rows"]


@dataclass(frozen=True)
class AcceleratorEntry:
    work: str
    data_format: str
    application: str
    needs_retraining: bool
    platform: str
    lut_k: float | None
    ff_k: float | None
    bram: float | None
    dsp: int
    freq_mhz: float
    throughput_gops: float

    @property
    def efficiency_gops_per_dsp(self) -> float:
        return self.throughput_gops / self.dsp if self.dsp else 0.0


RELATED_WORK: tuple[AcceleratorEntry, ...] = (
    AcceleratorEntry("Lian et al. [17]", "bfp8", "CNN", False, "VX690T",
                     231.8, 141.0, 913, 1027, 200, 760.83),
    AcceleratorEntry("Wu et al. [18]", "fp8", "CNN", False, "XC7K325T",
                     154.6, 180.6, 234.5, 768, 200, 1086.8),
    AcceleratorEntry("Fan et al. [19]", "bfp8", "CNN", False, "Intel GX1150",
                     437.2, 170.9, 2713, 1518, 220, 1667.0),
    AcceleratorEntry("Wong et al. [20]", "bfp10", "CNN", False, "KU115",
                     386.3, 425.6, 1426, 4492, 125, 794.0),
    AcceleratorEntry("Auto-ViT-Acc [21]", "int4 & int8", "Transformer", True,
                     "ZCU102", 185.0, None, None, 1152, 150, 907.8),
    AcceleratorEntry("ViA [22]", "fp16", "Transformer", False, "Alveo U50",
                     258.0, 257.0, 1002, 2420, 300, 309.6),
    AcceleratorEntry("Ye et al. [23]", "int8 & int16", "Transformer", True,
                     "Alveo U250", 736.0, None, 1781, 4189, 300, 1800.0),
)

# The paper's own Table III row (reported measurements on the U280).
PAPER_OURS = AcceleratorEntry(
    "Ours (paper)", "bfp8 & fp32", "Transformer", False, "Alveo U280",
    410.6, 602.7, 1353, 2163, 300, 2052.06,
)


# U280 platform shell + HBM interconnect (XDMA shell scale; calibration
# constant so the deployed footprint is comparable with Table III rows).
_SHELL_LUT = 190_000.0
_SHELL_FF = 292_000.0
_SHELL_BRAM = 490.0


def ours_entry(cfg: ClockConfig = DEFAULT_CLOCK) -> AcceleratorEntry:
    """Our modeled system row: ``n_units`` PUs + platform shell.

    Resources come from the Table II component model; throughput from the
    measured-throughput model (cycle counts + AXI/HBM memory model) at the
    paper's N_X = 64 operating point.  The paper's own row reports 2163
    DSPs and 2052 GOPS, which is not consistent with 15 units of 72 DSPs at
    Eqn-9 rates — EXPERIMENTS.md discusses the discrepancy; this row is the
    self-consistent model.
    """
    from repro.perf.latency import system_measured_bfp_ops

    pu = processing_unit_total(cfg.rows, cfg.cols)
    n = cfg.n_units
    return AcceleratorEntry(
        work="Ours (model)",
        data_format="bfp8 & fp32",
        application="Transformer",
        needs_retraining=False,
        platform="Alveo U280 (simulated)",
        lut_k=round((pu.lut * n + _SHELL_LUT) / 1000.0, 1),
        ff_k=round((pu.ff * n + _SHELL_FF) / 1000.0, 1),
        bram=round(pu.bram * n + _SHELL_BRAM, 0),
        dsp=int(pu.dsp * n),
        freq_mhz=cfg.freq_hz / 1e6,
        throughput_gops=round(system_measured_bfp_ops(64, cfg=cfg) / 1e9, 1),
    )


def table3_rows(cfg: ClockConfig = DEFAULT_CLOCK) -> list[AcceleratorEntry]:
    return [*RELATED_WORK, PAPER_OURS, ours_entry(cfg)]
