"""Ablation studies of the design choices (DESIGN.md Section 5/6).

Each knob the paper fixes is varied here with the same models used for the
main reproduction:

* **combined-MAC packing** (Fig. 3): without the 2-MACs-per-DSP trick the
  peak halves and the Y buffer sheds its replicated bank — quantifies what
  the packing buys and what it costs;
* **block size** (8x8): smaller blocks contain outliers better (higher
  SQNR) but pay more shared-exponent storage and worse systolic fill
  efficiency; larger blocks amortize fill but couple more values to one
  exponent;
* **PSU depth** (512): bounds the maximum X stream (Eqn 9's N_X), hence the
  achievable fraction of peak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.bfp8 import quantize_tiles
from repro.perf.resources import (
    Resources,
    exponent_unit,
    pe_array,
    runtime_controller,
    shifter_acc,
)
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = [
    "PackingAblation",
    "ablate_combined_mac",
    "BlockSizeAblation",
    "ablate_block_size",
    "PsuDepthAblation",
    "ablate_psu_depth",
]


# ---------------------------------------------------------------------------
# Combined-MAC packing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PackingAblation:
    packed: bool
    peak_ops: float
    y_buffer_brams: float
    pe_ff: float


def ablate_combined_mac(cfg: ClockConfig = DEFAULT_CLOCK) -> list[PackingAblation]:
    """With vs without the 2-MACs-per-DSP operand packing."""
    n = cfg.rows * cfg.cols
    rows = []
    for packed in (True, False):
        macs_per_dsp = 2 if packed else 1
        peak = n * macs_per_dsp * 2 * cfg.freq_hz
        # Packed mode replicates the Y mantissa bank (16 + 16 + 1 BRAMs)
        # and holds a 16-bit resident pair per PE instead of 8.
        y_brams = (4 * cfg.cols + 1) if packed else (2 * cfg.cols + 1)
        pe_ff = n * (24.0 if packed else 16.0)
        rows.append(PackingAblation(packed, peak, float(y_brams), pe_ff))
    return rows


# ---------------------------------------------------------------------------
# Block size
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlockSizeAblation:
    block: int
    sqnr_db: float
    fill_efficiency: float  # Eqn-9-style, at the max stream for PSU=512
    exponent_overhead_bits_per_value: float
    array_resources: Resources


def ablate_block_size(
    sizes: tuple[int, ...] = (4, 8, 16),
    *,
    data: np.ndarray | None = None,
    seed: int = 0,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> list[BlockSizeAblation]:
    """Quantization quality vs hardware efficiency across block sizes."""
    if data is None:
        rng = np.random.default_rng(seed)
        data = rng.standard_t(3, size=(256, 256))  # realistic heavy tails
    rows = []
    for b in sizes:
        m = data.shape[0] // b * b
        tiles = (
            data[:m, :m]
            .reshape(m // b, b, m // b, b)
            .swapaxes(1, 2)
            .reshape(-1, b, b)
        )
        man, exp = quantize_tiles(tiles)
        deq = man.astype(np.float64) * np.exp2(exp.astype(np.float64))[..., None, None]
        err = deq - tiles
        sqnr = 10 * np.log10((tiles**2).mean() / (err**2).mean())
        # Max continuous stream with a 512-word PSU: 512/b blocks of b rows.
        n_x = 512 // b
        stream = b * n_x
        fill = stream / (stream + (2 * b - 1))  # fill+drain scales with b
        design = (
            pe_array(b, b)
            + shifter_acc(b)
            + exponent_unit(b)
            + runtime_controller()
        )
        rows.append(
            BlockSizeAblation(
                block=b,
                sqnr_db=float(sqnr),
                fill_efficiency=fill,
                exponent_overhead_bits_per_value=8.0 / (b * b),
                array_resources=design,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# PSU depth
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PsuDepthAblation:
    depth: int
    max_n_x: int
    eqn9_efficiency: float
    psu_brams_per_column: float


def ablate_psu_depth(
    depths: tuple[int, ...] = (128, 256, 512, 1024),
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> list[PsuDepthAblation]:
    """The PSU buffer bounds N_X and therefore the fraction of peak."""
    rows = []
    for depth in depths:
        n_x = depth // cfg.rows
        stream = cfg.rows * n_x
        rows.append(
            PsuDepthAblation(
                depth=depth,
                max_n_x=n_x,
                eqn9_efficiency=stream / (stream + 15),
                psu_brams_per_column=depth / 512.0,  # 512x36 BRAM18 units
            )
        )
    return rows
