"""Device-level utilization: the design against the Alveo U280's capacity.

Synthesis flows report component utilization as fractions of the target
device; this module does the same for the modeled design, supporting the
deployment questions the paper answers implicitly (how many units fit, what
limits scaling — it is the HBM channel count, not fabric, that pins the
paper at 15 units: the U280 exposes 32 HBM pseudo-channels and each unit
consumes two).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor

from repro.perf.resources import Resources, processing_unit_total

__all__ = ["DeviceCapacity", "ALVEO_U280", "utilization_pct", "max_units",
           "device_report"]


@dataclass(frozen=True)
class DeviceCapacity:
    """Programmable-logic capacity of a target device."""

    name: str
    lut: float
    ff: float
    bram18: float
    dsp: float
    hbm_channels: int


# xcu280-fsvh2892-2L-e: 1.304M LUTs, 2.607M FFs, 4032 BRAM18 (2016 BRAM36),
# 9024 DSP48E2, 32 HBM AXI pseudo-channels.
ALVEO_U280 = DeviceCapacity(
    name="Alveo U280",
    lut=1_303_680,
    ff=2_607_360,
    bram18=4032,
    dsp=9024,
    hbm_channels=32,
)


def utilization_pct(r: Resources, device: DeviceCapacity = ALVEO_U280) -> dict[str, float]:
    return {
        "lut": 100.0 * r.lut / device.lut,
        "ff": 100.0 * r.ff / device.ff,
        "bram": 100.0 * r.bram / device.bram18,
        "dsp": 100.0 * r.dsp / device.dsp,
    }


def max_units(
    device: DeviceCapacity = ALVEO_U280,
    *,
    channels_per_unit: int = 2,
    shell: Resources = Resources(lut=190_000, ff=292_000, bram=490, dsp=0),
    fabric_margin: float = 0.85,
) -> dict[str, int]:
    """How many units each resource class admits; the minimum binds.

    ``fabric_margin`` models routable fabric (placement never reaches 100%).
    """
    pu = processing_unit_total()
    limits = {
        "lut": floor((device.lut * fabric_margin - shell.lut) / pu.lut),
        "ff": floor((device.ff * fabric_margin - shell.ff) / pu.ff),
        "bram": floor((device.bram18 * fabric_margin - shell.bram) / pu.bram),
        "dsp": floor(device.dsp * fabric_margin / pu.dsp),
        "hbm": device.hbm_channels // channels_per_unit,
    }
    limits["binding"] = min(limits.values())
    return limits


def device_report(n_units: int = 15, device: DeviceCapacity = ALVEO_U280) -> str:
    pu = processing_unit_total()
    system = pu.scaled(n_units)
    u = utilization_pct(system, device)
    lines = [
        f"{device.name}: {n_units} units "
        f"({n_units * 2}/{device.hbm_channels} HBM channels)",
        f"  LUT  {system.lut:10.0f} ({u['lut']:5.2f}% of device)",
        f"  FF   {system.ff:10.0f} ({u['ff']:5.2f}%)",
        f"  BRAM {system.bram:10.1f} ({u['bram']:5.2f}%)",
        f"  DSP  {system.dsp:10.0f} ({u['dsp']:5.2f}%)",
    ]
    lim = max_units(device)
    lines.append(
        "  unit ceiling by resource: "
        + ", ".join(f"{k}={v}" for k, v in lim.items() if k != "binding")
        + f" -> binding constraint admits {lim['binding']} units"
    )
    return "\n".join(lines)
