"""Roofline analysis: why bfp8 MatMul is compute-bound and fp32 is not.

Fig. 7's measured/theoretical gap has a classical explanation: the fp32
vector workload's arithmetic intensity (FLOPs per byte moved) is far below
the machine balance of one unit's two AXI channels, so it is memory-bound;
the bfp8 MatMul reuses the resident Y pair across the whole X stream and
sits near (or above) the ridge.  This module computes those numbers from
the same models used everywhere else and locates each workload against the
roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.memory import BEAT_BYTES, DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import (
    DEFAULT_CLOCK,
    ClockConfig,
    bfp_peak_ops,
    fp32_peak_flops,
)

__all__ = ["RooflinePoint", "machine_balance", "bfp_point", "fp32_point",
           "roofline_series"]


@dataclass(frozen=True)
class RooflinePoint:
    """One workload located against the roofline."""

    name: str
    intensity_ops_per_byte: float
    peak_ops: float
    bandwidth_bound_ops: float

    @property
    def attainable_ops(self) -> float:
        return min(self.peak_ops, self.bandwidth_bound_ops)

    @property
    def memory_bound(self) -> bool:
        return self.bandwidth_bound_ops < self.peak_ops


def stream_bandwidth_bytes_per_s(cfg: ClockConfig = DEFAULT_CLOCK) -> float:
    """One unit's read-channel streaming bandwidth (256-bit @ clock)."""
    return BEAT_BYTES * cfg.freq_hz


def machine_balance(
    peak_ops: float, cfg: ClockConfig = DEFAULT_CLOCK
) -> float:
    """Ridge-point intensity (ops/byte) for a given compute peak."""
    return peak_ops / stream_bandwidth_bytes_per_s(cfg)


def bfp_point(
    n_x: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> RooflinePoint:
    """The bfp8 MatMul stream as a roofline point.

    Ops: ``2 * 2 * n_x * 512`` per stream (combined MAC, MAC = 2 ops);
    bytes: X + Y reads plus output write-back.
    """
    ops = 2.0 * 2 * n_x * cfg.rows * cfg.rows * cfg.cols
    rd, wr = mem.bfp_stream_bytes(n_x, cfg.rows, cfg.cols)
    intensity = ops / (rd + wr)
    bw = stream_bandwidth_bytes_per_s(cfg)
    return RooflinePoint(
        name=f"bfp8 N_X={n_x}",
        intensity_ops_per_byte=intensity,
        peak_ops=bfp_peak_ops(cfg),
        bandwidth_bound_ops=intensity * bw,
    )


def fp32_point(
    length: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> RooflinePoint:
    """The fp32 vector stream as a roofline point (no data reuse at all)."""
    ops = 2.0 * cfg.fp32_lanes * length
    rd, wr = mem.fp32_stream_bytes(length, cfg.fp32_lanes)
    intensity = ops / (rd + wr)
    bw = stream_bandwidth_bytes_per_s(cfg)
    return RooflinePoint(
        name=f"fp32 L={length}",
        intensity_ops_per_byte=intensity,
        peak_ops=fp32_peak_flops(cfg),
        bandwidth_bound_ops=intensity * bw,
    )


def roofline_series(
    mem: MemoryModel = DEFAULT_MEMORY, cfg: ClockConfig = DEFAULT_CLOCK
) -> list[RooflinePoint]:
    pts = [bfp_point(n, mem, cfg) for n in (1, 8, 64)]
    pts += [fp32_point(L, mem, cfg) for L in (16, 128)]
    return pts
