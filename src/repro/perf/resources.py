"""FPGA resource model: LUT/FF/BRAM/DSP per component (Table II, Fig. 6).

Each microarchitectural component has a parameterized cost function; the
paper's 8x8 configuration reproduces Table II exactly (asserted in tests),
and the four PE-array design points of Fig. 6 (int8 / pure bfp8 / the
multi-mode unit / individual bfp8+fp32 units) are assembled from the same
component costs, reproducing the paper's reported ratios:

* bfp8 vs int8: identical DSPs, ~1.19x FFs (alignment shifters + exponent
  unit), more LUTs (the mantissa shifter);
* multi-mode vs pure bfp8: LUT-only overhead (~2.94x at PE-array level,
  the per-PE pre-shifters), FF/DSP nearly identical;
* multi-mode vs individual units: saves ~20.0% DSPs, ~61.2% FFs, ~43.6%
  LUTs.

Calibration notes
-----------------
Per-PE register cost (24 FF: an 8-bit X register + the 16-bit packed Y
pair) and the DSP count are structural; LUT constants are calibrated to the
paper's place-and-route report at the 8x8 point and scale with the obvious
structural parameter (PEs, columns, port widths).  The AMD floating-point
IP core costs used by the "individual units" design point are aggregate
calibrations for a 4-lane fp32 multiply + add vector unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

__all__ = [
    "Resources",
    "pe_array",
    "shifter_acc",
    "exponent_unit",
    "buffers_and_converter",
    "output_quantizer",
    "misc_infrastructure",
    "memory_interface",
    "runtime_controller",
    "fp32_ip_vector_unit",
    "processing_unit_total",
    "table2_breakdown",
    "design_int8",
    "design_bfp8_only",
    "design_multimode",
    "design_individual",
    "fp16_dot_extension",
    "design_multimode_fp16",
    "fig6_designs",
]


@dataclass(frozen=True)
class Resources:
    """A resource vector in LUTs, flip-flops, BRAM18s and DSP48E2 slices."""

    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram + other.bram,
            self.dsp + other.dsp,
        )

    def scaled(self, k: float) -> "Resources":
        return Resources(self.lut * k, self.ff * k, self.bram * k, self.dsp * k)

    def normalized_to(self, base: "Resources") -> dict[str, float]:
        def ratio(a: float, b: float) -> float:
            return a / b if b else 0.0

        return {
            "lut": ratio(self.lut, base.lut),
            "ff": ratio(self.ff, base.ff),
            "bram": ratio(self.bram, base.bram),
            "dsp": ratio(self.dsp, base.dsp),
        }

    def as_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "bram": self.bram, "dsp": self.dsp}


# -- per-PE constants (calibrated at the 8x8 point of Table II) -------------
_PE_FF = 24.0  # 8-bit X register + 16-bit packed Y register
_PE_LUT_BASE = 7.0  # routing / clock-enable fabric per PE (int8 or bfp8)
_PE_LUT_PRESHIFT = 13.578125  # fp32 input pre-shifter muxes per PE (multimode)


def pe_array(rows: int = 8, cols: int = 8, *, multimode: bool = True) -> Resources:
    """The PE array: one DSP48E2 per PE, registers, optional pre-shifters."""
    n = rows * cols
    lut = n * (_PE_LUT_BASE + (_PE_LUT_PRESHIFT if multimode else 0.0))
    return Resources(lut=lut, ff=n * _PE_FF, bram=0.0, dsp=float(n))


# -- column shifter + ACC -----------------------------------------------------
_SHIFTER_LUT_PER_COL = 70.0  # 48-bit barrel shifter stages
_ACC_LUT_PER_COL = 26.0
_SHIFTER_FF_PER_COL = 33.5
_ACC_FF_PER_COL = 47.0


def shifter_acc(
    cols: int = 8, *, with_aligner: bool = True, width: int = 48
) -> Resources:
    """Per-column alignment shifter + accumulator (1 cascaded DSP each).

    ``with_aligner=False`` models a plain integer accumulator (the int8
    design point needs no mantissa alignment).  Costs scale with the
    accumulator width relative to the calibrated 48-bit design.
    """
    w = width / 48.0
    shifter = Resources(
        lut=_SHIFTER_LUT_PER_COL * w * (log2(width) / log2(48)),
        ff=_SHIFTER_FF_PER_COL * w,
    )
    acc = Resources(
        lut=_ACC_LUT_PER_COL * w, ff=_ACC_FF_PER_COL * w, dsp=1.0
    )
    per_col = acc + (shifter if with_aligner else Resources())
    return per_col.scaled(cols)


def exponent_unit(cols: int = 8) -> Resources:
    """Shared-exponent adders/comparators (scales weakly with columns)."""
    return Resources(lut=269.0 * cols / 8.0, ff=195.0 * cols / 8.0)


def buffers_and_converter(
    cols: int = 8, *, multimode: bool = True
) -> Resources:
    """X buffer (2*cols + 1 BRAM), Y buffer (4*cols + 1), layout converter.

    The converter (fp32 crossbar) is the multimode-only part: calibrated so
    the PU-level "overhead modules" fractions match Section III-A.
    """
    x_brams = 2 * cols + 1
    y_brams = 4 * cols + 1
    base = Resources(lut=452.0, ff=514.0, bram=float(x_brams + y_brams))
    converter = Resources(lut=300.0, ff=250.0) if multimode else Resources()
    return base + converter


def output_quantizer(cols: int = 8) -> Resources:
    return Resources(lut=348.0 * cols / 8.0, ff=524.0 * cols / 8.0)


def misc_infrastructure() -> Resources:
    """Delay chains, AXI-Stream register slices, etc. (Table II 'Misc.')."""
    return Resources(lut=483.0, ff=1944.0, bram=3.0)


def memory_interface(channels: int = 2) -> Resources:
    """AXI/HBM memory interface (2 x 256-bit channels per unit)."""
    return Resources(lut=3049.0 * channels / 2.0, ff=4270.0 * channels / 2.0,
                     bram=4.5 * channels / 2.0)


def runtime_controller() -> Resources:
    return Resources(lut=362.0, ff=452.0)


def fp32_ip_vector_unit(lanes: int = 4) -> Resources:
    """AMD floating-point IP: a ``lanes``-wide fp32 multiply + add unit.

    Aggregate calibration for the Fig. 6 "individual units" design point
    (4 parallel fp32 lanes, matching the multi-mode unit's fp32 width).
    """
    return Resources(lut=2969.0, ff=4459.0, dsp=18.0).scaled(lanes / 4.0)


# -- assemblies ---------------------------------------------------------------

def table2_breakdown(rows: int = 8, cols: int = 8) -> dict[str, Resources]:
    """The full PU component breakdown of Table II."""
    return {
        "PE Array": pe_array(rows, cols, multimode=True),
        "Shifter & ACC": shifter_acc(cols),
        "Buffer & Layout Converter": buffers_and_converter(cols),
        "Exponent Unit": exponent_unit(cols),
        "Quantizer": output_quantizer(cols),
        "Misc.": misc_infrastructure(),
        "Memory Interface": memory_interface(),
        "Controller": runtime_controller(),
    }


def processing_unit_total(rows: int = 8, cols: int = 8) -> Resources:
    total = Resources()
    for r in table2_breakdown(rows, cols).values():
        total = total + r
    return total


# -- Fig. 6 design points (PE array + EU + shifters + controller only, the
#    paper's "fair comparison" subset) ---------------------------------------

def design_int8(rows: int = 8, cols: int = 8) -> Resources:
    """A conventional int8 systolic array with plain accumulators."""
    return (
        pe_array(rows, cols, multimode=False)
        + shifter_acc(cols, with_aligner=False)
        + runtime_controller()
    )


def design_bfp8_only(rows: int = 8, cols: int = 8) -> Resources:
    """Exclusive bfp8 MatMul array: adds the aligner and exponent unit."""
    return (
        pe_array(rows, cols, multimode=False)
        + shifter_acc(cols, with_aligner=True)
        + exponent_unit(cols)
        + runtime_controller()
    )


def design_multimode(rows: int = 8, cols: int = 8) -> Resources:
    """The proposed unit: bfp8 array with fp32 pre-shifters (LUT overhead)."""
    return (
        pe_array(rows, cols, multimode=True)
        + shifter_acc(cols, with_aligner=True)
        + exponent_unit(cols)
        + runtime_controller()
    )


def design_individual(rows: int = 8, cols: int = 8, lanes: int = 4) -> Resources:
    """Separate bfp8 array + fp32 IP vector unit, processing independently."""
    return design_bfp8_only(rows, cols) + fp32_ip_vector_unit(lanes)


# -- fp16 dot-product extension (TransDot/DHFP-PE-style dual MAC) ------------
_PE_LUT_FP16 = 7.25  # mantissa split + dual-product select muxes per PE
_PE_FF_FP16 = 4.0  # fp16 operand staging (packed 10+1-bit mantissa pair)
_COL_LUT_FP16 = 16.0  # per-column product recombination pre-add
_COL_FF_FP16 = 9.0  # per-column exponent-pair / carry pipeline registers


def fp16_dot_extension(rows: int = 8, cols: int = 8) -> Resources:
    """Incremental cost of the fp16 dot-product mode over the multi-mode PU.

    Models a dual-precision MAC personality: each DSP48E2 packs two fp16
    mantissa products per cycle (27x18 multiplier split, TransDot/DHFP-PE
    style), so the mode costs **zero additional DSPs or BRAM** — only the
    per-PE mantissa split/select muxes and per-column recombination adders
    (LUTs) plus operand staging and exponent-pair pipeline registers (FFs).
    This is the delta :meth:`repro.cost.modes.UnitMode.resource_delta`
    reports for ``fp16_dot``.
    """
    n = rows * cols
    return Resources(
        lut=n * _PE_LUT_FP16 + cols * _COL_LUT_FP16,
        ff=n * _PE_FF_FP16 + cols * _COL_FF_FP16,
    )


def design_multimode_fp16(rows: int = 8, cols: int = 8) -> Resources:
    """The proposed unit with the fp16 dot-product personality added."""
    return design_multimode(rows, cols) + fp16_dot_extension(rows, cols)


def fig6_designs(
    rows: int = 8, cols: int = 8, *, include_fp16: bool = False
) -> dict[str, Resources]:
    designs = {
        "int8": design_int8(rows, cols),
        "bfp8": design_bfp8_only(rows, cols),
        "ours": design_multimode(rows, cols),
        "indiv": design_individual(rows, cols),
    }
    if include_fp16:
        designs["ours+fp16"] = design_multimode_fp16(rows, cols)
    return designs
