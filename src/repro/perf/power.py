"""FPGA power/energy model (paper Section III evaluates energy consumption).

The paper states it evaluates "utilization, throughput, and energy
consumption" but publishes no energy numbers, so this module is a
calibrated standard model rather than a reproduction target: per-resource
dynamic power coefficients (in the range of AMD XPE estimates for
UltraScale+ at 300 MHz, 0.85 V) scaled by utilization-derived toggle
activity, plus static power.  It supports the energy-per-operation
comparisons the design space implies — e.g. the multi-mode unit vs
individual bfp8+fp32 units, and idle-column gating in fp32 mode ("keeping
the remaining PEs idle to save power", Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.resources import Resources
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig

__all__ = ["PowerCoefficients", "PowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerCoefficients:
    """Dynamic power per resource instance at 100% toggle, 300 MHz (watts).

    Calibration scale: XPE-like figures for UltraScale+ HBM devices —
    a DSP48E2 around 5-8 mW active, BRAM18 ~3-5 mW, fabric LUT/FF tens of
    microwatts.
    """

    lut_w: float = 25e-6
    ff_w: float = 10e-6
    bram_w: float = 4e-3
    dsp_w: float = 6e-3
    static_w: float = 2.5  # device-level static power share


@dataclass(frozen=True)
class PowerReport:
    dynamic_w: float
    static_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.static_w

    def energy_per_op_pj(self, ops_per_second: float) -> float:
        """Energy per operation in picojoules at a given throughput."""
        if ops_per_second <= 0:
            raise ConfigurationError("throughput must be positive")
        return self.total_w / ops_per_second * 1e12


@dataclass(frozen=True)
class PowerModel:
    coeffs: PowerCoefficients = PowerCoefficients()
    clock: ClockConfig = DEFAULT_CLOCK

    def dynamic_power(
        self, resources: Resources, *, activity: float = 1.0,
        active_fraction: float = 1.0,
    ) -> float:
        """Dynamic watts for a resource vector.

        ``activity`` is the toggle-rate scale (0..1); ``active_fraction``
        the fraction of instances not clock-gated (fp32 mode gates 4 of 8
        PE columns plus the idle rows).
        """
        if not (0.0 <= activity <= 1.0 and 0.0 <= active_fraction <= 1.0):
            raise ConfigurationError("activity factors must be in [0, 1]")
        c = self.coeffs
        freq_scale = self.clock.freq_hz / 300e6
        raw = (
            resources.lut * c.lut_w
            + resources.ff * c.ff_w
            + resources.bram * c.bram_w
            + resources.dsp * c.dsp_w
        )
        return raw * activity * active_fraction * freq_scale

    def report(
        self, resources: Resources, *, activity: float = 1.0,
        active_fraction: float = 1.0, share_of_device: float = 1.0,
    ) -> PowerReport:
        """Full power report; static power prorated by device share."""
        return PowerReport(
            dynamic_w=self.dynamic_power(
                resources, activity=activity, active_fraction=active_fraction
            ),
            static_w=self.coeffs.static_w * share_of_device,
        )

    # -- mode-specific convenience --------------------------------------------
    def bfp8_mode_power(self, resources: Resources, utilization: float) -> PowerReport:
        """All PEs active; toggle activity tracks achieved utilization."""
        return self.report(resources, activity=0.25 + 0.75 * utilization)

    def fp32_mode_power(self, resources: Resources, utilization: float) -> PowerReport:
        """Only 4 of 8 columns are enabled (Section II-C idle gating)."""
        return self.report(
            resources,
            activity=0.25 + 0.75 * utilization,
            active_fraction=0.5,
        )
