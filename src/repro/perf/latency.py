"""End-to-end latency model: compute + memory, per workload (Fig. 7, Table IV).

``measured_*`` functions combine the cycle-accurate compute counts (Eqn 9/10
terms, validated against the cycle simulator) with the AXI/HBM memory model
— this is the "measured" series of Fig. 7.  ``Workload`` aggregation feeds
the Table IV end-to-end DeiT latency split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.cost.modes import get_mode
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import (
    DEFAULT_CLOCK,
    ClockConfig,
)

__all__ = [
    "measured_bfp_stream_cycles",
    "measured_bfp_throughput_ops",
    "measured_fp32_stream_cycles",
    "measured_fp32_throughput_flops",
    "system_measured_bfp_ops",
    "system_measured_fp32_flops",
    "LatencyReport",
    "WorkloadPartition",
    "deit_latency_split",
    "vit_batch_unit_cycles",
    "decoder_batch_unit_cycles",
]


def measured_bfp_stream_cycles(
    n_x: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> int:
    """End-to-end cycles of one bfp8 stream including memory I/O.

    Thin wrapper over the ``bfp8_mac`` entry of the unit-mode registry —
    :mod:`repro.cost.modes` owns the Eqn-9 cycle formula.
    """
    return get_mode("bfp8_mac").stream_cycles(n_x, mem=mem, clock=cfg)


def measured_bfp_throughput_ops(
    n_x: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> float:
    """One unit's achieved bfp8 OPS with memory effects (Fig. 7 left)."""
    macs = 2 * n_x * cfg.rows * cfg.rows * cfg.cols
    cycles = measured_bfp_stream_cycles(n_x, mem, cfg)
    return 2.0 * macs * cfg.freq_hz / cycles


def measured_fp32_stream_cycles(
    length: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> int:
    """End-to-end cycles of one fp32 stream including memory I/O.

    Thin wrapper over the ``fp32_vector`` entry of the unit-mode
    registry.
    """
    return get_mode("fp32_vector").stream_cycles(length, mem=mem, clock=cfg)


def measured_fp32_throughput_flops(
    length: int,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> float:
    """One unit's achieved fp32 FLOPS with memory effects (Fig. 7 right)."""
    ops = cfg.fp32_lanes * length
    cycles = measured_fp32_stream_cycles(length, mem, cfg)
    return 2.0 * ops * cfg.freq_hz / cycles


def system_measured_bfp_ops(
    n_x: int = 64,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> float:
    return cfg.n_units * measured_bfp_throughput_ops(n_x, mem, cfg)


def system_measured_fp32_flops(
    length: int = 128,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> float:
    return cfg.n_units * measured_fp32_throughput_flops(length, mem, cfg)


# ---------------------------------------------------------------------------
# Batched-job cost lookups (serving layer)
# ---------------------------------------------------------------------------
#
# One serving "job" is a whole batched forward pass occupying a single unit.
# Both lookups lower the batched model through the compiler (lazy import:
# ``runtime.scheduler`` imports this module) and sum unit-occupancy over
# every chunk of every stage — the cycles the dispatcher charges a unit.
# They are memoized: the event-driven simulator calls them per dispatched
# batch, and all arguments (including the frozen config dataclasses) hash.


@lru_cache(maxsize=4096)
def vit_batch_unit_cycles(
    cfg_vit,
    batch: int = 1,
    *,
    mem: MemoryModel = DEFAULT_MEMORY,
    clock: ClockConfig = DEFAULT_CLOCK,
    policy=None,
    modes=None,
) -> int:
    """Unit-occupancy cycles of one ViT classify job over ``batch`` images.

    ``policy`` is an optional frozen :class:`~repro.models.policy.
    PrecisionPolicy` (hashable, so it composes with the memo); ``None``
    keeps the historical all-bfp8 schedule.  ``modes`` is an optional
    frozen :class:`~repro.cost.modes.ModeOptions` (also hashable)
    selecting per-format unit modes.
    """
    from repro.runtime.scheduler import compile_vit

    model = compile_vit(cfg_vit, batch=batch, clock=clock, mem=mem,
                        policy=policy, modes=modes)
    return model.unit_cycles_per_item()


@lru_cache(maxsize=4096)
def decoder_batch_unit_cycles(
    phase: str,
    batch: int,
    context: int,
    *,
    vocab: int,
    dim: int,
    depth: int,
    n_heads: int,
    mlp_ratio: float = 8 / 3,
    mem: MemoryModel = DEFAULT_MEMORY,
    clock: ClockConfig = DEFAULT_CLOCK,
    policy=None,
    modes=None,
) -> int:
    """Unit-occupancy cycles of one batched decoder prefill/decode job.

    ``context`` is the prompt length (prefill) or current KV length
    (decode); the serving layer buckets it so this cache stays small.
    ``policy`` (frozen, hashable) selects per-layer formats; ``None`` is
    the historical all-bfp8 schedule.  ``modes`` (frozen, hashable)
    selects per-format unit modes through the registry.
    """
    from repro.runtime.scheduler import compile_decoder

    model = compile_decoder(
        vocab=vocab, dim=dim, depth=depth, n_heads=n_heads, context=context,
        mlp_ratio=mlp_ratio, phase=phase, batch=batch, clock=clock, mem=mem,
        policy=policy, modes=modes,
    )
    return model.unit_cycles_per_item()


# ---------------------------------------------------------------------------
# Table IV: end-to-end model latency split
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadPartition:
    """One row of Table IV: a workload class with its op count."""

    name: str
    ops: float  # OPs (bfp8) or FLOPs (fp32), paper counting convention
    mode: str  # "bfp8" or "fp32"


@dataclass
class LatencyReport:
    """Latency split across workload partitions (Table IV)."""

    rows: list[dict] = field(default_factory=list)

    @property
    def total_latency_s(self) -> float:
        return sum(r["latency_s"] for r in self.rows)

    @property
    def total_ops(self) -> float:
        return sum(r["ops"] for r in self.rows)

    def proportions(self) -> list[dict]:
        tl, to = self.total_latency_s, self.total_ops
        out = []
        for r in self.rows:
            out.append(
                dict(
                    r,
                    ops_pct=100.0 * r["ops"] / to if to else 0.0,
                    latency_pct=100.0 * r["latency_s"] / tl if tl else 0.0,
                )
            )
        return out

    def fp32_latency_share(self) -> float:
        tl = self.total_latency_s
        fp = sum(r["latency_s"] for r in self.rows if r["mode"] == "fp32")
        return fp / tl if tl else 0.0


def deit_latency_split(
    partitions: list[WorkloadPartition],
    *,
    bfp_system_ops: float | None = None,
    fp32_system_flops: float | None = None,
    mem: MemoryModel = DEFAULT_MEMORY,
    cfg: ClockConfig = DEFAULT_CLOCK,
) -> LatencyReport:
    """Latency of each workload partition on the full system.

    By default the achieved system rates come from the measured-throughput
    model (bfp8 at N_X = 64, fp32 at L = 128, 15 units); pass explicit rates
    to reproduce the paper's exact Table IV numbers (2052 GOPS / 15 GFLOPS).
    """
    bfp_rate = bfp_system_ops or system_measured_bfp_ops(64, mem, cfg)
    fp32_rate = fp32_system_flops or system_measured_fp32_flops(128, mem, cfg)
    report = LatencyReport()
    for p in partitions:
        rate = bfp_rate if p.mode == "bfp8" else fp32_rate
        report.rows.append(
            {
                "name": p.name,
                "mode": p.mode,
                "ops": p.ops,
                "rate_ops_s": rate,
                "latency_s": p.ops / rate,
            }
        )
    return report
