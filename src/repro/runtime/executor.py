"""Vector-program executor: FPU opcodes on the simulated unit, host ops on NumPy.

The executor is the software half of the paper's mixed-precision runtime: a
program's VMUL/VADD-class instructions run through the bit-faithful fp32
datapath (sliced multiply / aligned add) with Eqn-10 cycle accounting, and
host opcodes run in IEEE double on the CPU side, exactly mirroring the
paper's division escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ProgramError
from repro.hw.unit import MultiModePU
from repro.obs.metrics import get_registry
from repro.runtime.instructions import FPU_OPS, Instr, OpCode, OpCount, Program

__all__ = ["VectorExecutor", "ExecutionTrace"]


@dataclass
class ExecutionTrace:
    """What one program run did: op counts and element totals."""

    program: str
    elements: int
    counts: OpCount = field(default_factory=OpCount)
    host_ops: list[str] = field(default_factory=list)

    @property
    def fpu_flops(self) -> int:
        """FLOPs executed on the FPU (paper convention: 1 op = 2 FLOPs)."""
        return 2 * self.counts.fpu_total


@dataclass
class VectorExecutor:
    """Executes :class:`Program` objects against a :class:`MultiModePU`.

    ``faithful=True`` routes every FPU op through the simulated datapath
    (bit-accurate, slower); ``faithful=False`` uses IEEE float32 NumPy ops
    with identical cycle/op accounting — the two agree to the datapath's
    documented error bounds (property-tested), so accuracy studies may use
    the fast path.

    ``precision`` selects the vector unit's float format: ``"fp32"`` (the
    paper's), or the extension formats ``"bf16"``/``"fp16"`` (paper
    Section V future work) in which every FPU result is snapped to the
    half-precision grid and multiplies go through the half sliced
    datapath.  Half precision implies the fast execution path.
    """

    pu: MultiModePU = field(default_factory=MultiModePU)
    faithful: bool = True
    precision: str = "fp32"

    def __post_init__(self) -> None:
        if self.precision not in ("fp32", "bf16", "fp16"):
            raise ProgramError(f"unknown precision {self.precision!r}")
        if self.precision != "fp32":
            self.faithful = False
            from repro.formats.halfprec import HALF_FORMATS

            self._half = HALF_FORMATS[self.precision]
        else:
            self._half = None

    def run(
        self, program: Program, inputs: dict[str, np.ndarray]
    ) -> tuple[np.ndarray, ExecutionTrace]:
        program.validate()
        missing = [k for k in program.inputs if k not in inputs]
        if missing:
            raise ProgramError(f"missing program inputs: {missing}")
        regs: dict[str, np.ndarray] = {
            k: np.asarray(v, dtype=np.float32) for k, v in inputs.items()
        }
        base_shape = regs[program.inputs[0]].shape
        n_el = int(np.prod(base_shape)) if base_shape else 1
        trace = ExecutionTrace(program.name, n_el)

        for ins in program.instrs:
            regs[ins.dst] = self._execute(ins, regs, trace)
        out = regs[program.output]
        reg = get_registry()
        if reg.enabled:
            # Where the program's work went: FPU ops on the unit vs the
            # paper's host escapes (division, max, ...) on the CPU side.
            reg.counter("runtime.executor.programs").inc()
            reg.counter("runtime.executor.fpu_ops").inc(trace.counts.fpu_total)
            reg.counter("runtime.executor.host_ops").inc(trace.counts.host)
            for op in trace.host_ops:
                reg.counter(f"runtime.executor.host_escapes.{op}").inc()
        return out.astype(np.float32), trace

    # ------------------------------------------------------------------
    def _execute(
        self, ins: Instr, regs: dict[str, np.ndarray], trace: ExecutionTrace
    ) -> np.ndarray:
        a = regs[ins.a]
        b = regs[ins.b] if ins.b is not None else None

        if ins.op in FPU_OPS:
            return self._execute_fpu(ins, a, b, trace)

        trace.counts.host += a.size
        trace.host_ops.append(ins.op.value)
        if ins.op is OpCode.HDIV:
            assert b is not None
            return (a.astype(np.float64) / b.astype(np.float64)).astype(np.float32)
        if ins.op is OpCode.HRECIP:
            return (1.0 / a.astype(np.float64)).astype(np.float32)
        if ins.op is OpCode.HRSQRT:
            return (1.0 / np.sqrt(a.astype(np.float64))).astype(np.float32)
        if ins.op is OpCode.HMAX:
            return np.max(a, axis=-1, keepdims=True).astype(np.float32)
        if ins.op is OpCode.HFLOOR:
            return np.floor(a).astype(np.float32)
        if ins.op is OpCode.HEXP2I:
            return np.exp2(a.astype(np.float64)).astype(np.float32)
        if ins.op is OpCode.HCLAMP:
            lo, hi = ins.imm  # type: ignore[misc]
            return np.clip(a, lo, hi).astype(np.float32)
        raise ProgramError(f"unhandled opcode {ins.op}")  # pragma: no cover

    def _execute_fpu(
        self,
        ins: Instr,
        a: np.ndarray,
        b: np.ndarray | None,
        trace: ExecutionTrace,
    ) -> np.ndarray:
        op = ins.op
        if op is OpCode.VREDSUM:
            # Row-sum as a log-depth tree of FPU adds over the trailing axis.
            trace.counts.fpu_add += max(a.shape[-1] - 1, 0) * (
                a.size // max(a.shape[-1], 1)
            )
            return self._tree_sum(a)
        if op is OpCode.VMULI:
            b = np.full_like(a, np.float32(ins.imm))  # broadcast constant
            op = OpCode.VMUL
        elif op is OpCode.VADDI:
            b = np.full_like(a, np.float32(ins.imm))
            op = OpCode.VADD
        assert b is not None
        a_b, b_b = np.broadcast_arrays(a, b)
        if op is OpCode.VMUL:
            trace.counts.fpu_mul += a_b.size
            if self._half is not None:
                from repro.arith.fp_sliced_half import sliced_multiply_half

                self._account_cycles("mul", a_b.size)
                return sliced_multiply_half(a_b, b_b, self._half)
            if self.faithful:
                return self.pu.fp32_multiply(a_b, b_b)
            self._account_cycles("mul", a_b.size)
            return (a_b * b_b).astype(np.float32)
        if op is OpCode.VSUB:
            b_b = np.negative(b_b)  # sign flip is free in signed magnitude
            op = OpCode.VADD
        if op is OpCode.VADD:
            trace.counts.fpu_add += a_b.size
            if self._half is not None:
                from repro.formats.halfprec import quantize_half

                self._account_cycles("add", a_b.size)
                return quantize_half(
                    (a_b.astype(np.float64) + b_b.astype(np.float64)).astype(np.float32),
                    self._half,
                )
            if self.faithful:
                return self.pu.fp32_add(a_b, b_b)
            self._account_cycles("add", a_b.size)
            return (a_b + b_b).astype(np.float32)
        raise ProgramError(f"unhandled FPU opcode {ins.op}")  # pragma: no cover

    def _tree_sum(self, a: np.ndarray) -> np.ndarray:
        """Pairwise reduction over the trailing axis through the FPU."""
        work = a
        while work.shape[-1] > 1:
            n = work.shape[-1]
            half = n // 2
            lo, hi = work[..., :half], work[..., half : 2 * half]
            if self._half is not None:
                from repro.formats.halfprec import quantize_half

                self._account_cycles("add", lo.size)
                merged = quantize_half((lo + hi).astype(np.float32), self._half)
            elif self.faithful:
                merged = self.pu.fp32_add(lo, hi)
            else:
                self._account_cycles("add", lo.size)
                merged = (lo + hi).astype(np.float32)
            if n % 2:
                merged = np.concatenate([merged, work[..., -1:]], axis=-1)
            work = merged
        return work

    def _account_cycles(self, kind: str, n: int) -> None:
        """Eqn-10 cycle accounting for the fast path (mirrors MultiModePU)."""
        from repro.hw.buffers import FP32_LANES, MAX_FP32_STREAM
        from repro.hw.unit import FP32_PIPELINE_FILL

        per_stream = FP32_LANES * MAX_FP32_STREAM
        cycles = 0
        remaining = n
        while remaining > 0:
            chunk = min(remaining, per_stream)
            lanes_len = -(-chunk // FP32_LANES)
            cycles += lanes_len + FP32_PIPELINE_FILL
            remaining -= chunk
        if kind == "mul":
            self.pu.stats.cycles_fp32_mul += cycles
            self.pu.stats.fp32_mul_ops += n
        else:
            self.pu.stats.cycles_fp32_add += cycles
            self.pu.stats.fp32_add_ops += n
