"""Compiled decode plans: trace once, replay many (configure-once decode).

The paper's fixed-function bfp array wins because every expensive decision
— number format, operand residency, alignment policy — is made at
*configuration* time, not per MAC.  The emulated decode path used to
re-make those decisions in Python on every token: per-layer scope pushes,
policy/format resolution, prepared-cache fingerprint revalidation, monitor
taps and KV re-stacking.  This module hoists all of it out of the loop:

* :class:`DecodePlan` traces one ``TinyLM.forward_step_batch`` per
  (backend, batch-group shape) into a flat sequence of fused ops with the
  prepared-weight handles, resolved formats and fused gate+up projection
  bound up front; :meth:`DecodePlan.replay` executes it with no per-layer
  Python dispatch and **bit-identical** logits versus the eager path.
* :class:`KvArena` keeps a batch group's K/V in one preallocated buffer
  with capacity-doubling in-place appends — no per-token
  ``np.concatenate`` re-stack/copy.
* Numerics-monitor taps become *sampled*: 1-in-N replay steps (default
  ``DEFAULT_TAP_SAMPLE``) re-run the full eager path with every tap live,
  recorded in a small ring buffer, so quantization health survives
  compilation without the per-step overhead.

Weight-mutation contract: a plan holds prepared-weight handles and skips
the per-call fingerprint revalidation (that is the point).  After mutating
model weights in place, call ``repro.perf.prepared.get_cache().clear()`` —
it bumps the cache generation, which invalidates every cached plan.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.arith.bfp_matmul import (
    PSU_WIDTH,
    activation_blocks,
    bfp_batched_tiles,
)
from repro.errors import ConfigurationError, HardwareContractError
from repro.formats.bfp8 import BLOCK_COLS
from repro.formats.registry import BfpFormat
from repro.models.attention import MultiHeadSelfAttention
from repro.models.backend import PolicyBackend
from repro.models.decoder import DecoderBlock, RMSNorm, SwiGLUMLP, TinyLM
from repro.models.layers import Embedding, Linear, Softmax
from repro.obs.numerics import NULL_MONITOR, get_monitor, set_monitor
from repro.perf.prepared import get_cache

__all__ = [
    "KvArena",
    "bind_group_cache",
    "DecodePlan",
    "PlanUnsupported",
    "fast_emulate_blocks",
    "compiled_active",
    "set_compiled_default",
    "set_tap_sampling",
    "resolve_plan",
    "plan_stats",
    "DEFAULT_TAP_SAMPLE",
]

#: replay steps between full-tap eager samples when the monitor is enabled
DEFAULT_TAP_SAMPLE = 32
_TAP_SAMPLE = DEFAULT_TAP_SAMPLE

_COMPILED_DEFAULT = True

_PLAN_CACHE_ATTR = "_decode_plans"
_PLAN_CACHE_MAX = 8


class PlanUnsupported(Exception):
    """The model/backend pair cannot be traced; callers fall back to eager."""


# ---------------------------------------------------------------------------
# KV arenas: preallocated per-group K/V with in-place appends
# ---------------------------------------------------------------------------


class KvArena:
    """A batch group's K/V cache in one preallocated, growable buffer.

    Layout is ``(rows, n_heads, capacity, head_dim)`` float32 — the same
    axes the attention step consumes, so :meth:`views` is a zero-copy
    slice.  Appends write in place; capacity doubles (capped at
    ``max_capacity``, the context window) so a decode of T tokens does
    O(log T) copies instead of T re-stacks.  ``grow_*``/``stack_*``
    counters make the no-copy property testable.
    """

    __slots__ = (
        "n_heads", "head_dim", "length", "capacity", "max_capacity",
        "_k", "_v", "grow_events", "grow_copied", "stack_events",
        "stack_copied",
    )

    def __init__(
        self,
        rows: int,
        n_heads: int,
        head_dim: int,
        *,
        capacity: int = 0,
        max_capacity: int | None = None,
    ) -> None:
        self.n_heads = int(n_heads)
        self.head_dim = int(head_dim)
        self.max_capacity = max_capacity
        self.length = 0
        self.capacity = int(capacity)
        shape = (int(rows), self.n_heads, self.capacity, self.head_dim)
        self._k = np.zeros(shape, dtype=np.float32)
        self._v = np.zeros(shape, dtype=np.float32)
        self.grow_events = 0
        self.grow_copied = 0
        self.stack_events = 0
        self.stack_copied = 0

    @property
    def rows(self) -> int:
        return self._k.shape[0]

    def _grow(self, needed: int) -> None:
        new_cap = max(4, self.capacity * 2, needed)
        if self.max_capacity is not None:
            new_cap = max(min(new_cap, self.max_capacity), needed)
        shape = (self.rows, self.n_heads, new_cap, self.head_dim)
        k = np.zeros(shape, dtype=np.float32)
        v = np.zeros(shape, dtype=np.float32)
        if self.length:
            k[:, :, : self.length] = self._k[:, :, : self.length]
            v[:, :, : self.length] = self._v[:, :, : self.length]
            self.grow_copied += 2 * self._k[:, :, : self.length].size
        self._k, self._v = k, v
        self.capacity = new_cap
        self.grow_events += 1

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Write one new position in place: operands are ``(rows, h, 1, hd)``."""
        if self.length + 1 > self.capacity:
            self._grow(self.length + 1)
        self._k[:, :, self.length] = k_new[:, :, 0]
        self._v[:, :, self.length] = v_new[:, :, 0]
        self.length += 1

    def views(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(rows, h, t, hd)`` K/V views of the filled prefix."""
        return self._k[:, :, : self.length], self._v[:, :, : self.length]

    def row_kv(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """One session's ``(1, h, t, hd)`` K/V views."""
        return (
            self._k[row : row + 1, :, : self.length],
            self._v[row : row + 1, :, : self.length],
        )

    def load_row(self, row: int, k: np.ndarray, v: np.ndarray, length: int) -> None:
        """Copy one session's K/V into a row (arena-formation path)."""
        if length:
            self._k[row, :, :length] = k[0, :, :length]
            self._v[row, :, :length] = v[0, :, :length]
            self.stack_copied += 2 * length * self.n_heads * self.head_dim
        self.length = length


def _entry_length(entry: dict) -> int:
    arena = entry.get("arena")
    if arena is not None:
        return arena.length
    k = entry["k"]
    return 0 if k.size == 0 else k.shape[2]


def bind_group_cache(
    entries: list[dict],
    n_heads: int,
    head_dim: int,
    *,
    max_capacity: int | None = None,
) -> KvArena:
    """Bind a batch group's per-session cache entries to one shared arena.

    Fast path: when the group is exactly the rows of one arena, in order,
    the arena is reused zero-copy (the steady state of a stable batch).
    Otherwise the sessions' K/V are stacked once into a fresh arena — the
    one-time cost the per-step ``np.concatenate`` used to pay every token
    — and each entry is re-bound to its row.  Legacy plain-dict caches
    (no ``"arena"`` key) are adopted the same way.
    """
    first = entries[0].get("arena")
    if (
        first is not None
        and first.rows == len(entries)
        and all(
            e.get("arena") is first and e.get("row") == i
            for i, e in enumerate(entries)
        )
    ):
        return first
    lengths = [_entry_length(e) for e in entries]
    if any(t != lengths[0] for t in lengths):
        raise ConfigurationError(
            "sessions at one position must have equal KV length"
        )
    length = lengths[0]
    arena = KvArena(
        len(entries), n_heads, head_dim,
        capacity=max(4, length + 1), max_capacity=max_capacity,
    )
    arena.stack_events = 1
    for i, entry in enumerate(entries):
        src = entry.get("arena")
        if src is not None:
            k, v = src.row_kv(entry["row"])
        else:
            k, v = entry["k"], entry["v"]
        arena.load_row(i, k, v, length)
        entry["arena"] = arena
        entry["row"] = i
        entry["k"], entry["v"] = arena.row_kv(i)
    return arena


# ---------------------------------------------------------------------------
# Fast bfp replay kernel (bit-identical to _emulate_blocks, f64 throughout)
# ---------------------------------------------------------------------------


def _fast_ok(man_bits: int, kb: int) -> bool:
    """Whether f64 arithmetic is exact for this mantissa width / K depth.

    Every intermediate is an integer bounded by ``kb * 2^(2*man_bits+1)``
    (products of two ``man_bits`` mantissas summed over 8-wide blocks,
    scaled partials only shrink); exactness needs that below 2^53.
    """
    return 2 * man_bits + 1 + max(kb, 1).bit_length() <= 52


def fast_emulate_blocks(
    a_man: np.ndarray,
    a_exp: np.ndarray,
    b_flat: np.ndarray,
    b_exp: np.ndarray,
) -> np.ndarray:
    """Float64 twin of ``_emulate_blocks(..., exact_accumulate=False)``.

    Same operands, same result to the bit, different machine: mantissa
    products run as one batched float64 BLAS matmul (exact — bounded
    integers), and the truncating alignment ``x >> d`` becomes
    ``floor(x * 2^-d)`` (identical for integer-valued f64, including the
    ``d = 63`` sign saturation).  Maximal runs of alignment steps where
    every PSU keeps its exponent are summed in one vectorized pass —
    integer-valued f64 adds at a common scale are order-independent —
    so the sequential Python loop only walks the exponent *changes*.
    Callers gate on :func:`_fast_ok` so every intermediate stays below
    2^53.
    """
    a_exp = np.asarray(a_exp, dtype=np.int64)
    b_exp = np.asarray(b_exp, dtype=np.int64)
    rb, kb, r = a_man.shape[-4], a_man.shape[-3], a_man.shape[-2]
    cb = b_exp.shape[-1]
    nc = b_flat.shape[-1]
    lead = np.broadcast_shapes(a_man.shape[:-4], b_flat.shape[:-3])
    if kb == 0 or cb == 0:
        return np.zeros((*lead, rb * r, nc), dtype=np.float64)
    c = nc // cb
    a_sw = np.asarray(a_man, dtype=np.float64).swapaxes(-4, -3)
    prods = np.matmul(a_sw, b_flat[..., :, None, :, :])
    exps = a_exp.swapaxes(-2, -1)[..., None] + b_exp[..., None, :]
    run = np.maximum.accumulate(exps, axis=-3)
    pv = prods.reshape(*prods.shape[:-1], cb, c)  # (..., Kb, Rb, r, Cb, c)
    psu = np.ascontiguousarray(pv[..., 0, :, :, :, :])
    if kb > 1:
        keeps = run[..., :-1, :, :] >= exps[..., 1:, :, :]
        ds = np.minimum(np.abs(run[..., :-1, :, :] - exps[..., 1:, :, :]), 63)
        sc = np.exp2(-ds.astype(np.float64))
        kb_axis = keeps.ndim - 3
        uniform = keeps.all(
            axis=tuple(i for i in range(keeps.ndim) if i != kb_axis)
        )
        bk = 1
        while bk < kb:
            if uniform[bk - 1]:
                end = bk + 1
                while end < kb and uniform[end - 1]:
                    end += 1
                seg = np.multiply(
                    pv[..., bk:end, :, :, :, :],
                    sc[..., bk - 1 : end - 1, :, None, :, None],
                )
                np.floor(seg, out=seg)
                psu += seg.sum(axis=-5)
                bk = end
            else:
                d = sc[..., bk - 1, :, None, :, None]
                keep = keeps[..., bk - 1, :, None, :, None]
                prod = pv[..., bk, :, :, :, :]
                psu = np.where(
                    keep, psu + np.floor(prod * d), prod + np.floor(psu * d)
                )
                bk += 1
    limit = float(1 << (PSU_WIDTH - 1))
    if psu.size and (psu.min() < -limit or psu.max() >= limit):
        raise HardwareContractError("emulated PSU overflowed 48 bits")
    # +0.0 normalizes any -0.0 from all-zero f64 products: the integer
    # path decodes those lanes to +0.0 and the logits are SHA-pinned.
    dense = (psu + 0.0) * np.exp2(run[..., -1, :, :].astype(np.float64))[
        ..., :, None, :, None
    ]
    return dense.reshape(*lead, rb * r, nc)


def _flatten_cols_f64(b_man: np.ndarray) -> np.ndarray:
    """``_flatten_cols`` twin that widens straight to float64."""
    kb, cb, h, c = b_man.shape[-4:]
    return np.ascontiguousarray(
        b_man.astype(np.float64).swapaxes(-2, -3)
    ).reshape(*b_man.shape[:-4], kb, h, cb * c)


# ---------------------------------------------------------------------------
# Fused ops
# ---------------------------------------------------------------------------


class _LinearOp:
    """One linear layer, resolved at trace time.

    Holds the format and the prepared-weight handle (no per-call cache
    lookup or fingerprint revalidation); block-fp weights additionally
    keep their mantissas pre-widened to float64 for the fast kernel.
    """

    __slots__ = ("fmt", "prepared", "bias", "d_in", "d_out", "fast",
                 "wman", "wexp", "man_bits")

    def __init__(self, fmt, lin: Linear) -> None:
        self.fmt = fmt
        w = lin.params["w"]
        self.prepared = fmt.prepare_weight(w)
        self.bias = lin.params.get("b")
        self.d_in, self.d_out = lin.d_in, lin.d_out
        self._bind_fast()

    def _bind_fast(self) -> None:
        from repro.arith.bfp_matmul import BfpWeight
        from repro.perf.prepared import PreparedTensor

        kb = -(-self.d_in // BLOCK_COLS)
        self.fast = (
            isinstance(self.fmt, BfpFormat)
            and not self.fmt.exact_accumulate
            and isinstance(self.prepared, PreparedTensor)
            and isinstance(self.prepared.payload, BfpWeight)
            and _fast_ok(self.fmt.man_bits, kb)
        )
        if self.fast:
            bw = self.prepared.payload
            self.wman = bw.man64.astype(np.float64)
            self.wexp = bw.exp64
            self.man_bits = self.fmt.man_bits
        else:
            self.wman = self.wexp = None
            self.man_bits = 0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(-1, self.d_in)
        if self.fast:
            am = activation_blocks(flat, man_bits=self.man_bits)
            dense = fast_emulate_blocks(
                am.mantissas, am.exponents, self.wman, self.wexp
            )
            y = dense[: flat.shape[0], : self.d_out].astype(np.float32)
        else:
            y = self.fmt.matmul(flat, self.prepared)
        if self.bias is not None:
            y = y + self.bias
        return y.reshape(*x.shape[:-1], self.d_out).astype(np.float32)


class _FusedLinearOp(_LinearOp):
    """Gate+up projections fused into one weight pass.

    Valid only for non-exact block-fp with ``hidden % 8 == 0``: column
    blocks are independent and the kernel is integer-exact, so the fused
    result's column halves are bit-identical to the two split matmuls
    (the concatenation the eager SwiGLU path builds anyway).
    """

    def __init__(self, fmt, gate: Linear, up: Linear) -> None:
        fused = np.concatenate([gate.params["w"], up.params["w"]], axis=1)
        self.fmt = fmt
        self.prepared = fmt.prepare_weight(fused)
        self.bias = None
        self.d_in, self.d_out = gate.d_in, gate.d_out + up.d_out
        self._bind_fast()


class _AttnMatmulOp:
    """Batched attention matmul (Q.K^T / P.V), format-resolved at trace."""

    __slots__ = ("fmt", "fast", "man_bits")

    def __init__(self, fmt, *, kb_max: int) -> None:
        self.fmt = fmt
        self.fast = (
            isinstance(fmt, BfpFormat)
            and not fmt.exact_accumulate
            and _fast_ok(fmt.man_bits, kb_max)
        )
        self.man_bits = fmt.man_bits if self.fast else 0

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.fast:
            a_man, a_exp, b_man, b_exp, m, n = bfp_batched_tiles(
                a, b, man_bits=self.man_bits
            )
            dense = fast_emulate_blocks(
                a_man, a_exp, _flatten_cols_f64(b_man), b_exp
            )
            return dense[:, :m, :n].astype(np.float32)
        return self.fmt.matmul_batched(a, b)


class _NonlinearShim:
    """Just enough backend surface for RMSNorm/Softmax.forward to run
    through the module's own code with a pre-resolved format."""

    __slots__ = ("_fmt",)

    def __init__(self, fmt) -> None:
        self._fmt = fmt

    def nonlinear(self, kind, fn, x):
        return self._fmt.nonlinear(kind, fn, x)


def _swiglu_fn(mod: SwiGLUMLP):
    """The eager SwiGLU closure, rebuilt so replay fills ``mod._cache``."""

    def fn(gu: np.ndarray) -> np.ndarray:
        half = gu.shape[-1] // 2
        gg, uu = gu[..., :half], gu[..., half:]
        act = mod._silu(gg.astype(np.float64)).astype(np.float32)
        mod._cache = (gg, uu, act)
        return act * uu

    return fn


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass
class _BlockOps:
    norm1: RMSNorm
    norm2: RMSNorm
    mlp: SwiGLUMLP
    softmax: Softmax
    nl_attn: _NonlinearShim
    nl_mlp: _NonlinearShim
    res_attn: object
    res_mlp: object
    qkv: _LinearOp
    proj: _LinearOp
    gate_up: _LinearOp  # fused or gate (with .up set) — see build
    up: _LinearOp | None
    down: _LinearOp
    attn_mm: _AttnMatmulOp
    swiglu: object


class DecodePlan:
    """A traced ``forward_step_batch`` for one (backend, batch) shape."""

    def __init__(self, model: TinyLM, backend: PolicyBackend, batch: int) -> None:
        self.batch = batch
        self.backend_name = backend.name
        self.sample_every = _TAP_SAMPLE
        self.replays = 0
        self.sampled = 0
        self._tap_counter = 0
        self.samples: deque = deque(maxlen=64)
        self._trace(model, backend)

    # -- trace ---------------------------------------------------------------
    def _trace(self, model: TinyLM, backend: PolicyBackend) -> None:
        def exact(obj, cls):
            if type(obj) is not cls:
                raise PlanUnsupported(
                    f"{type(obj).__name__} is not a traceable {cls.__name__}"
                )
            return obj

        exact(model, TinyLM)
        exact(model.embed, Embedding)
        exact(model.norm, RMSNorm)
        exact(model.head, Linear)
        self.embed = model.embed
        self.pos_embed = model.params["pos_embed"]
        self.final_norm = model.norm
        b = self.batch
        d, vocab = model.dim, model.vocab
        kb_attn = -(-max(model.seq_len, 1) // BLOCK_COLS)
        self.n_heads = self.head_dim = 0
        self.scale = 1.0
        self.blocks: list[_BlockOps] = []
        count = rows = macs = 0
        macs_t = 0
        for i, blk in enumerate(model.blocks):
            exact(blk, DecoderBlock)
            attn = exact(blk.attn, MultiHeadSelfAttention)
            if not attn.causal:
                raise PlanUnsupported("decode plans require causal attention")
            exact(blk.norm1, RMSNorm)
            exact(blk.norm2, RMSNorm)
            mlp = exact(blk.mlp, SwiGLUMLP)
            for lin in (attn.qkv, attn.proj, mlp.gate, mlp.up, mlp.down):
                exact(lin, Linear)
            exact(attn.attn_softmax, Softmax)
            apath, mpath = f"block{i}.attn", f"block{i}.mlp"
            lin_a = backend._fmt_at(apath, "linear")
            lin_m = backend._fmt_at(mpath, "linear")
            att_f = backend._fmt_at(apath, "attention")
            h, hd = attn.n_heads, attn.head_dim
            hidden = mlp.gate.d_out
            fuse = (
                isinstance(lin_m, BfpFormat)
                and not lin_m.exact_accumulate
                and hidden % BLOCK_COLS == 0
            )
            self.blocks.append(_BlockOps(
                norm1=blk.norm1,
                norm2=blk.norm2,
                mlp=mlp,
                softmax=attn.attn_softmax,
                nl_attn=_NonlinearShim(backend._fmt_at(apath, "nonlinear")),
                nl_mlp=_NonlinearShim(backend._fmt_at(mpath, "nonlinear")),
                res_attn=backend._fmt_at(apath, "residual"),
                res_mlp=backend._fmt_at(mpath, "residual"),
                qkv=_LinearOp(lin_a, attn.qkv),
                proj=_LinearOp(lin_a, attn.proj),
                gate_up=(
                    _FusedLinearOp(lin_m, mlp.gate, mlp.up)
                    if fuse else _LinearOp(lin_m, mlp.gate)
                ),
                up=None if fuse else _LinearOp(lin_m, mlp.up),
                down=_LinearOp(lin_m, mlp.down),
                attn_mm=_AttnMatmulOp(
                    att_f, kb_max=max(kb_attn, -(-hd // BLOCK_COLS))
                ),
                swiglu=_swiglu_fn(mlp),
            ))
            self.n_heads, self.head_dim = h, hd
            self.scale = attn.scale
            # Op statistics are bumped per replay with the exact eager
            # counts, fusion notwithstanding (gate and up each count).
            count += 5 + 2 * b * h
            rows += 5 * b + 2 * b * h
            macs += b * (d * 3 * d + d * d + 2 * d * hidden + hidden * d)
            macs_t += 2 * b * h * hd
        self.head = _LinearOp(backend._fmt_at("head", "linear"), model.head)
        self.nl_final = _NonlinearShim(backend._fmt_at("final_norm", "nonlinear"))
        self.dim, self.vocab = d, vocab
        self._count = count + 1
        self._rows = rows + b
        self._macs = macs + b * d * vocab
        self._macs_t = macs_t

    # -- sampled taps --------------------------------------------------------
    def take_sample(self, position: int, batch: int) -> bool:
        """True when this step must run eagerly with full monitor taps."""
        if not get_monitor().enabled:
            return False
        self._tap_counter += 1
        if (self._tap_counter - 1) % self.sample_every:
            return False
        self.sampled += 1
        self.samples.append({
            "step": self._tap_counter,
            "position": int(position),
            "batch": int(batch),
        })
        return True

    # -- replay --------------------------------------------------------------
    def replay(
        self,
        toks: np.ndarray,
        pos: int,
        arenas: list[KvArena],
        backend: PolicyBackend,
    ) -> np.ndarray:
        mon = get_monitor()
        if mon.enabled:
            # Non-sampled steps run tap-free even for formats whose
            # kernels tap internally (minifloat quantize, int observe).
            set_monitor(NULL_MONITOR)
            try:
                return self._replay(toks, pos, arenas, backend)
            finally:
                set_monitor(mon)
        return self._replay(toks, pos, arenas, backend)

    def _replay(self, toks, pos, arenas, backend) -> np.ndarray:
        b = self.batch
        h, hd, d = self.n_heads, self.head_dim, self.dim
        x = self.embed.forward(toks)
        x = (x + self.pos_embed[:, pos : pos + 1]).astype(np.float32)
        t = 0
        for ops, arena in zip(self.blocks, arenas):
            nrm = ops.norm1.forward(x, ops.nl_attn)
            qkv = ops.qkv(nrm)
            qkv = qkv.reshape(b, 1, 3, h, hd).transpose(2, 0, 3, 1, 4)
            q, k_new, v_new = qkv[0], qkv[1], qkv[2]
            arena.append(k_new, v_new)
            k, v = arena.views()
            t = arena.length
            s = ops.attn_mm(
                q.reshape(b * h, 1, hd),
                k.transpose(0, 1, 3, 2).reshape(b * h, hd, t),
            )
            scores = s.reshape(b, h, 1, t) * self.scale
            probs = ops.softmax.forward(scores.astype(np.float32), ops.nl_attn)
            ctx = ops.attn_mm(
                probs.reshape(b * h, 1, t), v.reshape(b * h, t, hd)
            )
            ctx = ctx.reshape(b, h, 1, hd).transpose(0, 2, 1, 3).reshape(b, 1, d)
            x = ops.res_attn.requantize(
                x + ops.proj(ctx.astype(np.float32))
            )
            nrm2 = ops.norm2.forward(x, ops.nl_mlp)
            if ops.up is None:
                gu = ops.gate_up(nrm2)
            else:
                gu = np.concatenate(
                    [ops.gate_up(nrm2), ops.up(nrm2)], axis=-1
                )
            gated = ops.nl_mlp.nonlinear("swiglu", ops.swiglu, gu)
            x = ops.res_mlp.requantize(x + ops.down(gated))
            x = x.astype(np.float32)
        x = self.final_norm.forward(x, self.nl_final)
        logits = self.head(x)[:, 0]
        backend.matmul_count += self._count
        backend.matmul_rows += self._rows
        backend.matmul_macs += self._macs + t * self._macs_t
        self.replays += 1
        return logits

    def stats(self) -> dict:
        return {
            "backend": self.backend_name,
            "batch": self.batch,
            "replays": self.replays,
            "sampled_taps": self.sampled,
            "sample_every": self.sample_every,
        }


# ---------------------------------------------------------------------------
# Plan cache + activation policy
# ---------------------------------------------------------------------------


@dataclass
class _PlanEntry:
    backend: PolicyBackend
    policy: object
    cache: object
    generation: int
    plan: DecodePlan | None


def set_compiled_default(value: bool) -> bool:
    """Flip the process-wide compiled-decode default; returns the old one."""
    global _COMPILED_DEFAULT
    previous = _COMPILED_DEFAULT
    _COMPILED_DEFAULT = bool(value)
    return previous


def set_tap_sampling(every: int) -> int:
    """Set the 1-in-N sampled-tap period for new plans; returns the old N."""
    global _TAP_SAMPLE
    previous = _TAP_SAMPLE
    _TAP_SAMPLE = max(1, int(every))
    return previous


def compiled_active(backend, override: bool | None = None) -> bool:
    """Whether a decode step should go through a compiled plan.

    Explicit ``override`` wins.  With no override, compiled is the
    default (:func:`set_compiled_default`) but defers to eager whenever
    something wants full per-op observation: an attached profiler, a
    non-empty scope stack (outer scopes change policy layer paths), an
    enabled numerics monitor, or a non-policy backend.
    """
    if override is False:
        return False
    if not isinstance(backend, PolicyBackend):
        return False
    if backend.profiler is not None or backend._scopes:
        return False
    if override is None and (not _COMPILED_DEFAULT or get_monitor().enabled):
        return False
    return True


def resolve_plan(model, backend, batch: int) -> DecodePlan | None:
    """The model's plan for this (backend, batch) shape, building on miss.

    Cache keys are ``(id(backend), batch)``; entries hold strong refs to
    the backend, its policy and the prepared-operand cache (plus its
    generation), so any of those changing re-traces.  An untraceable
    model caches a ``None`` marker — the eager fallback — rather than
    re-raising per token.
    """
    cache = get_cache()
    plans = model.__dict__.get(_PLAN_CACHE_ATTR)
    if plans is None:
        plans = model.__dict__[_PLAN_CACHE_ATTR] = OrderedDict()
    key = (id(backend), batch)
    entry = plans.get(key)
    if entry is not None:
        if (
            entry.backend is backend
            and entry.policy is backend.policy
            and entry.cache is cache
            and entry.generation == cache.generation
        ):
            return entry.plan
        del plans[key]
    try:
        plan: DecodePlan | None = DecodePlan(model, backend, batch)
    except PlanUnsupported:
        plan = None
    plans[key] = _PlanEntry(backend, backend.policy, cache, cache.generation, plan)
    while len(plans) > _PLAN_CACHE_MAX:
        plans.popitem(last=False)
    return plan


def plan_stats(model) -> list[dict]:
    """Stats for every live plan on a model (profile CLI / tests)."""
    plans = model.__dict__.get(_PLAN_CACHE_ATTR) or {}
    return [e.plan.stats() for e in plans.values() if e.plan is not None]
