"""Programming model: instruction set, vector programs, compiler, executor."""

from repro.runtime.compiler import MatmulPlan, plan_matmul
from repro.runtime.executor import ExecutionTrace, VectorExecutor
from repro.runtime.scheduler import CompiledModel, Stage, compile_decoder, compile_vit
from repro.runtime.instructions import (
    FPU_OPS,
    HOST_OPS,
    Instr,
    OpCode,
    OpCount,
    Program,
)
from repro.runtime.vector_ops import (
    NONLINEAR_BUILDERS,
    build_exp,
    build_gelu,
    build_layernorm,
    build_rmsnorm,
    build_silu,
    build_softmax,
    build_swiglu,
    exp2_poly_coeffs,
)

__all__ = [
    "ExecutionTrace",
    "FPU_OPS",
    "HOST_OPS",
    "Instr",
    "MatmulPlan",
    "CompiledModel",
    "Stage",
    "compile_decoder",
    "compile_vit",
    "NONLINEAR_BUILDERS",
    "OpCode",
    "OpCount",
    "Program",
    "VectorExecutor",
    "build_exp",
    "build_gelu",
    "build_layernorm",
    "build_rmsnorm",
    "build_silu",
    "build_swiglu",
    "build_softmax",
    "exp2_poly_coeffs",
    "plan_matmul",
]
