"""Non-linear Transformer functions compiled to fp32 mul/add streams.

The paper integrates SoftMax, GELU and LayerNorm "into basic arithmetic
operations" on the fp32 vector personality, with division escaping to the
host CPU.  This module holds the program builders:

* ``exp``: base-2 range reduction — ``e^x = 2^k * 2^r`` with
  ``k = floor(x*log2e)`` (host floor + exponent insertion) and ``2^r``
  evaluated by a degree-6 polynomial in Horner form (FPU mul/add);
* ``softmax``: max-subtract (host max), exp, FPU tree-sum, host divide;
* ``gelu``: the tanh formulation with ``tanh(z) = 1 - 2/(e^{2z}+1)``
  (FPU exp + host reciprocal);
* ``layernorm``: FPU mean/variance accumulation (multiplying by ``1/n`` is
  an FPU multiply), host rsqrt, FPU scale and shift.

Each builder returns a validated :class:`Program`; the per-element op
counts drive the Table IV workload split.
"""

from __future__ import annotations

import math

from repro.runtime.instructions import OpCode, Program

__all__ = [
    "exp2_poly_coeffs",
    "build_exp",
    "build_softmax",
    "build_gelu",
    "build_layernorm",
    "build_rmsnorm",
    "build_silu",
    "build_swiglu",
    "NONLINEAR_BUILDERS",
]

LOG2E = math.log2(math.e)

# Minimax-flavoured coefficients for 2^r on r in [0, 1): the Taylor series
# of 2^r in ln2 powers, accurate to ~1e-7 at degree 6 — comfortably inside
# the sliced-multiply error floor (2^-22 relative).
_EXP2_DEGREE = 6


def exp2_poly_coeffs(degree: int = _EXP2_DEGREE) -> list[float]:
    """Coefficients c_i of ``2^r ~ sum c_i r^i`` (Taylor in ln2)."""
    return [math.log(2.0) ** i / math.factorial(i) for i in range(degree + 1)]


def build_exp(degree: int = _EXP2_DEGREE) -> Program:
    """``out = exp(x)`` via base-2 range reduction + Horner polynomial."""
    p = Program("exp", inputs=["x"])
    p.emit(OpCode.VMULI, "y", "x", imm=LOG2E)  # y = x * log2(e)
    p.emit(OpCode.HFLOOR, "k", "y")  # k = floor(y)            [host]
    p.emit(OpCode.VSUB, "r", "y", "k")  # r = y - k in [0, 1)
    coeffs = exp2_poly_coeffs(degree)
    p.emit(OpCode.VMULI, "acc", "r", imm=coeffs[-1])  # Horner seed: c_n * r
    p.emit(OpCode.VADDI, "acc", "acc", imm=coeffs[-2])
    for c in reversed(coeffs[:-2]):
        p.emit(OpCode.VMUL, "acc", "acc", "r")
        p.emit(OpCode.VADDI, "acc", "acc", imm=c)
    p.emit(OpCode.HEXP2I, "scale", "k")  # 2^k  [host exponent insertion]
    p.emit(OpCode.VMUL, "out", "acc", "scale")
    p.validate()
    return p


def build_softmax(degree: int = _EXP2_DEGREE) -> Program:
    """Row-wise ``softmax(x)`` over the trailing axis."""
    p = Program("softmax", inputs=["x"])
    p.emit(OpCode.HMAX, "m", "x")  # row max, keepdims          [host]
    p.emit(OpCode.VSUB, "z", "x", "m")
    _inline(p, build_exp(degree), {"x": "z"}, prefix="e", out="ez")
    p.emit(OpCode.VREDSUM, "s", "ez")  # row sum on the FPU add tree
    p.emit(OpCode.HDIV, "out", "ez", "s")  # normalize             [host]
    p.validate()
    return p


def build_gelu(degree: int = _EXP2_DEGREE) -> Program:
    """tanh-form GELU: ``0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3)))``."""
    c = math.sqrt(2.0 / math.pi)
    p = Program("gelu", inputs=["x"])
    p.emit(OpCode.VMUL, "x2", "x", "x")
    p.emit(OpCode.VMUL, "x3", "x2", "x")
    p.emit(OpCode.VMULI, "t", "x3", imm=0.044715)
    p.emit(OpCode.VADD, "t", "t", "x")
    p.emit(OpCode.VMULI, "z", "t", imm=c)  # z = sqrt(2/pi)(x + 0.044715 x^3)
    # tanh(z) = 1 - 2 / (exp(2z) + 1)
    p.emit(OpCode.VMULI, "z2", "z", imm=2.0)
    p.emit(OpCode.HCLAMP, "z2", "z2", imm=(-60.0, 60.0))  # avoid fp32 overflow
    _inline(p, build_exp(degree), {"x": "z2"}, prefix="g", out="e2z")
    p.emit(OpCode.VADDI, "den", "e2z", imm=1.0)
    p.emit(OpCode.HRECIP, "inv", "den")  # 1/(e^{2z}+1)            [host]
    p.emit(OpCode.VMULI, "two_inv", "inv", imm=-2.0)
    p.emit(OpCode.VADDI, "tanh", "two_inv", imm=1.0)
    p.emit(OpCode.VADDI, "one_p", "tanh", imm=1.0)
    p.emit(OpCode.VMULI, "half_x", "x", imm=0.5)
    p.emit(OpCode.VMUL, "out", "half_x", "one_p")
    p.validate()
    return p


def build_layernorm() -> Program:
    """Row-wise LayerNorm with affine parameters ``gamma``/``beta``.

    ``1/n`` multiplies run on the FPU; the inverse square root of the
    variance is a host op (no divide/sqrt datapath).
    """
    p = Program("layernorm", inputs=["x", "gamma", "beta", "inv_n", "eps"])
    p.emit(OpCode.VREDSUM, "s", "x")
    p.emit(OpCode.VMUL, "mean", "s", "inv_n")
    p.emit(OpCode.VSUB, "c", "x", "mean")
    p.emit(OpCode.VMUL, "c2", "c", "c")
    p.emit(OpCode.VREDSUM, "vs", "c2")
    p.emit(OpCode.VMUL, "var", "vs", "inv_n")
    p.emit(OpCode.VADD, "var_e", "var", "eps")
    p.emit(OpCode.HRSQRT, "inv_std", "var_e")  # 1/sqrt(var+eps)    [host]
    p.emit(OpCode.VMUL, "norm", "c", "inv_std")
    p.emit(OpCode.VMUL, "scaled", "norm", "gamma")
    p.emit(OpCode.VADD, "out", "scaled", "beta")
    p.validate()
    return p


def build_rmsnorm() -> Program:
    """RMSNorm (LLaMA's normalizer): ``x / sqrt(mean(x^2)+eps) * gamma``.

    Same structure as LayerNorm minus the mean subtraction: squared
    accumulation and scaling on the FPU, the inverse square root on the
    host.  Added post-publication non-linearities like this are the reason
    the paper wants a programmable fp32 personality.
    """
    p = Program("rmsnorm", inputs=["x", "gamma", "inv_n", "eps"])
    p.emit(OpCode.VMUL, "x2", "x", "x")
    p.emit(OpCode.VREDSUM, "s", "x2")
    p.emit(OpCode.VMUL, "ms", "s", "inv_n")
    p.emit(OpCode.VADD, "ms_e", "ms", "eps")
    p.emit(OpCode.HRSQRT, "inv", "ms_e")  # 1/sqrt                [host]
    p.emit(OpCode.VMUL, "norm", "x", "inv")
    p.emit(OpCode.VMUL, "out", "norm", "gamma")
    p.validate()
    return p


def build_silu(degree: int = _EXP2_DEGREE) -> Program:
    """SiLU/Swish: ``x * sigmoid(x)`` — the GLU-family activation.

    The paper motivates run-time programmability with exactly this kind of
    newly introduced non-linearity (Section I, refs [9][10]): no hardware
    change is needed, only a new program.  ``sigmoid(x) = 1/(e^{-x}+1)``
    with the exponential on the FPU and the reciprocal on the host.
    """
    p = Program("silu", inputs=["x"])
    p.emit(OpCode.VMULI, "nx", "x", imm=-1.0)
    p.emit(OpCode.HCLAMP, "nx", "nx", imm=(-60.0, 60.0))
    _inline(p, build_exp(degree), {"x": "nx"}, prefix="s", out="enx")
    p.emit(OpCode.VADDI, "den", "enx", imm=1.0)
    p.emit(OpCode.HRECIP, "sig", "den")  # sigmoid                [host]
    p.emit(OpCode.VMUL, "out", "x", "sig")
    p.validate()
    return p


def build_swiglu(degree: int = _EXP2_DEGREE) -> Program:
    """SwiGLU gate: ``silu(a) * b`` over paired inputs (LLaMA-style MLP).

    Demonstrates composing programs: the same array that serves GELU for
    DeiT serves SwiGLU for a LLaMA-family model with zero hardware change.
    """
    p = Program("swiglu", inputs=["a", "b"])
    _inline(p, build_silu(degree), {"x": "a"}, prefix="g", out="gate")
    p.emit(OpCode.VMUL, "out", "gate", "b")
    p.validate()
    return p


def _inline(
    outer: Program, inner: Program, bind: dict[str, str], *, prefix: str, out: str
) -> None:
    """Inline ``inner`` into ``outer`` with register renaming."""
    rename = dict(bind)
    for ins in inner.instrs:
        a = rename.get(ins.a, f"{prefix}.{ins.a}")
        b = None if ins.b is None else rename.get(ins.b, f"{prefix}.{ins.b}")
        dst = out if ins.dst == inner.output else f"{prefix}.{ins.dst}"
        rename.setdefault(ins.dst, dst)
        rename[ins.dst] = dst
        outer.instrs.append(type(ins)(ins.op, dst, a, b, ins.imm))


NONLINEAR_BUILDERS = {
    "exp": build_exp,
    "softmax": build_softmax,
    "gelu": build_gelu,
    "layernorm": build_layernorm,
    "rmsnorm": build_rmsnorm,
    "silu": build_silu,
    "swiglu": build_swiglu,
}
