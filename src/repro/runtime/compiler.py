"""Workload compiler: tile large matmuls onto the 8x8 block fabric.

The compiler plans a dense ``(M, K) @ (K, N)`` multiplication as the
hardware schedule of Section II-D — row-block chunks of at most 64 X blocks
(the PSU depth), output column-block pairs (combined MAC), and one
Y-stationary stream per K block — and reports the analytic cost (streams,
cycles, MACs, memory traffic).  :meth:`MatmulPlan.run` executes the plan on
a :class:`MultiModePU`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from repro.errors import ConfigurationError
from repro.formats.blocking import BfpMatrix
from repro.hw.buffers import MAX_X_BLOCKS
from repro.hw.unit import BFP_STREAM_OVERHEAD, MultiModePU
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel

__all__ = ["MatmulPlan", "plan_matmul"]


@dataclass(frozen=True)
class MatmulPlan:
    """The planned schedule and analytic cost of one tiled matmul."""

    m: int
    k: int
    n: int
    row_blocks: int
    k_blocks: int
    col_blocks: int
    chunks: int  # row-block chunks (<= 64 blocks each)
    col_pairs: int
    streams: int
    stream_len: int  # N_X of a full chunk
    compute_cycles: int
    macs: int

    @property
    def ops(self) -> int:
        """8-bit ops, MAC = 2 (paper convention)."""
        return 2 * self.macs

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the array's peak MAC rate."""
        peak_macs = self.compute_cycles * 128  # 64 DSPs x 2 MACs
        return self.macs / peak_macs if peak_macs else 0.0

    def memory_bytes(self) -> tuple[int, int]:
        """(read, write) bytes over the whole plan."""
        read = 0
        write = 0
        mem = MemoryModel()
        for _ in range(self.streams):
            r, w = mem.bfp_stream_bytes(self.stream_len)
            read += r
            write += w
        return read, write

    def total_cycles_with_memory(self, mem: MemoryModel = DEFAULT_MEMORY) -> int:
        """End-to-end cycles including per-stream memory I/O."""
        per_stream_compute = 8 * self.stream_len + BFP_STREAM_OVERHEAD
        rd, wr = mem.bfp_stream_bytes(self.stream_len)
        per_stream = mem.stream_total_cycles("bfp8", per_stream_compute, rd, wr)
        return per_stream * self.streams

    def run(self, a: np.ndarray, b: np.ndarray, pu: MultiModePU | None = None,
            *, engine: str = "fast") -> np.ndarray:
        """Execute the plan; returns the dequantized dense result."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != (self.m, self.k) or b.shape != (self.k, self.n):
            raise ConfigurationError("operands do not match the plan")
        pu = pu or MultiModePU()
        out = pu.matmul(
            BfpMatrix.from_dense(a), BfpMatrix.from_dense(b), engine=engine
        )
        return out.to_dense()


def plan_matmul(m: int, k: int, n: int) -> MatmulPlan:
    """Plan ``(m, k) @ (k, n)`` on the 8x8 fabric."""
    if min(m, k, n) <= 0:
        raise ConfigurationError("matmul dimensions must be positive")
    rb, kb, cb = ceil(m / 8), ceil(k / 8), ceil(n / 8)
    chunks = ceil(rb / MAX_X_BLOCKS)
    pairs = ceil(cb / 2)
    streams = chunks * pairs * kb
    # Cycle cost: chunks may be ragged; account exactly.
    cycles = 0
    macs = 0
    for c in range(chunks):
        n_x = min(MAX_X_BLOCKS, rb - c * MAX_X_BLOCKS)
        per_stream = 8 * n_x + BFP_STREAM_OVERHEAD
        cycles += per_stream * pairs * kb
        macs += 2 * n_x * 8 * 8 * 8 * pairs * kb
    return MatmulPlan(
        m=m, k=k, n=n,
        row_blocks=rb, k_blocks=kb, col_blocks=cb,
        chunks=chunks, col_pairs=pairs, streams=streams,
        stream_len=min(rb, MAX_X_BLOCKS),
        compute_cycles=cycles, macs=macs,
    )
