"""Processing-unit instruction set: what the controller actually executes.

The paper's units run "with independent instructions" (Section III-B).
This module defines that instruction stream concretely: a compact 32-bit
encoding (8-bit opcode + three 8-bit operand fields), an assembler from
symbolic text, a disassembler, and an interpreter that executes encoded
programs on a :class:`~repro.hw.unit.MultiModePU` against a named tensor
memory.

Instruction set
---------------
==============  =======================================================
``MODE m``       reconfigure: ``m`` in {bfp8, fp32mul, fp32add}
``LOADY a b``    preload resident Y pair from block registers a, b
``STREAMX x d``  stream X block-list register x; accumulate into PSU
                 region then deposit wide result at register d
``QUANT d s``    requantize wide register s into bfp8 block register d
``FPMUL d a b``  elementwise fp32 multiply of vector registers
``FPADD d a b``  elementwise fp32 add of vector registers
``HALT``         end of program
==============  =======================================================

Registers are symbolic names resolved by the assembler into 8-bit indices
(at most 256 live objects per program) over a :class:`TensorMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from repro.arith.bfp_matmul import WideBlock, accumulate, block_matmul
from repro.errors import ProgramError
from repro.formats.bfp8 import BfpBlock
from repro.hw.controller import Mode
from repro.hw.unit import MultiModePU

__all__ = [
    "PUOp",
    "PUInstruction",
    "MODE_CODES",
    "assemble",
    "disassemble",
    "encode",
    "decode",
    "TensorMemory",
    "PUInterpreter",
]


class PUOp(IntEnum):
    HALT = 0x00
    MODE = 0x01
    LOADY = 0x02
    STREAMX = 0x03
    QUANT = 0x04
    FPMUL = 0x05
    FPADD = 0x06


MODE_CODES = {"bfp8": 0, "fp32mul": 1, "fp32add": 2}
_MODE_NAMES = {v: k for k, v in MODE_CODES.items()}
_ARITY = {
    PUOp.HALT: 0,
    PUOp.MODE: 1,
    PUOp.LOADY: 2,
    PUOp.STREAMX: 2,
    PUOp.QUANT: 2,
    PUOp.FPMUL: 3,
    PUOp.FPADD: 3,
}


@dataclass(frozen=True)
class PUInstruction:
    op: PUOp
    operands: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.operands) != _ARITY[self.op]:
            raise ProgramError(
                f"{self.op.name} takes {_ARITY[self.op]} operands, "
                f"got {len(self.operands)}"
            )
        for v in self.operands:
            if not (0 <= v <= 0xFF):
                raise ProgramError(f"operand {v} outside 8-bit field")


def encode(instr: PUInstruction) -> int:
    """Pack an instruction into a 32-bit word."""
    word = int(instr.op) << 24
    for i, v in enumerate(instr.operands):
        word |= v << (16 - 8 * i)
    return word


def decode(word: int) -> PUInstruction:
    """Unpack a 32-bit word (inverse of :func:`encode`)."""
    if not (0 <= word < (1 << 32)):
        raise ProgramError("instruction word outside 32 bits")
    try:
        op = PUOp((word >> 24) & 0xFF)
    except ValueError:
        raise ProgramError(f"unknown opcode {(word >> 24) & 0xFF:#x}") from None
    n = _ARITY[op]
    operands = tuple((word >> (16 - 8 * i)) & 0xFF for i in range(n))
    return PUInstruction(op, operands)


# ---------------------------------------------------------------------------
# Assembler / disassembler
# ---------------------------------------------------------------------------

@dataclass
class SymbolTable:
    """Symbolic register names -> 8-bit indices."""

    names: dict[str, int] = field(default_factory=dict)

    def resolve(self, name: str) -> int:
        if name not in self.names:
            if len(self.names) >= 256:
                raise ProgramError("register file exhausted (256 symbols)")
            self.names[name] = len(self.names)
        return self.names[name]

    def name_of(self, index: int) -> str:
        for k, v in self.names.items():
            if v == index:
                return k
        return f"r{index}"


def assemble(text: str, symbols: SymbolTable | None = None) -> tuple[list[int], SymbolTable]:
    """Assemble symbolic text into encoded words.

    Lines are ``OP operand ...``; ``#`` starts a comment; blank lines are
    ignored.  Returns ``(words, symbol_table)``.
    """
    symbols = symbols or SymbolTable()
    words: list[int] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        opname = parts[0].upper()
        try:
            op = PUOp[opname]
        except KeyError:
            raise ProgramError(f"line {lineno}: unknown op {opname!r}") from None
        args = parts[1:]
        if op is PUOp.MODE:
            if len(args) != 1 or args[0] not in MODE_CODES:
                raise ProgramError(f"line {lineno}: MODE needs bfp8|fp32mul|fp32add")
            operands: tuple[int, ...] = (MODE_CODES[args[0]],)
        else:
            operands = tuple(symbols.resolve(a) for a in args)
        words.append(encode(PUInstruction(op, operands)))
    return words, symbols


def disassemble(words: list[int], symbols: SymbolTable | None = None) -> str:
    lines = []
    for w in words:
        ins = decode(w)
        if ins.op is PUOp.MODE:
            lines.append(f"MODE {_MODE_NAMES[ins.operands[0]]}")
        elif symbols is not None:
            lines.append(
                " ".join([ins.op.name, *(symbols.name_of(i) for i in ins.operands)])
            )
        else:
            lines.append(" ".join([ins.op.name, *(f"r{i}" for i in ins.operands)]))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------

@dataclass
class TensorMemory:
    """Register-indexed object store the interpreter operates on.

    Register contents by convention: :class:`BfpBlock`, ``list[BfpBlock]``
    (an X stream), :class:`WideBlock` lists (PSU deposits), or float32
    arrays (fp32 vectors).
    """

    slots: dict[int, object] = field(default_factory=dict)

    def read(self, idx: int):
        if idx not in self.slots:
            raise ProgramError(f"read of empty register {idx}")
        return self.slots[idx]

    def write(self, idx: int, value: object) -> None:
        self.slots[idx] = value


@dataclass
class PUInterpreter:
    """Executes encoded instruction streams on a processing unit."""

    pu: MultiModePU = field(default_factory=MultiModePU)
    memory: TensorMemory = field(default_factory=TensorMemory)
    engine: str = "fast"

    def run(self, words: list[int], *, max_instructions: int = 100_000) -> int:
        """Execute until HALT; returns the number of instructions retired."""
        self._y_pair: tuple[BfpBlock, BfpBlock] | None = None
        retired = 0
        for w in words:
            if retired >= max_instructions:
                raise ProgramError("instruction budget exhausted (runaway program)")
            ins = decode(w)
            retired += 1
            if ins.op is PUOp.HALT:
                return retired
            self._execute(ins)
        raise ProgramError("program ended without HALT")

    # ------------------------------------------------------------------
    def _execute(self, ins: PUInstruction) -> None:
        if ins.op is PUOp.MODE:
            mode = [Mode.BFP_MATMUL, Mode.FP32_MUL, Mode.FP32_ADD][ins.operands[0]]
            self.pu.stats.cycles_reconfig += self.pu.controller.set_mode(mode)
            return
        if ins.op is PUOp.LOADY:
            y_hi = self.memory.read(ins.operands[0])
            y_lo = self.memory.read(ins.operands[1])
            if not isinstance(y_hi, BfpBlock) or not isinstance(y_lo, BfpBlock):
                raise ProgramError("LOADY operands must be BfpBlocks")
            self._y_pair = (y_hi, y_lo)
            self.pu.array.load_y_pair(y_hi.mantissas, y_lo.mantissas)
            return
        if ins.op is PUOp.STREAMX:
            self._stream_x(ins.operands[0], ins.operands[1])
            return
        if ins.op is PUOp.QUANT:
            wides = self.memory.read(ins.operands[1])
            if not isinstance(wides, list):
                raise ProgramError("QUANT source must be a PSU deposit list")
            blocks = [
                self.pu.quantizer.quantize(w.mantissas, w.exponent) for w in wides
            ]
            self.memory.write(ins.operands[0], blocks)
            return
        if ins.op in (PUOp.FPMUL, PUOp.FPADD):
            a = np.asarray(self.memory.read(ins.operands[1]), dtype=np.float32)
            b = np.asarray(self.memory.read(ins.operands[2]), dtype=np.float32)
            fn = self.pu.fp32_multiply if ins.op is PUOp.FPMUL else self.pu.fp32_add
            self.memory.write(ins.operands[0], fn(a, b, engine=self.engine))
            return
        raise ProgramError(f"unhandled op {ins.op}")  # pragma: no cover

    def _stream_x(self, x_idx: int, dst_idx: int) -> None:
        self.pu.controller.require(Mode.BFP_MATMUL)
        if self._y_pair is None:
            raise ProgramError("STREAMX before LOADY")
        x_blocks = self.memory.read(x_idx)
        if not isinstance(x_blocks, list) or not all(
            isinstance(b, BfpBlock) for b in x_blocks
        ):
            raise ProgramError("STREAMX source must be a list of BfpBlocks")
        y_hi, y_lo = self._y_pair
        if self.engine == "cycle":
            x_man = np.stack([b.mantissas for b in x_blocks]).astype(np.int64)
            res = self.pu.array.run_bfp8_stream(x_man)
            z_hi, z_lo = res.z_hi, res.z_lo
            cycles = res.cycles
        else:
            z_hi = np.stack(
                [b.mantissas.astype(np.int64) @ y_hi.mantissas.astype(np.int64)
                 for b in x_blocks]
            )
            z_lo = np.stack(
                [b.mantissas.astype(np.int64) @ y_lo.mantissas.astype(np.int64)
                 for b in x_blocks]
            )
            cycles = 8 * len(x_blocks) + 15
        self.pu.stats.cycles_bfp += cycles
        self.pu.stats.bfp_streams += 1
        self.pu.stats.bfp_macs += 2 * len(x_blocks) * 512
        # Deposit: accumulate into any existing wide blocks at dst.
        existing = self.memory.slots.get(dst_idx)
        new_hi = [
            WideBlock(z_hi[i], x_blocks[i].exponent + y_hi.exponent)
            for i in range(len(x_blocks))
        ]
        new_lo = [
            WideBlock(z_lo[i], x_blocks[i].exponent + y_lo.exponent)
            for i in range(len(x_blocks))
        ]
        fresh = new_hi + new_lo
        if existing is None:
            self.memory.write(dst_idx, fresh)
        else:
            if not isinstance(existing, list) or len(existing) != len(fresh):
                raise ProgramError("STREAMX accumulation shape mismatch")
            self.memory.write(
                dst_idx, [accumulate(old, new) for old, new in zip(existing, fresh)]
            )
