"""Instruction set of the fp32 vector-processing personality.

The reconfigured array executes elementwise fp32 multiply and add streams;
everything a Transformer's non-linear layers need beyond that — division,
comparison/max, floor, exponent insertion — runs on the host CPU, exactly
as in the paper ("the division operations in fp32 ... are executed on the
host CPU due to lack of support", Section III-B).

A :class:`Program` is a short SSA-ish list of register instructions over
named vector registers.  The executor (``repro.runtime.executor``) runs FPU
opcodes through the simulated unit and host opcodes through NumPy, and the
op accounting distinguishes the two — that split is what Table IV reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ProgramError

__all__ = ["OpCode", "Instr", "Program", "OpCount", "FPU_OPS", "HOST_OPS"]


class OpCode(Enum):
    # FPU (simulated hardware) opcodes
    VMUL = "vmul"  # dst = a * b          (fp32 mul mode)
    VADD = "vadd"  # dst = a + b          (fp32 add mode)
    VSUB = "vsub"  # dst = a - b          (add mode, sign flip is free)
    VMULI = "vmuli"  # dst = a * imm      (broadcast constant)
    VADDI = "vaddi"  # dst = a + imm
    VREDSUM = "vredsum"  # dst = sum(a, axis=-1), tree of VADDs on the FPU
    # Host opcodes (CPU escape hatch)
    HDIV = "hdiv"  # dst = a / b
    HRECIP = "hrecip"  # dst = 1 / a
    HRSQRT = "hrsqrt"  # dst = 1 / sqrt(a)
    HMAX = "hmax"  # dst = max(a, axis=-1, keepdims)
    HFLOOR = "hfloor"  # dst = floor(a)
    HEXP2I = "hexp2i"  # dst = 2.0 ** a   (exponent-field insertion)
    HCLAMP = "hclamp"  # dst = clip(a, imm[0], imm[1])


FPU_OPS = {
    OpCode.VMUL,
    OpCode.VADD,
    OpCode.VSUB,
    OpCode.VMULI,
    OpCode.VADDI,
    OpCode.VREDSUM,
}
HOST_OPS = {
    OpCode.HDIV,
    OpCode.HRECIP,
    OpCode.HRSQRT,
    OpCode.HMAX,
    OpCode.HFLOOR,
    OpCode.HEXP2I,
    OpCode.HCLAMP,
}


@dataclass(frozen=True)
class Instr:
    op: OpCode
    dst: str
    a: str
    b: str | None = None
    imm: float | tuple[float, float] | None = None

    def __post_init__(self) -> None:
        needs_b = self.op in (OpCode.VMUL, OpCode.VADD, OpCode.VSUB, OpCode.HDIV)
        if needs_b and self.b is None:
            raise ProgramError(f"{self.op.value} requires a second operand")
        needs_imm = self.op in (OpCode.VMULI, OpCode.VADDI, OpCode.HCLAMP)
        if needs_imm and self.imm is None:
            raise ProgramError(f"{self.op.value} requires an immediate")


@dataclass
class OpCount:
    """FPU vs host operation counts (per element unless noted)."""

    fpu_mul: int = 0
    fpu_add: int = 0
    host: int = 0

    @property
    def fpu_total(self) -> int:
        return self.fpu_mul + self.fpu_add

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.fpu_mul + other.fpu_mul,
            self.fpu_add + other.fpu_add,
            self.host + other.host,
        )

    def scaled(self, k: int) -> "OpCount":
        return OpCount(self.fpu_mul * k, self.fpu_add * k, self.host * k)


@dataclass
class Program:
    """A validated straight-line vector program."""

    name: str
    inputs: list[str]
    instrs: list[Instr] = field(default_factory=list)
    output: str = "out"

    def validate(self) -> None:
        defined = set(self.inputs)
        for i, ins in enumerate(self.instrs):
            if ins.a not in defined:
                raise ProgramError(
                    f"{self.name}[{i}] reads undefined register {ins.a!r}"
                )
            if ins.b is not None and ins.b not in defined:
                raise ProgramError(
                    f"{self.name}[{i}] reads undefined register {ins.b!r}"
                )
            defined.add(ins.dst)
        if self.output not in defined:
            raise ProgramError(f"{self.name} never defines output {self.output!r}")

    def emit(self, op: OpCode, dst: str, a: str, b: str | None = None,
             imm: float | tuple[float, float] | None = None) -> str:
        self.instrs.append(Instr(op, dst, a, b, imm))
        return dst

    def static_op_count(self) -> OpCount:
        """Per-element op count, counting VREDSUM as one add per element."""
        c = OpCount()
        for ins in self.instrs:
            if ins.op in (OpCode.VMUL, OpCode.VMULI):
                c.fpu_mul += 1
            elif ins.op in (OpCode.VADD, OpCode.VSUB, OpCode.VADDI, OpCode.VREDSUM):
                c.fpu_add += 1
            elif ins.op in HOST_OPS:
                c.host += 1
            else:  # pragma: no cover - exhaustiveness guard
                raise ProgramError(f"unhandled opcode {ins.op}")
        return c
