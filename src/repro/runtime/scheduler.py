"""Full-model compiler: a Transformer into a hardware schedule.

The paper's conclusion announces "an automatic compilation framework that
provides full stack acceleration of Transformer models is underway"; this
module builds that layer.  :func:`compile_vit` lowers a ViT configuration
into a dependency-ordered list of :class:`Stage` objects — bfp8 matmul
plans and fp32 vector-program invocations, including the residual adds —
each broken into unit-schedulable chunks.  :class:`CompiledModel` then
evaluates end-to-end latency on an ``n``-unit system (stages serialize on
data dependencies; chunks within a stage spread across units) and produces
the Table IV workload split *from the compiled schedule* rather than from
analytic op counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import TYPE_CHECKING

from repro.cost.modes import ModeOptions, UnitMode, get_mode, resolve_unit_mode
from repro.errors import ConfigurationError
from repro.models.configs import ViTConfig
from repro.obs.metrics import get_registry
from repro.obs.tracer import Tracer
from repro.perf.latency import (
    measured_fp32_stream_cycles,
)
from repro.perf.memory import DEFAULT_MEMORY, MemoryModel
from repro.perf.throughput import DEFAULT_CLOCK, ClockConfig
from repro.runtime.instructions import OpCount
from repro.runtime.vector_ops import (
    build_gelu,
    build_layernorm,
    build_rmsnorm,
    build_silu,
    build_softmax,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.models.policy import PrecisionPolicy

__all__ = ["Stage", "CompiledModel", "compile_vit", "compile_decoder"]

_FP32_STREAM_ELEMS = 4 * 128  # one full (lanes x L) stream


@dataclass(frozen=True)
class Stage:
    """One dependency-ordered step of the compiled model."""

    name: str
    kind: str  # matmul | softmax | gelu | layernorm | residual_add | reconfig
    mode: str  # format label: bfp8 | fp32 | int8 | fp16 | ...
    chunks: int  # independent unit-schedulable pieces
    chunk_cycles: int  # end-to-end cycles of one chunk (compute + memory)
    ops: float  # useful ops (bfp8 ops / fp32 FLOPs, paper conventions)
    host_ops: float = 0.0  # CPU-escape operations (division, max, ...)
    unit_mode: str = ""  # executing UnitMode registry name ("" = untagged)

    def latency_cycles(self, n_units: int) -> int:
        """Stage latency with its chunks spread over ``n_units``."""
        if n_units <= 0:
            raise ConfigurationError("need at least one unit")
        waves = ceil(self.chunks / n_units)
        return waves * self.chunk_cycles


@dataclass
class CompiledModel:
    """A compiled Transformer: ordered stages + system-level evaluation."""

    name: str
    stages: list[Stage] = field(default_factory=list)
    clock: ClockConfig = DEFAULT_CLOCK

    def latency_cycles(self, n_units: int | None = None) -> int:
        n = n_units or self.clock.n_units
        return sum(s.latency_cycles(n) for s in self.stages)

    def latency_seconds(self, n_units: int | None = None) -> float:
        return self.latency_cycles(n_units) / self.clock.freq_hz

    def ops_by_mode(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.stages:
            out[s.mode] = out.get(s.mode, 0.0) + s.ops
        return out

    def latency_by_kind(self, n_units: int | None = None) -> dict[str, int]:
        n = n_units or self.clock.n_units
        out: dict[str, int] = {}
        for s in self.stages:
            out[s.kind] = out.get(s.kind, 0) + s.latency_cycles(n)
        return out

    def latency_by_mode(self, n_units: int | None = None) -> dict[str, int]:
        """Per-format cycle attribution — the policy view of the schedule."""
        n = n_units or self.clock.n_units
        out: dict[str, int] = {}
        for s in self.stages:
            out[s.mode] = out.get(s.mode, 0) + s.latency_cycles(n)
        return out

    def latency_by_unit_mode(self, n_units: int | None = None) -> dict[str, int]:
        """Per-unit-mode cycle attribution — the hardware view.

        Groups stage latency by the :mod:`repro.cost.modes` unit that
        executes it (``bfp8_mac``, ``fp32_vector``, ``fp16_dot``, ...);
        stages with no unit mode (loads, stores, reconfig) are skipped.
        """
        n = n_units or self.clock.n_units
        out: dict[str, int] = {}
        for s in self.stages:
            if s.unit_mode:
                out[s.unit_mode] = out.get(s.unit_mode, 0) + s.latency_cycles(n)
        return out

    def fp32_latency_share(self, n_units: int | None = None) -> float:
        n = n_units or self.clock.n_units
        total = self.latency_cycles(n)
        fp32 = sum(s.latency_cycles(n) for s in self.stages if s.mode == "fp32")
        return fp32 / total if total else 0.0

    def unit_cycles_per_item(self) -> int:
        """Total unit-occupancy cycles of one input (all chunks, all stages)."""
        return sum(s.chunks * s.chunk_cycles for s in self.stages)

    def throughput_items_per_s(self, n_units: int | None = None) -> float:
        """Steady-state pipelined throughput over independent inputs.

        With many independent items in flight, chunks of different items
        fill every unit continuously: throughput is work-limited, not
        dependency-limited — the batching regime the 15-unit system targets.
        """
        n = n_units or self.clock.n_units
        occupancy = self.unit_cycles_per_item()
        return n * self.clock.freq_hz / occupancy if occupancy else 0.0

    def trace_schedule(self, tracer: Tracer, n_units: int | None = None) -> int:
        """Emit the compiled schedule as per-unit spans; returns the makespan.

        The placement mirrors :meth:`latency_cycles` exactly: stages
        serialize on data dependencies, and within a stage the chunks
        spread over the units in waves of ``n`` — so the trace's critical
        path *is* the model's reported latency.  Spans carry the stage's
        mode/kind so a Perfetto query can split bfp8 vs fp32 residency.
        """
        n = n_units or self.clock.n_units
        if n <= 0:
            raise ConfigurationError("need at least one unit")
        t = 0
        for s in self.stages:
            waves = ceil(s.chunks / n)
            for wave in range(waves):
                in_wave = min(n, s.chunks - wave * n)
                start = t + wave * s.chunk_cycles
                for u in range(in_wave):
                    tracer.span(
                        s.name,
                        track=f"unit{u}",
                        start=start,
                        end=start + s.chunk_cycles,
                        cat=s.kind,
                        args={"mode": s.mode, "wave": wave},
                    )
            t += waves * s.chunk_cycles
        return t

    def workload_split(self, n_units: int | None = None) -> list[dict]:
        """Table IV-style rows derived from the compiled schedule."""
        n = n_units or self.clock.n_units
        groups: dict[str, dict] = {}
        for s in self.stages:
            key = f"{s.mode} {s.kind}"
            g = groups.setdefault(
                key, {"name": key, "mode": s.mode, "ops": 0.0, "cycles": 0}
            )
            g["ops"] += s.ops
            g["cycles"] += s.latency_cycles(n)
        total_ops = sum(g["ops"] for g in groups.values())
        total_cycles = sum(g["cycles"] for g in groups.values())
        rows = []
        for g in groups.values():
            rows.append(
                dict(
                    g,
                    latency_s=g["cycles"] / self.clock.freq_hz,
                    ops_pct=100.0 * g["ops"] / total_ops if total_ops else 0.0,
                    latency_pct=100.0 * g["cycles"] / total_cycles
                    if total_cycles else 0.0,
                )
            )
        rows.sort(key=lambda r: -r["ops"])
        return rows


def _publish_compile(model: CompiledModel) -> CompiledModel:
    """Publish compile-time shape metrics into the process-wide registry."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("runtime.compiler.models").inc()
        reg.counter("runtime.compiler.stages").inc(len(model.stages))
        for mode, ops in model.ops_by_mode().items():
            reg.counter(f"runtime.compiler.ops.{mode}").inc(ops)
        for s in model.stages:
            reg.histogram("runtime.compiler.chunk_cycles").observe(s.chunk_cycles)
    return model


def _resolve_mode(
    policy: "PrecisionPolicy | None",
    layer: str,
    role: str,
    modes: ModeOptions | None = None,
) -> tuple[str, UnitMode]:
    """``(format name, executing unit mode)`` for one scheduled matmul.

    With no policy the compiler keeps its historical behaviour — every
    matmul is a bfp8 array stage.  The layer paths mirror the functional
    backends' scope paths (``block0.attn``, ``block0.mlp``, ``head``), so
    one policy document governs both the emulation and the compiler.
    The unit mode comes from the :mod:`repro.cost.modes` registry —
    the format's registered ``array_mode``, unless ``modes`` overrides it.
    """
    name = "bfp8" if policy is None else policy.resolve_name(layer, role)
    return name, resolve_unit_mode(name, modes)


def _matmul_stage(
    name: str,
    m: int,
    k: int,
    n: int,
    *,
    copies: int,
    mem: MemoryModel,
    clock: ClockConfig = DEFAULT_CLOCK,
    fmt: str = "bfp8",
    mode: UnitMode | None = None,
    align_narrow_frac: float | None = None,
) -> Stage:
    """A (possibly head-replicated) matmul as one stage.

    The per-chunk cycles come from the unit-mode registry: array modes
    (bfp/int/single-slice minifloat on ``bfp8_mac``, fp16 on the
    dual-precision ``fp16_dot`` datapath) cost through the Eqn-9 stream
    schedule; the ``fp32_vector`` fallback executes MAC by MAC on the
    4-lane fp32 personality — the cliff the paper's bfp slicing exists
    to avoid.
    """
    if mode is None:
        mode = get_mode("bfp8_mac")
    cost = mode.matmul_cost(
        m, k, n, copies=copies, mem=mem, clock=clock,
        align_narrow_frac=align_narrow_frac if mode.kind == "array" else None,
    )
    return Stage(
        name=name,
        kind="matmul",
        mode=fmt,
        chunks=cost.chunks,
        chunk_cycles=cost.chunk_cycles,
        ops=cost.ops,
        unit_mode=mode.name,
    )


def _reconfig_stage(name: str, fmt: str, mode: UnitMode) -> Stage:
    """Datapath reconfiguration charged on a transition into ``mode``."""
    return Stage(
        name=name,
        kind="reconfig",
        mode=fmt,
        chunks=1,
        chunk_cycles=mode.reconfig_cycles,
        ops=0.0,
        unit_mode=mode.name,
    )


def _vector_stage(
    name: str,
    kind: str,
    elements: int,
    per_element: OpCount,
    *,
    mem: MemoryModel,
    reduction_ops_per_element: float = 0.0,
) -> Stage:
    """A non-linear function over ``elements`` tensor elements.

    ``per_element`` comes from the compiled vector program; reductions
    (VREDSUM) contribute ~1 extra add per element, already included in the
    program's static count.
    """
    fpu_ops = elements * per_element.fpu_total + int(
        elements * reduction_ops_per_element
    )
    chunks = max(1, ceil(fpu_ops / _FP32_STREAM_ELEMS))
    chunk_cycles = measured_fp32_stream_cycles(128, mem)
    return Stage(
        name=name,
        kind=kind,
        mode="fp32",
        chunks=chunks,
        chunk_cycles=chunk_cycles,
        ops=2.0 * fpu_ops,
        host_ops=float(elements * per_element.host),
    )


def _residual_stage(name: str, elements: int, mem: MemoryModel) -> Stage:
    chunks = max(1, ceil(elements / _FP32_STREAM_ELEMS))
    return Stage(
        name=name,
        kind="residual_add",
        mode="fp32",
        chunks=chunks,
        chunk_cycles=measured_fp32_stream_cycles(128, mem),
        ops=2.0 * elements,
    )


def compile_vit(
    cfg: ViTConfig,
    *,
    batch: int = 1,
    clock: ClockConfig = DEFAULT_CLOCK,
    mem: MemoryModel = DEFAULT_MEMORY,
    exp_degree: int = 6,
    include_head: bool = True,
    policy: "PrecisionPolicy | None" = None,
    modes: ModeOptions | None = None,
) -> CompiledModel:
    """Lower a ViT configuration to a hardware schedule.

    ``batch`` coalesces that many images into one schedule: the token
    matmuls see ``batch * n_tokens`` rows (longer N_X streams, Eqn-9
    efficiency) while attention score/context matmuls replicate per image
    (each image attends only to its own tokens).

    ``policy`` maps each matmul's (layer path, role) to a registry format;
    ``None`` keeps the historical all-bfp8 schedule.  ``modes``
    optionally overrides format -> unit-mode routing (and the alignment
    prediction knob); transitions into a mode with a reconfiguration
    cost insert an explicit ``reconfig`` stage.
    """
    if batch <= 0:
        raise ConfigurationError("batch must be positive")
    last_array = "bfp8_mac"  # the array's resting personality

    def mm(name, m_, k_, n_, *, copies, layer, role):
        nonlocal last_array
        fmt, mode = _resolve_mode(policy, layer, role, modes)
        if mode.kind == "array":
            if mode.reconfig_cycles and mode.name != last_array:
                st.append(_reconfig_stage(name + ".reconfig", fmt, mode))
            last_array = mode.name
        return _matmul_stage(
            name, m_, k_, n_, copies=copies, mem=mem, clock=clock,
            fmt=fmt, mode=mode,
            align_narrow_frac=modes.align_narrow_frac if modes else None,
        )

    n, d, h, m = cfg.n_tokens, cfg.dim, cfg.n_heads, cfg.mlp_hidden
    hd = cfg.head_dim
    rows = batch * n  # token rows through the shared-weight matmuls
    softmax_pe = build_softmax(exp_degree).static_op_count()
    gelu_pe = build_gelu(exp_degree).static_op_count()
    ln_pe = build_layernorm().static_op_count()

    model = CompiledModel(name=cfg.name, clock=clock)
    st = model.stages

    patch_in = cfg.patch_size**2 * cfg.in_chans
    st.append(mm("patch_embed", batch * cfg.n_patches, patch_in, d,
                 copies=1, layer="patch_embed", role="linear"))

    for layer in range(cfg.depth):
        p = f"block{layer}."
        attn, mlp = p + "attn", p + "mlp"
        st.append(_vector_stage(p + "ln1", "layernorm", rows * d, ln_pe, mem=mem))
        st.append(mm(p + "qkv", rows, d, 3 * d, copies=1,
                     layer=attn, role="linear"))
        st.append(mm(p + "scores", n, hd, n, copies=h * batch,
                     layer=attn, role="attention"))
        st.append(_vector_stage(p + "softmax", "softmax", batch * h * n * n,
                                softmax_pe, mem=mem))
        st.append(mm(p + "context", n, n, hd, copies=h * batch,
                     layer=attn, role="attention"))
        st.append(mm(p + "proj", rows, d, d, copies=1,
                     layer=attn, role="linear"))
        st.append(_residual_stage(p + "residual1", rows * d, mem))
        st.append(_vector_stage(p + "ln2", "layernorm", rows * d, ln_pe, mem=mem))
        st.append(mm(p + "fc1", rows, d, m, copies=1, layer=mlp, role="linear"))
        st.append(_vector_stage(p + "gelu", "gelu", rows * m, gelu_pe, mem=mem))
        st.append(mm(p + "fc2", rows, m, d, copies=1, layer=mlp, role="linear"))
        st.append(_residual_stage(p + "residual2", rows * d, mem))

    st.append(_vector_stage("final_ln", "layernorm", rows * d, ln_pe, mem=mem))
    if include_head:
        st.append(mm("head", batch, d, cfg.n_classes, copies=1,
                     layer="head", role="linear"))
    return _publish_compile(model)


def compile_decoder(
    *,
    vocab: int,
    dim: int,
    depth: int,
    n_heads: int,
    context: int,
    mlp_ratio: float = 8 / 3,
    phase: str = "prefill",
    batch: int = 1,
    clock: ClockConfig = DEFAULT_CLOCK,
    mem: MemoryModel = DEFAULT_MEMORY,
    exp_degree: int = 6,
    policy: "PrecisionPolicy | None" = None,
    modes: ModeOptions | None = None,
) -> CompiledModel:
    """Lower a LLaMA-family decoder to a hardware schedule.

    ``phase="prefill"`` processes the whole ``context`` at once (matmul
    shapes like the encoder); ``phase="decode"`` is one autoregressive step
    with a KV cache — every linear layer collapses to a single-row matmul
    (N_X = 1 streams, the Eqn-9 worst case), which is why per-token decode
    is dramatically less efficient on the array than prefill.

    ``batch`` coalesces that many independent sequences (sessions) into
    one schedule.  The shared-weight linear layers see ``batch * n`` rows
    — for decode, batches up to the 8-row block size ride the *same*
    streams as a single token, which is the whole economics of dynamic
    batching (weights stream once per batch, not once per token).  The
    attention score/context matmuls and their softmax replicate per
    sequence: every session has its own KV cache.
    """
    if phase not in ("prefill", "decode"):
        raise ConfigurationError(f"unknown phase {phase!r}")
    if batch <= 0:
        raise ConfigurationError("batch must be positive")
    n = context if phase == "prefill" else 1
    rows = batch * n  # rows through the shared-weight matmuls
    ctx = context
    hd = dim // n_heads
    m = int(dim * mlp_ratio)
    rms_pe = build_rmsnorm().static_op_count()
    softmax_pe = build_softmax(exp_degree).static_op_count()
    # SwiGLU per element of the hidden dim: silu(gate) + one gating mul.
    silu_pe = build_silu(exp_degree).static_op_count()
    swiglu_pe = OpCount(silu_pe.fpu_mul + 1, silu_pe.fpu_add, silu_pe.host)

    model = CompiledModel(name=f"decoder-{phase}", clock=clock)
    st = model.stages

    last_array = "bfp8_mac"  # the array's resting personality

    def mm(name, m_, k_, n_, *, copies, layer, role):
        nonlocal last_array
        fmt, mode = _resolve_mode(policy, layer, role, modes)
        if mode.kind == "array":
            if mode.reconfig_cycles and mode.name != last_array:
                st.append(_reconfig_stage(name + ".reconfig", fmt, mode))
            last_array = mode.name
        return _matmul_stage(
            name, m_, k_, n_, copies=copies, mem=mem, clock=clock,
            fmt=fmt, mode=mode,
            align_narrow_frac=modes.align_narrow_frac if modes else None,
        )

    for layer in range(depth):
        p = f"layer{layer}."
        # Policy paths use the functional model's scope names (TinyLM
        # pushes block{i}.attn / block{i}.mlp / head), so the same policy
        # document drives the emulation and the compiled schedule.
        attn, mlp = f"block{layer}.attn", f"block{layer}.mlp"
        st.append(_vector_stage(p + "rmsnorm1", "rmsnorm", rows * dim, rms_pe, mem=mem))
        st.append(mm(p + "qkv", rows, dim, 3 * dim, copies=1,
                     layer=attn, role="linear"))
        st.append(mm(p + "scores", n, hd, ctx, copies=n_heads * batch,
                     layer=attn, role="attention"))
        st.append(_vector_stage(p + "softmax", "softmax", batch * n_heads * n * ctx,
                                softmax_pe, mem=mem))
        st.append(mm(p + "context", n, ctx, hd, copies=n_heads * batch,
                     layer=attn, role="attention"))
        st.append(mm(p + "proj", rows, dim, dim, copies=1,
                     layer=attn, role="linear"))
        st.append(_residual_stage(p + "residual1", rows * dim, mem))
        st.append(_vector_stage(p + "rmsnorm2", "rmsnorm", rows * dim, rms_pe, mem=mem))
        st.append(mm(p + "gate", rows, dim, m, copies=1, layer=mlp, role="linear"))
        st.append(mm(p + "up", rows, dim, m, copies=1, layer=mlp, role="linear"))
        st.append(_vector_stage(p + "swiglu", "swiglu", rows * m, swiglu_pe, mem=mem))
        st.append(mm(p + "down", rows, m, dim, copies=1, layer=mlp, role="linear"))
        st.append(_residual_stage(p + "residual2", rows * dim, mem))
    st.append(_vector_stage("final_rmsnorm", "rmsnorm", rows * dim, rms_pe, mem=mem))
    st.append(mm("lm_head", rows, dim, vocab, copies=1, layer="head", role="linear"))
    return _publish_compile(model)
