"""Bitwidth-sweep bench: block-fp vs per-tensor integer (extension study)."""

from repro.eval import bitwidth


def test_sqnr_sweep(benchmark, save_report, bench_artifact):
    rows = benchmark(bitwidth.sqnr_table, shape=(256, 256), seed=0)
    out = bitwidth.run(include_model_sweep=False)
    save_report("bitwidth_sqnr", out)
    bench_artifact("bitwidth_sqnr", {"rows": rows}, seed=0)
    # Structural claim: on outlier tensors block-fp wins by >5 dB at every
    # width; on benign Gaussians the formats are within a few dB.
    for r in rows:
        if r["distribution"] == "outlier":
            assert r["bfp_sqnr_db"] - r["int_sqnr_db"] > 5.0
        if r["distribution"] == "gaussian":
            assert abs(r["bfp_sqnr_db"] - r["int_sqnr_db"]) < 5.0
