"""Compiler/system bench: full DeiT-Small schedule and multi-unit dispatch."""

import pytest

from repro.hw.system import MultiUnitSystem
from repro.models.configs import DEIT_SMALL
from repro.runtime.scheduler import compile_vit


def test_compile_deit_small(benchmark, save_report, bench_artifact):
    model = benchmark(compile_vit, DEIT_SMALL)
    lines = [
        f"stages: {len(model.stages)}",
        f"latency (15 units): {model.latency_seconds() * 1e3:.3f} ms",
        f"fp32 latency share: {model.fp32_latency_share():.3f}",
    ]
    for r in model.workload_split():
        lines.append(
            f"  {r['name']:20s} ops={r['ops'] / 1e6:9.1f}M "
            f"({r['ops_pct']:6.2f}%) lat={r['latency_s'] * 1e3:8.3f}ms "
            f"({r['latency_pct']:6.2f}%)"
        )
    save_report("compiled_deit_small", "\n".join(lines))
    bench_artifact("compiled_deit_small", {
        "stages": len(model.stages),
        "latency_s_15_units": model.latency_seconds(),
        "fp32_latency_share": model.fp32_latency_share(),
        "workload_split": model.workload_split(),
    })
    # The compiled schedule preserves the Table IV headline.
    split = {r["name"]: r for r in model.workload_split()}
    assert split["bfp8 matmul"]["ops_pct"] > 90.0
    assert model.fp32_latency_share() > 0.5


def test_unit_scaling(benchmark):
    model = compile_vit(DEIT_SMALL)
    lat = benchmark(model.latency_cycles, 15)
    assert model.latency_cycles(1) > lat > model.latency_cycles(60)


def test_system_dispatch_throughput(benchmark):
    sys = MultiUnitSystem()
    jobs = [sys.bfp_stream_job(f"j{i}", 64) for i in range(150)]
    report = benchmark(sys.schedule, jobs)
    assert report.utilization() > 0.95
    # Aggregate throughput approaches 15x the single-unit measured rate.
    from repro.perf.latency import measured_bfp_throughput_ops

    assert report.throughput_ops("bfp8") == pytest.approx(
        15 * measured_bfp_throughput_ops(64), rel=0.05
    )
