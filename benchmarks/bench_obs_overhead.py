"""Observability overhead bench: the disabled path must cost ~nothing.

The whole observability stack (tracer, metrics registry, SLO tracker,
request-path decomposition) follows the null-object discipline: disabled,
each hook is one ``.enabled`` attribute check in the dispatch hot loop.
This bench measures the serving simulator's wall-clock rate with
everything disabled vs everything enabled at full sampling, proves the
two runs produce identical serving summaries (observation must never
steer the simulation), and records the result as
``BENCH_obs_overhead.json`` for the bench gate's history.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import NULL_SLO, SLOConfig, SLOTracker
from repro.obs.tracer import NULL_TRACER, RequestPathConfig, Tracer
from repro.serve.dispatcher import ServeConfig, simulate
from repro.serve.request import TrafficConfig, poisson_trace

SEED = 0
N_REQUESTS = 600
TRAFFIC = TrafficConfig(rate_rps=1500.0, vit_fraction=0.1)


def _run(trace, *, observed: bool):
    cfg = ServeConfig()
    if observed:
        report = simulate(
            trace, cfg,
            tracer=Tracer(meta={"seed": SEED}),
            registry=MetricsRegistry(),
            slo=SLOTracker(SLOConfig()),
            path=RequestPathConfig(detail_every=1),
        )
    else:
        report = simulate(trace, cfg, tracer=NULL_TRACER,
                          registry=MetricsRegistry(enabled=False),
                          slo=NULL_SLO, path=None)
    return report


def _best_rate(trace, *, observed: bool, runs: int = 5):
    best, report = 0.0, None
    for _ in range(runs):
        t0 = time.perf_counter()
        report = _run(trace, observed=observed)
        dt = time.perf_counter() - t0
        best = max(best, len(trace) / dt)
    return best, report


def _core_summary(summary: dict) -> dict:
    """The simulation outcome minus observability-only keys."""
    return {k: v for k, v in summary.items() if k != "slo"}


def test_obs_disabled_overhead(save_report, bench_artifact):
    """Disabled observability must not bend the serving hot loop.

    Gated two ways: the disabled and enabled runs must produce an
    identical serving summary (determinism — observation never steers
    the simulation), and the disabled rate must stay within a
    conservative margin of the committed artifact's own previous
    measurement (an accidentally-hot disabled path shows up as a cliff,
    scheduler noise does not).
    """
    trace = poisson_trace(N_REQUESTS, TRAFFIC, seed=SEED)
    _best_rate(trace, observed=False, runs=1)  # warm numpy + allocator

    off_rate, off_report = _best_rate(trace, observed=False)
    on_rate, on_report = _best_rate(trace, observed=True)
    overhead = off_rate / on_rate - 1.0

    assert _core_summary(off_report.summary) == \
        _core_summary(on_report.summary), (
            "observability changed the simulation outcome"
        )
    # Full-detail tracing records every stage of every request; its cost
    # is real and bounded by the span budget, not gated here.
    n_spans = (len(on_report.tracer.spans)
               + len(on_report.tracer.async_spans))

    baseline_path = (Path(__file__).parent.parent / "results"
                     / "BENCH_obs_overhead.json")
    base_rate = vs_baseline = None
    if baseline_path.exists():
        base = json.loads(baseline_path.read_text())
        base_rate = base["summary"].get("requests_per_sec_disabled")
        if base_rate:
            vs_baseline = off_rate / base_rate - 1.0

    lines = [
        f"serving sim, {N_REQUESTS} requests @ {TRAFFIC.rate_rps:g} req/s "
        f"(seed {SEED}), best of 5:",
        f"observability disabled: {off_rate:10.1f} requests/sec (wall)",
        f"observability enabled:  {on_rate:10.1f} requests/sec "
        f"({overhead * 100:+.1f}% slower; full 1-in-1 request-path "
        f"detail, {n_spans} spans)",
        "identical serving summaries: True",
    ]
    if base_rate is not None:
        lines.append(
            f"disabled vs committed baseline: {off_rate:.1f} vs "
            f"{base_rate:.1f} requests/sec ({vs_baseline * 100:+.1f}%)"
        )
    save_report("obs_overhead", "\n".join(lines))
    bench_artifact("obs_overhead", {
        "n_requests": N_REQUESTS,
        "rate_rps": TRAFFIC.rate_rps,
        "requests_per_sec_disabled": off_rate,
        "requests_per_sec_enabled": on_rate,
        "enabled_overhead_fraction": overhead,
        "enabled_spans": n_spans,
        "baseline_requests_per_sec_disabled": base_rate,
        "disabled_vs_baseline_fraction": vs_baseline,
    }, seed=SEED)

    # Same conservative 20% margin as the numerics-overhead gate:
    # back-to-back best-of-5 runs on a shared machine swing +-15%.
    if base_rate is not None:
        assert off_rate > base_rate * 0.80, (
            f"disabled observability cost {-vs_baseline * 100:.1f}% "
            "serving throughput vs committed baseline"
        )
