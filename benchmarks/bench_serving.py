"""Serving bench: dynamic batching payoff and online-dispatch overheads."""

import pytest

from repro.serve.batcher import BatchPolicy
from repro.serve.dispatcher import ServeConfig, simulate
from repro.serve.request import TrafficConfig, poisson_trace

LLM_TRAFFIC = TrafficConfig(rate_rps=2000.0, vit_fraction=0.0)
MIXED_TRAFFIC = TrafficConfig(rate_rps=1500.0, vit_fraction=0.05)


def run(trace, max_batch, max_wait_us=200.0):
    policy = BatchPolicy(max_batch=max_batch,
                         max_wait_us=max_wait_us if max_batch > 1 else 0.0)
    return simulate(trace, ServeConfig(policy=policy)).summary


@pytest.fixture(scope="module")
def llm_trace():
    return poisson_trace(400, LLM_TRAFFIC, seed=0)


def test_dynamic_batching_speedup(benchmark, llm_trace, save_report,
                                  bench_artifact):
    """Same seeded trace, same 15 units: batching >= 2x tokens/s."""
    batched = benchmark(run, llm_trace, 8)
    single = run(llm_trace, 1)
    speedup = batched["tokens_per_s"] / single["tokens_per_s"]

    lines = [
        "dynamic batching on a seeded llm-only trace "
        f"({len(llm_trace)} requests, {LLM_TRAFFIC.rate_rps:g} req/s):",
        f"{'max_batch':>9s} {'tokens/s':>10s} {'p95 ms':>8s} "
        f"{'ttft p95 ms':>11s} {'util':>6s} {'mean batch':>10s}",
    ]
    for mb in (1, 2, 4, 8, 16):
        s = run(llm_trace, mb)
        lines.append(
            f"{mb:9d} {s['tokens_per_s']:10.1f} {s['latency_p95_ms']:8.1f} "
            f"{s['ttft_p95_ms']:11.1f} {s['utilization']:6.3f} "
            f"{s['mean_batch_size']:10.2f}"
        )
    lines.append(f"speedup at max_batch=8 vs 1: {speedup:.2f}x")
    save_report("serving_dynamic_batching", "\n".join(lines))
    bench_artifact("serving_dynamic_batching", {
        "speedup_tokens_per_s": speedup,
        "batched": batched,
        "single": single,
    }, seed=0)

    # The acceptance bar: per-token weight-pass amortization (Eqn 9's
    # N_X = 1 -> N_X = B) must at least double end-to-end throughput.
    assert speedup >= 2.0
    assert batched["latency_p95_ms"] <= single["latency_p95_ms"]


def test_mixed_traffic_report(save_report, bench_artifact):
    trace = poisson_trace(400, MIXED_TRAFFIC, seed=0)
    batched, single = run(trace, 8), run(trace, 1)
    lines = [
        "mixed traffic (5% ViT images, 95% LLM), dynamic batching vs none:",
        f"{'metric':>20s} {'max_batch=8':>12s} {'max_batch=1':>12s}",
    ]
    for key in ("tokens_per_s", "requests_per_s", "latency_p95_ms",
                "ttft_p95_ms", "utilization", "mean_batch_size"):
        lines.append(f"{key:>20s} {batched[key]:12.2f} {single[key]:12.2f}")
    save_report("serving_mixed_traffic", "\n".join(lines))
    bench_artifact("serving_mixed_traffic",
                   {"batched": batched, "single": single}, seed=0)
    assert batched["tokens_per_s"] > single["tokens_per_s"]


def test_simulation_cost(benchmark):
    """The event loop itself must stay cheap (acceptance: 2000 reqs < 60 s)."""
    trace = poisson_trace(200, MIXED_TRAFFIC, seed=1)
    summary = benchmark(run, trace, 8)
    assert summary["completed"] + summary["rejected"] == 200


def test_determinism_across_runs(llm_trace):
    assert run(llm_trace, 8) == run(llm_trace, 8)
