"""Flight-recorder overhead bench: disabled ~0%, enabled bounded.

The recorder follows the same null-object discipline as the rest of the
observability stack: every dispatcher hook is guarded by one
``recorder.enabled`` attribute read, so :data:`NULL_RECORDER` must cost
nothing measurable.  The *enabled* steady-state path — ring appends plus
a few EWMA float ops per event, no incident firing — is the always-on
cost the tentpole budgets at a few percent; this bench measures both
against the committed artifact and proves recording never steers the
simulation (identical serving summaries).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.anomaly import AnomalyConfig
from repro.obs.recorder import NULL_RECORDER, FlightRecorder, RecorderConfig
from repro.serve.dispatcher import ServeConfig, simulate
from repro.serve.request import TrafficConfig, poisson_trace

SEED = 0
N_REQUESTS = 2000
TRAFFIC = TrafficConfig(rate_rps=1500.0, vit_fraction=0.1)

#: Thresholds high enough that steady-state traffic never triggers —
#: the bench measures the always-on recording cost, not bundle writes.
QUIET = AnomalyConfig(latency_z=1e9, queue_z=1e9, burn_threshold=1e9)


def _run(trace, *, recorded: bool):
    cfg = ServeConfig()
    if recorded:
        recorder = FlightRecorder(RecorderConfig(anomaly=QUIET))
    else:
        recorder = NULL_RECORDER
    return simulate(trace, cfg, recorder=recorder), recorder


def _paired_rates(trace, *, runs: int = 5):
    """Best wall rate for each mode, *interleaved* per round.

    Consecutive same-mode runs let shared-machine load drift bias the
    comparison by more than the effect being measured; alternating
    off/on inside each round means both modes sample the same noise.
    """
    best = {False: 0.0, True: 0.0}
    reports, recorder = {}, None
    for _ in range(runs):
        for recorded in (False, True):
            t0 = time.perf_counter()
            report, rec = _run(trace, recorded=recorded)
            dt = time.perf_counter() - t0
            best[recorded] = max(best[recorded], len(trace) / dt)
            reports[recorded] = report
            if recorded:
                recorder = rec
    return best[False], best[True], reports[False], reports[True], recorder


def _core_summary(summary: dict) -> dict:
    """The simulation outcome minus recorder-only keys."""
    return {k: v for k, v in summary.items() if k != "recorder"}


def test_recorder_overhead(save_report, bench_artifact):
    """Recording must observe the hot loop, not bend it.

    Gated three ways: the recorded and unrecorded runs must produce an
    identical serving summary (recording never steers the simulation),
    steady-state recording must not fire a single incident, and the
    disabled rate must stay within a conservative margin of the
    committed artifact's previous measurement.
    """
    trace = poisson_trace(N_REQUESTS, TRAFFIC, seed=SEED)
    _run(trace, recorded=False)  # warm numpy + allocator
    _run(trace, recorded=True)

    off_rate, on_rate, off_report, on_report, recorder = _paired_rates(trace)
    overhead = off_rate / on_rate - 1.0

    assert _core_summary(off_report.summary) == \
        _core_summary(on_report.summary), (
            "flight recording changed the simulation outcome"
        )
    assert not recorder.incidents, (
        "steady-state traffic fired an incident at quiet thresholds"
    )
    rs = on_report.summary["recorder"]

    baseline_path = (Path(__file__).parent.parent / "results"
                     / "BENCH_recorder_overhead.json")
    base_rate = vs_baseline = None
    if baseline_path.exists():
        base = json.loads(baseline_path.read_text())
        base_rate = base["summary"].get("requests_per_sec_disabled")
        if base_rate:
            vs_baseline = off_rate / base_rate - 1.0

    lines = [
        f"serving sim, {N_REQUESTS} requests @ {TRAFFIC.rate_rps:g} req/s "
        f"(seed {SEED}), best of 5 interleaved rounds:",
        f"recorder disabled: {off_rate:10.1f} requests/sec (wall)",
        f"recorder enabled:  {on_rate:10.1f} requests/sec "
        f"({overhead * 100:+.1f}% slower; rings "
        f"{rs['ring_sizes']['requests']}/{rs['ring_sizes']['metrics']}/"
        f"{rs['ring_sizes']['decisions']} entries, 0 incidents)",
        "identical serving summaries: True",
    ]
    if base_rate is not None:
        lines.append(
            f"disabled vs committed baseline: {off_rate:.1f} vs "
            f"{base_rate:.1f} requests/sec ({vs_baseline * 100:+.1f}%)"
        )
    save_report("recorder_overhead", "\n".join(lines))
    bench_artifact("recorder_overhead", {
        "n_requests": N_REQUESTS,
        "rate_rps": TRAFFIC.rate_rps,
        "requests_per_sec_disabled": off_rate,
        "requests_per_sec_enabled": on_rate,
        "enabled_overhead_fraction": overhead,
        "baseline_requests_per_sec_disabled": base_rate,
        "disabled_vs_baseline_fraction": vs_baseline,
    }, seed=SEED)

    # Same conservative 20% margin as the obs-overhead gate: wall-clock
    # rates on a shared machine swing +-15% run to run.
    if base_rate is not None:
        assert off_rate > base_rate * 0.80, (
            f"disabled recorder cost {-vs_baseline * 100:.1f}% serving "
            "throughput vs committed baseline"
        )
