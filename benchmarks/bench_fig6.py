"""Fig. 6 bench: the four PE-array design points, normalized to int8."""

import pytest

from repro.eval import fig6
from repro.perf.resources import fig6_designs


def test_fig6_report(benchmark, save_report, bench_artifact):
    out = benchmark(fig6.run)
    save_report("fig6_design_comparison", out)
    designs = fig6_designs()
    bench_artifact("fig6_design_comparison", {
        name: {"lut": d.lut, "ff": d.ff, "dsp": d.dsp, "bram": d.bram}
        for name, d in designs.items()
    })


def test_fig6_ratios_reproduce_paper(benchmark):
    designs = benchmark(fig6_designs)
    base, ours, indiv = designs["int8"], designs["ours"], designs["indiv"]
    assert designs["bfp8"].ff / base.ff == pytest.approx(1.19, abs=0.01)
    assert 100 * (1 - ours.dsp / indiv.dsp) == pytest.approx(20.0, abs=0.1)
    assert 100 * (1 - ours.ff / indiv.ff) == pytest.approx(61.2, abs=0.1)
    assert 100 * (1 - ours.lut / indiv.lut) == pytest.approx(43.6, abs=0.1)
