"""Kernel microbenchmarks: the hot paths of the emulation itself.

These do not reproduce a paper artifact; they track the performance of the
reproduction's own vectorized kernels (quantization, bfp matmul emulation,
sliced fp32 multiply, align-add) so regressions are visible.
"""

import numpy as np
import pytest

from repro.arith.bfp_matmul import bfp_matmul_emulate
from repro.arith.fp_align_add import aligned_add
from repro.arith.fp_sliced import sliced_multiply
from repro.formats.bfp8 import quantize_tiles
from repro.formats.blocking import BfpMatrix

RNG = np.random.default_rng(0)


def test_quantize_tiles_throughput(benchmark):
    tiles = RNG.normal(size=(64, 64, 8, 8))
    man, exp = benchmark(quantize_tiles, tiles)
    assert man.shape == tiles.shape


def test_bfp_matrix_from_dense(benchmark):
    x = RNG.normal(size=(512, 512))
    bm = benchmark(BfpMatrix.from_dense, x)
    assert bm.block_grid == (64, 64)


def test_bfp_matmul_emulate_256(benchmark):
    a = RNG.normal(size=(256, 256))
    b = RNG.normal(size=(256, 256))
    out = benchmark(bfp_matmul_emulate, a, b)
    assert out.shape == (256, 256)


def test_sliced_multiply_vectorized(benchmark):
    x = RNG.normal(size=100_000).astype(np.float32)
    y = RNG.normal(size=100_000).astype(np.float32)
    out = benchmark(sliced_multiply, x, y)
    assert out.shape == x.shape


def test_aligned_add_vectorized(benchmark):
    x = RNG.normal(size=100_000).astype(np.float32)
    y = RNG.normal(size=100_000).astype(np.float32)
    out = benchmark(aligned_add, x, y)
    assert out.shape == x.shape
