"""Kernel microbenchmarks: the hot paths of the emulation itself.

These do not reproduce a paper artifact; they track the performance of the
reproduction's own vectorized kernels (quantization, bfp matmul emulation,
sliced fp32 multiply, align-add) so regressions are visible.

The headline number is the cached-vs-uncached decode comparison: the
prepared-operand cache (:mod:`repro.perf.prepared`) quantizes each weight
once — the emulation analogue of the hardware's Y-stationary weight
residency — and its tokens/sec advantage over a ``capacity=0`` cache
(requantize every call) is recorded in ``results/BENCH_kernels.json``.
Timing uses ``perf_counter`` directly so the numbers exist even under
``pytest --benchmark-disable`` (the CI perf-smoke job).
"""

import time

import numpy as np

from repro.arith.bfp_matmul import bfp_matmul_emulate, bfp_matmul_emulate_batched
from repro.arith.fp_align_add import aligned_add
from repro.arith.fp_sliced import sliced_multiply
from repro.formats.bfp8 import quantize_tiles
from repro.formats.blocking import BfpMatrix
from repro.models.backend import BFP8MixedBackend
from repro.models.decoder import TinyLM
from repro.perf.prepared import PreparedOperandCache, get_cache, set_cache

RNG = np.random.default_rng(0)

# The decode workload: DeiT-Small width (the paper's Table IV model is
# d=384), two blocks — large enough that per-call weight quantization
# dominates the uncached path, as it would on any real model.
DECODE_SEED = 7
DECODE_DIM = 384
DECODE_DEPTH = 2
DECODE_TOKENS = 24


def test_quantize_tiles_throughput(benchmark):
    tiles = RNG.normal(size=(64, 64, 8, 8))
    man, exp = benchmark(quantize_tiles, tiles)
    assert man.shape == tiles.shape


def test_bfp_matrix_from_dense(benchmark):
    x = RNG.normal(size=(512, 512))
    bm = benchmark(BfpMatrix.from_dense, x)
    assert bm.block_grid == (64, 64)


def test_bfp_matmul_emulate_256(benchmark):
    a = RNG.normal(size=(256, 256))
    b = RNG.normal(size=(256, 256))
    out = benchmark(bfp_matmul_emulate, a, b)
    assert out.shape == (256, 256)


def test_bfp_matmul_emulate_batched_heads(benchmark):
    # The per-head attention shape: one fused kernel for the whole stack.
    a = RNG.normal(size=(8, 64, 64))
    b = RNG.normal(size=(8, 64, 64))
    out = benchmark(bfp_matmul_emulate_batched, a, b)
    assert out.shape == (8, 64, 64)


def test_sliced_multiply_vectorized(benchmark):
    x = RNG.normal(size=100_000).astype(np.float32)
    y = RNG.normal(size=100_000).astype(np.float32)
    out = benchmark(sliced_multiply, x, y)
    assert out.shape == x.shape


def test_aligned_add_vectorized(benchmark):
    x = RNG.normal(size=100_000).astype(np.float32)
    y = RNG.normal(size=100_000).astype(np.float32)
    out = benchmark(aligned_add, x, y)
    assert out.shape == x.shape


def _decode_tokens_per_sec(
    model: TinyLM, n_tokens: int, *, compiled: bool = False
) -> tuple[float, np.ndarray]:
    """Greedy KV-cache decode; returns (tokens/sec, final logits).

    ``compiled=False`` pins the eager per-layer path (the historical
    baseline every committed number was measured on); ``compiled=True``
    replays a traced decode plan (:mod:`repro.runtime.plan`).  The first
    step — where the compiled path traces its plan — runs before the
    clock starts, matching the trace-once/replay-many deployment shape.
    """
    backend = BFP8MixedBackend()
    caches = model.init_cache()
    logits = model.forward_step(1, 0, caches, backend, compiled=compiled)
    t0 = time.perf_counter()
    for pos in range(1, n_tokens + 1):
        tok = int(np.argmax(logits)) % model.vocab
        logits = model.forward_step(tok, pos, caches, backend, compiled=compiled)
    return n_tokens / (time.perf_counter() - t0), logits


def test_prepared_cache_decode_speedup(save_report, bench_artifact):
    """Cached vs uncached bfp8-mixed decode: the tentpole's headline.

    Uncached = a ``capacity=0`` prepared-operand cache, i.e. every weight
    requantized on every matmul (what the emulation did before the
    cache).  Outputs must be bit-identical; the committed artifact
    records the >=5x achieved on an unloaded machine, while the assert
    keeps a CI-safe margin for noisy shared runners.
    """
    model = TinyLM(
        vocab=32, seq_len=DECODE_TOKENS + 8, dim=DECODE_DIM,
        depth=DECODE_DEPTH, n_heads=4, seed=DECODE_SEED,
    )

    uncached_tps, uncached_logits = 0.0, None
    for _ in range(3):
        prev = set_cache(PreparedOperandCache(capacity=0))
        try:
            tps, uncached_logits = _decode_tokens_per_sec(model, DECODE_TOKENS)
        finally:
            set_cache(prev)
        uncached_tps = max(uncached_tps, tps)

    cached_tps, cached_logits = 0.0, None
    for _ in range(3):
        get_cache().clear()
        tps, cached_logits = _decode_tokens_per_sec(model, DECODE_TOKENS)
        cached_tps = max(cached_tps, tps)

    compiled_tps, compiled_logits = 0.0, None
    for _ in range(3):
        get_cache().clear()
        tps, compiled_logits = _decode_tokens_per_sec(
            model, DECODE_TOKENS, compiled=True
        )
        compiled_tps = max(compiled_tps, tps)

    identical = bool(np.array_equal(uncached_logits, cached_logits))
    compiled_identical = bool(np.array_equal(cached_logits, compiled_logits))
    speedup = cached_tps / uncached_tps
    compiled_speedup = compiled_tps / cached_tps

    def _sha(arr: np.ndarray) -> str:
        import hashlib

        return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()

    lines = [
        f"TinyLM dim={DECODE_DIM} depth={DECODE_DEPTH}, bfp8-mixed, "
        f"{DECODE_TOKENS} greedy KV-cache decode steps",
        f"uncached (capacity=0): {uncached_tps:8.2f} tokens/sec",
        f"cached   (default):    {cached_tps:8.2f} tokens/sec",
        f"compiled (plan replay):{compiled_tps:8.2f} tokens/sec",
        f"cache speedup: {speedup:.2f}x   bit-identical logits: {identical}",
        f"compiled speedup over cached eager: {compiled_speedup:.2f}x   "
        f"bit-identical logits: {compiled_identical}",
    ]
    save_report("kernels_prepared_cache", "\n".join(lines))
    bench_artifact("kernels", {
        "decode_model": {
            "dim": DECODE_DIM, "depth": DECODE_DEPTH,
            "n_tokens": DECODE_TOKENS, "backend": "bfp8-mixed",
        },
        "decode_tokens_per_sec_uncached": uncached_tps,
        "decode_tokens_per_sec_cached": cached_tps,
        "decode_tokens_per_sec_compiled": compiled_tps,
        "decode_speedup": speedup,
        "compiled_speedup": compiled_speedup,
        "bit_identical": identical,
        "compiled_bit_identical": compiled_identical,
        "compiled_logits_sha256": _sha(np.asarray(compiled_logits)),
        "eager_logits_sha256": _sha(np.asarray(cached_logits)),
    }, seed=DECODE_SEED)

    assert identical, "cached decode diverged from the uncached path"
    assert compiled_identical, "compiled decode diverged from the eager path"
    # Locally this runs >=5x (recorded in the artifact); shared CI
    # runners are noisy, so the hard gate is a conservative 2x.
    assert speedup > 2.0, f"prepared cache speedup only {speedup:.2f}x"
    # Compiled replay over the already-cached eager path: measured ~2.5x
    # locally; the acceptance floor is 2x.
    assert compiled_speedup > 2.0, (
        f"compiled decode speedup only {compiled_speedup:.2f}x"
    )


def test_numerics_monitor_overhead(save_report, bench_artifact):
    """The disabled numerics monitor must stay out of the decode hot path.

    The acceptance bar is <=2% decode-throughput cost with the monitor
    disabled (the default NULL_MONITOR: one ``.enabled`` attribute check
    per matmul).  Enabled-monitor throughput is measured and recorded
    too, but not gated — observation does real work (dequantize + SQNR
    accumulation) and is expected to cost real time.
    """
    from repro.obs.numerics import NULL_MONITOR, NumericsMonitor, set_monitor

    model = TinyLM(
        vocab=32, seq_len=DECODE_TOKENS + 8, dim=DECODE_DIM,
        depth=DECODE_DEPTH, n_heads=4, seed=DECODE_SEED,
    )

    def best_of(monitor, runs=5, compiled=False):
        best, logits = 0.0, None
        for _ in range(runs):
            prev = set_monitor(monitor)
            get_cache().clear()
            try:
                tps, logits = _decode_tokens_per_sec(
                    model, DECODE_TOKENS, compiled=compiled
                )
            finally:
                set_monitor(prev)
            best = max(best, tps)
        return best, logits

    best_of(NULL_MONITOR, runs=1)  # warm numpy + allocator
    off_tps, off_logits = best_of(NULL_MONITOR)
    on_tps, on_logits = best_of(NumericsMonitor())
    # Compiled replay under a live monitor: taps sample 1-in-N steps
    # (the rest replay tap-free), so observation no longer taxes every
    # token — the compiled overhead fraction is the new acceptance bar.
    c_off_tps, c_off_logits = best_of(NULL_MONITOR, compiled=True)
    c_on_tps, c_on_logits = best_of(NumericsMonitor(), compiled=True)

    identical = bool(np.array_equal(off_logits, on_logits))
    compiled_identical = bool(
        np.array_equal(off_logits, c_off_logits)
        and np.array_equal(off_logits, c_on_logits)
    )
    overhead = off_tps / on_tps - 1.0
    compiled_overhead = c_off_tps / c_on_tps - 1.0

    # The disabled path is the gate.  Its cost against the pre-monitor
    # baseline (results/BENCH_kernels.json decode_tokens_per_sec_cached)
    # is the <=2% acceptance criterion; the measured fraction is recorded
    # in the artifact.  Back-to-back best-of-5 runs on a loaded shared
    # machine swing +-15%, so the hard assert keeps a conservative 20%
    # margin — wide enough to ignore scheduler noise, tight enough to
    # catch an accidentally-hot disabled path (observation itself costs
    # ~30% when enabled).
    import json
    from pathlib import Path

    baseline_path = Path(__file__).parent.parent / "results" / "BENCH_kernels.json"
    base_tps = vs_baseline = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        base_tps = baseline["summary"]["decode_tokens_per_sec_cached"]
        vs_baseline = off_tps / base_tps - 1.0

    lines = [
        f"TinyLM dim={DECODE_DIM} depth={DECODE_DEPTH}, bfp8-mixed, "
        f"{DECODE_TOKENS} greedy KV-cache decode steps",
        f"monitor disabled: {off_tps:8.2f} tokens/sec",
        f"monitor enabled:  {on_tps:8.2f} tokens/sec "
        f"({overhead * 100:+.1f}% slower)",
        f"compiled, monitor disabled: {c_off_tps:8.2f} tokens/sec",
        f"compiled, monitor enabled:  {c_on_tps:8.2f} tokens/sec "
        f"({compiled_overhead * 100:+.1f}% slower, sampled taps)",
        f"bit-identical logits: {identical} (compiled: {compiled_identical})",
    ]
    if base_tps is not None:
        lines.append(
            f"disabled-monitor vs committed BENCH_kernels baseline: "
            f"{off_tps:.2f} vs {base_tps:.2f} tokens/sec "
            f"({vs_baseline * 100:+.1f}%)"
        )
    save_report("kernels_numerics_overhead", "\n".join(lines))
    bench_artifact("numerics_overhead", {
        "decode_model": {
            "dim": DECODE_DIM, "depth": DECODE_DEPTH,
            "n_tokens": DECODE_TOKENS, "backend": "bfp8-mixed",
        },
        "decode_tokens_per_sec_monitor_off": off_tps,
        "decode_tokens_per_sec_monitor_on": on_tps,
        "enabled_overhead_fraction": overhead,
        "compiled_tokens_per_sec_monitor_off": c_off_tps,
        "compiled_tokens_per_sec_monitor_on": c_on_tps,
        "compiled_enabled_overhead_fraction": compiled_overhead,
        "baseline_tokens_per_sec": base_tps,
        "disabled_vs_baseline_fraction": vs_baseline,
    }, seed=DECODE_SEED)

    assert identical, "monitored decode diverged from the unmonitored path"
    assert compiled_identical, (
        "compiled decode diverged under/without the numerics monitor"
    )
    # Sampled taps bound the live-monitor tax on the compiled path: the
    # acceptance bar is <=10% (eager pays the full observation cost every
    # step); the assert allows noise headroom on shared runners.
    assert compiled_overhead <= 0.15, (
        f"compiled monitored decode overhead {compiled_overhead * 100:.1f}% "
        f"(sampled taps should keep this under 10%)"
    )
    if base_tps is not None:
        assert off_tps > base_tps * 0.80, (
            f"disabled monitor cost {-vs_baseline * 100:.1f}% decode "
            f"throughput vs committed baseline"
        )
