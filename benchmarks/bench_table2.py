"""Table II bench: the per-component resource model of one processing unit."""

import pytest

from repro.eval import table2
from repro.perf.resources import processing_unit_total, table2_breakdown


def test_table2_report(benchmark, save_report, bench_artifact):
    out = benchmark(table2.run)
    assert "7348" in out
    save_report("table2_hardware_utilization", out)
    total = processing_unit_total()
    bench_artifact("table2_hardware_utilization", {
        "lut": total.lut, "ff": total.ff,
        "bram": total.bram, "dsp": total.dsp,
    })


def test_table2_totals_reproduce_paper(benchmark):
    total = benchmark(processing_unit_total)
    assert total.lut == pytest.approx(7348)
    assert total.ff == pytest.approx(10329)
    assert total.bram == pytest.approx(57.5)
    assert total.dsp == 72


def test_table2_breakdown_cost(benchmark):
    rows = benchmark(table2_breakdown)
    assert len(rows) == 8
