"""Trans-precision unit-mode bench: fp16 dot-product vs the legacy routes.

Headline numbers for the unit-mode registry (:mod:`repro.cost.modes`):
the cycle cost of an fp16 decode schedule on the ``fp16_dot`` array
personality against the fp32 vector cliff it replaces and the bfp8
baseline it approaches, plus the measured shift-aware alignment savings.
All cycle numbers are deterministic (cycle model, not wall clock), so the
bench-gate pins them tightly.
"""

import numpy as np

from repro.arith.bfp_matmul import (
    AlignmentProbe,
    bfp_matmul_emulate,
    set_alignment_probe,
)
from repro.cost.modes import ModeOptions, get_mode
from repro.models.policy import get_policy
from repro.perf.resources import fp16_dot_extension
from repro.perf.throughput import DEFAULT_CLOCK
from repro.runtime.scheduler import compile_decoder

DECODER = dict(vocab=1000, dim=128, depth=4, n_heads=4, context=128)


def _decode_cycles(policy, modes):
    return compile_decoder(
        **DECODER, phase="decode", batch=8, policy=policy, modes=modes,
    ).unit_cycles_per_item()


def _prefill_cycles(policy, modes):
    return compile_decoder(
        **DECODER, phase="prefill", batch=4, policy=policy, modes=modes,
    ).unit_cycles_per_item()


def _measured_narrow_frac() -> float:
    """The alignment probe's narrow fraction on a seeded workload."""
    probe = AlignmentProbe()
    prev = set_alignment_probe(probe)
    try:
        rng = np.random.default_rng(0)
        for _ in range(4):
            a = rng.standard_normal((32, 64))
            b = rng.standard_normal((64, 32))
            bfp_matmul_emulate(a, b)
    finally:
        set_alignment_probe(prev)
    assert probe.under_predictions == 0
    return probe.narrow_frac


def test_unit_modes_report(benchmark, save_report, bench_artifact):
    fp16_pol = get_policy("fp16-linear")
    bfp8_pol = get_policy("bfp8-mixed")
    fp16_modes = ModeOptions.parse("fp16")

    cycles = {
        "bfp8_mac": _decode_cycles(bfp8_pol, None),
        "fp16_vector": _decode_cycles(fp16_pol, None),
        "fp16_dot": benchmark(_decode_cycles, fp16_pol, fp16_modes),
    }
    freq = DEFAULT_CLOCK.freq_hz
    tokens_per_s = {k: freq / v for k, v in cycles.items()}

    narrow_frac = _measured_narrow_frac()
    align_base = _prefill_cycles(bfp8_pol, None)
    align_pred = _prefill_cycles(
        bfp8_pol, ModeOptions(align_narrow_frac=narrow_frac))

    ext = fp16_dot_extension()
    summary = {
        "decode_cycles_per_token": cycles,
        "tokens_per_s": tokens_per_s,
        "fp16_dot_speedup_vs_vector": cycles["fp16_vector"] / cycles["fp16_dot"],
        "fp16_dot_vs_bfp8_cycles_ratio": cycles["fp16_dot"] / cycles["bfp8_mac"],
        "alignment": {
            "measured_narrow_frac": narrow_frac,
            "prefill_cycles_base": align_base,
            "prefill_cycles_predicted": align_pred,
            "savings_frac": 1.0 - align_pred / align_base,
        },
        "fp16_extension_resources": {
            "lut": ext.lut, "ff": ext.ff, "dsp": ext.dsp, "bram": ext.bram,
        },
    }

    lines = [
        "Trans-precision unit modes (decode, TinyLM-shaped decoder, batch 8)",
        "",
        f"{'route':<24}{'cycles/token':>14}{'tokens/s/unit':>16}",
    ]
    for key, label in (
        ("bfp8_mac", "bfp8 on MAC array"),
        ("fp16_dot", "fp16 on fp16_dot"),
        ("fp16_vector", "fp16 on vector (old)"),
    ):
        lines.append(f"{label:<24}{cycles[key]:>14,}{tokens_per_s[key]:>16.1f}")
    lines += [
        "",
        f"fp16_dot speedup over the vector cliff: "
        f"{summary['fp16_dot_speedup_vs_vector']:.2f}x "
        f"(reconfig {get_mode('fp16_dot').reconfig_cycles} cycles per entry)",
        f"fp16 extension cost: +{ext.lut:.0f} LUT / +{ext.ff:.0f} FF / "
        f"+{ext.dsp:.0f} DSP (dual fp16 products per DSP48E2)",
        f"shift-aware alignment: measured narrow_frac {narrow_frac:.3f} "
        f"saves {100 * summary['alignment']['savings_frac']:.2f}% of "
        "prefill cycles",
    ]
    save_report("unit_modes", "\n".join(lines))
    bench_artifact("unit_modes", summary, seed=0)

    assert cycles["fp16_dot"] < cycles["fp16_vector"]
    assert align_pred <= align_base
