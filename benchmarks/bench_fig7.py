"""Fig. 7 bench: measured vs theoretical throughput.

The benchmark times the *actual register-accurate simulator* on the paper's
workload sweep (this is the reproduction's "hardware measurement") and
verifies the emergent cycle counts against Eqns 9/10, then renders the full
Fig. 7 series with the memory model applied.
"""

import numpy as np
import pytest

from repro.eval import fig7
from repro.formats import fp32bits
from repro.hw.systolic import SystolicArray
from repro.perf.latency import (
    measured_bfp_throughput_ops,
    measured_fp32_throughput_flops,
)
from repro.perf.throughput import bfp_throughput_ops, fp32_throughput_flops


@pytest.mark.parametrize("n_x", [8, 16, 32, 64])
def test_bfp8_stream_cycle_sim(benchmark, n_x):
    rng = np.random.default_rng(n_x)
    arr = SystolicArray()
    arr.load_y_pair(rng.integers(-127, 128, (8, 8)),
                    rng.integers(-127, 128, (8, 8)))
    x = rng.integers(-127, 128, (n_x, 8, 8))
    res = benchmark(arr.run_bfp8_stream, x)
    assert res.cycles == 8 * n_x + 15  # Eqn 9, emergent


@pytest.mark.parametrize("length", [16, 32, 64, 128])
def test_fp32_stream_cycle_sim(benchmark, length):
    rng = np.random.default_rng(length)
    x = rng.normal(size=(4, length)).astype(np.float32)
    y = rng.normal(size=(4, length)).astype(np.float32)
    sx, ex, mx = fp32bits.decompose(x)
    sy, ey, my = fp32bits.decompose(y)
    arr = SystolicArray()
    res = benchmark(arr.run_fp32_mul_stream, mx, my, sx, sy, ex, ey)
    assert res.cycles == length + 8  # Eqn 10, emergent


def test_fig7_series_shapes(benchmark, save_report, bench_artifact):
    out = benchmark(fig7.run, verify_cycles=False)
    save_report("fig7_throughput", out)
    bench_artifact("fig7_throughput", {
        "bfp_measured_ops": {
            str(n_x): measured_bfp_throughput_ops(n_x)
            for n_x in (8, 16, 32, 64)
        },
        "fp32_measured_flops_128": measured_fp32_throughput_flops(128),
    })
    # The paper's qualitative findings:
    for n_x in (8, 16, 32):
        assert measured_bfp_throughput_ops(n_x) < measured_bfp_throughput_ops(64)
    assert measured_bfp_throughput_ops(64) / bfp_throughput_ops(64) > 0.7
    assert measured_fp32_throughput_flops(128) / fp32_throughput_flops(128) < 0.6
