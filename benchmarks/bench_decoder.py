"""Decoder/LLM bench: the accuracy-collapse experiment and kernel costs."""

import numpy as np
import pytest

from repro.eval.decoder import DecoderConfig, run_decoder_study
from repro.models.backend import get_backend
from repro.models.data import additive_lm_sequences
from repro.models.decoder import TinyLM

QUICK = DecoderConfig(n_samples=600, epochs=10, seed=3)


@pytest.fixture(scope="module")
def study():
    return run_decoder_study(QUICK)


def test_decoder_regime_study(benchmark, study, save_report, bench_artifact):
    lm, losses, rows, gen_match = study
    benchmark(lambda: get_backend("bfp8-mixed"))
    by = {r["backend"]: r["next_token_accuracy"] for r in rows}
    lines = [f"training loss: {losses[0]:.3f} -> {losses[-1]:.3f}"]
    for r in rows:
        lines.append(f"{r['backend']:12s} next-token acc = "
                     f"{r['next_token_accuracy']:.4f}")
    lines.append(f"generation identical under bfp8-mixed: {gen_match}")
    save_report("decoder_llm_regimes", "\n".join(lines))
    bench_artifact("decoder_llm_regimes", {
        "final_training_loss": losses[-1],
        "next_token_accuracy": by,
        "generation_identical_bfp8_mixed": gen_match,
    }, seed=QUICK.seed)

    # The paper's motivating claim, on the LLM workload family:
    assert by["bfp8-mixed"] >= by["fp32"] - 0.03
    assert by["int8-all"] < by["bfp8-mixed"] - 0.1
    assert gen_match


def test_decoder_forward_cost(benchmark):
    data = additive_lm_sequences(n=64, seq_len=12, vocab=8, seed=0)
    lm = TinyLM(vocab=8, seq_len=12, dim=32, depth=2, n_heads=4, seed=1)
    be = get_backend("bfp8-mixed")
    out = benchmark(lambda: lm.forward(data.tokens[:32], be))
    assert out.shape == (32, 12, 8)


def test_greedy_generation_cost(benchmark):
    lm = TinyLM(vocab=8, seq_len=12, dim=32, depth=2, n_heads=4, seed=1)
    prompt = np.array([1, 2, 3, 5])
    gen = benchmark(lm.generate, prompt, 8)
    assert len(gen) == 12
