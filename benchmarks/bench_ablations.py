"""Ablation benches for the fixed design choices (DESIGN.md)."""

import pytest

from repro.perf.ablations import (
    ablate_block_size,
    ablate_combined_mac,
    ablate_psu_depth,
)


def test_combined_mac_ablation(benchmark, save_report):
    rows = benchmark(ablate_combined_mac)
    by = {r.packed: r for r in rows}
    save_report(
        "ablation_combined_mac",
        "\n".join(
            f"packed={r.packed}: peak {r.peak_ops / 1e9:.1f} GOPS, "
            f"Y BRAMs {r.y_buffer_brams:.0f}, PE FFs {r.pe_ff:.0f}"
            for r in rows
        ),
    )
    # Packing doubles peak throughput for +16 BRAM18 and +512 FF.
    assert by[True].peak_ops == 2 * by[False].peak_ops
    assert by[True].y_buffer_brams - by[False].y_buffer_brams == 16
    assert by[True].pe_ff - by[False].pe_ff == 512


def test_block_size_ablation(benchmark, save_report):
    rows = benchmark(ablate_block_size)
    save_report(
        "ablation_block_size",
        "\n".join(
            f"{r.block}x{r.block}: SQNR {r.sqnr_db:.2f} dB, fill eff "
            f"{r.fill_efficiency:.4f}, exp overhead "
            f"{r.exponent_overhead_bits_per_value:.3f} b/val, "
            f"DSP {r.array_resources.dsp:.0f}"
            for r in rows
        ),
    )
    by = {r.block: r for r in rows}
    # Smaller blocks quantize better (finer outlier containment)...
    assert by[4].sqnr_db > by[8].sqnr_db > by[16].sqnr_db
    # ...but pay more exponent overhead; 8x8 sits at 1/8 bit per value.
    assert by[4].exponent_overhead_bits_per_value == 0.5
    assert by[8].exponent_overhead_bits_per_value == 0.125
    # Fill efficiency stays high at the PSU-limited stream for all sizes.
    assert all(r.fill_efficiency > 0.9 for r in rows)


def test_psu_depth_ablation(benchmark, save_report, bench_artifact):
    rows = benchmark(ablate_psu_depth)
    save_report(
        "ablation_psu_depth",
        "\n".join(
            f"depth {r.depth}: N_X <= {r.max_n_x}, Eqn-9 eff "
            f"{r.eqn9_efficiency:.4f}, {r.psu_brams_per_column:.2f} "
            "BRAM18/col"
            for r in rows
        ),
    )
    bench_artifact("ablation_psu_depth", {
        "rows": [
            {"depth": r.depth, "max_n_x": r.max_n_x,
             "eqn9_efficiency": r.eqn9_efficiency,
             "psu_brams_per_column": r.psu_brams_per_column}
            for r in rows
        ],
    })
    by = {r.depth: r for r in rows}
    # The paper's 512 word choice: 97.15% of peak for one BRAM per column.
    assert by[512].eqn9_efficiency == pytest.approx(0.9715, abs=1e-3)
    assert by[512].psu_brams_per_column == 1.0
    # Doubling depth buys only ~1.4 points of efficiency.
    gain = by[1024].eqn9_efficiency - by[512].eqn9_efficiency
    assert gain < 0.02
