"""Table III bench: related-work comparison with the modeled system row."""

import pytest

from repro.eval import table3
from repro.perf.related_work import ours_entry, table3_rows


def test_table3_report(benchmark, save_report, bench_artifact):
    out = benchmark(table3.run)
    save_report("table3_related_work", out)
    e = ours_entry()
    bench_artifact("table3_related_work", {
        "throughput_gops": e.throughput_gops,
        "efficiency_gops_per_dsp": e.efficiency_gops_per_dsp,
    })


def test_ours_efficiency(benchmark):
    e = benchmark(ours_entry)
    # GOPS/DSP efficiency in the same band as the paper's 0.95.
    assert 0.5 < e.efficiency_gops_per_dsp < 1.2


def test_paper_row_leads_transformer_throughput(benchmark):
    rows = benchmark(table3_rows)
    transformer = [r for r in rows if r.application == "Transformer"
                   and r.work != "Ours (model)"]
    best = max(transformer, key=lambda r: r.throughput_gops)
    assert best.work == "Ours (paper)"
