"""Benchmark-suite helpers: every bench writes its reproduced table/figure
to ``results/`` so the artifacts of the reproduction are inspectable."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    def _save(name: str, content: str) -> None:
        (results_dir / f"{name}.txt").write_text(content + "\n")

    return _save


@pytest.fixture
def bench_artifact(results_dir):
    """Write ``BENCH_<name>.json``: a machine-readable summary of the bench's
    headline numbers, stamped with the seed and git revision (see
    :func:`repro.obs.artifacts.write_bench_artifact`)."""
    from repro.obs.artifacts import write_bench_artifact

    def _save(name: str, summary: dict, *, seed: int | None = None) -> None:
        write_bench_artifact(results_dir, name, summary, seed=seed)

    return _save
