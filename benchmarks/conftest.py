"""Benchmark-suite helpers: every bench writes its reproduced table/figure
to ``results/`` so the artifacts of the reproduction are inspectable."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_report(results_dir):
    def _save(name: str, content: str) -> None:
        (results_dir / f"{name}.txt").write_text(content + "\n")

    return _save
