"""Roofline bench: locate the paper's workloads against the memory wall."""

import pytest

from repro.perf.roofline import bfp_point, fp32_point, machine_balance, roofline_series
from repro.perf.throughput import bfp_peak_ops, fp32_peak_flops


def test_roofline_series(benchmark, save_report, bench_artifact):
    pts = benchmark(roofline_series)
    lines = [
        f"machine balance: bfp8 {machine_balance(bfp_peak_ops()):.2f} ops/B, "
        f"fp32 {machine_balance(fp32_peak_flops()):.2f} FLOPs/B",
        f"{'workload':12s} {'ops/byte':>9} {'attainable':>11} {'bound':>8}",
    ]
    for p in pts:
        lines.append(
            f"{p.name:12s} {p.intensity_ops_per_byte:9.2f} "
            f"{p.attainable_ops / 1e9:10.2f}G "
            f"{'memory' if p.memory_bound else 'compute':>8}"
        )
    save_report("roofline", "\n".join(lines))
    bench_artifact("roofline", {
        "points": [
            {"name": p.name,
             "intensity_ops_per_byte": p.intensity_ops_per_byte,
             "attainable_ops": p.attainable_ops,
             "memory_bound": p.memory_bound}
            for p in pts
        ],
    })
    # Fig. 7's structure: fp32 memory-bound everywhere, bfp8 compute-bound
    # once the stream amortizes the Y reuse.
    assert fp32_point(128).memory_bound
    assert not bfp_point(64).memory_bound


def test_decode_vs_prefill_efficiency(benchmark, save_report):
    from repro.runtime.scheduler import compile_decoder

    ctx = 128

    def build():
        pre = compile_decoder(vocab=1000, dim=128, depth=4, n_heads=4,
                              context=ctx, phase="prefill")
        dec = compile_decoder(vocab=1000, dim=128, depth=4, n_heads=4,
                              context=ctx, phase="decode")
        return pre, dec

    pre, dec = benchmark(build)
    per_tok_pre = pre.latency_seconds() / ctx * 1e6
    per_tok_dec = dec.latency_seconds() * 1e6
    save_report(
        "decoder_prefill_vs_decode",
        f"prefill: {per_tok_pre:.1f} us/token (amortized over {ctx})\n"
        f"decode:  {per_tok_dec:.1f} us/token (KV-cache, N_X=1 streams)\n"
        f"ratio:   {per_tok_dec / per_tok_pre:.1f}x",
    )
    assert per_tok_dec > 3 * per_tok_pre
