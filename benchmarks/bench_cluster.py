"""Cluster bench: replica scaling, autoscaler behaviour, sharding overhead.

Three seeded studies over :mod:`repro.cluster`, all recorded in
``results/BENCH_cluster_scaling.json``:

* **replica scaling** — the same saturating trace against 1..4 fixed
  replicas; the acceptance gate is >=1.8x tokens/s from 1 -> 2 replicas
  (near-linear request-level scaling, since replicas share nothing but
  the router);
* **autoscaled diurnal** — a sinusoidal trace against a 1-replica fleet
  with the autoscaler enabled: at least one scale-up and one scale-down
  must fire, and every admitted request completes;
* **sharding overhead** — tp1 vs tp3 vs pp3 on the same trace: the
  interconnect-cycle share each plan pays for its smaller per-lane
  compute footprint.
"""

import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    ClusterSpec,
    ShardPlan,
    simulate_cluster,
)
from repro.serve.request import (
    DiurnalConfig,
    TrafficConfig,
    diurnal_trace,
    poisson_trace,
)

SEED = 7
SATURATING = TrafficConfig(rate_rps=2000.0)
DIURNAL_MEAN = TrafficConfig(rate_rps=1500.0)


@pytest.fixture(scope="module")
def saturating_trace():
    return poisson_trace(600, SATURATING, seed=SEED, n_users=64)


def _per_replica_row(row):
    return {
        "rid": row["rid"],
        "state": row["state"],
        "completed": row["completed"],
        "utilization": row["utilization"],
        "latency_p95_ms": row["latency_p95_ms"],
        "latency_p99_ms": row["latency_p99_ms"],
        "interconnect_share": row["interconnect_share"],
    }


def test_cluster_scaling_and_autoscaler(saturating_trace, save_report,
                                        bench_artifact):
    # -- fixed-fleet scaling sweep -------------------------------------------
    sweep = {}
    for n in (1, 2, 3, 4):
        report = simulate_cluster(
            saturating_trace,
            ClusterConfig(spec=ClusterSpec(boards=4), initial_replicas=n),
        )
        s = report.summary
        sweep[n] = {
            "tokens_per_s": s["tokens_per_s"],
            "utilization": s["utilization"],
            "latency_p95_ms": s["latency_p95_ms"],
            "latency_p99_ms": s["latency_p99_ms"],
            "completed": s["completed"],
            "rejected": s["rejected"],
            "affinity_hit_rate": s["affinity_hit_rate"],
            "per_replica": [_per_replica_row(r) for r in report.per_replica],
        }
    scaling_1_to_2 = sweep[2]["tokens_per_s"] / sweep[1]["tokens_per_s"]

    # -- autoscaled diurnal ---------------------------------------------------
    trace = diurnal_trace(
        1200, DIURNAL_MEAN, DiurnalConfig(period_s=0.6, amplitude=0.9),
        seed=42, n_users=64,
    )
    auto = simulate_cluster(trace, ClusterConfig(
        spec=ClusterSpec(boards=4),
        autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4),
        initial_replicas=1,
    ))
    a = auto.summary

    # -- sharding overhead ----------------------------------------------------
    shard_trace = poisson_trace(300, TrafficConfig(rate_rps=800.0),
                                seed=SEED, n_users=64)
    shards = {}
    for plan in (ShardPlan(), ShardPlan(tp=3), ShardPlan(pp=3)):
        rep = simulate_cluster(shard_trace, ClusterConfig(
            spec=ClusterSpec(boards=2, plan=plan), initial_replicas=2))
        shards[plan.describe()] = {
            "tokens_per_s": rep.summary["tokens_per_s"],
            "latency_p95_ms": rep.summary["latency_p95_ms"],
            "interconnect_share": rep.summary["interconnect_share"],
            "lanes_per_replica": rep.summary["lanes_per_replica"],
        }

    lines = [
        f"replica scaling, saturating trace ({len(saturating_trace)} "
        f"requests, {SATURATING.rate_rps:g} req/s, seed {SEED}):",
        f"{'replicas':>8s} {'tokens/s':>10s} {'util':>6s} {'p95 ms':>8s} "
        f"{'p99 ms':>8s} {'rejected':>8s}",
    ]
    for n, s in sweep.items():
        lines.append(
            f"{n:8d} {s['tokens_per_s']:10.1f} {s['utilization']:6.3f} "
            f"{s['latency_p95_ms']:8.1f} {s['latency_p99_ms']:8.1f} "
            f"{s['rejected']:8d}"
        )
    lines.append(f"1 -> 2 replica scaling: {scaling_1_to_2:.2f}x")
    lines.append("")
    lines.append(
        f"autoscaled diurnal ({a['arrivals']} requests): "
        f"{a['scale_ups']} scale-ups, {a['scale_downs']} scale-downs, "
        f"{a['replicas_spawned']} replicas spawned, "
        f"p95 {a['latency_p95_ms']:.1f} ms, util {a['utilization']:.3f}"
    )
    for ev in auto.scale_events:
        lines.append(
            f"  cycle {ev['cycle']:>12}  {ev['action']:<10} r{ev['rid']} "
            f"active={ev['n_active']}  ({ev['reason']})"
        )
    lines.append("")
    lines.append("sharding plans (2 replicas, same trace):")
    lines.append(f"{'plan':>10s} {'lanes':>6s} {'tokens/s':>10s} "
                 f"{'p95 ms':>8s} {'ic share':>9s}")
    for name, s in shards.items():
        lines.append(
            f"{name:>10s} {s['lanes_per_replica']:6d} "
            f"{s['tokens_per_s']:10.1f} {s['latency_p95_ms']:8.1f} "
            f"{s['interconnect_share']:9.4f}"
        )
    save_report("cluster_scaling", "\n".join(lines))

    bench_artifact("cluster_scaling", {
        "replica_sweep": {str(k): v for k, v in sweep.items()},
        "scaling_1_to_2": scaling_1_to_2,
        "autoscaled_diurnal": {
            "arrivals": a["arrivals"],
            "completed": a["completed"],
            "rejected": a["rejected"],
            "tokens_per_s": a["tokens_per_s"],
            "utilization": a["utilization"],
            "latency_p95_ms": a["latency_p95_ms"],
            "latency_p99_ms": a["latency_p99_ms"],
            "scale_ups": a["scale_ups"],
            "scale_downs": a["scale_downs"],
            "replicas_spawned": a["replicas_spawned"],
            "scale_events": auto.scale_events,
            "per_replica": [_per_replica_row(r) for r in auto.per_replica],
        },
        "sharding": shards,
    }, seed=SEED)

    # Acceptance gates (ISSUE 6): near-linear 1 -> 2 scaling on a
    # saturating trace; the autoscaler must both grow and shrink the
    # fleet on the diurnal trace.
    assert scaling_1_to_2 >= 1.8, f"1->2 scaling only {scaling_1_to_2:.2f}x"
    assert a["scale_ups"] >= 1 and a["scale_downs"] >= 1
    assert a["completed"] + a["rejected"] == a["arrivals"]
    # sharded plans pay a real but sane interconnect share
    assert 0.0 < shards["tp3xpp1"]["interconnect_share"] < 0.5
    assert 0.0 < shards["tp1xpp3"]["interconnect_share"] < 0.5
