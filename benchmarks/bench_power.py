"""Power-model bench: energy comparisons across the design points.

The paper's evaluation mentions energy consumption without publishing
numbers; these benches record the calibrated model's comparisons, which
must at least preserve the resource-model ordering.
"""

import pytest

from repro.perf.power import PowerModel
from repro.perf.resources import (
    design_bfp8_only,
    design_individual,
    design_int8,
    design_multimode,
)
from repro.perf.throughput import bfp_throughput_ops


def test_power_comparison(benchmark, save_report, bench_artifact):
    pm = PowerModel()

    def build():
        rows = []
        for name, design in (
            ("int8", design_int8()),
            ("bfp8", design_bfp8_only()),
            ("ours", design_multimode()),
            ("indiv", design_individual()),
        ):
            rep = pm.bfp8_mode_power(design, utilization=0.97)
            rows.append((name, rep.dynamic_w, rep.total_w))
        return rows

    rows = benchmark(build)
    lines = ["design  dynamic_W  total_W"]
    for name, dyn, tot in rows:
        lines.append(f"{name:6s} {dyn:9.4f} {tot:8.4f}")
    save_report("power_design_points", "\n".join(lines))
    bench_artifact("power_design_points", {
        name: {"dynamic_w": dyn, "total_w": tot} for name, dyn, tot in rows
    })
    by = {r[0]: r[1] for r in rows}
    assert by["int8"] < by["bfp8"] <= by["ours"] < by["indiv"]


def test_energy_per_op(benchmark):
    pm = PowerModel()
    rep = pm.bfp8_mode_power(design_multimode(), utilization=0.97)
    epo = benchmark(rep.energy_per_op_pj, bfp_throughput_ops(64))
    assert 1.0 < epo < 200.0


def test_fp32_mode_gating_saves_power(benchmark):
    pm = PowerModel()
    r = design_multimode()
    fp = benchmark(pm.fp32_mode_power, r, 0.9)
    assert fp.dynamic_w == pytest.approx(
        pm.bfp8_mode_power(r, 0.9).dynamic_w / 2
    )
