"""Half-precision vector-unit bench (paper Section V extension)."""

import numpy as np
import pytest

from repro.arith.fp_sliced_half import sliced_multiply_half
from repro.eval import halfprec
from repro.formats.halfprec import BF16, FP16
from repro.perf.throughput import fp32_peak_flops, half_peak_flops


def test_halfprec_report(benchmark, save_report, bench_artifact):
    out = benchmark(halfprec.run)
    save_report("halfprec_vector_unit", out)
    bench_artifact("halfprec_vector_unit", {
        "nonlinear_accuracy": halfprec.nonlinear_accuracy(),
        "peak_flops": {"fp32": fp32_peak_flops(),
                       "bf16": half_peak_flops("bf16"),
                       "fp16": half_peak_flops("fp16")},
    })


@pytest.mark.parametrize("fmt", [BF16, FP16], ids=["bf16", "fp16"])
def test_half_multiply_kernel(benchmark, fmt):
    rng = np.random.default_rng(0)
    x = rng.normal(size=50_000).astype(np.float32)
    y = rng.normal(size=50_000).astype(np.float32)
    out = benchmark(sliced_multiply_half, x, y, fmt)
    assert out.shape == x.shape


def test_throughput_doubling(benchmark):
    peak = benchmark(half_peak_flops, "bf16")
    assert peak == pytest.approx(2 * fp32_peak_flops())


def test_accuracy_ordering(benchmark):
    rows = benchmark(halfprec.nonlinear_accuracy)
    by = {r["precision"]: r for r in rows}
    # fp32 most accurate; fp16 beats bf16 on mantissa-limited error.
    assert by["fp32"]["softmax_max_err"] < by["fp16"]["softmax_max_err"]
    assert by["fp16"]["softmax_max_err"] < by["bf16"]["softmax_max_err"]
    assert by["bf16"]["softmax_max_err"] < 0.01  # still softmax-usable
