"""Table I bench: derive and render the shared-basic-operations matrix."""

from repro.eval import table1


def test_table1_report(benchmark, save_report, bench_artifact):
    out = benchmark(table1.run)
    assert "Matches the paper's Table I: True" in out
    save_report("table1_shared_operations", out)
    bench_artifact("table1_shared_operations", {"matches_paper": True})
