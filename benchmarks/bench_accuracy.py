"""Accuracy bench: mixed-precision deployment without retraining.

Trains a compact Transformer once (pedantic single round — training inside
a timing loop would be meaningless) and evaluates the arithmetic regimes.
"""

import pytest

from repro.eval.accuracy import ExperimentConfig, run_task

QUICK = ExperimentConfig(
    task="majority", n_samples=900, seq_len=12, dim=32, depth=2, epochs=8,
    seed=11,
)


@pytest.fixture(scope="module")
def experiment():
    return run_task(QUICK)


def test_accuracy_experiment(benchmark, experiment, save_report,
                             bench_artifact):
    fp32_acc, regimes = experiment
    by = {r.backend: r for r in regimes}

    def evaluate_mixed_regime():
        from repro.models.backend import get_backend
        return get_backend("bfp8-mixed")

    benchmark(evaluate_mixed_regime)
    lines = [f"fp32 test accuracy: {fp32_acc:.4f}"]
    for r in regimes:
        lines.append(
            f"{r.backend:12s} acc={r.accuracy:.4f} agree={r.agreement:.4f} "
            f"rmse={r.logit_rmse:.4f}"
        )
    save_report("accuracy_regimes", "\n".join(lines))
    bench_artifact("accuracy_regimes", {
        "fp32_accuracy": fp32_acc,
        "regimes": [
            {"backend": r.backend, "accuracy": r.accuracy,
             "agreement": r.agreement, "logit_rmse": r.logit_rmse}
            for r in regimes
        ],
    }, seed=QUICK.seed)

    # The deployment claim: bfp8-mixed tracks fp32.
    assert by["bfp8-mixed"].agreement >= 0.97
    assert by["bfp8-mixed"].accuracy >= fp32_acc - 0.02


def test_regime_inference_cost(benchmark):
    """Time one bfp8-mixed forward pass (untrained weights; cost-only)."""
    from repro.models.backend import get_backend
    from repro.models.data import TASKS
    from repro.models.vit import SequenceClassifier

    data = TASKS[QUICK.task](n=128, seq_len=QUICK.seq_len, seed=QUICK.seed)
    m = SequenceClassifier(vocab=data.vocab, seq_len=QUICK.seq_len,
                           dim=QUICK.dim, depth=QUICK.depth, n_heads=4,
                           seed=QUICK.seed + 1)
    out = benchmark(lambda: m.forward(data.tokens[:64], get_backend("bfp8-mixed")))
    assert out.shape == (64, 2)
