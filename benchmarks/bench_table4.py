"""Table IV bench: DeiT-Small workload/latency split.

Reproduces the paper's latency column exactly under the paper's op counts
and effective rates, and regenerates the analytic version from our own
counters and throughput model.
"""

import pytest

from repro.eval import table4
from repro.models.configs import DEIT_SMALL
from repro.models.ops_count import count_linear_macs, table4_partitions
from repro.perf.latency import deit_latency_split


def test_table4_report(benchmark, save_report, bench_artifact):
    out = benchmark(table4.run)
    save_report("table4_deit_split", out)
    report = table4.reproduce_paper_table()
    bench_artifact("table4_deit_split", {
        "rows": report.proportions(),
        "fp32_latency_share": report.fp32_latency_share(),
    })


def test_paper_latency_column_reproduced(benchmark):
    report = benchmark(table4.reproduce_paper_table)
    by = {r["name"]: r["latency_s"] * 1e3 for r in report.rows}
    assert by["bfp8 MatMul"] == pytest.approx(1.201, abs=0.002)
    assert by["fp32 SoftMax"] == pytest.approx(9.686, abs=0.005)
    assert by["fp32 GELU"] == pytest.approx(3.389, abs=0.002)
    assert by["fp32 LayerNorm"] == pytest.approx(0.425, abs=0.002)


def test_analytic_split_headline(benchmark):
    report = benchmark(lambda: deit_latency_split(table4_partitions(DEIT_SMALL)))
    props = report.proportions()
    fp32_ops_pct = sum(p["ops_pct"] for p in props if p["mode"] == "fp32")
    assert fp32_ops_pct < 5.0  # tiny share of operations...
    assert report.fp32_latency_share() > 0.5  # ...majority of latency


def test_op_counting_cost(benchmark):
    lin = benchmark(count_linear_macs, DEIT_SMALL)
    assert lin.total == pytest.approx(4.6e9, rel=0.02)
