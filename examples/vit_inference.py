"""Mixed-precision Vision Transformer inference (the paper's case study).

Builds a DeiT-style ViT, runs the same image batch under fp32 and under the
paper's bfp8-linear + fp32-non-linear regime, and reports logit agreement,
the analytic workload split and the modeled end-to-end latency on the
15-unit system (Table IV).

A reduced configuration is used by default so the bit-faithful bfp8
emulation finishes quickly; pass --deit-small for the full Table IV config
(op counts and latency only — the full forward pass in emulation is slow).

Run:  python examples/vit_inference.py [--deit-small]
"""

import argparse

import numpy as np

from repro.models import VisionTransformer, ViTConfig, get_backend
from repro.models.configs import DEIT_SMALL
from repro.models.ops_count import count_linear_macs, table4_partitions
from repro.perf.latency import deit_latency_split

DEMO = ViTConfig("deit-demo", image_size=32, patch_size=8, dim=64, depth=2,
                 n_heads=4, n_classes=10)


def run_forward_comparison(cfg: ViTConfig) -> None:
    rng = np.random.default_rng(0)
    model = VisionTransformer(
        image_size=cfg.image_size, patch_size=cfg.patch_size, dim=cfg.dim,
        depth=cfg.depth, n_heads=cfg.n_heads, n_classes=cfg.n_classes, seed=1,
    )
    images = rng.normal(size=(4, 3, cfg.image_size, cfg.image_size)).astype(np.float32)
    ref = model.forward(images, get_backend("fp32"))
    mixed = model.forward(images, get_backend("bfp8-mixed"))
    agree = (np.argmax(ref, 1) == np.argmax(mixed, 1)).mean()
    rmse = np.sqrt(np.mean((ref - mixed) ** 2))
    print(f"[{cfg.name}] fp32 vs bfp8-mixed: top-1 agreement {agree:.2f}, "
          f"logit RMSE {rmse:.4f} (logit std {ref.std():.4f})")


def report_workload(cfg: ViTConfig) -> None:
    lin = count_linear_macs(cfg)
    print(f"\n[{cfg.name}] encoder linear work: {lin.encoder / 1e6:.1f} M MACs "
          f"({lin.total / 1e6:.1f} M with patch embed + head)")
    report = deit_latency_split(table4_partitions(cfg))
    for row in report.proportions():
        print(f"  {row['name']:16s} {row['ops'] / 1e6:9.1f}M ops "
              f"({row['ops_pct']:6.3f}%)  {row['latency_s'] * 1e3:8.3f} ms "
              f"({row['latency_pct']:6.2f}%)")
    print(f"  total {report.total_latency_s * 1e3:.3f} ms; fp32 share of "
          f"latency {100 * report.fp32_latency_share():.1f}% "
          "(paper: 1.35% of ops, 92.45% of latency)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--deit-small", action="store_true",
                        help="use the full DeiT-Small config (skips the "
                        "emulated forward pass)")
    args = parser.parse_args()
    if args.deit_small:
        report_workload(DEIT_SMALL)
    else:
        run_forward_comparison(DEMO)
        report_workload(DEMO)
        report_workload(DEIT_SMALL)


if __name__ == "__main__":
    main()
