"""Accuracy study: deploy a trained Transformer without retraining.

Trains small Transformers on synthetic tasks (fp32), then serves them under
five arithmetic regimes — fp32, bfp8-mixed (the paper's), bfp8-all,
int8-linear, int8-all — and reports accuracy, agreement with fp32 and
logit RMSE.  ``--quick`` shrinks the configuration for a fast smoke run.

Run:  python examples/accuracy_study.py [--quick]
"""

import argparse

from repro.eval.accuracy import ExperimentConfig, run


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small model / few epochs (fast, less accurate)")
    args = parser.parse_args()
    if args.quick:
        configs = [
            ExperimentConfig(task="majority", n_samples=800, dim=32, depth=2,
                             epochs=8),
        ]
    else:
        configs = [
            ExperimentConfig(task="majority"),
            ExperimentConfig(task="matching-pairs", n_samples=2400, epochs=30),
        ]
    print(run(configs))


if __name__ == "__main__":
    main()
