"""Quickstart: drive the multi-mode processing unit directly.

Shows the three workload types of the paper on one reconfigurable unit:
bfp8 matrix multiplication, fp32 vector multiply, fp32 vector add — plus
the cycle/throughput statistics the unit collects.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import BfpMatrix, MultiModePU, quantize_block

rng = np.random.default_rng(42)


def main() -> None:
    # --- 1. bfp8 quantization ------------------------------------------------
    tile = rng.normal(size=(8, 8))
    block = quantize_block(tile)
    print("one 8x8 bfp8 block:")
    print(f"  shared exponent 2^{block.exponent}, max |mantissa| "
          f"{int(np.abs(block.mantissas).max())}")
    print(f"  quantization max abs error: {np.abs(block.decode() - tile).max():.3e}")

    # --- 2. bfp8 MatMul on the systolic array --------------------------------
    pu = MultiModePU()
    a = rng.normal(size=(64, 96))
    b = rng.normal(size=(96, 32))
    c = pu.matmul(BfpMatrix.from_dense(a), BfpMatrix.from_dense(b))
    err = np.abs(c.to_dense() - a @ b).max() / np.abs(a @ b).max()
    print("\nbfp8 MatMul (64x96)@(96x32):")
    print(f"  relative error vs fp64: {err:.4f}")
    print(f"  streams: {pu.stats.bfp_streams}, cycles: {pu.stats.cycles_bfp}, "
          f"MACs: {pu.stats.bfp_macs}")
    print(f"  achieved {pu.stats.bfp_throughput_ops(300e6) / 1e9:.1f} GOPS "
          f"at 300 MHz (Eqn-7 peak: 76.8 GOPS)")

    # --- 3. run-time reconfiguration to fp32 ---------------------------------
    x = rng.normal(size=1000).astype(np.float32)
    y = rng.normal(size=1000).astype(np.float32)
    prod = pu.fp32_multiply(x, y)
    total = pu.fp32_add(x, y)
    print("\nfp32 vector ops on the reconfigured array:")
    print(f"  multiply max rel err vs IEEE: "
          f"{np.abs(prod / (x.astype(np.float64) * y.astype(np.float64)) - 1).max():.2e}")
    print(f"  add max abs err vs IEEE: "
          f"{np.abs(total - (x.astype(np.float64) + y.astype(np.float64))).max():.2e}")
    print(f"  reconfigurations: {pu.controller.reconfigurations}, "
          f"fp32 cycles: {pu.stats.cycles_fp32_mul + pu.stats.cycles_fp32_add}")
    print(f"  achieved {pu.stats.fp32_throughput_flops(300e6) / 1e9:.2f} GFLOPS "
          f"(Eqn-8 per-unit peak: 2.40 GFLOPS)")


if __name__ == "__main__":
    main()
