"""Non-linear Transformer functions on the fp32 vector personality.

Compiles Softmax, GELU and LayerNorm into the basic-arithmetic vector
programs of Section II (fp32 mul/add streams + host-side division), runs
them through the bit-faithful simulated datapath, and reports accuracy
against NumPy plus the FPU/host op split and Eqn-10 cycle accounting.

Run:  python examples/nonlinear_on_fpu.py
"""

import numpy as np

from repro.models.layers import gelu as gelu_ref
from repro.models.layers import softmax as softmax_ref
from repro.runtime import (
    VectorExecutor,
    build_gelu,
    build_layernorm,
    build_softmax,
)


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.normal(size=(8, 64)).astype(np.float32) * 3.0

    ex = VectorExecutor(faithful=True)

    # --- softmax --------------------------------------------------------------
    out, tr = ex.run(build_softmax(), {"x": x})
    ref = softmax_ref(x.astype(np.float64))
    print("softmax on the FPU:")
    print(f"  max abs err vs NumPy: {np.abs(out - ref).max():.2e}")
    print(f"  per run: {tr.counts.fpu_mul} FPU muls, {tr.counts.fpu_add} FPU adds, "
          f"{tr.counts.host} host ops (max/floor/exp2/divide)")

    # --- GELU -----------------------------------------------------------------
    out, tr = ex.run(build_gelu(), {"x": x})
    ref = gelu_ref(x.astype(np.float64))
    print("GELU on the FPU:")
    print(f"  max abs err vs NumPy: {np.abs(out - ref).max():.2e}")
    print(f"  per run: {tr.counts.fpu_mul} FPU muls, {tr.counts.fpu_add} FPU adds, "
          f"{tr.counts.host} host ops")

    # --- LayerNorm --------------------------------------------------------------
    gamma = np.ones((1, 64), np.float32)
    beta = np.zeros((1, 64), np.float32)
    inv_n = np.full((8, 1), 1.0 / 64, np.float32)
    eps = np.full((8, 1), 1e-5, np.float32)
    out, tr = ex.run(
        build_layernorm(),
        {"x": x, "gamma": gamma, "beta": beta, "inv_n": inv_n, "eps": eps},
    )
    mu = x.mean(-1, keepdims=True)
    ref = (x - mu) / np.sqrt(x.var(-1, keepdims=True) + 1e-5)
    print("LayerNorm on the FPU:")
    print(f"  max abs err vs NumPy: {np.abs(out - ref).max():.2e}")
    print(f"  per run: {tr.counts.fpu_mul} FPU muls, {tr.counts.fpu_add} FPU adds, "
          f"{tr.counts.host} host ops (rsqrt)")

    # --- cycle accounting -------------------------------------------------------
    s = ex.pu.stats
    print("\ncycle accounting across all three programs (Eqn 10):")
    print(f"  fp32 mul ops {s.fp32_mul_ops} in {s.cycles_fp32_mul} cycles; "
          f"fp32 add ops {s.fp32_add_ops} in {s.cycles_fp32_add} cycles")
    print(f"  achieved {s.fp32_throughput_flops(300e6) / 1e9:.2f} GFLOPS at "
          f"300 MHz (per-unit peak 2.40)")
    print(f"  mode switches: {ex.pu.controller.reconfigurations}")


if __name__ == "__main__":
    main()
