"""Cluster walkthrough: diurnal traffic against a 4-replica fleet.

Drives a sinusoidally-modulated (diurnal) request trace at a 4-board
cluster under the committed mixed-fp8 precision policy
(``examples/policies/mixed_bfp8_fp8.json``): first a fixed 4-replica
fleet, then the same trace with the load-driven autoscaler growing the
fleet from one replica and draining it back as the wave passes.  Prints
the fleet summary, the per-replica rows (utilization, tail latency,
interconnect share) and the autoscaler's decision log.

Run:  python examples/cluster_traffic.py [--requests N] [--seed S]
"""

import argparse
from pathlib import Path

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    ClusterSpec,
    simulate_cluster,
)
from repro.models.policy import load_policy
from repro.serve import ServeConfig, TrafficConfig
from repro.serve.request import DiurnalConfig, diurnal_trace

POLICY = Path(__file__).parent / "policies" / "mixed_bfp8_fp8.json"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    # The daily wave, compressed: mean 1500 req/s swinging +-90% over a
    # 0.6 s period — several peaks and troughs within one trace, which is
    # exactly the regime where a fixed fleet wastes boards off-peak and
    # an autoscaler earns its hysteresis.
    serve = ServeConfig(precision=load_policy(str(POLICY)))
    trace = diurnal_trace(
        args.requests,
        TrafficConfig(rate_rps=1500.0, vit_fraction=0.05),
        DiurnalConfig(period_s=0.6, amplitude=0.9),
        seed=args.seed,
        clock=serve.clock,
        n_users=64,
    )

    fixed = simulate_cluster(trace, ClusterConfig(
        serve=serve, spec=ClusterSpec(boards=4), initial_replicas=4))
    print(fixed.render(
        f"cluster: fixed 4-replica fleet, mixed-fp8 policy, "
        f"{args.requests} diurnal requests"))
    print()

    auto = simulate_cluster(trace, ClusterConfig(
        serve=serve,
        spec=ClusterSpec(boards=4),
        autoscaler=AutoscalerConfig(min_replicas=1, max_replicas=4),
        initial_replicas=1,
    ))
    print(auto.render("cluster: same trace, autoscaled from 1 replica"))
    print()

    f, a = fixed.summary, auto.summary
    # Board-time actually held: replicas' active spans, in board-seconds.
    freq = serve.clock.freq_hz
    held_fixed = sum(
        r["lanes"] / ClusterSpec().units_per_board
        * ((r["retired_at"] or f["horizon_s"] * freq) - r["spawned_at"])
        for r in fixed.per_replica) / freq
    held_auto = sum(
        r["lanes"] / ClusterSpec().units_per_board
        * ((r["retired_at"] or a["horizon_s"] * freq) - r["spawned_at"])
        for r in auto.per_replica) / freq
    print(f"board-seconds held: fixed fleet {held_fixed:.2f}, "
          f"autoscaled {held_auto:.2f} "
          f"({100 * (1 - held_auto / held_fixed):.0f}% fewer)")
    print(f"p95 latency: fixed {f['latency_p95_ms']:.1f} ms, "
          f"autoscaled {a['latency_p95_ms']:.1f} ms")
    print(f"autoscaler: {a['scale_ups']} scale-ups, "
          f"{a['scale_downs']} scale-downs over the wave")


if __name__ == "__main__":
    main()
