"""Compile a full Transformer model to the accelerator (future-work framework).

The paper's conclusion announces an automatic compilation framework for
full-stack Transformer acceleration; this example runs this reproduction's
version of it: lower DeiT-Tiny/Small/Base into hardware schedules, evaluate
end-to-end latency on the 15-unit system, show the per-kind latency split
(the compiled-schedule version of Table IV), and the effect of scaling the
number of units and of switching the vector unit to bf16.

Run:  python examples/compile_deit.py
"""

from repro.models.configs import CONFIGS
from repro.perf.throughput import fp32_peak_flops, half_peak_flops
from repro.runtime.scheduler import compile_vit


def main() -> None:
    print("compiled DeiT family (15 units, 300 MHz):")
    for name, cfg in CONFIGS.items():
        model = compile_vit(cfg)
        print(f"  {name:11s} {len(model.stages):4d} stages  "
              f"{model.latency_seconds() * 1e3:8.2f} ms  "
              f"fp32 share {100 * model.fp32_latency_share():5.1f}%")

    small = compile_vit(CONFIGS["deit-small"])
    print("\nDeiT-Small workload split (compiled schedule):")
    for r in small.workload_split():
        print(f"  {r['name']:20s} {r['ops'] / 1e6:9.1f}M ops "
              f"({r['ops_pct']:6.2f}%)  {r['latency_s'] * 1e3:8.3f} ms "
              f"({r['latency_pct']:6.2f}%)")

    print("\nunit scaling (DeiT-Small end-to-end):")
    for n in (1, 4, 15, 30, 60):
        print(f"  {n:3d} units: {small.latency_seconds(n) * 1e3:9.2f} ms")

    # bf16 vector personality: the fp32-class stages run 2x faster.
    gain = half_peak_flops("bf16") / fp32_peak_flops()
    base_ms = small.latency_seconds() * 1e3
    fp32_ms = base_ms * small.fp32_latency_share()
    boosted = base_ms - fp32_ms + fp32_ms / gain
    print(f"\nwith a bf16 vector unit ({gain:.0f}x non-linear throughput): "
          f"{base_ms:.2f} ms -> {boosted:.2f} ms "
          f"({base_ms / boosted:.2f}x end-to-end)")


if __name__ == "__main__":
    main()
