"""Serving-layer walkthrough: seeded traffic through the online dispatcher.

Generates a Poisson request mix (ViT classifications + LLM generations),
runs it through the dynamic batcher / session-affinity dispatcher over the
15-unit pool, and prints the latency/throughput report.  A second run with
``max_batch = 1`` on the *same* trace shows what dynamic batching buys on
decode-heavy traffic, and a batch-size sweep shows the knob's shape.

Run:  python examples/serve_traffic.py [--requests N] [--seed S]
"""

import argparse

from repro.serve import (
    BatchPolicy,
    ServeConfig,
    TrafficConfig,
    poisson_trace,
    simulate,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # A decode-heavy mix: this is where per-token batching pays (each
    # decode step is a 1-row matmul, the N_X = 1 worst case of Eqn 9).
    # ViT requests cost ~100x an LLM token, so even a 5% image fraction
    # is a sizable share of the busy cycles.
    traffic = TrafficConfig(rate_rps=1500.0, vit_fraction=0.05)
    cfg = ServeConfig(policy=BatchPolicy(max_batch=8, max_wait_us=200.0))
    trace = poisson_trace(args.requests, traffic, seed=args.seed,
                          clock=cfg.clock)

    report = simulate(trace, cfg)
    print(report.render("serve-sim: dynamic batching (max_batch=8)"))

    single = simulate(trace, ServeConfig(
        policy=BatchPolicy(max_batch=1, max_wait_us=0.0)))
    print(single.render("serve-sim: no batching (max_batch=1)"))

    speedup = report.summary["tokens_per_s"] / single.summary["tokens_per_s"]
    print(f"dynamic batching tokens/s speedup: {speedup:.2f}x\n")

    print("batch-size sweep (same trace):")
    print(f"  {'max_batch':>9s} {'tokens/s':>10s} {'p95 ms':>8s} {'ttft p95':>9s}")
    for max_batch in (1, 2, 4, 8, 16):
        r = simulate(trace, ServeConfig(
            policy=BatchPolicy(max_batch=max_batch, max_wait_us=200.0)))
        s = r.summary
        print(f"  {max_batch:9d} {s['tokens_per_s']:10.1f} "
              f"{s['latency_p95_ms']:8.1f} {s['ttft_p95_ms']:9.1f}")


if __name__ == "__main__":
    main()
