"""LLM-style decoder on the mixed-precision accelerator.

Trains a tiny LLaMA-family causal decoder (RMSNorm + SwiGLU — both compiled
to vector programs on the fp32 personality, no hardware change from the
DeiT configuration) on a deterministic additive grammar, then serves it
under every arithmetic regime and generates text greedily under the
paper's bfp8-mixed regime.

Run:  python examples/llm_decoder.py
"""

import numpy as np

from repro.eval.decoder import DecoderConfig, run, run_decoder_study
from repro.models.backend import get_backend
from repro.runtime.vector_ops import build_rmsnorm, build_swiglu


def main() -> None:
    print(run(DecoderConfig()))

    # The programmability story: RMSNorm and SwiGLU as instruction streams.
    print("\nvector programs for the decoder's non-linearities:")
    for name, prog in (("rmsnorm", build_rmsnorm()), ("swiglu", build_swiglu())):
        c = prog.static_op_count()
        print(f"  {name:8s}: {len(prog.instrs)} instructions "
              f"({c.fpu_mul} mul + {c.fpu_add} add on the FPU, "
              f"{c.host} host ops per element)")

    # A longer generation run under the deployed regime.
    lm, _, _, _ = run_decoder_study(DecoderConfig(epochs=15))
    prompt = np.array([3, 5, 0, 5])
    gen = lm.generate(prompt, 8, get_backend("bfp8-mixed"))
    expect = list(prompt)
    for _ in range(8):
        expect.append((expect[-1] + expect[-2]) % 8)
    print(f"\nbfp8-mixed generation: {list(gen)}")
    print(f"grammar ground truth:  {expect}")
    print(f"exact continuation: {list(gen) == expect}")


if __name__ == "__main__":
    main()
