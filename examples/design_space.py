"""Design-space exploration with the resource and throughput models.

Sweeps the array geometry and the stream lengths to show the trade-offs the
paper discusses: resource cost of the multi-mode capability across array
sizes, and how stream length moves both modes toward their theoretical
ceilings (and how memory behaviour caps the fp32 mode).

Run:  python examples/design_space.py
"""

from repro.perf.latency import (
    measured_bfp_throughput_ops,
    measured_fp32_throughput_flops,
)
from repro.perf.memory import MemoryModel
from repro.perf.resources import (
    design_bfp8_only,
    design_individual,
    design_int8,
    design_multimode,
)
from repro.perf.throughput import ClockConfig, bfp_throughput_ops


def sweep_array_sizes() -> None:
    print("array geometry sweep (design resources, DSPs include per-column ACC):")
    print(f"  {'size':>6} {'int8 LUT':>9} {'bfp8 LUT':>9} {'ours LUT':>9} "
          f"{'indiv LUT':>9} {'ours FF':>8} {'DSP ours/indiv':>15}")
    for size in (4, 8, 16):
        i8 = design_int8(size, size)
        b8 = design_bfp8_only(size, size)
        mm = design_multimode(size, size)
        iv = design_individual(size, size, lanes=size // 2)
        print(f"  {size}x{size:<3} {i8.lut:9.0f} {b8.lut:9.0f} {mm.lut:9.0f} "
              f"{iv.lut:9.0f} {mm.ff:8.0f} {mm.dsp:7.0f}/{iv.dsp:<7.0f}")


def sweep_stream_lengths() -> None:
    print("\nbfp8 stream-length sweep (one unit, GOPS):")
    print(f"  {'N_X':>4} {'Eqn 9':>8} {'measured':>9} {'ratio':>6}")
    for n_x in (4, 8, 16, 32, 64):
        theo = bfp_throughput_ops(n_x) / 1e9
        meas = measured_bfp_throughput_ops(n_x) / 1e9
        print(f"  {n_x:>4} {theo:8.1f} {meas:9.1f} {meas / theo:6.2f}")


def sweep_memory_models() -> None:
    print("\nfp32 burst-length sensitivity (L = 128, one unit, GFLOPS):")
    print(f"  {'burst':>6} {'measured':>9}")
    for burst in (1, 4, 16, 64):
        mem = MemoryModel(fp32_burst_beats=burst)
        meas = measured_fp32_throughput_flops(128, mem) / 1e9
        print(f"  {burst:>6} {meas:9.2f}")
    print("  (theoretical Eqn-10 value: "
          f"{2.259:.2f} -- the paper's planned compiler-level burst "
          "optimization is exactly this knob)")


def sweep_frequency() -> None:
    print("\nclock sweep (system bfp8 at N_X = 64, 15 units, TOPS):")
    for mhz in (200, 300, 400):
        cfg = ClockConfig(freq_hz=mhz * 1e6)
        tops = 15 * bfp_throughput_ops(64, cfg) / 1e12
        print(f"  {mhz} MHz: {tops:.3f} TOPS theoretical")


def show_roofline() -> None:
    from repro.perf.roofline import machine_balance, roofline_series
    from repro.perf.throughput import bfp_peak_ops, fp32_peak_flops

    print("\nroofline (one unit; ridge = peak / stream bandwidth):")
    print(f"  ridge: bfp8 {machine_balance(bfp_peak_ops()):.2f} ops/B, "
          f"fp32 {machine_balance(fp32_peak_flops()):.2f} FLOPs/B")
    for p in roofline_series():
        bound = "memory" if p.memory_bound else "compute"
        print(f"  {p.name:12s} {p.intensity_ops_per_byte:6.2f} ops/B -> "
              f"{p.attainable_ops / 1e9:6.2f} G attainable ({bound}-bound)")


def show_device_fit() -> None:
    from repro.perf.device import device_report

    print("\ndevice capacity (why the paper stops at 15 units):")
    for line in device_report().splitlines():
        print(f"  {line}")


def main() -> None:
    sweep_array_sizes()
    sweep_stream_lengths()
    sweep_memory_models()
    sweep_frequency()
    show_roofline()
    show_device_fit()


if __name__ == "__main__":
    main()
